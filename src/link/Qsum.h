//===- link/Qsum.h - Serialized per-TU constraint summaries ------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.qsum` format: one translation unit's constraint summary, produced
/// by `qualcc --emit-summary` and consumed by `quallink` (docs/LINK.md).
///
/// A summary is the TU's constraint graph pruned to the components that can
/// interact with other TUs, plus an interface section naming the exported
/// and imported symbols with their qualified-type skeletons, the TU's
/// interesting const positions, and the Section 4.2 library pins the
/// summary-mode inference withheld (constinf::DeferredPin). The link step
/// unifies interface variables by symbol name, merges every TU's
/// constraints into one system, and solves globally.
///
/// The format is versioned and content-addressed: the header carries
/// kSummaryFormatVersion, the configuration hash (format version plus every
/// inference option that changes results), and the hash of the source bytes
/// the summary was computed from. Cache keys combine the content and config
/// hashes, mirroring the serve layer's ResultCache keying, so identical
/// shared sources are summarized once and stale summaries are rejected on
/// load instead of silently mislinking.
///
/// All multi-byte fields are little-endian. The reader is hardened against
/// hostile input (fuzz/fuzz_summary.cpp): every offset, count, string index,
/// and variable id is bounds-checked, allocations are capped by the input
/// size, and malformed bytes produce an error string, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LINK_QSUM_H
#define QUALS_LINK_QSUM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quals {
namespace link {

/// Bumped on any change to the serialized layout; readers reject other
/// versions as stale.
constexpr uint32_t kSummaryFormatVersion = 1;

/// The four magic bytes opening every summary file.
constexpr char kSummaryMagic[4] = {'Q', 'S', 'U', 'M'};

/// A source position rendered to presumed (file, line, column) form at
/// summary-build time -- raw SourceLocs index a SourceManager that does not
/// survive serialization. Line 0 means "no location".
struct QsumOrigin {
  uint32_t File = 0; ///< String-table index of the file name.
  uint32_t Line = 0; ///< 1-based; 0 = unknown.
  uint32_t Col = 0;  ///< 1-based.
  uint32_t Reason = 0; ///< String-table index of the human-readable reason.
};

/// One atomic constraint Lhs <= Rhs (under Mask). Operands are either a
/// summary-local variable id or a lattice constant's bit pattern.
struct QsumConstraint {
  bool LhsIsVar = false;
  bool RhsIsVar = false;
  uint64_t Lhs = 0;
  uint64_t Rhs = 0;
  uint64_t Mask = 0;
  QsumOrigin Origin;
};

/// One interesting const position (constinf::InterestingPos) keyed by
/// function name rather than FunctionDecl pointer.
struct QsumPos {
  uint32_t FnName = 0; ///< String-table index.
  int32_t ParamIndex = -1; ///< -1 for the result position.
  uint32_t Depth = 0;
  uint32_t Var = 0; ///< Summary-local qualifier variable.
  bool DeclaredConst = false;
};

/// One withheld Section 4.2 library pin "Var <= not-const", applied by the
/// link step only when the owning imported symbol stays unresolved.
struct QsumPin {
  uint32_t Var = 0;
  bool IsEscape = false; ///< See constinf::DeferredPin::IsEscape.
  QsumOrigin Origin;
};

/// One exported or imported symbol: its name, the skeleton of its qualified
/// type (a shape string; equal shapes have identical variable layouts), and
/// the flattened preorder list of interface qualifier variables. Imports
/// additionally carry their deferred library pins.
struct QsumSymbol {
  uint32_t Name = 0;  ///< String-table index.
  uint32_t Shape = 0; ///< String-table index.
  std::vector<uint32_t> Vars;
  std::vector<QsumPin> Pins;
};

/// One registered qualifier of the TU's lattice.
struct QsumQualifier {
  uint32_t Name = 0;   ///< String-table index.
  uint8_t Polarity = 0; ///< 0 = positive, 1 = negative.
};

/// A deserialized (or to-be-serialized) translation-unit summary.
struct TuSummary {
  uint64_t ConfigHash = 0;
  uint64_t ContentHash = 0;
  /// Interned strings; index 0 is always the empty string.
  std::vector<std::string> Strings;
  uint32_t SourceName = 0; ///< String-table index of the source file name.
  std::vector<QsumQualifier> Qualifiers;
  uint32_t NumVars = 0;
  std::vector<QsumConstraint> Constraints;
  std::vector<QsumPos> Positions;
  std::vector<QsumSymbol> FnExports;
  std::vector<QsumSymbol> FnImports;
  std::vector<QsumSymbol> GlobExports;
  std::vector<QsumSymbol> GlobImports;

  std::string_view str(uint32_t Index) const {
    return Index < Strings.size() ? std::string_view(Strings[Index])
                                  : std::string_view();
  }
  std::string_view sourceName() const { return str(SourceName); }
};

/// The fixed-size head of a summary, readable without parsing the body --
/// enough to decide cache validity (`qualcc --emit-summary-dir` probes).
struct QsumHeader {
  uint32_t FormatVersion = 0;
  uint64_t ConfigHash = 0;
  uint64_t ContentHash = 0;
};

/// Serializes \p S to the versioned binary format.
std::string serializeSummary(const TuSummary &S);

/// Parses a summary, validating every structural invariant (magic, version,
/// bounds, string indices, variable ids, qualifier-set well-formedness).
/// Returns false and sets \p Error on any defect; never crashes on hostile
/// input.
bool deserializeSummary(const uint8_t *Data, size_t Size, TuSummary &Out,
                        std::string &Error);

/// Parses only the header. Returns false and sets \p Error on bad magic,
/// truncation, or a foreign format version.
bool readSummaryHeader(const uint8_t *Data, size_t Size, QsumHeader &Out,
                       std::string &Error);

/// The content-address of a summary: source bytes' hash combined with the
/// configuration hash. Two compiles agree on the key iff they analyzed the
/// same bytes under the same configuration and format version.
uint64_t summaryCacheKey(uint64_t ContentHash, uint64_t ConfigHash);

/// "<16 hex digits>.qsum" for \p Key.
std::string summaryFileName(uint64_t Key);

/// The configuration hash for the compile-step defaults: format version
/// plus every inference option `qualcc --emit-summary` bakes into results.
uint64_t summaryConfigHash();

/// Reads a whole file into \p Out. Returns false and sets \p Error on I/O
/// failure.
bool readFileBytes(const std::string &Path, std::string &Out,
                   std::string &Error);

/// Writes \p Bytes to \p Path atomically (unique temporary in the same
/// directory, then rename), so concurrent writers of the same key race
/// benignly. Returns false and sets \p Error on I/O failure.
bool writeFileAtomic(const std::string &Path, std::string_view Bytes,
                     std::string &Error);

} // namespace link
} // namespace quals

#endif // QUALS_LINK_QSUM_H

//===- link/Linker.h - Whole-program link over TU summaries ------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The link step: merges every TU's serialized constraint summary into one
/// ConstraintSystem, unifies interface variables across TUs by symbol name,
/// applies the deferred Section 4.2 library pins for symbols no TU defines,
/// and runs the global solve through the dense tier.
///
/// Determinism contract (docs/LINK.md): summaries are canonicalized --
/// sorted by (source name, content hash) and deduplicated by (content hash,
/// config hash) -- before any merging, so diagnostics, position
/// classifications, and solver statistics are byte-identical regardless of
/// the order summaries were passed in or loaded, and regardless of the
/// solver job count (the solver's own contract, docs/SOLVER.md).
///
/// Equivalence contract: linking the summaries of a program split across N
/// TUs yields the same classification for every exported interface as
/// whole-program inference over the concatenation. Imports unify with the
/// export when one exists (so the library pins withheld at compile time are
/// dropped, exactly as whole-program inference never adds them for defined
/// functions); imports of a symbol no TU defines unify with each other and
/// every TU's withheld pins apply (whole-program inference sees one
/// undefined declaration and pins it once -- the duplicate pins are
/// idempotent bounds).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LINK_LINKER_H
#define QUALS_LINK_LINKER_H

#include "constinf/ConstInfer.h"
#include "link/Qsum.h"

#include <string>
#include <vector>

namespace quals {
class ThreadPool;

namespace link {

struct LinkOptions {
  /// Solver tiering (SolverConfig); results are identical at any setting.
  bool DenseSolve = true;
  bool CollapseCycles = true;
  unsigned CollapsePressureFactor = 2;
  /// Shard concurrency for the global solve's dense passes; needs Pool.
  unsigned SolverJobs = 1;
  ThreadPool *Pool = nullptr;
  /// Constraint budget (0 = unlimited); hitting it is a load failure.
  unsigned MaxConstraints = 0;
};

/// One interesting position of the linked program, classified under the
/// global solution.
struct LinkedPos {
  std::string FnName;
  int ParamIndex = -1; ///< -1 for the result position.
  unsigned Depth = 0;
  bool DeclaredConst = false;
  constinf::PosClass Class = constinf::PosClass::Either;
};

struct LinkResult {
  /// Summaries were mutually compatible (format, config hash, qualifier
  /// set) and the merge stayed within the constraint budget.
  bool LoadOk = true;
  /// Symbol resolution succeeded: no duplicate definitions, no
  /// function/object kind clashes, no interface shape or arity mismatches.
  bool LinkOk = true;
  /// The global solve produced no qualifier violations. Only meaningful
  /// when LoadOk and LinkOk hold.
  bool SolveOk = true;
  /// Rendered diagnostics ("file:line:col: error: ..." where a location is
  /// known), in deterministic order.
  std::vector<std::string> Diagnostics;
  /// All interesting positions, sorted by (function, parameter with the
  /// result last, depth). Populated when the solve ran.
  std::vector<LinkedPos> Positions;
  /// Table 2 counts over Positions.
  constinf::ConstCounts Counts;
  /// Global solver statistics; SolveSeconds is zeroed so rendering is
  /// byte-identical across runs and job counts.
  SolverStats Stats{};
  /// Summaries remaining after deduplication.
  unsigned NumSummaries = 0;
  /// Summaries passed in.
  unsigned NumInputs = 0;
  /// Merged system size (before any solver-internal collapsing).
  unsigned NumVars = 0;
  unsigned NumConstraints = 0;
};

/// Sorts \p Summaries by (source name, content hash, config hash) and drops
/// duplicates by (content hash, config hash) -- the canonical order every
/// link runs in. Exposed for tests; linkSummaries() applies it itself.
void canonicalizeSummaries(std::vector<TuSummary> &Summaries);

/// Links \p Summaries (canonicalizing them in place first) and returns the
/// outcome. quallink maps !LoadOk / !LinkOk to exit 1 (the link analogue of
/// qualcc's front-end errors) and !SolveOk to exit 2 (qualifier errors in
/// the linked program).
LinkResult linkSummaries(std::vector<TuSummary> &Summaries,
                         const LinkOptions &Opts);

} // namespace link
} // namespace quals

#endif // QUALS_LINK_LINKER_H

//===- link/Qsum.cpp - Serialized per-TU constraint summaries --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "link/Qsum.h"

#include "support/Hash.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace quals;
using namespace quals::link;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void putU8(std::string &Out, uint8_t V) { Out.push_back(char(V)); }

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xff));
}

void putOrigin(std::string &Out, const QsumOrigin &O) {
  putU32(Out, O.File);
  putU32(Out, O.Line);
  putU32(Out, O.Col);
  putU32(Out, O.Reason);
}

void putSymbols(std::string &Out, const std::vector<QsumSymbol> &Syms) {
  putU32(Out, static_cast<uint32_t>(Syms.size()));
  for (const QsumSymbol &Sym : Syms) {
    putU32(Out, Sym.Name);
    putU32(Out, Sym.Shape);
    putU32(Out, static_cast<uint32_t>(Sym.Vars.size()));
    for (uint32_t V : Sym.Vars)
      putU32(Out, V);
    putU32(Out, static_cast<uint32_t>(Sym.Pins.size()));
    for (const QsumPin &P : Sym.Pins) {
      putU32(Out, P.Var);
      putU8(Out, P.IsEscape ? 1 : 0);
      putOrigin(Out, P.Origin);
    }
  }
}

} // namespace

std::string link::serializeSummary(const TuSummary &S) {
  std::string Out;
  Out.append(kSummaryMagic, sizeof(kSummaryMagic));
  putU32(Out, kSummaryFormatVersion);
  putU64(Out, S.ConfigHash);
  putU64(Out, S.ContentHash);

  putU32(Out, static_cast<uint32_t>(S.Strings.size()));
  for (const std::string &Str : S.Strings) {
    putU32(Out, static_cast<uint32_t>(Str.size()));
    Out.append(Str);
  }
  putU32(Out, S.SourceName);

  putU32(Out, static_cast<uint32_t>(S.Qualifiers.size()));
  for (const QsumQualifier &Q : S.Qualifiers) {
    putU32(Out, Q.Name);
    putU8(Out, Q.Polarity);
  }

  putU32(Out, S.NumVars);

  putU32(Out, static_cast<uint32_t>(S.Constraints.size()));
  for (const QsumConstraint &C : S.Constraints) {
    putU8(Out, C.LhsIsVar ? 1 : 0);
    putU64(Out, C.Lhs);
    putU8(Out, C.RhsIsVar ? 1 : 0);
    putU64(Out, C.Rhs);
    putU64(Out, C.Mask);
    putOrigin(Out, C.Origin);
  }

  putU32(Out, static_cast<uint32_t>(S.Positions.size()));
  for (const QsumPos &P : S.Positions) {
    putU32(Out, P.FnName);
    putU32(Out, static_cast<uint32_t>(P.ParamIndex));
    putU32(Out, P.Depth);
    putU32(Out, P.Var);
    putU8(Out, P.DeclaredConst ? 1 : 0);
  }

  putSymbols(Out, S.FnExports);
  putSymbols(Out, S.FnImports);
  putSymbols(Out, S.GlobExports);
  putSymbols(Out, S.GlobImports);
  return Out;
}

//===----------------------------------------------------------------------===//
// Deserialization (hardened)
//===----------------------------------------------------------------------===//

namespace {

/// Bounds-checked little-endian cursor. Every read either succeeds or
/// records the first error and makes all further reads fail fast.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : P(Data), N(Size) {}

  bool failed() const { return !Err.empty(); }
  const std::string &error() const { return Err; }
  size_t remaining() const { return N - Off; }

  bool fail(const char *What) {
    if (Err.empty())
      Err = std::string(What) + " at offset " + std::to_string(Off);
    return false;
  }

  bool bytes(void *Out, size_t Size, const char *What) {
    if (failed())
      return false;
    if (Size > remaining())
      return fail(What);
    std::memcpy(Out, P + Off, Size);
    Off += Size;
    return true;
  }

  bool u8(uint8_t &V, const char *What) { return bytes(&V, 1, What); }

  bool u32(uint32_t &V, const char *What) {
    uint8_t B[4];
    if (!bytes(B, 4, What))
      return false;
    V = uint32_t(B[0]) | uint32_t(B[1]) << 8 | uint32_t(B[2]) << 16 |
        uint32_t(B[3]) << 24;
    return true;
  }

  bool u64(uint64_t &V, const char *What) {
    uint8_t B[8];
    if (!bytes(B, 8, What))
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= uint64_t(B[I]) << (8 * I);
    return true;
  }

  /// Reads a count and verifies the remaining input can hold that many
  /// records of at least \p MinRecordBytes each -- hostile counts must not
  /// drive allocations past the input size.
  bool count(uint32_t &V, size_t MinRecordBytes, const char *What) {
    if (!u32(V, What))
      return false;
    if (uint64_t(V) * MinRecordBytes > remaining())
      return fail(What);
    return true;
  }

private:
  const uint8_t *P;
  size_t N;
  size_t Off = 0;
  std::string Err;
};

bool readOrigin(Reader &R, QsumOrigin &O, uint32_t NumStrings) {
  if (!R.u32(O.File, "truncated origin") ||
      !R.u32(O.Line, "truncated origin") ||
      !R.u32(O.Col, "truncated origin") ||
      !R.u32(O.Reason, "truncated origin"))
    return false;
  if (O.File >= NumStrings || O.Reason >= NumStrings)
    return R.fail("origin string index out of range");
  return true;
}

// name(4) + shape(4) + nvars(4) + npins(4)
constexpr size_t kMinSymbolBytes = 16;
// var(4) + escape(1) + origin(16)
constexpr size_t kMinPinBytes = 21;

bool readSymbols(Reader &R, std::vector<QsumSymbol> &Out, uint32_t NumStrings,
                 uint32_t NumVars) {
  uint32_t Count = 0;
  if (!R.count(Count, kMinSymbolBytes, "bad symbol count"))
    return false;
  Out.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    QsumSymbol Sym;
    if (!R.u32(Sym.Name, "truncated symbol") ||
        !R.u32(Sym.Shape, "truncated symbol"))
      return false;
    if (Sym.Name >= NumStrings || Sym.Shape >= NumStrings)
      return R.fail("symbol string index out of range");
    uint32_t NumSymVars = 0;
    if (!R.count(NumSymVars, 4, "bad symbol variable count"))
      return false;
    Sym.Vars.reserve(NumSymVars);
    for (uint32_t V = 0; V != NumSymVars; ++V) {
      uint32_t Var = 0;
      if (!R.u32(Var, "truncated symbol variables"))
        return false;
      if (Var >= NumVars)
        return R.fail("symbol variable out of range");
      Sym.Vars.push_back(Var);
    }
    uint32_t NumPins = 0;
    if (!R.count(NumPins, kMinPinBytes, "bad pin count"))
      return false;
    Sym.Pins.reserve(NumPins);
    for (uint32_t PI = 0; PI != NumPins; ++PI) {
      QsumPin Pin;
      uint8_t Escape = 0;
      if (!R.u32(Pin.Var, "truncated pin") ||
          !R.u8(Escape, "truncated pin"))
        return false;
      if (Pin.Var >= NumVars)
        return R.fail("pin variable out of range");
      if (Escape > 1)
        return R.fail("bad pin escape flag");
      Pin.IsEscape = Escape != 0;
      if (!readOrigin(R, Pin.Origin, NumStrings))
        return false;
      Sym.Pins.push_back(Pin);
    }
    Out.push_back(std::move(Sym));
  }
  return true;
}

bool readHeaderFields(Reader &R, QsumHeader &Out) {
  char Magic[4];
  if (!R.bytes(Magic, 4, "truncated header"))
    return false;
  if (std::memcmp(Magic, kSummaryMagic, 4) != 0)
    return R.fail("not a qualifier summary (bad magic)");
  if (!R.u32(Out.FormatVersion, "truncated header"))
    return false;
  if (Out.FormatVersion != kSummaryFormatVersion) {
    R.fail("stale summary");
    return false;
  }
  return R.u64(Out.ConfigHash, "truncated header") &&
         R.u64(Out.ContentHash, "truncated header");
}

} // namespace

bool link::readSummaryHeader(const uint8_t *Data, size_t Size, QsumHeader &Out,
                             std::string &Error) {
  Reader R(Data, Size);
  if (!readHeaderFields(R, Out)) {
    Error = R.error();
    if (Out.FormatVersion && Out.FormatVersion != kSummaryFormatVersion)
      Error = "stale summary: format version " +
              std::to_string(Out.FormatVersion) + ", expected " +
              std::to_string(kSummaryFormatVersion);
    return false;
  }
  return true;
}

bool link::deserializeSummary(const uint8_t *Data, size_t Size, TuSummary &Out,
                              std::string &Error) {
  Reader R(Data, Size);
  QsumHeader Header;
  if (!readHeaderFields(R, Header)) {
    Error = R.error();
    if (Header.FormatVersion &&
        Header.FormatVersion != kSummaryFormatVersion)
      Error = "stale summary: format version " +
              std::to_string(Header.FormatVersion) + ", expected " +
              std::to_string(kSummaryFormatVersion);
    return false;
  }
  Out = TuSummary();
  Out.ConfigHash = Header.ConfigHash;
  Out.ContentHash = Header.ContentHash;

  auto failed = [&] {
    Error = R.error();
    return false;
  };

  // String table. Each length is checked against the remaining input, so
  // the table can never hold more bytes than the file.
  uint32_t NumStrings = 0;
  if (!R.count(NumStrings, 4, "bad string count"))
    return failed();
  if (NumStrings == 0)
    return R.fail("empty string table"), failed();
  Out.Strings.reserve(NumStrings);
  for (uint32_t I = 0; I != NumStrings; ++I) {
    uint32_t Len = 0;
    if (!R.u32(Len, "truncated string table"))
      return failed();
    if (Len > R.remaining())
      return R.fail("string length out of range"), failed();
    std::string Str(Len, '\0');
    if (Len && !R.bytes(Str.data(), Len, "truncated string table"))
      return failed();
    Out.Strings.push_back(std::move(Str));
  }
  if (!Out.Strings[0].empty())
    return R.fail("string table slot 0 must be empty"), failed();

  if (!R.u32(Out.SourceName, "truncated source name"))
    return failed();
  if (Out.SourceName >= NumStrings)
    return R.fail("source name index out of range"), failed();

  // Qualifier descriptor. QualifierSet requires <= 64 qualifiers with
  // unique names, so a linker rebuilding the set from this descriptor must
  // never see duplicates.
  uint32_t NumQuals = 0;
  if (!R.count(NumQuals, 5, "bad qualifier count"))
    return failed();
  if (NumQuals == 0 || NumQuals > 64)
    return R.fail("qualifier count out of range"), failed();
  Out.Qualifiers.reserve(NumQuals);
  for (uint32_t I = 0; I != NumQuals; ++I) {
    QsumQualifier Q;
    if (!R.u32(Q.Name, "truncated qualifier") ||
        !R.u8(Q.Polarity, "truncated qualifier"))
      return failed();
    if (Q.Name >= NumStrings)
      return R.fail("qualifier name index out of range"), failed();
    if (Q.Name == 0)
      return R.fail("qualifier name must be non-empty"), failed();
    if (Q.Polarity > 1)
      return R.fail("bad qualifier polarity"), failed();
    for (const QsumQualifier &Prev : Out.Qualifiers)
      if (Prev.Name == Q.Name || Out.Strings[Prev.Name] == Out.Strings[Q.Name])
        return R.fail("duplicate qualifier name"), failed();
    Out.Qualifiers.push_back(Q);
  }
  const uint64_t UsedBits =
      NumQuals == 64 ? ~uint64_t(0) : (uint64_t(1) << NumQuals) - 1;

  if (!R.u32(Out.NumVars, "truncated variable count"))
    return failed();
  // Every variable a well-formed writer emits is referenced by at least one
  // constraint, position, or symbol, each costing >= 4 bytes -- so NumVars
  // beyond the input size marks a hostile header (and would otherwise let a
  // 20-byte file demand a 4-billion-variable system).
  if (Out.NumVars > Size)
    return R.fail("variable count exceeds input size"), failed();

  // lhs(1+8) + rhs(1+8) + mask(8) + origin(16)
  uint32_t NumConstraints = 0;
  if (!R.count(NumConstraints, 42, "bad constraint count"))
    return failed();
  Out.Constraints.reserve(NumConstraints);
  for (uint32_t I = 0; I != NumConstraints; ++I) {
    QsumConstraint C;
    uint8_t LhsIsVar = 0, RhsIsVar = 0;
    if (!R.u8(LhsIsVar, "truncated constraint") ||
        !R.u64(C.Lhs, "truncated constraint") ||
        !R.u8(RhsIsVar, "truncated constraint") ||
        !R.u64(C.Rhs, "truncated constraint") ||
        !R.u64(C.Mask, "truncated constraint"))
      return failed();
    if (LhsIsVar > 1 || RhsIsVar > 1)
      return R.fail("bad constraint operand kind"), failed();
    C.LhsIsVar = LhsIsVar != 0;
    C.RhsIsVar = RhsIsVar != 0;
    if (C.LhsIsVar ? C.Lhs >= Out.NumVars : (C.Lhs & ~UsedBits) != 0)
      return R.fail("bad constraint left operand"), failed();
    if (C.RhsIsVar ? C.Rhs >= Out.NumVars : (C.Rhs & ~UsedBits) != 0)
      return R.fail("bad constraint right operand"), failed();
    if ((C.Mask & ~UsedBits) != 0)
      return R.fail("constraint mask out of range"), failed();
    if (!readOrigin(R, C.Origin, NumStrings))
      return failed();
    Out.Constraints.push_back(C);
  }

  // fn(4) + param(4) + depth(4) + var(4) + declared(1)
  uint32_t NumPositions = 0;
  if (!R.count(NumPositions, 17, "bad position count"))
    return failed();
  Out.Positions.reserve(NumPositions);
  for (uint32_t I = 0; I != NumPositions; ++I) {
    QsumPos P;
    uint32_t Param = 0;
    uint8_t Declared = 0;
    if (!R.u32(P.FnName, "truncated position") ||
        !R.u32(Param, "truncated position") ||
        !R.u32(P.Depth, "truncated position") ||
        !R.u32(P.Var, "truncated position") ||
        !R.u8(Declared, "truncated position"))
      return failed();
    if (P.FnName >= NumStrings)
      return R.fail("position function name out of range"), failed();
    P.ParamIndex = static_cast<int32_t>(Param);
    if (P.ParamIndex < -1)
      return R.fail("bad position parameter index"), failed();
    if (P.Var >= Out.NumVars)
      return R.fail("position variable out of range"), failed();
    if (Declared > 1)
      return R.fail("bad position declared flag"), failed();
    P.DeclaredConst = Declared != 0;
    Out.Positions.push_back(P);
  }

  if (!readSymbols(R, Out.FnExports, NumStrings, Out.NumVars) ||
      !readSymbols(R, Out.FnImports, NumStrings, Out.NumVars) ||
      !readSymbols(R, Out.GlobExports, NumStrings, Out.NumVars) ||
      !readSymbols(R, Out.GlobImports, NumStrings, Out.NumVars))
    return failed();

  if (R.remaining() != 0)
    return R.fail("trailing bytes after summary"), failed();
  return true;
}

//===----------------------------------------------------------------------===//
// Keys and files
//===----------------------------------------------------------------------===//

uint64_t link::summaryCacheKey(uint64_t ContentHash, uint64_t ConfigHash) {
  return hashCombine(ContentHash, ConfigHash);
}

std::string link::summaryFileName(uint64_t Key) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx.qsum",
                static_cast<unsigned long long>(Key));
  return Buf;
}

uint64_t link::summaryConfigHash() {
  // Format version plus every inference option the compile step bakes into
  // a summary's results. `qualcc --emit-summary` runs the paper-default
  // configuration (casts sever, conservative libraries, shared struct
  // fields) in summary mode; solver tiering and job counts do not affect
  // results (docs/SOLVER.md) and are deliberately absent.
  HashBuilder B;
  B.add(uint64_t(kSummaryFormatVersion));
  B.add(std::string_view("const-summary"));
  B.add(true)  // CastsSeverFlow
      .add(true)  // ConservativeLibraries
      .add(true)  // StructFieldsShared
      .add(true); // SummaryMode (monomorphic boundaries)
  return B.digest();
}

bool link::readFileBytes(const std::string &Path, std::string &Out,
                         std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  Out.clear();
  char Buf[65536];
  size_t Read;
  while ((Read = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Read);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Error = "read error on '" + Path + "'";
  return Ok;
}

bool link::writeFileAtomic(const std::string &Path, std::string_view Bytes,
                           std::string &Error) {
  // Unique temporary beside the target so the rename stays within one
  // filesystem; concurrent writers of the same key each rename a complete
  // file, so readers never observe a torn summary.
  static std::atomic<unsigned> Counter{0};
  std::string Tmp = Path + ".tmp." + std::to_string(getpid()) + "." +
                    std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    Error = "cannot create '" + Tmp + "'";
    return false;
  }
  bool Ok = Bytes.empty() ||
            std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    Error = "write error on '" + Tmp + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

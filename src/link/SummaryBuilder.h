//===- link/SummaryBuilder.h - Extract a TU's summary ------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a link::TuSummary from a completed summary-mode const inference
/// (ConstInference::Options::SummaryMode): the TU's interface symbols with
/// their qualified-type skeletons, the interesting positions, the withheld
/// library pins, and the constraint subgraph that can still interact with
/// other TUs.
///
/// Pruning: the constraint graph is partitioned into connected components
/// (union-find over variable-variable edges); a component is kept iff it
/// contains a *seed* -- an interface variable, an interesting position's
/// variable, or a deferred pin's variable. Everything else was solved
/// locally with no violations (the compile step refuses to emit a summary
/// otherwise) and can never gain constraints at link time, because the link
/// step only ever adds constraints on interface variables and their
/// components. Kept variables are renumbered densely in ascending original
/// id, so identical inputs serialize identically.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LINK_SUMMARYBUILDER_H
#define QUALS_LINK_SUMMARYBUILDER_H

#include "link/Qsum.h"

#include <string_view>

namespace quals {
class SourceManager;
namespace constinf {
class ConstInference;
}

namespace link {

/// Extracts the summary of \p Inf, whose run() must have completed without
/// violations under Options::SummaryMode. \p SourceName is recorded for
/// diagnostics and canonical link ordering; \p ContentHash / \p ConfigHash
/// populate the header (see summaryCacheKey, summaryConfigHash).
TuSummary buildSummary(constinf::ConstInference &Inf, const SourceManager &SM,
                       std::string_view SourceName, uint64_t ContentHash,
                       uint64_t ConfigHash);

} // namespace link
} // namespace quals

#endif // QUALS_LINK_SUMMARYBUILDER_H

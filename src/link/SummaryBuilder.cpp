//===- link/SummaryBuilder.cpp - Extract a TU's summary --------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "link/SummaryBuilder.h"

#include "constinf/ConstInfer.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <unordered_map>

using namespace quals;
using namespace quals::link;
using namespace quals::cfront;

namespace {

/// Interns strings into TuSummary::Strings; index 0 is the empty string.
class StringTable {
public:
  explicit StringTable(std::vector<std::string> &Out) : Out(Out) {
    Out.clear();
    Out.emplace_back();
    Index.emplace("", 0);
  }

  uint32_t intern(std::string_view S) {
    auto It = Index.find(std::string(S));
    if (It != Index.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Out.size());
    Out.emplace_back(S);
    Index.emplace(Out.back(), Id);
    return Id;
  }

private:
  std::vector<std::string> &Out;
  std::unordered_map<std::string, uint32_t> Index;
};

/// Flattens a qualified type: appends a shape string describing the
/// constructor tree (with constant qualifiers baked into the shape) and
/// collects the variable qualifiers in preorder. Two types with equal shape
/// strings have positionally-identical variable lists, which is what symbol
/// unification relies on.
void flattenType(QualType T, std::string &Shape,
                 std::vector<QualVarId> &Vars) {
  if (T.isNull()) {
    Shape += '_';
    return;
  }
  QualExpr Q = T.getQual();
  if (Q.isVar()) {
    Vars.push_back(Q.getVar());
  } else {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "[%llx]",
                  static_cast<unsigned long long>(Q.getConst().bits()));
    Shape += Buf;
  }
  Shape += T.getCtor()->getName();
  if (unsigned N = T.getNumArgs()) {
    Shape += '(';
    for (unsigned I = 0; I != N; ++I) {
      if (I)
        Shape += ',';
      flattenType(T.getArg(I), Shape, Vars);
    }
    Shape += ')';
  }
}

QsumOrigin presumed(const SourceManager &SM, SourceLoc Loc, StringTable &ST,
                    uint32_t Reason) {
  QsumOrigin O;
  PresumedLoc P = SM.getPresumedLoc(Loc);
  if (P.isValid()) {
    O.File = ST.intern(P.Filename);
    O.Line = P.Line;
    O.Col = P.Column;
  }
  O.Reason = Reason;
  return O;
}

} // namespace

TuSummary link::buildSummary(constinf::ConstInference &Inf,
                             const SourceManager &SM,
                             std::string_view SourceName, uint64_t ContentHash,
                             uint64_t ConfigHash) {
  TuSummary S;
  S.ConfigHash = ConfigHash;
  S.ContentHash = ContentHash;
  StringTable ST(S.Strings);
  S.SourceName = ST.intern(SourceName);

  ConstraintSystem &Sys = Inf.system();
  const QualifierSet &QS = Sys.getQualifierSet();
  for (QualifierId I = 0, E = QS.size(); I != E; ++I) {
    const Qualifier &Q = QS.get(I);
    S.Qualifiers.push_back(
        {ST.intern(Q.Name),
         static_cast<uint8_t>(Q.Pol == Polarity::Negative ? 1 : 0)});
  }

  constinf::RefTranslator &TR = Inf.translator();

  // Interface symbols. run() memoized every function interface and global
  // cell type, so these lookups create no new variables.
  auto makeSymbol = [&](std::string_view Name, QualType T) {
    QsumSymbol Sym;
    Sym.Name = ST.intern(Name);
    std::string Shape;
    std::vector<QualVarId> Vars;
    flattenType(T, Shape, Vars);
    Sym.Shape = ST.intern(Shape);
    Sym.Vars.assign(Vars.begin(), Vars.end());
    return Sym;
  };

  std::unordered_map<const FunctionDecl *, size_t> ImportIndex;
  for (FunctionDecl *F : Inf.unit().Functions) {
    QualType T = TR.functionInterfaceType(F);
    if (!F->isDefined()) {
      ImportIndex[F] = S.FnImports.size();
      S.FnImports.push_back(makeSymbol(F->getName(), T));
    } else if (F->getStorageClass() != StorageClass::Static) {
      S.FnExports.push_back(makeSymbol(F->getName(), T));
    }
  }
  for (VarDecl *G : Inf.unit().Globals) {
    QualType T = TR.varLValueType(G);
    StorageClass SC = G->getStorageClass();
    if (SC == StorageClass::Static)
      continue; // TU-local: never linked.
    if (SC == StorageClass::Extern && !G->getInit())
      S.GlobImports.push_back(makeSymbol(G->getName(), T));
    else
      S.GlobExports.push_back(makeSymbol(G->getName(), T));
  }

  // Withheld library pins, attached to the imported symbol they belong to.
  // Every DeferredPin's function is undefined, hence present in FnImports.
  for (const constinf::DeferredPin &DP : TR.deferredPins()) {
    auto It = ImportIndex.find(DP.Fn);
    if (It == ImportIndex.end())
      continue;
    QsumPin Pin;
    Pin.Var = DP.Var;
    Pin.IsEscape = DP.IsEscape;
    uint32_t Reason =
        ST.intern(DP.IsEscape
                      ? std::string("argument to unknown/variadic function")
                      : "library function '" + std::string(DP.Fn->getName()) +
                            "' parameter not declared const");
    Pin.Origin = presumed(SM, DP.Loc, ST, Reason);
    S.FnImports[It->second].Pins.push_back(Pin);
  }

  // Interesting positions, keyed by function name (positions only exist
  // for defined functions).
  for (const constinf::InterestingPos &Pos : Inf.positions()) {
    QsumPos P;
    P.FnName = ST.intern(Pos.Fn->getName());
    P.ParamIndex = Pos.ParamIndex;
    P.Depth = Pos.Depth;
    P.Var = Pos.Var;
    P.DeclaredConst = Pos.DeclaredConst;
    S.Positions.push_back(P);
  }

  // Prune to seeded components (see the header comment), then renumber the
  // surviving variables densely in ascending original id.
  unsigned NumVars = Sys.getNumVars();
  unsigned NumConstraints = Sys.getNumConstraints();
  UnionFind UF;
  for (unsigned V = 0; V != NumVars; ++V)
    UF.makeSet();
  for (unsigned I = 0; I != NumConstraints; ++I) {
    const Constraint &C = Sys.getConstraint(I);
    if (C.Lhs.isVar() && C.Rhs.isVar())
      UF.unite(C.Lhs.getVar(), C.Rhs.getVar());
  }
  std::vector<bool> Seeded(NumVars, false);
  auto seed = [&](QualVarId V) { Seeded[UF.find(V)] = true; };
  for (const std::vector<QsumSymbol> *Section :
       {&S.FnExports, &S.FnImports, &S.GlobExports, &S.GlobImports})
    for (const QsumSymbol &Sym : *Section) {
      for (uint32_t V : Sym.Vars)
        seed(V);
      for (const QsumPin &P : Sym.Pins)
        seed(P.Var);
    }
  for (const QsumPos &P : S.Positions)
    seed(P.Var);

  auto keepVar = [&](QualVarId V) { return Seeded[UF.find(V)]; };
  std::vector<bool> Used(NumVars, false);
  std::vector<const Constraint *> Kept;
  Kept.reserve(NumConstraints);
  for (unsigned I = 0; I != NumConstraints; ++I) {
    const Constraint &C = Sys.getConstraint(I);
    bool Keep = (!C.Lhs.isVar() && !C.Rhs.isVar()) ||
                (C.Lhs.isVar() && keepVar(C.Lhs.getVar())) ||
                (C.Rhs.isVar() && keepVar(C.Rhs.getVar()));
    if (!Keep)
      continue;
    Kept.push_back(&C);
    if (C.Lhs.isVar())
      Used[C.Lhs.getVar()] = true;
    if (C.Rhs.isVar())
      Used[C.Rhs.getVar()] = true;
  }
  // Seeds survive even when nothing constrains them (an unread parameter's
  // position variable must still exist at link time).
  for (const std::vector<QsumSymbol> *Section :
       {&S.FnExports, &S.FnImports, &S.GlobExports, &S.GlobImports})
    for (const QsumSymbol &Sym : *Section) {
      for (uint32_t V : Sym.Vars)
        Used[V] = true;
      for (const QsumPin &P : Sym.Pins)
        Used[P.Var] = true;
    }
  for (const QsumPos &P : S.Positions)
    Used[P.Var] = true;

  std::vector<uint32_t> Remap(NumVars, ~0u);
  uint32_t Next = 0;
  for (unsigned V = 0; V != NumVars; ++V)
    if (Used[V])
      Remap[V] = Next++;
  S.NumVars = Next;

  S.Constraints.reserve(Kept.size());
  for (const Constraint *C : Kept) {
    QsumConstraint Q;
    Q.LhsIsVar = C->Lhs.isVar();
    Q.Lhs = Q.LhsIsVar ? Remap[C->Lhs.getVar()] : C->Lhs.getConst().bits();
    Q.RhsIsVar = C->Rhs.isVar();
    Q.Rhs = Q.RhsIsVar ? Remap[C->Rhs.getVar()] : C->Rhs.getConst().bits();
    Q.Mask = C->Mask;
    Q.Origin = presumed(SM, C->Origin.Loc, ST, ST.intern(C->Origin.Reason));
    S.Constraints.push_back(Q);
  }
  for (std::vector<QsumSymbol> *Section :
       {&S.FnExports, &S.FnImports, &S.GlobExports, &S.GlobImports})
    for (QsumSymbol &Sym : *Section) {
      for (uint32_t &V : Sym.Vars)
        V = Remap[V];
      for (QsumPin &P : Sym.Pins)
        P.Var = Remap[P.Var];
    }
  for (QsumPos &P : S.Positions)
    P.Var = Remap[P.Var];

  return S;
}

//===- link/Linker.cpp - Whole-program link over TU summaries --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "link/Linker.h"

#include "support/Metrics.h"

#include <algorithm>
#include <map>

using namespace quals;
using namespace quals::link;

void link::canonicalizeSummaries(std::vector<TuSummary> &Summaries) {
  std::stable_sort(Summaries.begin(), Summaries.end(),
                   [](const TuSummary &A, const TuSummary &B) {
                     if (A.sourceName() != B.sourceName())
                       return A.sourceName() < B.sourceName();
                     if (A.ContentHash != B.ContentHash)
                       return A.ContentHash < B.ContentHash;
                     return A.ConfigHash < B.ConfigHash;
                   });
  Summaries.erase(std::unique(Summaries.begin(), Summaries.end(),
                              [](const TuSummary &A, const TuSummary &B) {
                                return A.ContentHash == B.ContentHash &&
                                       A.ConfigHash == B.ConfigHash;
                              }),
                  Summaries.end());
}

namespace {

/// Renders "file:line:col: error: <msg>" (no location prefix when the
/// origin carries none).
std::string renderError(const TuSummary &S, const QsumOrigin &O,
                        const std::string &Msg) {
  std::string Out;
  if (O.Line != 0) {
    Out += S.str(O.File);
    Out += ':';
    Out += std::to_string(O.Line);
    Out += ':';
    Out += std::to_string(O.Col);
    Out += ": ";
  }
  Out += "error: ";
  Out += Msg;
  return Out;
}

/// One symbol occurrence during resolution.
struct SymEntry {
  bool IsFn = false;
  bool IsExport = false;
  uint32_t Sum = 0; ///< Canonical summary index.
  const QsumSymbol *Sym = nullptr;
};

} // namespace

LinkResult link::linkSummaries(std::vector<TuSummary> &Summaries,
                               const LinkOptions &Opts) {
  LinkResult R;
  R.NumInputs = static_cast<unsigned>(Summaries.size());
  canonicalizeSummaries(Summaries);
  R.NumSummaries = static_cast<unsigned>(Summaries.size());

  if (Summaries.empty()) {
    R.LoadOk = false;
    R.Diagnostics.push_back("error: no summaries to link");
    return R;
  }

  // Compatibility: one configuration, one qualifier lattice. The config
  // hash already separates every result-affecting option, so a mismatch
  // means the summaries were compiled for different analyses.
  const TuSummary &First = Summaries.front();
  for (const TuSummary &S : Summaries) {
    if (S.ConfigHash != First.ConfigHash) {
      R.LoadOk = false;
      R.Diagnostics.push_back(
          "error: summary '" + std::string(S.sourceName()) +
          "': configuration hash mismatch with '" +
          std::string(First.sourceName()) + "' (stale or foreign summary)");
      continue;
    }
    bool SameQuals = S.Qualifiers.size() == First.Qualifiers.size();
    for (size_t I = 0; SameQuals && I != S.Qualifiers.size(); ++I)
      SameQuals = S.str(S.Qualifiers[I].Name) ==
                      First.str(First.Qualifiers[I].Name) &&
                  S.Qualifiers[I].Polarity == First.Qualifiers[I].Polarity;
    if (!SameQuals) {
      R.LoadOk = false;
      R.Diagnostics.push_back("error: summary '" + std::string(S.sourceName()) +
                              "': qualifier set differs from '" +
                              std::string(First.sourceName()) + "'");
    }
  }
  if (!R.LoadOk)
    return R;

  QualifierSet QS;
  for (const QsumQualifier &Q : First.Qualifiers)
    QS.add(std::string(First.str(Q.Name)),
           Q.Polarity ? Polarity::Negative : Polarity::Positive);
  QualifierId ConstQual = 0;
  if (!QS.lookup("const", ConstQual)) {
    R.LoadOk = false;
    R.Diagnostics.push_back(
        "error: summaries do not declare the qualifier 'const'");
    return R;
  }

  SolverConfig Config;
  Config.DenseSolve = Opts.DenseSolve;
  Config.CollapseCycles = Opts.CollapseCycles;
  Config.CollapsePressureFactor = Opts.CollapsePressureFactor;
  Config.Jobs = Opts.SolverJobs;
  Config.Pool = Opts.Pool;
  Config.MaxConstraints = Opts.MaxConstraints;
  ConstraintSystem Sys(QS, Config);

  // Merge: each summary's variables get a contiguous block; a side table
  // maps every merged constraint id back to (summary, serialized origin)
  // for diagnostics, since ConstraintOrigin's SourceLoc cannot describe
  // locations in files this process never parsed.
  struct MergedOrigin {
    uint32_t Sum = 0;
    QsumOrigin Origin;
  };
  std::vector<MergedOrigin> Origins;
  std::vector<uint32_t> VarBase(Summaries.size(), 0);
  {
    PhaseScope Phase("link-merge", "link");
    for (size_t K = 0; K != Summaries.size(); ++K) {
      const TuSummary &S = Summaries[K];
      VarBase[K] = Sys.getNumVars();
      for (uint32_t V = 0; V != S.NumVars; ++V)
        Sys.freshVar(std::string());
      for (const QsumConstraint &C : S.Constraints) {
        QualExpr Lhs =
            C.LhsIsVar
                ? QualExpr::makeVar(VarBase[K] + static_cast<uint32_t>(C.Lhs))
                : QualExpr::makeConst(LatticeValue(C.Lhs));
        QualExpr Rhs =
            C.RhsIsVar
                ? QualExpr::makeVar(VarBase[K] + static_cast<uint32_t>(C.Rhs))
                : QualExpr::makeConst(LatticeValue(C.Rhs));
        ConstraintOrigin O(SourceLoc(), std::string(S.str(C.Origin.Reason)));
        if (C.Mask == QS.usedBits())
          Sys.addLeq(Lhs, Rhs, std::move(O));
        else
          Sys.addLeqMasked(Lhs, Rhs, C.Mask, std::move(O));
        Origins.resize(Sys.getNumConstraints(),
                       {static_cast<uint32_t>(K), C.Origin});
      }
    }
  }

  // Resolution: group every occurrence by name (std::map iterates names in
  // sorted order; within a name, occurrences follow canonical summary
  // order), pick the defining occurrence as representative, and unify.
  {
    PhaseScope Phase("link-unify", "link");
    std::map<std::string_view, std::vector<SymEntry>> ByName;
    for (size_t K = 0; K != Summaries.size(); ++K) {
      const TuSummary &S = Summaries[K];
      uint32_t Ki = static_cast<uint32_t>(K);
      for (const QsumSymbol &Sym : S.FnExports)
        ByName[S.str(Sym.Name)].push_back({true, true, Ki, &Sym});
      for (const QsumSymbol &Sym : S.FnImports)
        ByName[S.str(Sym.Name)].push_back({true, false, Ki, &Sym});
      for (const QsumSymbol &Sym : S.GlobExports)
        ByName[S.str(Sym.Name)].push_back({false, true, Ki, &Sym});
      for (const QsumSymbol &Sym : S.GlobImports)
        ByName[S.str(Sym.Name)].push_back({false, false, Ki, &Sym});
    }

    for (const auto &[Name, Entries] : ByName) {
      const SymEntry *Rep = nullptr;
      for (const SymEntry &E : Entries)
        if (E.IsExport) {
          Rep = &E;
          break;
        }
      bool Resolved = Rep != nullptr;
      if (!Rep)
        Rep = &Entries.front();
      std::string_view RepSrc = Summaries[Rep->Sum].sourceName();
      std::string_view RepShape = Summaries[Rep->Sum].str(Rep->Sym->Shape);

      for (const SymEntry &E : Entries) {
        if (&E == Rep)
          continue;
        const TuSummary &S = Summaries[E.Sum];
        if (E.IsExport) {
          R.LinkOk = false;
          R.Diagnostics.push_back("error: duplicate definition of '" +
                                  std::string(Name) + "' (defined in '" +
                                  std::string(RepSrc) + "' and '" +
                                  std::string(S.sourceName()) + "')");
          continue;
        }
        if (E.IsFn != Rep->IsFn) {
          R.LinkOk = false;
          R.Diagnostics.push_back(
              "error: symbol '" + std::string(Name) + "' is a " +
              (Rep->IsFn ? "function" : "object") + " in '" +
              std::string(RepSrc) + "' but a " +
              (E.IsFn ? "function" : "object") + " in '" +
              std::string(S.sourceName()) + "'");
          continue;
        }
        std::string_view Shape = S.str(E.Sym->Shape);
        if (Shape != RepShape ||
            E.Sym->Vars.size() != Rep->Sym->Vars.size()) {
          R.LinkOk = false;
          R.Diagnostics.push_back(
              "error: interface mismatch for '" + std::string(Name) + "': '" +
              std::string(RepSrc) + "' declares " + std::string(RepShape) +
              ", '" + std::string(S.sourceName()) + "' declares " +
              std::string(Shape));
          continue;
        }
        // Equal shapes carry positionally-identical variable lists: equate
        // them, welding this occurrence's interface to the representative.
        for (size_t I = 0; I != E.Sym->Vars.size(); ++I) {
          Sys.addEq(QualExpr::makeVar(VarBase[E.Sum] + E.Sym->Vars[I]),
                    QualExpr::makeVar(VarBase[Rep->Sum] + Rep->Sym->Vars[I]),
                    ConstraintOrigin(SourceLoc(), "cross-TU linkage of '" +
                                                      std::string(Name) +
                                                      "'"));
          Origins.resize(Sys.getNumConstraints(),
                         {E.Sum, QsumOrigin()});
        }
      }

      // Section 4.2's library conservatism, deferred from compile time:
      // applies only when no TU defines the symbol. Every occurrence's pins
      // apply; after unification they bound the same variables, so the
      // duplicates are idempotent.
      if (!Resolved)
        for (const SymEntry &E : Entries)
          for (const QsumPin &Pin : E.Sym->Pins) {
            const TuSummary &S = Summaries[E.Sum];
            Sys.addLeq(QualExpr::makeVar(VarBase[E.Sum] + Pin.Var),
                       QualExpr::makeConst(QS.notQual(ConstQual)),
                       ConstraintOrigin(SourceLoc(),
                                        std::string(S.str(Pin.Origin.Reason))));
            Origins.resize(Sys.getNumConstraints(), {E.Sum, Pin.Origin});
          }
    }
  }

  R.NumVars = Sys.getNumVars();
  R.NumConstraints = Sys.getNumConstraints();
  if (Sys.hitConstraintLimit()) {
    R.LoadOk = false;
    R.Diagnostics.push_back(
        "error: resource limit: constraint budget exhausted (" +
        std::to_string(Opts.MaxConstraints) +
        " constraints); raise with --limit-constraints=N, 0 for unlimited");
    return R;
  }
  if (!R.LinkOk)
    return R;

  // The global solve.
  bool Ok = Sys.solve();
  std::vector<Violation> Violations = Sys.collectViolations();
  if (!Ok || !Violations.empty()) {
    R.SolveOk = false;
    for (const Violation &V : Violations) {
      const MergedOrigin &MO = Origins[V.Cause];
      R.Diagnostics.push_back(
          renderError(Summaries[MO.Sum], MO.Origin, Sys.explain(V)));
    }
  }

  // Classification of every interesting position under the global
  // solution, in a canonical order (the result position sorts last within
  // its function, mirroring qualcc's per-function layout).
  for (size_t K = 0; K != Summaries.size(); ++K) {
    const TuSummary &S = Summaries[K];
    for (const QsumPos &P : S.Positions) {
      QualVarId Var = VarBase[K] + P.Var;
      constinf::PosClass Class = constinf::PosClass::Either;
      if (!Sys.mayHave(Var, ConstQual))
        Class = constinf::PosClass::MustNonConst;
      else if (Sys.mustHave(Var, ConstQual))
        Class = constinf::PosClass::MustConst;
      R.Positions.push_back({std::string(S.str(P.FnName)), P.ParamIndex,
                             P.Depth, P.DeclaredConst, Class});
    }
  }
  std::stable_sort(R.Positions.begin(), R.Positions.end(),
                   [](const LinkedPos &A, const LinkedPos &B) {
                     if (A.FnName != B.FnName)
                       return A.FnName < B.FnName;
                     unsigned PA = A.ParamIndex < 0 ? ~0u
                                                    : unsigned(A.ParamIndex);
                     unsigned PB = B.ParamIndex < 0 ? ~0u
                                                    : unsigned(B.ParamIndex);
                     if (PA != PB)
                       return PA < PB;
                     return A.Depth < B.Depth;
                   });

  for (const LinkedPos &P : R.Positions) {
    ++R.Counts.Total;
    if (P.DeclaredConst)
      ++R.Counts.Declared;
    if (P.Class == constinf::PosClass::MustNonConst)
      ++R.Counts.MustNonConst;
    else
      ++R.Counts.PossibleConst;
  }

  R.Stats = Sys.getStats();
  R.Stats.SolveSeconds = 0; // Wall-clock: unfit for byte-identical output.
  return R;
}

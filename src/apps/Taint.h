//===- apps/Taint.h - Taint/trust tracking ----------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Taint tracking as a qualifier system, in the spirit of the trust
/// annotations of [OP97] and the secure-information-flow system of [VS97]
/// cited in Section 5. Untrusted inputs are annotated {tainted}; sensitive
/// sinks assert |{~tainted}. The qualifier is downward closed (a tainted
/// container has tainted contents), and inference propagates taint through
/// every value flow, reporting each source-to-sink path.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_APPS_TAINT_H
#define QUALS_APPS_TAINT_H

#include "lambda/Parser.h"
#include "lambda/QualInfer.h"

#include <memory>
#include <string>
#include <vector>

namespace quals {
namespace apps {

/// One-program taint analysis over the demonstration language.
class TaintAnalysis {
public:
  TaintAnalysis();
  ~TaintAnalysis();

  /// Parses and analyzes \p Source; returns true iff no tainted value can
  /// reach an untainted-asserting sink.
  bool analyze(const std::string &Source);

  /// Human-readable flow explanations for every violated sink.
  const std::vector<std::string> &leaks() const { return Leaks; }

  /// Parse/type errors.
  std::string errors() const;

  /// True if the expression's value may be tainted.
  bool mayBeTainted(const lambda::Expr *E) const;

  const lambda::Expr *program() const { return Program; }

private:
  QualifierSet QS;
  QualifierId Tainted;
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  lambda::AstContext Ast;
  StringInterner Idents;
  lambda::STyContext STys;
  std::unique_ptr<ConstraintSystem> Sys;
  QualTypeFactory Factory;
  lambda::LambdaTypeCtors Ctors;
  std::unique_ptr<lambda::QualInferencer> Inferencer;
  const lambda::Expr *Program = nullptr;
  std::vector<std::string> Leaks;
};

} // namespace apps
} // namespace quals

#endif // QUALS_APPS_TAINT_H

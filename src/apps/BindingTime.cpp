//===- apps/BindingTime.cpp - Binding-time analysis -------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "apps/BindingTime.h"

using namespace quals;
using namespace quals::apps;
using namespace quals::lambda;

BindingTimeAnalysis::BindingTimeAnalysis() {
  Dynamic = QS.add("dynamic", Polarity::Positive);
  Diags = std::make_unique<DiagnosticEngine>(SM);
  Sys = std::make_unique<ConstraintSystem>(QS);
}

BindingTimeAnalysis::~BindingTimeAnalysis() = default;

bool BindingTimeAnalysis::analyze(const std::string &Source) {
  Program = parseString(SM, "bta.q", Source, QS, Ast, Idents, *Diags);
  if (!Program)
    return false;

  StdTypeChecker Checker(STys, *Diags);
  if (!Checker.check(Program))
    return false;

  QualInferOptions Options;
  Options.Polymorphic = true;
  // The binding-time well-formedness rule: dynamic is upward closed, so a
  // static value can never contain a dynamic component.
  Options.UpwardClosedQuals = {Dynamic};
  Inferencer = std::make_unique<QualInferencer>(QS, *Sys, Factory, Ctors,
                                                *Diags, Options);
  QualType T = Inferencer->infer(Program, Checker);
  if (T.isNull())
    return false;

  Sys->solve();
  Violations = Sys->collectViolations();
  return Violations.empty();
}

BindingTime BindingTimeAnalysis::timeOf(const lambda::Expr *E) const {
  assert(Inferencer && "analyze() first");
  QualType T = Inferencer->getNodeType(E);
  if (T.isNull())
    return BindingTime::Either;
  QualExpr Q = T.getQual();
  if (Q.isConst())
    return QS.contains(Q.getConst(), Dynamic) ? BindingTime::Dynamic
                                              : BindingTime::Static;
  if (Sys->mustHave(Q.getVar(), Dynamic))
    return BindingTime::Dynamic;
  if (!Sys->mayHave(Q.getVar(), Dynamic))
    return BindingTime::Static;
  return BindingTime::Either;
}

std::string BindingTimeAnalysis::errors() const {
  std::string Out = Diags->renderAll();
  for (const Violation &V : Violations)
    Out += Sys->explain(V);
  return Out;
}

//===- apps/FlowNonNull.h - Flow-sensitive nonnull (Section 6) --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An implementation of the paper's Section 6 future-work proposal:
///
///   "One solution we are investigating is to assign each location a
///    distinct type at every program point and to add subtyping constraints
///    between the different types. ... if s does not perform a strong
///    update of x we add the constraint tau_1 <= tau_2; if s does strongly
///    update x then we do not add this constraint. This technique allows a
///    measure of flow sensitivity."
///
/// Realized here for the nonnull qualifier over C function bodies: every
/// pointer variable gets a fresh qualifier variable ("version") after each
/// assignment; a direct assignment is a *strong update* (no constraint from
/// the old version), everything else carries tau_old <= tau_new edges; the
/// two arms of an if merge by flowing both versions into a fresh join
/// version, and loop bodies feed back into their heads. Dereferences check
/// the version in scope at that point -- so, unlike the flow-insensitive
/// NonNullChecker, `p = 0; p = &x; *p;` is accepted while `p = 0; *p;`
/// still warns.
///
/// Everything stays inside the atomic constraint fragment; the qualifier
/// machinery is unchanged -- exactly the paper's point.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_APPS_FLOWNONNULL_H
#define QUALS_APPS_FLOWNONNULL_H

#include "cfront/CAst.h"
#include "qual/ConstraintSystem.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace quals {
namespace apps {

/// Flow-sensitive may-be-null checking per Section 6's sketch.
class FlowNonNullChecker {
public:
  struct Warning {
    SourceLoc Loc;
    std::string Message;
  };

  FlowNonNullChecker();

  /// Analyzes every defined function of \p TU. Returns true iff no
  /// dereference of a may-be-null version was found.
  bool analyze(const cfront::TranslationUnit &TU);

  const std::vector<Warning> &warnings() const { return Warnings; }

private:
  QualifierSet QS;
  QualifierId NonNull;
  ConstraintSystem Sys;

  /// The in-scope version of each tracked pointer variable ("the type of x
  /// at the current program point").
  using State = std::unordered_map<const cfront::VarDecl *, QualVarId>;
  State Current;

  struct DerefSite {
    const cfront::VarDecl *Var;
    QualVarId Version;
    SourceLoc Loc;
  };
  std::vector<DerefSite> Derefs;
  std::vector<Warning> Warnings;

  QualVarId freshVersion(const cfront::VarDecl *VD, SourceLoc Loc);
  void markMaybeNull(QualVarId Version, SourceLoc Loc,
                     const std::string &Why);
  /// Weak edge tau_old <= tau_new (no strong update).
  void weakEdge(QualVarId From, QualVarId To, SourceLoc Loc);
  /// Merges two branch states into the fall-through state.
  void mergeStates(const State &A, const State &B, SourceLoc Loc);

  const cfront::VarDecl *trackedVarOf(const cfront::CExpr *E) const;
  static bool isNullConstant(const cfront::CExpr *E);

  void walkFunction(const cfront::FunctionDecl *FD);
  void walkStmt(const cfront::CStmt *S);
  void walkExpr(const cfront::CExpr *E);
  void handleAssign(const cfront::CExpr *Target, const cfront::CExpr *Value,
                    SourceLoc Loc);
};

} // namespace apps
} // namespace quals

#endif // QUALS_APPS_FLOWNONNULL_H

//===- apps/BindingTime.h - Binding-time analysis ---------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binding-time analysis as a qualifier system (Section 1, [Hen91, DHM95]):
/// values known at specialization time are *static*, values possibly unknown
/// until run time are *dynamic*. static is just the absence of the positive
/// qualifier dynamic (the duality noted in Section 2), and the
/// well-formedness condition "nothing dynamic may appear within a value that
/// is static" is the upward-closure rule of WellFormed.h, so e.g.
/// static (dynamic a -> dynamic b) is rejected.
///
/// Inputs mark run-time values with {dynamic} annotations; the analysis
/// infers the binding time of every subexpression; everything not forced
/// dynamic can be computed at specialization time.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_APPS_BINDINGTIME_H
#define QUALS_APPS_BINDINGTIME_H

#include "lambda/Eval.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"

#include <memory>
#include <string>

namespace quals {
namespace apps {

/// Binding time of one expression after inference.
enum class BindingTime {
  Static,  ///< Known at specialization time in every solution.
  Dynamic, ///< Possibly unknown until run time in every solution.
  Either   ///< Unconstrained (defaults to static when specializing).
};

/// One-program binding-time analysis over the demonstration language.
class BindingTimeAnalysis {
public:
  BindingTimeAnalysis();
  ~BindingTimeAnalysis();

  /// Parses and analyzes \p Source. Returns false on parse/type errors or
  /// an inconsistent annotation set (details via errors()).
  bool analyze(const std::string &Source);

  /// The parsed program (valid after analyze()).
  const lambda::Expr *program() const { return Program; }

  /// Binding time of \p E (valid after a successful analyze()).
  BindingTime timeOf(const lambda::Expr *E) const;

  /// Binding time of the whole program.
  BindingTime resultTime() const { return timeOf(Program); }

  /// Accumulated diagnostics (parse errors, qualifier violations).
  std::string errors() const;

  /// The dynamic qualifier's id (for tests poking at the lattice).
  QualifierId dynamicQual() const { return Dynamic; }

private:
  QualifierSet QS;
  QualifierId Dynamic;
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  lambda::AstContext Ast;
  StringInterner Idents;
  lambda::STyContext STys;
  std::unique_ptr<ConstraintSystem> Sys;
  QualTypeFactory Factory;
  lambda::LambdaTypeCtors Ctors;
  std::unique_ptr<lambda::QualInferencer> Inferencer;
  const lambda::Expr *Program = nullptr;
  std::vector<Violation> Violations;
};

} // namespace apps
} // namespace quals

#endif // QUALS_APPS_BINDINGTIME_H

//===- apps/Taint.cpp - Taint/trust tracking ---------------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "apps/Taint.h"

using namespace quals;
using namespace quals::apps;
using namespace quals::lambda;

TaintAnalysis::TaintAnalysis() {
  Tainted = QS.add("tainted", Polarity::Positive);
  Diags = std::make_unique<DiagnosticEngine>(SM);
  Sys = std::make_unique<ConstraintSystem>(QS);
}

TaintAnalysis::~TaintAnalysis() = default;

bool TaintAnalysis::analyze(const std::string &Source) {
  Leaks.clear();
  Program = parseString(SM, "taint.q", Source, QS, Ast, Idents, *Diags);
  if (!Program)
    return false;

  StdTypeChecker Checker(STys, *Diags);
  if (!Checker.check(Program))
    return false;

  QualInferOptions Options;
  Options.Polymorphic = true;
  // A tainted structure has tainted parts.
  Options.DownwardClosedQuals = {Tainted};
  Inferencer = std::make_unique<QualInferencer>(QS, *Sys, Factory, Ctors,
                                                *Diags, Options);
  QualType T = Inferencer->infer(Program, Checker);
  if (T.isNull())
    return false;

  Sys->solve();
  for (const Violation &V : Sys->collectViolations())
    Leaks.push_back(Sys->explain(V));
  return Leaks.empty();
}

bool TaintAnalysis::mayBeTainted(const lambda::Expr *E) const {
  assert(Inferencer && "analyze() first");
  QualType T = Inferencer->getNodeType(E);
  if (T.isNull())
    return false;
  QualExpr Q = T.getQual();
  if (Q.isConst())
    return QS.contains(Q.getConst(), Tainted);
  // "May" in the security sense: the least solution already carries taint.
  return Sys->mustHave(Q.getVar(), Tainted);
}

std::string TaintAnalysis::errors() const { return Diags->renderAll(); }

//===- apps/FlowNonNull.cpp - Flow-sensitive nonnull (Section 6) ------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "apps/FlowNonNull.h"

using namespace quals;
using namespace quals::apps;
using namespace quals::cfront;

FlowNonNullChecker::FlowNonNullChecker() : Sys(QS) {
  NonNull = QS.add("nonnull", Polarity::Negative);
}

QualVarId FlowNonNullChecker::freshVersion(const VarDecl *VD,
                                           SourceLoc Loc) {
  QualVarId V = Sys.freshVar(std::string(VD->getName()) + "#", Loc);
  Current[VD] = V;
  return V;
}

void FlowNonNullChecker::markMaybeNull(QualVarId Version, SourceLoc Loc,
                                       const std::string &Why) {
  // May-be-null = the nonnull qualifier absent = the top of its two-point
  // component (negative qualifier).
  Sys.addLeq(QualExpr::makeConst(QS.withoutQual(QS.bottom(), NonNull)),
             QualExpr::makeVar(Version), ConstraintOrigin(Loc, Why));
}

void FlowNonNullChecker::weakEdge(QualVarId From, QualVarId To,
                                  SourceLoc Loc) {
  Sys.addLeq(QualExpr::makeVar(From), QualExpr::makeVar(To),
             ConstraintOrigin(Loc, "program-point flow"));
}

void FlowNonNullChecker::mergeStates(const State &A, const State &B,
                                     SourceLoc Loc) {
  State Merged;
  for (const auto &Entry : A) {
    auto InB = B.find(Entry.first);
    if (InB == B.end())
      continue; // Out of scope on one side.
    if (InB->second == Entry.second) {
      Merged.emplace(Entry.first, Entry.second);
      continue;
    }
    QualVarId Join =
        Sys.freshVar(std::string(Entry.first->getName()) + "#join", Loc);
    weakEdge(Entry.second, Join, Loc);
    weakEdge(InB->second, Join, Loc);
    Merged.emplace(Entry.first, Join);
  }
  Current = std::move(Merged);
}

const VarDecl *FlowNonNullChecker::trackedVarOf(const CExpr *E) const {
  const auto *Ref = dyn_cast<CDeclRef>(E);
  if (!Ref)
    return nullptr;
  const auto *VD = dyn_cast_or_null<VarDecl>(Ref->getDecl());
  if (!VD || VD->isGlobal())
    return nullptr; // Globals stay flow-insensitive across calls.
  if (VD->getType().isNull() || !isa<PointerType>(VD->getType().getType()))
    return nullptr;
  return Current.count(VD) ? VD : nullptr;
}

bool FlowNonNullChecker::isNullConstant(const CExpr *E) {
  if (const auto *I = dyn_cast<CIntLit>(E))
    return I->getValue() == 0;
  if (const auto *C = dyn_cast<CCast>(E))
    return isNullConstant(C->getOperand());
  return false;
}

void FlowNonNullChecker::handleAssign(const CExpr *Target,
                                      const CExpr *Value, SourceLoc Loc) {
  const VarDecl *VD = trackedVarOf(Target);
  if (!VD)
    return;
  // A direct assignment is a *strong update*: the new version gets no
  // constraint from the old one (the Section 6 rule).
  QualVarId OldSource = InvalidQualVar;
  if (const VarDecl *Src = trackedVarOf(Value))
    OldSource = Current[Src];
  QualVarId New = freshVersion(VD, Loc);
  if (isNullConstant(Value)) {
    markMaybeNull(New, Loc,
                  "null assigned to '" + std::string(VD->getName()) + "'");
    return;
  }
  if (OldSource != InvalidQualVar)
    weakEdge(OldSource, New, Loc);
  // Address-of / call results: assumed non-null (bottom), nothing to add.
}

void FlowNonNullChecker::walkExpr(const CExpr *E) {
  if (!E)
    return;
  switch (E->getKind()) {
  case CExpr::Kind::Unary: {
    const auto *U = cast<CUnary>(E);
    if (U->getOp() == UnaryOp::Deref)
      if (const VarDecl *VD = trackedVarOf(U->getOperand()))
        Derefs.push_back({VD, Current[VD], E->getLoc()});
    walkExpr(U->getOperand());
    return;
  }
  case CExpr::Kind::Binary: {
    const auto *B = cast<CBinary>(E);
    walkExpr(B->getRhs());
    if (B->getOp() == BinaryOp::Assign) {
      // Right-hand side evaluated above; the store changes the state.
      handleAssign(B->getLhs(), B->getRhs(), E->getLoc());
      if (!trackedVarOf(B->getLhs()))
        walkExpr(B->getLhs());
      return;
    }
    walkExpr(B->getLhs());
    return;
  }
  case CExpr::Kind::Member: {
    const auto *M = cast<CMember>(E);
    if (M->isArrow())
      if (const VarDecl *VD = trackedVarOf(M->getBase()))
        Derefs.push_back({VD, Current[VD], E->getLoc()});
    walkExpr(M->getBase());
    return;
  }
  case CExpr::Kind::Subscript: {
    const auto *S = cast<CSubscript>(E);
    if (const VarDecl *VD = trackedVarOf(S->getBase()))
      Derefs.push_back({VD, Current[VD], E->getLoc()});
    walkExpr(S->getBase());
    walkExpr(S->getIndex());
    return;
  }
  case CExpr::Kind::Conditional: {
    const auto *C = cast<CConditional>(E);
    walkExpr(C->getCond());
    State Before = Current;
    walkExpr(C->getThen());
    State AfterThen = Current;
    Current = Before;
    walkExpr(C->getElse());
    mergeStates(AfterThen, Current, E->getLoc());
    return;
  }
  case CExpr::Kind::Call: {
    const auto *C = cast<CCall>(E);
    walkExpr(C->getCallee());
    for (const CExpr *A : C->getArgs())
      walkExpr(A);
    return;
  }
  case CExpr::Kind::Cast:
    walkExpr(cast<CCast>(E)->getOperand());
    return;
  case CExpr::Kind::Comma: {
    const auto *C = cast<CComma>(E);
    walkExpr(C->getLhs());
    walkExpr(C->getRhs());
    return;
  }
  case CExpr::Kind::SizeOf:
    walkExpr(cast<CSizeOf>(E)->getArgExpr());
    return;
  case CExpr::Kind::InitList:
    for (const CExpr *I : cast<CInitList>(E)->getInits())
      walkExpr(I);
    return;
  default:
    return;
  }
}

void FlowNonNullChecker::walkStmt(const CStmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case CStmt::Kind::Compound:
    for (const CStmt *Sub : cast<CCompoundStmt>(S)->getBody())
      walkStmt(Sub);
    return;
  case CStmt::Kind::Expr:
    walkExpr(cast<CExprStmt>(S)->getExpr());
    return;
  case CStmt::Kind::Decl:
    for (const VarDecl *V : cast<CDeclStmt>(S)->getDecls()) {
      if (V->getInit())
        walkExpr(V->getInit());
      if (V->getType().isNull() ||
          !isa<PointerType>(V->getType().getType()))
        continue;
      QualVarId Version = freshVersion(V, V->getLoc());
      if (!V->getInit()) {
        markMaybeNull(Version, V->getLoc(),
                      "'" + std::string(V->getName()) +
                          "' declared without initializer");
      } else if (isNullConstant(V->getInit())) {
        markMaybeNull(Version, V->getLoc(),
                      "'" + std::string(V->getName()) +
                          "' initialized to null");
      } else if (const VarDecl *Src = trackedVarOf(V->getInit())) {
        weakEdge(Current[Src], Version, V->getLoc());
      }
    }
    return;
  case CStmt::Kind::If: {
    const auto *I = cast<CIfStmt>(S);
    walkExpr(I->getCond());
    State Before = Current;
    walkStmt(I->getThen());
    State AfterThen = Current;
    Current = Before;
    if (I->getElse())
      walkStmt(I->getElse());
    mergeStates(AfterThen, Current, S->getLoc());
    return;
  }
  case CStmt::Kind::While:
  case CStmt::Kind::DoWhile:
  case CStmt::Kind::For: {
    // Loop: pre-state flows into join versions, the body runs from the
    // joins, and its final state feeds back into them. The post-state is
    // the joins (zero or more iterations).
    const CStmt *Body = nullptr;
    const CExpr *Cond = nullptr;
    const CStmt *Init = nullptr;
    const CExpr *Step = nullptr;
    if (const auto *W = dyn_cast<CWhileStmt>(S)) {
      Body = W->getBody();
      Cond = W->getCond();
    } else if (const auto *W = dyn_cast<CDoWhileStmt>(S)) {
      Body = W->getBody();
      Cond = W->getCond();
    } else {
      const auto *F = cast<CForStmt>(S);
      Init = F->getInit();
      Cond = F->getCond();
      Step = F->getStep();
      Body = F->getBody();
    }
    if (Init)
      walkStmt(Init);
    State Joins;
    for (const auto &Entry : Current) {
      QualVarId Join = Sys.freshVar(
          std::string(Entry.first->getName()) + "#loop", S->getLoc());
      weakEdge(Entry.second, Join, S->getLoc());
      Joins.emplace(Entry.first, Join);
    }
    Current = Joins;
    if (Cond)
      walkExpr(Cond);
    walkStmt(Body);
    if (Step)
      walkExpr(Step);
    // Back edges from the body's final state.
    for (const auto &Entry : Joins) {
      auto It = Current.find(Entry.first);
      if (It != Current.end() && It->second != Entry.second)
        weakEdge(It->second, Entry.second, S->getLoc());
    }
    Current = std::move(Joins);
    return;
  }
  case CStmt::Kind::Return:
    walkExpr(cast<CReturnStmt>(S)->getValue());
    return;
  case CStmt::Kind::Switch: {
    // Coarse: the body runs weakly (its final state merges with the
    // pre-state, accounting for taken/untaken cases).
    const auto *Sw = cast<CSwitchStmt>(S);
    walkExpr(Sw->getCond());
    State Before = Current;
    walkStmt(Sw->getBody());
    mergeStates(Before, Current, S->getLoc());
    return;
  }
  case CStmt::Kind::Case: {
    const auto *C = cast<CCaseStmt>(S);
    walkExpr(C->getValue());
    walkStmt(C->getSub());
    return;
  }
  case CStmt::Kind::Default:
    walkStmt(cast<CDefaultStmt>(S)->getSub());
    return;
  case CStmt::Kind::Label:
    walkStmt(cast<CLabelStmt>(S)->getSub());
    return;
  default:
    return;
  }
}

void FlowNonNullChecker::walkFunction(const FunctionDecl *FD) {
  Current.clear();
  for (const VarDecl *P : FD->getParams()) {
    if (P->getType().isNull() || !isa<PointerType>(P->getType().getType()))
      continue;
    // Parameters are assumed non-null on entry (callers are checked at
    // their own call sites in a richer system; lclint uses annotations).
    freshVersion(P, P->getLoc());
  }
  walkStmt(FD->getBody());
}

bool FlowNonNullChecker::analyze(const TranslationUnit &TU) {
  Warnings.clear();
  Derefs.clear();

  for (const FunctionDecl *F : TU.Functions)
    if (F->isDefined())
      walkFunction(F);

  Sys.solve();
  for (const DerefSite &D : Derefs) {
    if (Sys.lower(D.Version).bits() & QS.bitFor(NonNull)) {
      Warnings.push_back(
          {D.Loc, "'" + std::string(D.Var->getName()) +
                      "' may be null when dereferenced here"});
    }
  }
  return Warnings.empty();
}

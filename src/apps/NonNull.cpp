//===- apps/NonNull.cpp - lclint-style nonnull checking for C ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "apps/NonNull.h"

using namespace quals;
using namespace quals::apps;
using namespace quals::cfront;

NonNullChecker::NonNullChecker() : Sys(QS) {
  // The ConstraintSystem only binds a reference to the qualifier set, so
  // registering the qualifier after construction is safe.
  NonNull = QS.add("nonnull", Polarity::Negative);
}

QualVarId NonNullChecker::varFor(const VarDecl *VD) {
  auto It = PtrVars.find(VD);
  if (It != PtrVars.end())
    return It->second;
  QualVarId V = Sys.freshVar(std::string(VD->getName()), VD->getLoc());
  PtrVars.emplace(VD, V);
  return V;
}

const VarDecl *NonNullChecker::pointerVarOf(const CExpr *E) {
  const auto *Ref = dyn_cast<CDeclRef>(E);
  if (!Ref)
    return nullptr;
  const auto *VD = dyn_cast_or_null<VarDecl>(Ref->getDecl());
  if (!VD)
    return nullptr;
  if (VD->getType().isNull() ||
      !isa<PointerType>(VD->getType().getType()))
    return nullptr;
  return VD;
}

bool NonNullChecker::isNullConstant(const CExpr *E) {
  if (const auto *I = dyn_cast<CIntLit>(E))
    return I->getValue() == 0;
  if (const auto *C = dyn_cast<CCast>(E))
    return isNullConstant(C->getOperand());
  return false;
}

void NonNullChecker::recordFlow(const CExpr *Target, const CExpr *Value,
                                SourceLoc Loc) {
  const VarDecl *TargetVar = pointerVarOf(Target);
  if (!TargetVar)
    return;
  QualVarId T = varFor(TargetVar);
  if (isNullConstant(Value)) {
    // May-be-null: the *absence* of the negative qualifier nonnull, i.e.
    // the top of its component lattice.
    Sys.addLeq(QualExpr::makeConst(QS.withoutQual(QS.bottom(), NonNull)),
               QualExpr::makeVar(T),
               ConstraintOrigin(Loc, "null assigned to '" +
                                         std::string(TargetVar->getName()) +
                                         "'"));
    return;
  }
  if (const VarDecl *SourceVar = pointerVarOf(Value)) {
    Sys.addLeq(QualExpr::makeVar(varFor(SourceVar)), QualExpr::makeVar(T),
               ConstraintOrigin(Loc, "'" + std::string(SourceVar->getName()) +
                                         "' flows into '" +
                                         std::string(TargetVar->getName()) +
                                         "'"));
  }
  // Address-of and function results: assumed non-null (bottom); nothing to
  // add.
}

void NonNullChecker::walkExpr(const CExpr *E) {
  if (!E)
    return;
  switch (E->getKind()) {
  case CExpr::Kind::Unary: {
    const auto *U = cast<CUnary>(E);
    if (U->getOp() == UnaryOp::Deref)
      if (const VarDecl *VD = pointerVarOf(U->getOperand()))
        Derefs.push_back({VD, E->getLoc()});
    walkExpr(U->getOperand());
    return;
  }
  case CExpr::Kind::Binary: {
    const auto *B = cast<CBinary>(E);
    if (B->getOp() == BinaryOp::Assign)
      recordFlow(B->getLhs(), B->getRhs(), E->getLoc());
    walkExpr(B->getLhs());
    walkExpr(B->getRhs());
    return;
  }
  case CExpr::Kind::Member: {
    const auto *M = cast<CMember>(E);
    if (M->isArrow())
      if (const VarDecl *VD = pointerVarOf(M->getBase()))
        Derefs.push_back({VD, E->getLoc()});
    walkExpr(M->getBase());
    return;
  }
  case CExpr::Kind::Subscript: {
    const auto *S = cast<CSubscript>(E);
    if (const VarDecl *VD = pointerVarOf(S->getBase()))
      Derefs.push_back({VD, E->getLoc()});
    walkExpr(S->getBase());
    walkExpr(S->getIndex());
    return;
  }
  case CExpr::Kind::Conditional: {
    const auto *C = cast<CConditional>(E);
    walkExpr(C->getCond());
    walkExpr(C->getThen());
    walkExpr(C->getElse());
    return;
  }
  case CExpr::Kind::Call: {
    const auto *C = cast<CCall>(E);
    walkExpr(C->getCallee());
    for (const CExpr *A : C->getArgs())
      walkExpr(A);
    return;
  }
  case CExpr::Kind::Cast:
    walkExpr(cast<CCast>(E)->getOperand());
    return;
  case CExpr::Kind::Comma: {
    const auto *C = cast<CComma>(E);
    walkExpr(C->getLhs());
    walkExpr(C->getRhs());
    return;
  }
  case CExpr::Kind::SizeOf:
    walkExpr(cast<CSizeOf>(E)->getArgExpr());
    return;
  case CExpr::Kind::InitList:
    for (const CExpr *I : cast<CInitList>(E)->getInits())
      walkExpr(I);
    return;
  default:
    return;
  }
}

void NonNullChecker::walkStmt(const CStmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case CStmt::Kind::Compound:
    for (const CStmt *Sub : cast<CCompoundStmt>(S)->getBody())
      walkStmt(Sub);
    return;
  case CStmt::Kind::Expr:
    walkExpr(cast<CExprStmt>(S)->getExpr());
    return;
  case CStmt::Kind::Decl:
    for (const VarDecl *V : cast<CDeclStmt>(S)->getDecls()) {
      if (!V->getInit())
        continue;
      walkExpr(V->getInit());
      if (!V->getType().isNull() &&
          isa<PointerType>(V->getType().getType())) {
        if (isNullConstant(V->getInit()))
          Sys.addLeq(
              QualExpr::makeConst(QS.withoutQual(QS.bottom(), NonNull)),
              QualExpr::makeVar(varFor(V)),
              ConstraintOrigin(V->getLoc(),
                               "'" + std::string(V->getName()) +
                                   "' initialized to null"));
        else if (const VarDecl *Src = pointerVarOf(V->getInit()))
          Sys.addLeq(QualExpr::makeVar(varFor(Src)),
                     QualExpr::makeVar(varFor(V)),
                     ConstraintOrigin(V->getLoc(), "initializer flow"));
      }
    }
    return;
  case CStmt::Kind::If: {
    const auto *I = cast<CIfStmt>(S);
    walkExpr(I->getCond());
    walkStmt(I->getThen());
    walkStmt(I->getElse());
    return;
  }
  case CStmt::Kind::While: {
    const auto *W = cast<CWhileStmt>(S);
    walkExpr(W->getCond());
    walkStmt(W->getBody());
    return;
  }
  case CStmt::Kind::DoWhile: {
    const auto *W = cast<CDoWhileStmt>(S);
    walkStmt(W->getBody());
    walkExpr(W->getCond());
    return;
  }
  case CStmt::Kind::For: {
    const auto *F = cast<CForStmt>(S);
    walkStmt(F->getInit());
    walkExpr(F->getCond());
    walkExpr(F->getStep());
    walkStmt(F->getBody());
    return;
  }
  case CStmt::Kind::Return:
    walkExpr(cast<CReturnStmt>(S)->getValue());
    return;
  case CStmt::Kind::Switch: {
    const auto *Sw = cast<CSwitchStmt>(S);
    walkExpr(Sw->getCond());
    walkStmt(Sw->getBody());
    return;
  }
  case CStmt::Kind::Case: {
    const auto *C = cast<CCaseStmt>(S);
    walkExpr(C->getValue());
    walkStmt(C->getSub());
    return;
  }
  case CStmt::Kind::Default:
    walkStmt(cast<CDefaultStmt>(S)->getSub());
    return;
  case CStmt::Kind::Label:
    walkStmt(cast<CLabelStmt>(S)->getSub());
    return;
  default:
    return;
  }
}

bool NonNullChecker::analyze(const TranslationUnit &TU) {
  Warnings.clear();
  Derefs.clear();

  for (const VarDecl *G : TU.Globals)
    if (G->getInit() && !G->getType().isNull() &&
        isa<PointerType>(G->getType().getType())) {
      if (isNullConstant(G->getInit()))
        Sys.addLeq(QualExpr::makeConst(QS.withoutQual(QS.bottom(), NonNull)),
                   QualExpr::makeVar(varFor(G)),
                   ConstraintOrigin(G->getLoc(), "global initialized null"));
    }

  for (const FunctionDecl *F : TU.Functions)
    if (F->isDefined())
      walkStmt(F->getBody());

  Sys.solve();
  for (const DerefSite &D : Derefs) {
    auto It = PtrVars.find(D.Var);
    if (It == PtrVars.end())
      continue;
    // A negative qualifier is "maybe absent" when the least solution
    // already carries its absence bit.
    if (!Sys.mustHave(It->second, NonNull) &&
        (Sys.lower(It->second).bits() & QS.bitFor(NonNull))) {
      Warnings.push_back(
          {D.Loc, "'" + std::string(D.Var->getName()) +
                      "' may be null when dereferenced"});
    }
  }
  return Warnings.empty();
}

bool NonNullChecker::mayBeNull(const VarDecl *VD) {
  auto It = PtrVars.find(VD);
  if (It == PtrVars.end())
    return false;
  Sys.solve();
  return (Sys.lower(It->second).bits() & QS.bitFor(NonNull)) != 0;
}

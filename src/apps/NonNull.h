//===- apps/NonNull.h - lclint-style nonnull checking for C -----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A nonnull qualifier system over the C front end, after Evans's lclint
/// [Eva96] as discussed in Sections 1 and 5: nonnull is a *negative*
/// qualifier (nonnull tau <= tau -- the set of non-null pointers is a subset
/// of all pointers). Null literals introduce may-be-null facts; assignments
/// propagate them through the constraint graph; dereferences demand nonnull.
///
/// As the paper notes in Section 6, the framework is flow-insensitive, so
/// lclint's per-program-point annotations cannot be expressed: a pointer
/// assigned null anywhere is may-be-null everywhere. Warnings therefore
/// over-approximate (an `if (p)` guard does not silence them); this checker
/// demonstrates the qualifier machinery, not a shippable lint.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_APPS_NONNULL_H
#define QUALS_APPS_NONNULL_H

#include "cfront/CAst.h"
#include "qual/ConstraintSystem.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace quals {
namespace apps {

/// Whole-program may-be-null checking.
class NonNullChecker {
public:
  struct Warning {
    SourceLoc Loc;
    std::string Message;
  };

  NonNullChecker();

  /// Analyzes \p TU (semantic analysis must have run). Returns true iff no
  /// dereference of a may-be-null pointer was found.
  bool analyze(const cfront::TranslationUnit &TU);

  const std::vector<Warning> &warnings() const { return Warnings; }

  /// True if the analysis concluded \p VD may hold null.
  bool mayBeNull(const cfront::VarDecl *VD);

private:
  QualifierSet QS;
  QualifierId NonNull;
  ConstraintSystem Sys;
  std::unordered_map<const cfront::VarDecl *, QualVarId> PtrVars;
  struct DerefSite {
    const cfront::VarDecl *Var;
    SourceLoc Loc;
  };
  std::vector<DerefSite> Derefs;
  std::vector<Warning> Warnings;

  QualVarId varFor(const cfront::VarDecl *VD);
  /// The qualifier variable of a pointer-valued expression, when it is a
  /// direct variable reference (the granularity of this demo checker).
  const cfront::VarDecl *pointerVarOf(const cfront::CExpr *E);
  /// True if \p E is definitely a null pointer constant.
  static bool isNullConstant(const cfront::CExpr *E);

  void walkStmt(const cfront::CStmt *S);
  void walkExpr(const cfront::CExpr *E);
  void recordFlow(const cfront::CExpr *Target, const cfront::CExpr *Value,
                  SourceLoc Loc);
};

} // namespace apps
} // namespace quals

#endif // QUALS_APPS_NONNULL_H

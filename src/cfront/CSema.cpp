//===- cfront/CSema.cpp - C semantic analysis -------------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/CSema.h"

#include "support/Metrics.h"

using namespace quals;
using namespace quals::cfront;

void CSema::error(SourceLoc Loc, const std::string &Message) {
  Diags.error(Loc, Message);
  HadError = true;
}

void CSema::declare(const CDecl *D) {
  if (!D->getName().empty())
    Scopes.back()[D->getName()] = D;
}

const CDecl *CSema::lookup(std::string_view Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

CQualType CSema::decayed(CQualType T) {
  if (T.isNull())
    return T;
  if (const auto *AT = dyn_cast<ArrayType>(T.getType()))
    return CQualType(Types.getPointer(AT->getElement()));
  if (isa<FunctionType>(T.getType()))
    return CQualType(Types.getPointer(CQualType(T.getType())));
  return T;
}

bool CSema::analyze(TranslationUnit &Unit) {
  PhaseScope Phase("sema", "cfront");
  TU = &Unit;
  Scopes.clear();
  pushScope();

  // Pre-register every file-scope name (whole-program analysis merges
  // files, so use-before-declaration across buffers is tolerated).
  for (VarDecl *G : Unit.Globals)
    declare(G);
  for (FunctionDecl *F : Unit.Functions)
    declare(F);

  // Type global initializers.
  for (VarDecl *G : Unit.Globals) {
    if (Diags.shouldBail())
      break;
    if (const CExpr *Init = G->getInit())
      checkExpr(Init);
  }

  for (FunctionDecl *F : Unit.Functions) {
    // Stop cleanly once the error cap or a resource budget fired; the
    // recoverable `fatal:` diagnostic is already in the engine.
    if (Diags.shouldBail() || !Diags.checkResources(F->getLoc()))
      break;
    if (F->isDefined())
      analyzeFunction(F);
  }

  popScope();
  return !HadError && !Diags.shouldBail();
}

void CSema::analyzeFunction(FunctionDecl *FD) {
  CurrentFunction = FD;
  pushScope();
  for (VarDecl *P : FD->getParams())
    declare(P);
  analyzeStmt(FD->getBody());
  popScope();
  CurrentFunction = nullptr;
}

void CSema::analyzeStmt(const CStmt *S) {
  switch (S->getKind()) {
  case CStmt::Kind::Compound: {
    pushScope();
    for (const CStmt *Sub : cast<CCompoundStmt>(S)->getBody())
      analyzeStmt(Sub);
    popScope();
    return;
  }
  case CStmt::Kind::Expr:
    checkExpr(cast<CExprStmt>(S)->getExpr());
    return;
  case CStmt::Kind::Decl: {
    for (VarDecl *V : cast<CDeclStmt>(S)->getDecls()) {
      declare(V);
      if (const CExpr *Init = V->getInit())
        checkExpr(Init);
    }
    return;
  }
  case CStmt::Kind::If: {
    const auto *I = cast<CIfStmt>(S);
    checkExpr(I->getCond());
    analyzeStmt(I->getThen());
    if (I->getElse())
      analyzeStmt(I->getElse());
    return;
  }
  case CStmt::Kind::While: {
    const auto *W = cast<CWhileStmt>(S);
    checkExpr(W->getCond());
    analyzeStmt(W->getBody());
    return;
  }
  case CStmt::Kind::DoWhile: {
    const auto *W = cast<CDoWhileStmt>(S);
    analyzeStmt(W->getBody());
    checkExpr(W->getCond());
    return;
  }
  case CStmt::Kind::For: {
    const auto *F = cast<CForStmt>(S);
    pushScope();
    if (F->getInit())
      analyzeStmt(F->getInit());
    if (F->getCond())
      checkExpr(F->getCond());
    if (F->getStep())
      checkExpr(F->getStep());
    analyzeStmt(F->getBody());
    popScope();
    return;
  }
  case CStmt::Kind::Return: {
    const auto *R = cast<CReturnStmt>(S);
    if (R->getValue())
      checkExpr(R->getValue());
    return;
  }
  case CStmt::Kind::Switch: {
    const auto *Sw = cast<CSwitchStmt>(S);
    checkExpr(Sw->getCond());
    analyzeStmt(Sw->getBody());
    return;
  }
  case CStmt::Kind::Case: {
    const auto *C = cast<CCaseStmt>(S);
    checkExpr(C->getValue());
    analyzeStmt(C->getSub());
    return;
  }
  case CStmt::Kind::Default:
    analyzeStmt(cast<CDefaultStmt>(S)->getSub());
    return;
  case CStmt::Kind::Label:
    analyzeStmt(cast<CLabelStmt>(S)->getSub());
    return;
  case CStmt::Kind::Break:
  case CStmt::Kind::Continue:
  case CStmt::Kind::Null:
  case CStmt::Kind::Goto:
    return;
  }
}

const FunctionDecl *CSema::resolveCallee(const CExpr *Callee) {
  const auto *Ref = dyn_cast<CDeclRef>(Callee);
  if (!Ref)
    return nullptr; // Indirect call through a function pointer.
  const CDecl *D = lookup(Ref->getName());
  if (D) {
    Ref->setDecl(D);
    return dyn_cast<FunctionDecl>(D);
  }
  // Implicit declaration: "int name()" with unknown parameters. Section
  // 4.2's conservative library-function treatment kicks in downstream.
  const FunctionType *FT = Types.getFunction(
      CQualType(Types.getInt()), {}, /*Variadic=*/true, /*NoPrototype=*/true);
  auto *FD = Ast.create<FunctionDecl>(Ref->getName(), FT,
                                      std::vector<VarDecl *>(),
                                      StorageClass::Extern, Callee->getLoc());
  FD->setImplicit(true);
  TU->FunctionMap[Ref->getName()] = FD;
  TU->Functions.push_back(FD);
  Scopes.front()[Ref->getName()] = FD;
  Ref->setDecl(FD);
  return FD;
}

CQualType CSema::checkExpr(const CExpr *E) {
  CQualType Result;
  bool LValue = false;

  switch (E->getKind()) {
  case CExpr::Kind::IntLit:
    Result = CQualType(Types.getInt());
    break;
  case CExpr::Kind::FloatLit:
    Result = CQualType(Types.getDouble());
    break;
  case CExpr::Kind::StringLit:
    // char[N]; we give the decayed char * directly (C89 string literals are
    // writable in principle; the analysis treats them as plain char).
    Result = CQualType(Types.getPointer(CQualType(Types.getChar())));
    break;
  case CExpr::Kind::DeclRef: {
    const auto *Ref = cast<CDeclRef>(E);
    const CDecl *D = lookup(Ref->getName());
    if (!D) {
      auto It = TU->EnumConstants.find(Ref->getName());
      if (It != TU->EnumConstants.end()) {
        Result = CQualType(Types.getInt());
        break;
      }
      error(E->getLoc(),
            "use of undeclared identifier '" + std::string(Ref->getName()) +
                "'");
      Result = CQualType(Types.getInt());
      break;
    }
    Ref->setDecl(D);
    if (const auto *V = dyn_cast<VarDecl>(D)) {
      Result = V->getType();
      LValue = true;
    } else if (const auto *F = dyn_cast<FunctionDecl>(D)) {
      Result = CQualType(F->getType());
    } else {
      Result = CQualType(Types.getInt());
    }
    break;
  }
  case CExpr::Kind::Unary: {
    const auto *U = cast<CUnary>(E);
    CQualType Op = checkExpr(U->getOperand());
    switch (U->getOp()) {
    case UnaryOp::Deref: {
      CQualType D = decayed(Op);
      if (const auto *PT = dyn_cast_or_null<PointerType>(
              D.isNull() ? nullptr : D.getType())) {
        Result = PT->getPointee();
        LValue = true;
      } else {
        error(E->getLoc(), "cannot dereference non-pointer type '" +
                               toString(Op) + "'");
        Result = CQualType(Types.getInt());
      }
      break;
    }
    case UnaryOp::AddrOf:
      if (!U->getOperand()->isLValue() &&
          !isa<FunctionType>(Op.isNull() ? Types.getInt() : Op.getType()))
        error(E->getLoc(), "cannot take the address of an rvalue");
      Result = CQualType(Types.getPointer(Op));
      break;
    case UnaryOp::Not:
      Result = CQualType(Types.getInt());
      break;
    case UnaryOp::Plus:
    case UnaryOp::Minus:
    case UnaryOp::BitNot:
      Result = decayed(Op);
      break;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      if (!U->getOperand()->isLValue())
        error(E->getLoc(), "increment/decrement needs an l-value");
      Result = decayed(Op);
      break;
    }
    break;
  }
  case CExpr::Kind::Binary: {
    const auto *B = cast<CBinary>(E);
    CQualType L = checkExpr(B->getLhs());
    CQualType R = checkExpr(B->getRhs());
    if (isAssignmentOp(B->getOp())) {
      if (!B->getLhs()->isLValue())
        error(E->getLoc(), "assignment needs an l-value on the left");
      Result = L.withoutConst();
      break;
    }
    switch (B->getOp()) {
    case BinaryOp::LAnd: case BinaryOp::LOr:
    case BinaryOp::Lt: case BinaryOp::Gt: case BinaryOp::Le:
    case BinaryOp::Ge: case BinaryOp::Eq: case BinaryOp::Ne:
      Result = CQualType(Types.getInt());
      break;
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      CQualType DL = decayed(L), DR = decayed(R);
      bool PL = !DL.isNull() && isa<PointerType>(DL.getType());
      bool PR = !DR.isNull() && isa<PointerType>(DR.getType());
      if (PL && PR)
        Result = CQualType(Types.getBuiltin(BuiltinType::Id::Long)); // ptrdiff
      else if (PL)
        Result = DL;
      else if (PR)
        Result = DR;
      else
        Result = DL;
      break;
    }
    default: {
      CQualType DL = decayed(L);
      Result = DL.isNull() ? CQualType(Types.getInt()) : DL;
      break;
    }
    }
    break;
  }
  case CExpr::Kind::Conditional: {
    const auto *C = cast<CConditional>(E);
    checkExpr(C->getCond());
    CQualType T = checkExpr(C->getThen());
    checkExpr(C->getElse());
    Result = decayed(T);
    break;
  }
  case CExpr::Kind::Call: {
    const auto *Call = cast<CCall>(E);
    const FunctionDecl *FD = resolveCallee(Call->getCallee());
    const FunctionType *FT = nullptr;
    if (FD) {
      FT = FD->getType();
      Call->getCallee()->setType(CQualType(FT));
    } else {
      CQualType CalleeTy = decayed(checkExpr(Call->getCallee()));
      if (!CalleeTy.isNull()) {
        if (const auto *PT = dyn_cast<PointerType>(CalleeTy.getType()))
          FT = dyn_cast<FunctionType>(PT->getPointee().getType());
        else
          FT = dyn_cast<FunctionType>(CalleeTy.getType());
      }
      if (!FT)
        error(E->getLoc(), "called object is not a function");
    }
    for (const CExpr *Arg : Call->getArgs())
      checkExpr(Arg);
    Result = FT ? FT->getReturn() : CQualType(Types.getInt());
    break;
  }
  case CExpr::Kind::Member: {
    const auto *M = cast<CMember>(E);
    CQualType Base = checkExpr(M->getBase());
    const RecordType *RT = nullptr;
    if (M->isArrow()) {
      CQualType D = decayed(Base);
      if (const auto *PT = dyn_cast_or_null<PointerType>(
              D.isNull() ? nullptr : D.getType()))
        RT = dyn_cast<RecordType>(PT->getPointee().getType());
    } else if (!Base.isNull()) {
      RT = dyn_cast<RecordType>(Base.getType());
    }
    if (!RT) {
      error(E->getLoc(), "member access on non-struct type");
      Result = CQualType(Types.getInt());
      break;
    }
    FieldDecl *F = RT->getDecl()->findField(M->getFieldName());
    if (!F) {
      error(E->getLoc(), "no field named '" +
                             std::string(M->getFieldName()) + "' in '" +
                             std::string(RT->getDecl()->getName()) + "'");
      Result = CQualType(Types.getInt());
      break;
    }
    M->setField(F);
    Result = F->getType();
    LValue = true;
    break;
  }
  case CExpr::Kind::Subscript: {
    const auto *S = cast<CSubscript>(E);
    CQualType Base = decayed(checkExpr(S->getBase()));
    checkExpr(S->getIndex());
    if (const auto *PT = dyn_cast_or_null<PointerType>(
            Base.isNull() ? nullptr : Base.getType())) {
      Result = PT->getPointee();
      LValue = true;
    } else {
      // Also allow int[ptr] (C's commutative subscripting) -- rare; treat
      // as an error in the subset.
      error(E->getLoc(), "subscript of non-pointer type");
      Result = CQualType(Types.getInt());
    }
    break;
  }
  case CExpr::Kind::Cast: {
    const auto *C = cast<CCast>(E);
    checkExpr(C->getOperand());
    Result = C->getTargetType();
    break;
  }
  case CExpr::Kind::SizeOf: {
    const auto *S = cast<CSizeOf>(E);
    if (S->getArgExpr())
      checkExpr(S->getArgExpr());
    Result = CQualType(Types.getBuiltin(BuiltinType::Id::ULong));
    break;
  }
  case CExpr::Kind::Comma: {
    const auto *C = cast<CComma>(E);
    checkExpr(C->getLhs());
    Result = checkExpr(C->getRhs());
    break;
  }
  case CExpr::Kind::InitList: {
    for (const CExpr *I : cast<CInitList>(E)->getInits())
      checkExpr(I);
    Result = CQualType(Types.getInt());
    break;
  }
  }

  E->setType(Result);
  E->setLValue(LValue);
  return Result;
}

//===- cfront/AstHash.cpp - Structural hashing of C ASTs -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/AstHash.h"

#include "support/Casting.h"
#include "support/Hash.h"

namespace quals {
namespace cfront {

namespace {

// Fixed tags keep "absent child" distinguishable from any real subtree and
// from an absent child of a different slot.
constexpr uint64_t kNullExpr = 0xD1u;
constexpr uint64_t kNullStmt = 0xD2u;
constexpr uint64_t kNullType = 0xD3u;

uint64_t tag(unsigned Kind, uint64_t Salt) {
  return hashCombine(Salt, Kind + 1);
}

} // namespace

uint64_t hashType(CQualType T) {
  if (T.isNull())
    return kNullType;
  HashBuilder B;
  B.add(static_cast<uint64_t>(T.getQuals()));
  const CType *Ty = T.getType();
  B.add(static_cast<uint64_t>(Ty->getKind()));
  switch (Ty->getKind()) {
  case CType::Kind::Builtin:
    B.add(static_cast<uint64_t>(cast<BuiltinType>(Ty)->getId()));
    break;
  case CType::Kind::Pointer:
    B.add(hashType(cast<PointerType>(Ty)->getPointee()));
    break;
  case CType::Kind::Array: {
    const auto *AT = cast<ArrayType>(Ty);
    B.add(hashType(AT->getElement()));
    B.add(static_cast<uint64_t>(AT->getSize()));
    break;
  }
  case CType::Kind::Function: {
    const auto *FT = cast<FunctionType>(Ty);
    B.add(hashType(FT->getReturn()));
    B.add(static_cast<uint64_t>(FT->getParams().size()));
    for (CQualType P : FT->getParams())
      B.add(hashType(P));
    B.add(FT->isVariadic());
    B.add(FT->hasNoPrototype());
    break;
  }
  case CType::Kind::Record: {
    // By name only; field structure is the decl region's business. This
    // keeps recursive records (struct S { struct S *next; }) terminating.
    const RecordDecl *RD = cast<RecordType>(Ty)->getDecl();
    B.add(RD->getName());
    B.add(RD->isUnion());
    break;
  }
  case CType::Kind::Enum:
    B.add(cast<EnumType>(Ty)->getDecl()->getName());
    break;
  }
  return B.digest();
}

uint64_t hashExpr(const CExpr *E) {
  if (!E)
    return kNullExpr;
  uint64_t H = tag(static_cast<unsigned>(E->getKind()), 0xE0);
  switch (E->getKind()) {
  case CExpr::Kind::IntLit:
    H = hashCombine(H, static_cast<uint64_t>(cast<CIntLit>(E)->getValue()));
    break;
  case CExpr::Kind::FloatLit: {
    double V = cast<CFloatLit>(E)->getValue();
    H = hashCombine(H, hashBytes(&V, sizeof V));
    break;
  }
  case CExpr::Kind::StringLit:
    H = hashCombine(H, hashString(cast<CStringLit>(E)->getText()));
    break;
  case CExpr::Kind::DeclRef: {
    const auto *DR = cast<CDeclRef>(E);
    H = hashCombine(H, hashString(DR->getName()));
    // Discriminate what the name resolved to: a local `x` shadowing a
    // global `x` must not hash like the global (the reference pattern
    // differs for the analysis).
    uint64_t RefKind = 0;
    if (const CDecl *D = DR->getDecl()) {
      RefKind = static_cast<uint64_t>(D->getKind()) + 1;
      if (const auto *VD = dyn_cast<VarDecl>(D))
        RefKind = hashCombine(RefKind, VD->isGlobal() ? 2u : 1u);
    }
    H = hashCombine(H, RefKind);
    break;
  }
  case CExpr::Kind::Unary: {
    const auto *U = cast<CUnary>(E);
    H = hashCombine(H, static_cast<uint64_t>(U->getOp()));
    H = hashCombine(H, hashExpr(U->getOperand()));
    break;
  }
  case CExpr::Kind::Binary: {
    const auto *B = cast<CBinary>(E);
    H = hashCombine(H, static_cast<uint64_t>(B->getOp()));
    H = hashCombine(H, hashExpr(B->getLhs()));
    H = hashCombine(H, hashExpr(B->getRhs()));
    break;
  }
  case CExpr::Kind::Conditional: {
    const auto *C = cast<CConditional>(E);
    H = hashCombine(H, hashExpr(C->getCond()));
    H = hashCombine(H, hashExpr(C->getThen()));
    H = hashCombine(H, hashExpr(C->getElse()));
    break;
  }
  case CExpr::Kind::Call: {
    const auto *C = cast<CCall>(E);
    H = hashCombine(H, hashExpr(C->getCallee()));
    H = hashCombine(H, C->getArgs().size());
    for (const CExpr *A : C->getArgs())
      H = hashCombine(H, hashExpr(A));
    break;
  }
  case CExpr::Kind::Member: {
    const auto *M = cast<CMember>(E);
    H = hashCombine(H, hashExpr(M->getBase()));
    H = hashCombine(H, hashString(M->getFieldName()));
    H = hashCombine(H, M->isArrow() ? 2u : 1u);
    break;
  }
  case CExpr::Kind::Subscript: {
    const auto *S = cast<CSubscript>(E);
    H = hashCombine(H, hashExpr(S->getBase()));
    H = hashCombine(H, hashExpr(S->getIndex()));
    break;
  }
  case CExpr::Kind::Cast: {
    const auto *C = cast<CCast>(E);
    H = hashCombine(H, hashType(C->getTargetType()));
    H = hashCombine(H, hashExpr(C->getOperand()));
    break;
  }
  case CExpr::Kind::SizeOf: {
    const auto *S = cast<CSizeOf>(E);
    H = hashCombine(H, hashType(S->getArgType()));
    H = hashCombine(H, hashExpr(S->getArgExpr()));
    break;
  }
  case CExpr::Kind::Comma: {
    const auto *C = cast<CComma>(E);
    H = hashCombine(H, hashExpr(C->getLhs()));
    H = hashCombine(H, hashExpr(C->getRhs()));
    break;
  }
  case CExpr::Kind::InitList: {
    const auto *IL = cast<CInitList>(E);
    H = hashCombine(H, IL->getInits().size());
    for (const CExpr *I : IL->getInits())
      H = hashCombine(H, hashExpr(I));
    break;
  }
  }
  return H ? H : 1;
}

namespace {

uint64_t hashLocalVar(const VarDecl *VD) {
  HashBuilder B;
  B.add(VD->getName());
  B.add(hashType(VD->getType()));
  B.add(static_cast<uint64_t>(VD->getStorageClass()));
  B.add(hashExpr(VD->getInit()));
  return B.digest();
}

} // namespace

uint64_t hashStmt(const CStmt *S) {
  if (!S)
    return kNullStmt;
  uint64_t H = tag(static_cast<unsigned>(S->getKind()), 0x50);
  switch (S->getKind()) {
  case CStmt::Kind::Compound: {
    const auto *C = cast<CCompoundStmt>(S);
    H = hashCombine(H, C->getBody().size());
    for (const CStmt *Sub : C->getBody())
      H = hashCombine(H, hashStmt(Sub));
    break;
  }
  case CStmt::Kind::Expr:
    H = hashCombine(H, hashExpr(cast<CExprStmt>(S)->getExpr()));
    break;
  case CStmt::Kind::Decl: {
    const auto *D = cast<CDeclStmt>(S);
    H = hashCombine(H, D->getDecls().size());
    for (const VarDecl *VD : D->getDecls())
      H = hashCombine(H, hashLocalVar(VD));
    break;
  }
  case CStmt::Kind::If: {
    const auto *I = cast<CIfStmt>(S);
    H = hashCombine(H, hashExpr(I->getCond()));
    H = hashCombine(H, hashStmt(I->getThen()));
    H = hashCombine(H, hashStmt(I->getElse()));
    break;
  }
  case CStmt::Kind::While: {
    const auto *W = cast<CWhileStmt>(S);
    H = hashCombine(H, hashExpr(W->getCond()));
    H = hashCombine(H, hashStmt(W->getBody()));
    break;
  }
  case CStmt::Kind::DoWhile: {
    const auto *D = cast<CDoWhileStmt>(S);
    H = hashCombine(H, hashStmt(D->getBody()));
    H = hashCombine(H, hashExpr(D->getCond()));
    break;
  }
  case CStmt::Kind::For: {
    const auto *F = cast<CForStmt>(S);
    H = hashCombine(H, hashStmt(F->getInit()));
    H = hashCombine(H, hashExpr(F->getCond()));
    H = hashCombine(H, hashExpr(F->getStep()));
    H = hashCombine(H, hashStmt(F->getBody()));
    break;
  }
  case CStmt::Kind::Return:
    H = hashCombine(H, hashExpr(cast<CReturnStmt>(S)->getValue()));
    break;
  case CStmt::Kind::Break:
  case CStmt::Kind::Continue:
  case CStmt::Kind::Null:
    break;
  case CStmt::Kind::Switch: {
    const auto *Sw = cast<CSwitchStmt>(S);
    H = hashCombine(H, hashExpr(Sw->getCond()));
    H = hashCombine(H, hashStmt(Sw->getBody()));
    break;
  }
  case CStmt::Kind::Case: {
    const auto *C = cast<CCaseStmt>(S);
    H = hashCombine(H, hashExpr(C->getValue()));
    H = hashCombine(H, hashStmt(C->getSub()));
    break;
  }
  case CStmt::Kind::Default:
    H = hashCombine(H, hashStmt(cast<CDefaultStmt>(S)->getSub()));
    break;
  case CStmt::Kind::Goto:
    H = hashCombine(H, hashString(cast<CGotoStmt>(S)->getLabel()));
    break;
  case CStmt::Kind::Label: {
    const auto *L = cast<CLabelStmt>(S);
    H = hashCombine(H, hashString(L->getLabel()));
    H = hashCombine(H, hashStmt(L->getSub()));
    break;
  }
  }
  return H ? H : 1;
}

uint64_t hashFunctionBody(const FunctionDecl *FD) {
  if (!FD->isDefined())
    return 0;
  uint64_t H = hashStmt(FD->getBody());
  return H ? H : 1;
}

uint64_t hashFunctionSignature(const FunctionDecl *FD) {
  HashBuilder B;
  B.add(FD->getName());
  B.add(hashType(CQualType(FD->getType())));
  B.add(static_cast<uint64_t>(FD->getParams().size()));
  for (const VarDecl *P : FD->getParams()) {
    B.add(P->getName());
    B.add(hashType(P->getType()));
  }
  B.add(static_cast<uint64_t>(FD->getStorageClass()));
  B.add(FD->isDefined());
  B.add(FD->isImplicit());
  return B.digest();
}

uint64_t hashDeclRegion(const TranslationUnit &TU) {
  HashBuilder B;
  B.add(static_cast<uint64_t>(TU.Decls.size()));
  for (const CDecl *D : TU.Decls) {
    B.add(static_cast<uint64_t>(D->getKind()));
    switch (D->getKind()) {
    case CDecl::Kind::Var: {
      const auto *VD = cast<VarDecl>(D);
      B.add(VD->getName());
      B.add(hashType(VD->getType()));
      B.add(static_cast<uint64_t>(VD->getStorageClass()));
      B.add(hashExpr(VD->getInit()));
      break;
    }
    case CDecl::Kind::Function:
      B.add(hashFunctionSignature(cast<FunctionDecl>(D)));
      break;
    case CDecl::Kind::Record: {
      const auto *RD = cast<RecordDecl>(D);
      B.add(RD->getName());
      B.add(RD->isUnion());
      B.add(RD->isComplete());
      B.add(static_cast<uint64_t>(RD->getFields().size()));
      for (const FieldDecl *F : RD->getFields()) {
        B.add(F->getName());
        B.add(hashType(F->getType()));
      }
      break;
    }
    case CDecl::Kind::Enum: {
      const auto *ED = cast<EnumDecl>(D);
      B.add(ED->getName());
      B.add(static_cast<uint64_t>(ED->getEnumerators().size()));
      for (const EnumDecl::Enumerator &E : ED->getEnumerators()) {
        B.add(E.Name);
        B.add(static_cast<uint64_t>(E.Value));
      }
      break;
    }
    case CDecl::Kind::Typedef: {
      const auto *TD = cast<TypedefDecl>(D);
      B.add(TD->getName());
      B.add(hashType(TD->getUnderlying()));
      break;
    }
    case CDecl::Kind::Field:
      // Fields appear under their record, not at the top level; hash the
      // name defensively if one ever does.
      B.add(D->getName());
      break;
    }
  }
  // Implicit library functions never appear in Decls but do shape the
  // analysis (Section 4.2's conservative rule creates interface variables
  // for them).
  for (const FunctionDecl *F : TU.Functions)
    if (F->isImplicit())
      B.add(hashFunctionSignature(F));
  return B.digest();
}

} // namespace cfront
} // namespace quals

//===- cfront/CType.cpp - C types ------------------------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/CType.h"

#include "cfront/CAst.h"

using namespace quals;
using namespace quals::cfront;

CTypeContext::CTypeContext() {
  for (unsigned I = 0; I != 12; ++I)
    Builtins[I] =
        Arena.create<BuiltinType>(static_cast<BuiltinType::Id>(I));
}

bool quals::cfront::isIntegerLike(const CType *T) {
  if (const auto *B = dyn_cast<BuiltinType>(T))
    return B->isInteger();
  return isa<EnumType>(T);
}

bool quals::cfront::isScalar(const CType *T) {
  if (const auto *B = dyn_cast<BuiltinType>(T))
    return !B->isVoid();
  return isa<PointerType>(T) || isa<EnumType>(T);
}

bool quals::cfront::isAssignmentOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Assign:
  case BinaryOp::AddAssign:
  case BinaryOp::SubAssign:
  case BinaryOp::MulAssign:
  case BinaryOp::DivAssign:
  case BinaryOp::RemAssign:
  case BinaryOp::ShlAssign:
  case BinaryOp::ShrAssign:
  case BinaryOp::AndAssign:
  case BinaryOp::OrAssign:
  case BinaryOp::XorAssign:
    return true;
  default:
    return false;
  }
}

static const char *builtinName(BuiltinType::Id Id) {
  switch (Id) {
  case BuiltinType::Id::Void:   return "void";
  case BuiltinType::Id::Char:   return "char";
  case BuiltinType::Id::SChar:  return "signed char";
  case BuiltinType::Id::UChar:  return "unsigned char";
  case BuiltinType::Id::Short:  return "short";
  case BuiltinType::Id::UShort: return "unsigned short";
  case BuiltinType::Id::Int:    return "int";
  case BuiltinType::Id::UInt:   return "unsigned int";
  case BuiltinType::Id::Long:   return "long";
  case BuiltinType::Id::ULong:  return "unsigned long";
  case BuiltinType::Id::Float:  return "float";
  case BuiltinType::Id::Double: return "double";
  }
  return "?";
}

static void printType(CQualType T, std::string &Out) {
  if (T.isNull()) {
    Out += "<null>";
    return;
  }
  if (T.isConst())
    Out += "const ";
  if (T.isVolatile())
    Out += "volatile ";
  const CType *Ty = T.getType();
  switch (Ty->getKind()) {
  case CType::Kind::Builtin:
    Out += builtinName(cast<BuiltinType>(Ty)->getId());
    return;
  case CType::Kind::Pointer: {
    printType(cast<PointerType>(Ty)->getPointee(), Out);
    Out += " *";
    return;
  }
  case CType::Kind::Array: {
    const auto *A = cast<ArrayType>(Ty);
    printType(A->getElement(), Out);
    Out += " [";
    if (A->getSize() >= 0)
      Out += std::to_string(A->getSize());
    Out += ']';
    return;
  }
  case CType::Kind::Function: {
    const auto *F = cast<FunctionType>(Ty);
    printType(F->getReturn(), Out);
    Out += " (";
    const auto &Params = F->getParams();
    for (size_t I = 0; I != Params.size(); ++I) {
      if (I)
        Out += ", ";
      printType(Params[I], Out);
    }
    if (F->isVariadic())
      Out += Params.empty() ? "..." : ", ...";
    if (Params.empty() && !F->isVariadic())
      Out += F->hasNoPrototype() ? "" : "void";
    Out += ')';
    return;
  }
  case CType::Kind::Record: {
    const RecordDecl *D = cast<RecordType>(Ty)->getDecl();
    Out += D->isUnion() ? "union " : "struct ";
    Out += D->getName();
    return;
  }
  case CType::Kind::Enum: {
    Out += "enum ";
    Out += cast<EnumType>(Ty)->getDecl()->getName();
    return;
  }
  }
}

std::string quals::cfront::toString(CQualType T) {
  std::string Out;
  printType(T, Out);
  return Out;
}

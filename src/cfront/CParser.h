//===- cfront/CParser.h - C parser -------------------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the C subset. Highlights:
///
/// \li Full declarator syntax (pointers with qualifier lists, arrays,
///     function declarators including function pointers) via the classic
///     chunk-collection algorithm.
/// \li Typedef-name disambiguation with a scoped typedef table (the "lexer
///     hack" hosted in the parser).
/// \li struct/union/enum definitions with forward references; one tag
///     namespace, scoped.
/// \li The full C89 statement and expression grammar (minus bitfields and
///     K&R parameter definitions).
///
/// Multiple buffers can be parsed into one TranslationUnit, matching the
/// paper's whole-program analysis of multi-file benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_CPARSER_H
#define QUALS_CFRONT_CPARSER_H

#include "cfront/CAst.h"
#include "cfront/CLexer.h"
#include "support/StringInterner.h"

#include <unordered_map>

namespace quals {
namespace cfront {

/// Parses one buffer into (an extension of) a TranslationUnit.
class CParser {
public:
  CParser(const SourceManager &SM, unsigned BufferId, CAstContext &Ast,
          CTypeContext &Types, StringInterner &Idents,
          DiagnosticEngine &Diags, TranslationUnit &TU);

  /// Parses every external declaration in the buffer. Returns false if any
  /// parse error was reported.
  bool parseTranslationUnit();

private:
  CLexer Lex;
  CAstContext &Ast;
  CTypeContext &Types;
  StringInterner &Idents;
  DiagnosticEngine &Diags;
  TranslationUnit &TU;
  CToken Tok;
  CToken PeekTok;
  bool HasPeek = false;
  bool HadError = false;
  unsigned InitialErrors = 0;

  // Scoped name tables. Tags (struct/union/enum) share one namespace;
  // typedef names live in the ordinary namespace but only the typedef
  // subset matters for parsing.
  std::vector<std::unordered_map<std::string_view, TypedefDecl *>>
      TypedefScopes;
  std::vector<std::unordered_map<std::string_view, CDecl *>> TagScopes;

  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//
  void advance() {
    if (HasPeek) {
      Tok = PeekTok;
      HasPeek = false;
    } else {
      Tok = Lex.next();
    }
  }
  const CToken &peek() {
    if (!HasPeek) {
      PeekTok = Lex.next();
      HasPeek = true;
    }
    return PeekTok;
  }
  bool expect(CTok Kind);
  bool consumeIf(CTok Kind);
  void error(const std::string &Message);
  /// Skips tokens until a likely recovery point (';' or '}').
  void skipToRecovery();

  void pushScope();
  void popScope();
  TypedefDecl *lookupTypedef(std::string_view Name) const;
  CDecl *lookupTag(std::string_view Name) const;

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//
  struct DeclSpec {
    CQualType Base;
    StorageClass SC = StorageClass::None;
    SourceLoc Loc;
  };

  /// One declarator "chunk"; see parseDeclaratorChunks for ordering.
  struct DeclChunk {
    enum class K { Pointer, Array, Function } Kind;
    unsigned Quals = CQ_None;               // Pointer
    long ArraySize = -1;                    // Array
    std::vector<VarDecl *> Params;          // Function
    std::vector<CQualType> ParamTypes;      // Function
    bool Variadic = false;                  // Function
    bool NoPrototype = false;               // Function
  };

  struct Declarator {
    std::string_view Name; ///< Empty for abstract declarators.
    SourceLoc Loc;
    std::vector<DeclChunk> Chunks; ///< From the name outward.
    /// Parameter VarDecls of the *outermost* function chunk, for function
    /// definitions.
    std::vector<VarDecl *> TopParams;
    bool TopIsFunction = false;
  };

  /// True if the current token can begin a declaration.
  bool atDeclarationStart();
  /// True if the current token can begin a type name (for casts/sizeof).
  bool atTypeNameStart();

  bool parseDeclSpec(DeclSpec &DS);
  const CType *parseStructOrUnionSpec();
  const CType *parseEnumSpec();
  bool parseDeclarator(Declarator &D, bool AllowAbstract);
  bool parseDeclaratorChunks(Declarator &D, bool AllowAbstract);
  bool parseParamList(DeclChunk &Chunk);
  CQualType buildType(CQualType Base, const Declarator &D);
  /// Parses a type-name (declspec + abstract declarator), for casts/sizeof.
  bool parseTypeName(CQualType &Out);

  /// Parses one external declaration (function def, prototype, globals,
  /// typedef, or tag-only declaration).
  bool parseExternalDecl();
  /// Parses the declarator list after the first declarator of a
  /// declaration; shared by globals and locals.
  bool parseInitDeclarators(const DeclSpec &DS, Declarator &First,
                            std::vector<VarDecl *> &Out, bool IsGlobal);
  VarDecl *makeVarDecl(const DeclSpec &DS, const Declarator &D,
                       bool IsGlobal);

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//
  const CStmt *parseStmt();
  const CStmt *parseCompoundStmt();

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//
  const CExpr *parseExpr();           ///< Includes comma.
  const CExpr *parseAssignExpr();
  const CExpr *parseConditionalExpr();
  const CExpr *parseBinaryExpr(int MinPrec);
  const CExpr *parseCastExpr();
  const CExpr *parseUnaryExpr();
  const CExpr *parsePostfixExpr();
  const CExpr *parsePrimaryExpr();
  /// Parses a constant integer expression (enum values, array sizes).
  bool parseConstantInt(long &Out);
};

/// Parses \p Source (registered under \p Name) into \p TU; returns false on
/// any parse error.
bool parseCSource(SourceManager &SM, std::string Name, std::string Source,
                  CAstContext &Ast, CTypeContext &Types,
                  StringInterner &Idents, DiagnosticEngine &Diags,
                  TranslationUnit &TU);

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_CPARSER_H

//===- cfront/CType.h - C types ----------------------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C types for the const-inference front end. Section 4.1 of the paper:
/// C types already contain qualifiers (CTyp ::= Q int | Q ptr(CTyp)), and
/// the analysis translates them into qualified ref types. This header
/// models the source-level types; constinf/RefTypes.h performs the
/// translation.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_CTYPE_H
#define QUALS_CFRONT_CTYPE_H

#include "support/Allocator.h"
#include "support/Casting.h"

#include <cassert>
#include <string>
#include <vector>

namespace quals {
namespace cfront {

class CType;
class RecordDecl;
class EnumDecl;

/// Source-level qualifier bits on a C type.
enum CQualBits : unsigned {
  CQ_None = 0,
  CQ_Const = 1u << 0,
  CQ_Volatile = 1u << 1
};

/// A C type together with its source qualifiers (clang-style QualType).
class CQualType {
public:
  CQualType() : Ty(nullptr), Quals(CQ_None) {}
  CQualType(const CType *Ty, unsigned Quals = CQ_None)
      : Ty(Ty), Quals(Quals) {}

  bool isNull() const { return Ty == nullptr; }
  const CType *getType() const { return Ty; }
  unsigned getQuals() const { return Quals; }
  bool isConst() const { return Quals & CQ_Const; }
  bool isVolatile() const { return Quals & CQ_Volatile; }

  CQualType withConst() const { return CQualType(Ty, Quals | CQ_Const); }
  CQualType withoutConst() const { return CQualType(Ty, Quals & ~CQ_Const); }
  CQualType withQuals(unsigned Q) const { return CQualType(Ty, Quals | Q); }

private:
  const CType *Ty;
  unsigned Quals;
};

/// Base class of all C types (kind-tag RTTI).
class CType {
public:
  enum class Kind {
    Builtin,
    Pointer,
    Array,
    Function,
    Record,
    Enum
  };

  Kind getKind() const { return TheKind; }

protected:
  explicit CType(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

/// void / char / int / double, etc.
class BuiltinType : public CType {
public:
  enum class Id {
    Void,
    Char, SChar, UChar,
    Short, UShort,
    Int, UInt,
    Long, ULong,
    Float, Double
  };

  explicit BuiltinType(Id TheId) : CType(Kind::Builtin), TheId(TheId) {}
  Id getId() const { return TheId; }
  bool isVoid() const { return TheId == Id::Void; }
  bool isInteger() const {
    return TheId != Id::Void && TheId != Id::Float && TheId != Id::Double;
  }
  bool isFloating() const {
    return TheId == Id::Float || TheId == Id::Double;
  }
  static bool classof(const CType *T) { return T->getKind() == Kind::Builtin; }

private:
  Id TheId;
};

/// T *
class PointerType : public CType {
public:
  explicit PointerType(CQualType Pointee)
      : CType(Kind::Pointer), Pointee(Pointee) {}
  CQualType getPointee() const { return Pointee; }
  static bool classof(const CType *T) { return T->getKind() == Kind::Pointer; }

private:
  CQualType Pointee;
};

/// T [N]  (Size < 0 when unspecified)
class ArrayType : public CType {
public:
  ArrayType(CQualType Element, long Size)
      : CType(Kind::Array), Element(Element), Size(Size) {}
  CQualType getElement() const { return Element; }
  long getSize() const { return Size; }
  static bool classof(const CType *T) { return T->getKind() == Kind::Array; }

private:
  CQualType Element;
  long Size;
};

/// T (params...)
class FunctionType : public CType {
public:
  FunctionType(CQualType Ret, std::vector<CQualType> Params, bool Variadic,
               bool NoPrototype)
      : CType(Kind::Function), Ret(Ret), Params(std::move(Params)),
        Variadic(Variadic), NoPrototype(NoPrototype) {}
  CQualType getReturn() const { return Ret; }
  const std::vector<CQualType> &getParams() const { return Params; }
  bool isVariadic() const { return Variadic; }
  /// True for K&R-style "T f()" declarations with unknown parameters.
  bool hasNoPrototype() const { return NoPrototype; }
  static bool classof(const CType *T) {
    return T->getKind() == Kind::Function;
  }

private:
  CQualType Ret;
  std::vector<CQualType> Params;
  bool Variadic;
  bool NoPrototype;
};

/// struct S / union U (fields live on the RecordDecl).
class RecordType : public CType {
public:
  explicit RecordType(RecordDecl *Decl) : CType(Kind::Record), Decl(Decl) {}
  RecordDecl *getDecl() const { return Decl; }
  static bool classof(const CType *T) { return T->getKind() == Kind::Record; }

private:
  RecordDecl *Decl;
};

/// enum E.
class EnumType : public CType {
public:
  explicit EnumType(EnumDecl *Decl) : CType(Kind::Enum), Decl(Decl) {}
  EnumDecl *getDecl() const { return Decl; }
  static bool classof(const CType *T) { return T->getKind() == Kind::Enum; }

private:
  EnumDecl *Decl;
};

/// Allocates C types; builtins are shared singletons.
class CTypeContext {
public:
  CTypeContext();

  const BuiltinType *getBuiltin(BuiltinType::Id Id) const {
    return Builtins[static_cast<unsigned>(Id)];
  }
  const BuiltinType *getVoid() const {
    return getBuiltin(BuiltinType::Id::Void);
  }
  const BuiltinType *getInt() const {
    return getBuiltin(BuiltinType::Id::Int);
  }
  const BuiltinType *getChar() const {
    return getBuiltin(BuiltinType::Id::Char);
  }
  const BuiltinType *getDouble() const {
    return getBuiltin(BuiltinType::Id::Double);
  }

  const PointerType *getPointer(CQualType Pointee) {
    return Arena.create<PointerType>(Pointee);
  }
  const ArrayType *getArray(CQualType Element, long Size) {
    return Arena.create<ArrayType>(Element, Size);
  }
  const FunctionType *getFunction(CQualType Ret,
                                  std::vector<CQualType> Params,
                                  bool Variadic, bool NoPrototype = false) {
    return Arena.create<FunctionType>(Ret, std::move(Params), Variadic,
                                      NoPrototype);
  }
  const RecordType *getRecord(RecordDecl *Decl) {
    return Arena.create<RecordType>(Decl);
  }
  const EnumType *getEnum(EnumDecl *Decl) {
    return Arena.create<EnumType>(Decl);
  }

  BumpPtrAllocator &getArena() { return Arena; }

private:
  BumpPtrAllocator Arena;
  const BuiltinType *Builtins[12];
};

/// True if \p T behaves as an integer (including enums) in conditions and
/// arithmetic.
bool isIntegerLike(const CType *T);

/// True if \p T is a scalar (integer, floating, or pointer).
bool isScalar(const CType *T);

/// Renders \p T in C-ish syntax ("const int *", "int (*)(char *)").
std::string toString(CQualType T);

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_CTYPE_H

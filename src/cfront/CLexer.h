//===- cfront/CLexer.h - C lexer ---------------------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_CLEXER_H
#define QUALS_CFRONT_CLEXER_H

#include "cfront/CToken.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

namespace quals {
namespace cfront {

/// Hand-written C lexer. Handles // and /* */ comments; lines starting with
/// '#' (preprocessor directives) are skipped wholesale -- benchmark inputs
/// are expected to be preprocessed or directive-free.
class CLexer {
public:
  CLexer(const SourceManager &SM, unsigned BufferId, DiagnosticEngine &Diags);

  CToken next();

private:
  const SourceManager &SM;
  DiagnosticEngine &Diags;
  std::string_view Text;
  size_t Pos = 0;
  unsigned BufferId;

  SourceLoc locAt(size_t Offset) const {
    return SM.getLocForOffset(BufferId, Offset);
  }
  void skipTrivia();
  CToken make(CTok Kind, size_t Begin);
  CToken lexNumber(size_t Begin);
  CToken lexIdentOrKeyword(size_t Begin);
  CToken lexCharLit(size_t Begin);
  CToken lexStringLit(size_t Begin);
};

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_CLEXER_H

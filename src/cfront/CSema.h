//===- cfront/CSema.h - C semantic analysis ----------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for the C subset: name resolution, expression typing,
/// and l-value classification. This is the "standard type system" phase of
/// the paper's factorization -- const inference (constinf/) runs afterwards
/// over the typed AST and deals purely in qualifiers.
///
/// Per Section 4.2, calls to functions the program never defines get an
/// implicit declaration (the conservative library-function handling); the
/// analysis later treats their non-const parameters as non-const.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_CSEMA_H
#define QUALS_CFRONT_CSEMA_H

#include "cfront/CAst.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <unordered_map>
#include <vector>

namespace quals {
namespace cfront {

/// Types expressions and resolves names in a parsed TranslationUnit.
class CSema {
public:
  CSema(CAstContext &Ast, CTypeContext &Types, StringInterner &Idents,
        DiagnosticEngine &Diags)
      : Ast(Ast), Types(Types), Idents(Idents), Diags(Diags) {}

  /// Analyzes the whole unit. Returns false if errors were reported
  /// (analysis still completes as far as possible).
  bool analyze(TranslationUnit &TU);

private:
  CAstContext &Ast;
  CTypeContext &Types;
  StringInterner &Idents;
  DiagnosticEngine &Diags;
  TranslationUnit *TU = nullptr;
  const FunctionDecl *CurrentFunction = nullptr;
  bool HadError = false;

  std::vector<std::unordered_map<std::string_view, const CDecl *>> Scopes;

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(const CDecl *D);
  const CDecl *lookup(std::string_view Name) const;

  void error(SourceLoc Loc, const std::string &Message);

  void analyzeFunction(FunctionDecl *FD);
  void analyzeStmt(const CStmt *S);
  /// Types \p E (and records the type on the node). Returns the type.
  CQualType checkExpr(const CExpr *E);
  /// Type of \p E as an r-value: arrays decay to pointers, functions to
  /// function pointers.
  CQualType decayed(CQualType T);
  /// Ensures the callee is resolvable, creating an implicit declaration for
  /// unknown functions (C89 style).
  const FunctionDecl *resolveCallee(const CExpr *Callee);
};

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_CSEMA_H

//===- cfront/CAst.h - C declarations, statements, expressions --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the C-subset front end. Arena-allocated, kind-tag RTTI.
/// Expressions carry the type computed by semantic analysis (CSema) plus an
/// l-value flag -- the distinction Section 4.1 builds on (every C variable
/// is an updateable ref; r-value uses auto-dereference).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_CAST_H
#define QUALS_CFRONT_CAST_H

#include "cfront/CType.h"
#include "support/SourceLoc.h"

#include <string_view>
#include <unordered_map>
#include <vector>

namespace quals {
namespace cfront {

class CExpr;
class CStmt;
class VarDecl;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Storage class of a declaration.
enum class StorageClass { None, Typedef, Extern, Static, Register, Auto };

/// Base class of all declarations.
class CDecl {
public:
  enum class Kind { Var, Function, Record, Enum, Typedef, Field };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }
  std::string_view getName() const { return Name; }

protected:
  CDecl(Kind K, std::string_view Name, SourceLoc Loc)
      : TheKind(K), Name(Name), Loc(Loc) {}

private:
  Kind TheKind;
  std::string_view Name;
  SourceLoc Loc;
};

/// A variable or parameter.
class VarDecl : public CDecl {
public:
  VarDecl(std::string_view Name, CQualType Type, StorageClass SC,
          bool IsParam, SourceLoc Loc)
      : CDecl(Kind::Var, Name, Loc), Type(Type), SC(SC), IsParam(IsParam) {}

  CQualType getType() const { return Type; }
  StorageClass getStorageClass() const { return SC; }
  bool isParam() const { return IsParam; }
  const CExpr *getInit() const { return Init; }
  void setInit(const CExpr *E) { Init = E; }
  bool isGlobal() const { return Global; }
  void setGlobal(bool G) { Global = G; }

  static bool classof(const CDecl *D) { return D->getKind() == Kind::Var; }

private:
  CQualType Type;
  StorageClass SC;
  bool IsParam;
  bool Global = false;
  const CExpr *Init = nullptr;
};

/// A struct/union field.
class FieldDecl : public CDecl {
public:
  FieldDecl(std::string_view Name, CQualType Type, unsigned Index,
            SourceLoc Loc)
      : CDecl(Kind::Field, Name, Loc), Type(Type), Index(Index) {}
  CQualType getType() const { return Type; }
  unsigned getIndex() const { return Index; }
  static bool classof(const CDecl *D) { return D->getKind() == Kind::Field; }

private:
  CQualType Type;
  unsigned Index;
};

/// struct S { ... } or union U { ... }. Definitions may be completed after
/// first (forward) use.
class RecordDecl : public CDecl {
public:
  RecordDecl(std::string_view Tag, bool IsUnion, SourceLoc Loc)
      : CDecl(Kind::Record, Tag, Loc), IsUnion(IsUnion) {}

  bool isUnion() const { return IsUnion; }
  bool isComplete() const { return Complete; }
  void complete(std::vector<FieldDecl *> TheFields) {
    Fields = std::move(TheFields);
    Complete = true;
  }
  const std::vector<FieldDecl *> &getFields() const { return Fields; }
  FieldDecl *findField(std::string_view Name) const {
    for (FieldDecl *F : Fields)
      if (F->getName() == Name)
        return F;
    return nullptr;
  }

  static bool classof(const CDecl *D) { return D->getKind() == Kind::Record; }

private:
  bool IsUnion;
  bool Complete = false;
  std::vector<FieldDecl *> Fields;
};

/// enum E { A, B = 4 }.
class EnumDecl : public CDecl {
public:
  struct Enumerator {
    std::string_view Name;
    long Value;
  };

  EnumDecl(std::string_view Tag, SourceLoc Loc)
      : CDecl(Kind::Enum, Tag, Loc) {}
  void addEnumerator(std::string_view Name, long Value) {
    Enumerators.push_back({Name, Value});
  }
  const std::vector<Enumerator> &getEnumerators() const {
    return Enumerators;
  }
  static bool classof(const CDecl *D) { return D->getKind() == Kind::Enum; }

private:
  std::vector<Enumerator> Enumerators;
};

/// typedef T Name. Per Section 4.2, typedefs are macro-expanded: the
/// underlying type is substituted at use sites with fresh qualifier
/// variables, so distinct declarations do not share qualifiers.
class TypedefDecl : public CDecl {
public:
  TypedefDecl(std::string_view Name, CQualType Underlying, SourceLoc Loc)
      : CDecl(Kind::Typedef, Name, Loc), Underlying(Underlying) {}
  CQualType getUnderlying() const { return Underlying; }
  static bool classof(const CDecl *D) {
    return D->getKind() == Kind::Typedef;
  }

private:
  CQualType Underlying;
};

/// A function declaration or definition.
class FunctionDecl : public CDecl {
public:
  FunctionDecl(std::string_view Name, const FunctionType *Type,
               std::vector<VarDecl *> Params, StorageClass SC, SourceLoc Loc)
      : CDecl(Kind::Function, Name, Loc), Type(Type),
        Params(std::move(Params)), SC(SC) {}

  const FunctionType *getType() const { return Type; }
  const std::vector<VarDecl *> &getParams() const { return Params; }
  StorageClass getStorageClass() const { return SC; }
  const CStmt *getBody() const { return Body; }
  void setBody(const CStmt *B) { Body = B; }
  bool isDefined() const { return Body != nullptr; }
  /// True when the program never defines this function (library function,
  /// Section 4.2's conservative handling).
  bool isImplicit() const { return Implicit; }
  void setImplicit(bool I) { Implicit = I; }

  static bool classof(const CDecl *D) {
    return D->getKind() == Kind::Function;
  }

private:
  const FunctionType *Type;
  std::vector<VarDecl *> Params;
  StorageClass SC;
  const CStmt *Body = nullptr;
  bool Implicit = false;
};

/// A whole translation unit (or several merged ones; the paper analyzes
/// multi-file programs at once).
struct TranslationUnit {
  std::vector<CDecl *> Decls;
  /// Function definitions and declarations, in order of appearance.
  std::vector<FunctionDecl *> Functions;
  /// File-scope variables.
  std::vector<VarDecl *> Globals;
  /// All record declarations (for struct-field sharing in constinf).
  std::vector<RecordDecl *> Records;
  /// Functions by name; redeclarations across buffers merge here.
  std::unordered_map<std::string_view, FunctionDecl *> FunctionMap;
  /// File-scope variables by name.
  std::unordered_map<std::string_view, VarDecl *> GlobalMap;
  /// Enumerator constants (flat namespace; adequate for the subset).
  std::unordered_map<std::string_view, long> EnumConstants;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of C expressions. Sema fills Type and LValue.
class CExpr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    StringLit,
    DeclRef,
    Unary,
    Binary,
    Conditional,
    Call,
    Member,
    Subscript,
    Cast,
    SizeOf,
    Comma,
    InitList
  };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

  CQualType getType() const { return Type; }
  void setType(CQualType T) const { Type = T; }
  bool isLValue() const { return LValue; }
  void setLValue(bool L) const { LValue = L; }

protected:
  CExpr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
  // Written by semantic analysis after construction; the AST is otherwise
  // immutable, so these are the usual analysis side-tables folded in.
  mutable CQualType Type;
  mutable bool LValue = false;
};

/// Integer or character literal.
class CIntLit : public CExpr {
public:
  CIntLit(long Value, SourceLoc Loc) : CExpr(Kind::IntLit, Loc), Value(Value) {}
  long getValue() const { return Value; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::IntLit; }

private:
  long Value;
};

/// Floating literal.
class CFloatLit : public CExpr {
public:
  CFloatLit(double Value, SourceLoc Loc)
      : CExpr(Kind::FloatLit, Loc), Value(Value) {}
  double getValue() const { return Value; }
  static bool classof(const CExpr *E) {
    return E->getKind() == Kind::FloatLit;
  }

private:
  double Value;
};

/// String literal (type char[N] / decays to char *).
class CStringLit : public CExpr {
public:
  CStringLit(std::string_view Text, SourceLoc Loc)
      : CExpr(Kind::StringLit, Loc), Text(Text) {}
  std::string_view getText() const { return Text; }
  static bool classof(const CExpr *E) {
    return E->getKind() == Kind::StringLit;
  }

private:
  std::string_view Text;
};

/// Reference to a variable, function, or enumerator.
class CDeclRef : public CExpr {
public:
  CDeclRef(std::string_view Name, SourceLoc Loc)
      : CExpr(Kind::DeclRef, Loc), Name(Name) {}
  std::string_view getName() const { return Name; }
  const CDecl *getDecl() const { return Decl; }
  void setDecl(const CDecl *D) const { Decl = D; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::DeclRef; }

private:
  std::string_view Name;
  mutable const CDecl *Decl = nullptr;
};

/// Unary operators.
enum class UnaryOp {
  Deref,     ///< *p
  AddrOf,    ///< &x
  Plus,      ///< +e
  Minus,     ///< -e
  Not,       ///< !e
  BitNot,    ///< ~e
  PreInc, PreDec, PostInc, PostDec
};

class CUnary : public CExpr {
public:
  CUnary(UnaryOp Op, const CExpr *Operand, SourceLoc Loc)
      : CExpr(Kind::Unary, Loc), Op(Op), Operand(Operand) {}
  UnaryOp getOp() const { return Op; }
  const CExpr *getOperand() const { return Operand; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  const CExpr *Operand;
};

/// Binary (and assignment) operators.
enum class BinaryOp {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, And, Or, Xor,
  LAnd, LOr,
  Lt, Gt, Le, Ge, Eq, Ne,
  Assign,
  AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
  ShlAssign, ShrAssign, AndAssign, OrAssign, XorAssign
};

/// True for '=' and the compound assignments.
bool isAssignmentOp(BinaryOp Op);

class CBinary : public CExpr {
public:
  CBinary(BinaryOp Op, const CExpr *Lhs, const CExpr *Rhs, SourceLoc Loc)
      : CExpr(Kind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp getOp() const { return Op; }
  const CExpr *getLhs() const { return Lhs; }
  const CExpr *getRhs() const { return Rhs; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  const CExpr *Lhs;
  const CExpr *Rhs;
};

/// c ? t : f.
class CConditional : public CExpr {
public:
  CConditional(const CExpr *Cond, const CExpr *Then, const CExpr *Else,
               SourceLoc Loc)
      : CExpr(Kind::Conditional, Loc), Cond(Cond), Then(Then), Else(Else) {}
  const CExpr *getCond() const { return Cond; }
  const CExpr *getThen() const { return Then; }
  const CExpr *getElse() const { return Else; }
  static bool classof(const CExpr *E) {
    return E->getKind() == Kind::Conditional;
  }

private:
  const CExpr *Cond;
  const CExpr *Then;
  const CExpr *Else;
};

/// f(args...).
class CCall : public CExpr {
public:
  CCall(const CExpr *Callee, std::vector<const CExpr *> Args, SourceLoc Loc)
      : CExpr(Kind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  const CExpr *getCallee() const { return Callee; }
  const std::vector<const CExpr *> &getArgs() const { return Args; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::Call; }

private:
  const CExpr *Callee;
  std::vector<const CExpr *> Args;
};

/// base.field or base->field.
class CMember : public CExpr {
public:
  CMember(const CExpr *Base, std::string_view Field, bool IsArrow,
          SourceLoc Loc)
      : CExpr(Kind::Member, Loc), Base(Base), Field(Field), IsArrow(IsArrow) {}
  const CExpr *getBase() const { return Base; }
  std::string_view getFieldName() const { return Field; }
  bool isArrow() const { return IsArrow; }
  const FieldDecl *getField() const { return ResolvedField; }
  void setField(const FieldDecl *F) const { ResolvedField = F; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::Member; }

private:
  const CExpr *Base;
  std::string_view Field;
  bool IsArrow;
  mutable const FieldDecl *ResolvedField = nullptr;
};

/// base[index].
class CSubscript : public CExpr {
public:
  CSubscript(const CExpr *Base, const CExpr *Index, SourceLoc Loc)
      : CExpr(Kind::Subscript, Loc), Base(Base), Index(Index) {}
  const CExpr *getBase() const { return Base; }
  const CExpr *getIndex() const { return Index; }
  static bool classof(const CExpr *E) {
    return E->getKind() == Kind::Subscript;
  }

private:
  const CExpr *Base;
  const CExpr *Index;
};

/// (T)e -- explicit casts sever qualifier flow (Section 4.2).
class CCast : public CExpr {
public:
  CCast(CQualType TargetType, const CExpr *Operand, SourceLoc Loc)
      : CExpr(Kind::Cast, Loc), TargetType(TargetType), Operand(Operand) {}
  CQualType getTargetType() const { return TargetType; }
  const CExpr *getOperand() const { return Operand; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::Cast; }

private:
  CQualType TargetType;
  const CExpr *Operand;
};

/// sizeof(T) or sizeof e.
class CSizeOf : public CExpr {
public:
  CSizeOf(CQualType ArgType, const CExpr *ArgExpr, SourceLoc Loc)
      : CExpr(Kind::SizeOf, Loc), ArgType(ArgType), ArgExpr(ArgExpr) {}
  CQualType getArgType() const { return ArgType; }
  const CExpr *getArgExpr() const { return ArgExpr; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::SizeOf; }

private:
  CQualType ArgType;      ///< Null when the operand is an expression.
  const CExpr *ArgExpr;   ///< Null when the operand is a type.
};

/// a, b.
class CComma : public CExpr {
public:
  CComma(const CExpr *Lhs, const CExpr *Rhs, SourceLoc Loc)
      : CExpr(Kind::Comma, Loc), Lhs(Lhs), Rhs(Rhs) {}
  const CExpr *getLhs() const { return Lhs; }
  const CExpr *getRhs() const { return Rhs; }
  static bool classof(const CExpr *E) { return E->getKind() == Kind::Comma; }

private:
  const CExpr *Lhs;
  const CExpr *Rhs;
};

/// { e1, e2, ... } initializer list.
class CInitList : public CExpr {
public:
  CInitList(std::vector<const CExpr *> Inits, SourceLoc Loc)
      : CExpr(Kind::InitList, Loc), Inits(std::move(Inits)) {}
  const std::vector<const CExpr *> &getInits() const { return Inits; }
  static bool classof(const CExpr *E) {
    return E->getKind() == Kind::InitList;
  }

private:
  std::vector<const CExpr *> Inits;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class CStmt {
public:
  enum class Kind {
    Compound,
    Expr,
    Decl,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    Switch,
    Case,
    Default,
    Null,
    Goto,
    Label
  };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  CStmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

class CCompoundStmt : public CStmt {
public:
  CCompoundStmt(std::vector<const CStmt *> Body, SourceLoc Loc)
      : CStmt(Kind::Compound, Loc), Body(std::move(Body)) {}
  const std::vector<const CStmt *> &getBody() const { return Body; }
  static bool classof(const CStmt *S) {
    return S->getKind() == Kind::Compound;
  }

private:
  std::vector<const CStmt *> Body;
};

class CExprStmt : public CStmt {
public:
  CExprStmt(const CExpr *E, SourceLoc Loc) : CStmt(Kind::Expr, Loc), E(E) {}
  const CExpr *getExpr() const { return E; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Expr; }

private:
  const CExpr *E;
};

/// A local declaration statement (possibly several declarators).
class CDeclStmt : public CStmt {
public:
  CDeclStmt(std::vector<VarDecl *> Decls, SourceLoc Loc)
      : CStmt(Kind::Decl, Loc), Decls(std::move(Decls)) {}
  const std::vector<VarDecl *> &getDecls() const { return Decls; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Decl; }

private:
  std::vector<VarDecl *> Decls;
};

class CIfStmt : public CStmt {
public:
  CIfStmt(const CExpr *Cond, const CStmt *Then, const CStmt *Else,
          SourceLoc Loc)
      : CStmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  const CExpr *getCond() const { return Cond; }
  const CStmt *getThen() const { return Then; }
  const CStmt *getElse() const { return Else; } ///< May be null.
  static bool classof(const CStmt *S) { return S->getKind() == Kind::If; }

private:
  const CExpr *Cond;
  const CStmt *Then;
  const CStmt *Else;
};

class CWhileStmt : public CStmt {
public:
  CWhileStmt(const CExpr *Cond, const CStmt *Body, SourceLoc Loc)
      : CStmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  const CExpr *getCond() const { return Cond; }
  const CStmt *getBody() const { return Body; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::While; }

private:
  const CExpr *Cond;
  const CStmt *Body;
};

class CDoWhileStmt : public CStmt {
public:
  CDoWhileStmt(const CStmt *Body, const CExpr *Cond, SourceLoc Loc)
      : CStmt(Kind::DoWhile, Loc), Body(Body), Cond(Cond) {}
  const CStmt *getBody() const { return Body; }
  const CExpr *getCond() const { return Cond; }
  static bool classof(const CStmt *S) {
    return S->getKind() == Kind::DoWhile;
  }

private:
  const CStmt *Body;
  const CExpr *Cond;
};

class CForStmt : public CStmt {
public:
  CForStmt(const CStmt *Init, const CExpr *Cond, const CExpr *Step,
           const CStmt *Body, SourceLoc Loc)
      : CStmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  const CStmt *getInit() const { return Init; } ///< May be null.
  const CExpr *getCond() const { return Cond; } ///< May be null.
  const CExpr *getStep() const { return Step; } ///< May be null.
  const CStmt *getBody() const { return Body; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::For; }

private:
  const CStmt *Init;
  const CExpr *Cond;
  const CExpr *Step;
  const CStmt *Body;
};

class CReturnStmt : public CStmt {
public:
  CReturnStmt(const CExpr *Value, SourceLoc Loc)
      : CStmt(Kind::Return, Loc), Value(Value) {}
  const CExpr *getValue() const { return Value; } ///< May be null.
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Return; }

private:
  const CExpr *Value;
};

class CBreakStmt : public CStmt {
public:
  explicit CBreakStmt(SourceLoc Loc) : CStmt(Kind::Break, Loc) {}
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Break; }
};

class CContinueStmt : public CStmt {
public:
  explicit CContinueStmt(SourceLoc Loc) : CStmt(Kind::Continue, Loc) {}
  static bool classof(const CStmt *S) {
    return S->getKind() == Kind::Continue;
  }
};

class CSwitchStmt : public CStmt {
public:
  CSwitchStmt(const CExpr *Cond, const CStmt *Body, SourceLoc Loc)
      : CStmt(Kind::Switch, Loc), Cond(Cond), Body(Body) {}
  const CExpr *getCond() const { return Cond; }
  const CStmt *getBody() const { return Body; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Switch; }

private:
  const CExpr *Cond;
  const CStmt *Body;
};

class CCaseStmt : public CStmt {
public:
  CCaseStmt(const CExpr *Value, const CStmt *Sub, SourceLoc Loc)
      : CStmt(Kind::Case, Loc), Value(Value), Sub(Sub) {}
  const CExpr *getValue() const { return Value; }
  const CStmt *getSub() const { return Sub; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Case; }

private:
  const CExpr *Value;
  const CStmt *Sub;
};

class CDefaultStmt : public CStmt {
public:
  CDefaultStmt(const CStmt *Sub, SourceLoc Loc)
      : CStmt(Kind::Default, Loc), Sub(Sub) {}
  const CStmt *getSub() const { return Sub; }
  static bool classof(const CStmt *S) {
    return S->getKind() == Kind::Default;
  }

private:
  const CStmt *Sub;
};

class CNullStmt : public CStmt {
public:
  explicit CNullStmt(SourceLoc Loc) : CStmt(Kind::Null, Loc) {}
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Null; }
};

class CGotoStmt : public CStmt {
public:
  CGotoStmt(std::string_view Label, SourceLoc Loc)
      : CStmt(Kind::Goto, Loc), Label(Label) {}
  std::string_view getLabel() const { return Label; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Goto; }

private:
  std::string_view Label;
};

class CLabelStmt : public CStmt {
public:
  CLabelStmt(std::string_view Label, const CStmt *Sub, SourceLoc Loc)
      : CStmt(Kind::Label, Loc), Label(Label), Sub(Sub) {}
  std::string_view getLabel() const { return Label; }
  const CStmt *getSub() const { return Sub; }
  static bool classof(const CStmt *S) { return S->getKind() == Kind::Label; }

private:
  std::string_view Label;
  const CStmt *Sub;
};

/// Owns the arena behind a translation unit's AST.
class CAstContext {
public:
  template <typename T, typename... Args> T *create(Args &&...A) {
    return Arena.create<T>(std::forward<Args>(A)...);
  }

private:
  BumpPtrAllocator Arena;
};

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_CAST_H

//===- cfront/CLexer.cpp - C lexer -----------------------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/CLexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

using namespace quals;
using namespace quals::cfront;

const char *quals::cfront::ctokName(CTok Kind) {
  switch (Kind) {
  case CTok::Eof:        return "end of input";
  case CTok::Error:      return "invalid token";
  case CTok::Ident:      return "identifier";
  case CTok::IntLit:     return "integer literal";
  case CTok::CharLit:    return "character literal";
  case CTok::FloatLit:   return "floating literal";
  case CTok::StringLit:  return "string literal";
  case CTok::KwVoid:     return "'void'";
  case CTok::KwChar:     return "'char'";
  case CTok::KwShort:    return "'short'";
  case CTok::KwInt:      return "'int'";
  case CTok::KwLong:     return "'long'";
  case CTok::KwFloat:    return "'float'";
  case CTok::KwDouble:   return "'double'";
  case CTok::KwSigned:   return "'signed'";
  case CTok::KwUnsigned: return "'unsigned'";
  case CTok::KwStruct:   return "'struct'";
  case CTok::KwUnion:    return "'union'";
  case CTok::KwEnum:     return "'enum'";
  case CTok::KwTypedef:  return "'typedef'";
  case CTok::KwConst:    return "'const'";
  case CTok::KwVolatile: return "'volatile'";
  case CTok::KwStatic:   return "'static'";
  case CTok::KwExtern:   return "'extern'";
  case CTok::KwRegister: return "'register'";
  case CTok::KwAuto:     return "'auto'";
  case CTok::KwReturn:   return "'return'";
  case CTok::KwIf:       return "'if'";
  case CTok::KwElse:     return "'else'";
  case CTok::KwWhile:    return "'while'";
  case CTok::KwFor:      return "'for'";
  case CTok::KwDo:       return "'do'";
  case CTok::KwBreak:    return "'break'";
  case CTok::KwContinue: return "'continue'";
  case CTok::KwSwitch:   return "'switch'";
  case CTok::KwCase:     return "'case'";
  case CTok::KwDefault:  return "'default'";
  case CTok::KwSizeof:   return "'sizeof'";
  case CTok::KwGoto:     return "'goto'";
  case CTok::LParen:     return "'('";
  case CTok::RParen:     return "')'";
  case CTok::LBrace:     return "'{'";
  case CTok::RBrace:     return "'}'";
  case CTok::LBracket:   return "'['";
  case CTok::RBracket:   return "']'";
  case CTok::Semi:       return "';'";
  case CTok::Comma:      return "','";
  case CTok::Colon:      return "':'";
  case CTok::Question:   return "'?'";
  case CTok::Ellipsis:   return "'...'";
  case CTok::Dot:        return "'.'";
  case CTok::Arrow:      return "'->'";
  case CTok::Amp:        return "'&'";
  case CTok::AmpAmp:     return "'&&'";
  case CTok::Pipe:       return "'|'";
  case CTok::PipePipe:   return "'||'";
  case CTok::Caret:      return "'^'";
  case CTok::Tilde:      return "'~'";
  case CTok::Bang:       return "'!'";
  case CTok::Plus:       return "'+'";
  case CTok::PlusPlus:   return "'++'";
  case CTok::Minus:      return "'-'";
  case CTok::MinusMinus: return "'--'";
  case CTok::Star:       return "'*'";
  case CTok::Slash:      return "'/'";
  case CTok::Percent:    return "'%'";
  case CTok::Less:       return "'<'";
  case CTok::LessEq:     return "'<='";
  case CTok::Greater:    return "'>'";
  case CTok::GreaterEq:  return "'>='";
  case CTok::EqEq:       return "'=='";
  case CTok::BangEq:     return "'!='";
  case CTok::LessLess:   return "'<<'";
  case CTok::GreaterGreater: return "'>>'";
  case CTok::Assign:     return "'='";
  case CTok::PlusAssign: return "'+='";
  case CTok::MinusAssign: return "'-='";
  case CTok::StarAssign: return "'*='";
  case CTok::SlashAssign: return "'/='";
  case CTok::PercentAssign: return "'%='";
  case CTok::AmpAssign:  return "'&='";
  case CTok::PipeAssign: return "'|='";
  case CTok::CaretAssign: return "'^='";
  case CTok::LessLessAssign: return "'<<='";
  case CTok::GreaterGreaterAssign: return "'>>='";
  }
  return "unknown token";
}

CLexer::CLexer(const SourceManager &SM, unsigned BufferId,
               DiagnosticEngine &Diags)
    : SM(SM), Diags(Diags), Text(SM.getBufferText(BufferId)),
      BufferId(BufferId) {}

void CLexer::skipTrivia() {
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '#') { // Preprocessor directive: skip to end of line.
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < Text.size()) {
      if (Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (Text[Pos + 1] == '*') {
        size_t Start = Pos;
        Pos += 2;
        while (Pos + 1 < Text.size() &&
               !(Text[Pos] == '*' && Text[Pos + 1] == '/'))
          ++Pos;
        if (Pos + 1 >= Text.size()) {
          Diags.error(locAt(Start), "unterminated block comment");
          Pos = Text.size();
          return;
        }
        Pos += 2;
        continue;
      }
    }
    break;
  }
}

CToken CLexer::make(CTok Kind, size_t Begin) {
  CToken T;
  T.Kind = Kind;
  T.Loc = locAt(Begin);
  T.Text = Text.substr(Begin, Pos - Begin);
  return T;
}

CToken CLexer::lexNumber(size_t Begin) {
  bool IsFloat = false;
  if (Text[Pos] == '0' && Pos + 1 < Text.size() &&
      (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
    Pos += 2;
    while (Pos < Text.size() &&
           std::isxdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  } else {
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsFloat = true;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsFloat = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
  }
  // Integer/float suffixes.
  while (Pos < Text.size() &&
         (Text[Pos] == 'u' || Text[Pos] == 'U' || Text[Pos] == 'l' ||
          Text[Pos] == 'L' || Text[Pos] == 'f' || Text[Pos] == 'F')) {
    if (Text[Pos] == 'f' || Text[Pos] == 'F')
      IsFloat = true;
    ++Pos;
  }
  CToken T = make(IsFloat ? CTok::FloatLit : CTok::IntLit, Begin);
  std::string Spelling(T.Text);
  if (IsFloat) {
    T.FloatValue = std::strtod(Spelling.c_str(), nullptr);
  } else {
    // strtol silently clamps to LONG_MAX/LONG_MIN on overflow; only errno
    // distinguishes 9223372036854775807 from a runaway literal.
    errno = 0;
    T.IntValue = std::strtol(Spelling.c_str(), nullptr, 0);
    if (errno == ERANGE)
      Diags.error(T.Loc, "integer literal out of range");
  }
  return T;
}

CToken CLexer::lexIdentOrKeyword(size_t Begin) {
  while (Pos < Text.size() &&
         (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
          Text[Pos] == '_'))
    ++Pos;
  static const std::unordered_map<std::string_view, CTok> Keywords = {
      {"void", CTok::KwVoid},         {"char", CTok::KwChar},
      {"short", CTok::KwShort},       {"int", CTok::KwInt},
      {"long", CTok::KwLong},         {"float", CTok::KwFloat},
      {"double", CTok::KwDouble},     {"signed", CTok::KwSigned},
      {"unsigned", CTok::KwUnsigned}, {"struct", CTok::KwStruct},
      {"union", CTok::KwUnion},       {"enum", CTok::KwEnum},
      {"typedef", CTok::KwTypedef},   {"const", CTok::KwConst},
      {"volatile", CTok::KwVolatile}, {"static", CTok::KwStatic},
      {"extern", CTok::KwExtern},     {"register", CTok::KwRegister},
      {"auto", CTok::KwAuto},         {"return", CTok::KwReturn},
      {"if", CTok::KwIf},             {"else", CTok::KwElse},
      {"while", CTok::KwWhile},       {"for", CTok::KwFor},
      {"do", CTok::KwDo},             {"break", CTok::KwBreak},
      {"continue", CTok::KwContinue}, {"switch", CTok::KwSwitch},
      {"case", CTok::KwCase},         {"default", CTok::KwDefault},
      {"sizeof", CTok::KwSizeof},     {"goto", CTok::KwGoto}};
  std::string_view Word = Text.substr(Begin, Pos - Begin);
  auto It = Keywords.find(Word);
  return make(It == Keywords.end() ? CTok::Ident : It->second, Begin);
}

CToken CLexer::lexCharLit(size_t Begin) {
  ++Pos; // consume '
  long Value = 0;
  if (Pos < Text.size() && Text[Pos] == '\\') {
    ++Pos;
    if (Pos < Text.size()) {
      switch (Text[Pos]) {
      case 'n': Value = '\n'; break;
      case 't': Value = '\t'; break;
      case 'r': Value = '\r'; break;
      case '0': Value = '\0'; break;
      case '\\': Value = '\\'; break;
      case '\'': Value = '\''; break;
      case '"': Value = '"'; break;
      default: Value = Text[Pos]; break;
      }
      ++Pos;
    }
  } else if (Pos < Text.size()) {
    Value = Text[Pos];
    ++Pos;
  }
  if (Pos < Text.size() && Text[Pos] == '\'')
    ++Pos;
  else
    Diags.error(locAt(Begin), "unterminated character literal");
  CToken T = make(CTok::CharLit, Begin);
  T.IntValue = Value;
  return T;
}

CToken CLexer::lexStringLit(size_t Begin) {
  ++Pos; // consume "
  while (Pos < Text.size() && Text[Pos] != '"') {
    if (Text[Pos] == '\\' && Pos + 1 < Text.size())
      ++Pos;
    ++Pos;
  }
  if (Pos < Text.size())
    ++Pos;
  else
    Diags.error(locAt(Begin), "unterminated string literal");
  return make(CTok::StringLit, Begin);
}

CToken CLexer::next() {
  skipTrivia();
  if (Pos >= Text.size())
    return make(CTok::Eof, Pos);

  size_t Begin = Pos;
  char C = Text[Pos];

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Begin);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    return lexIdentOrKeyword(Begin);
  }
  if (C == '\'')
    return lexCharLit(Begin);
  if (C == '"')
    return lexStringLit(Begin);

  auto twoChar = [&](char Next, CTok Two, CTok One) {
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == Next) {
      ++Pos;
      return make(Two, Begin);
    }
    return make(One, Begin);
  };

  switch (C) {
  case '(': ++Pos; return make(CTok::LParen, Begin);
  case ')': ++Pos; return make(CTok::RParen, Begin);
  case '{': ++Pos; return make(CTok::LBrace, Begin);
  case '}': ++Pos; return make(CTok::RBrace, Begin);
  case '[': ++Pos; return make(CTok::LBracket, Begin);
  case ']': ++Pos; return make(CTok::RBracket, Begin);
  case ';': ++Pos; return make(CTok::Semi, Begin);
  case ',': ++Pos; return make(CTok::Comma, Begin);
  case ':': ++Pos; return make(CTok::Colon, Begin);
  case '?': ++Pos; return make(CTok::Question, Begin);
  case '~': ++Pos; return make(CTok::Tilde, Begin);
  case '.':
    if (Pos + 2 < Text.size() && Text[Pos + 1] == '.' &&
        Text[Pos + 2] == '.') {
      Pos += 3;
      return make(CTok::Ellipsis, Begin);
    }
    ++Pos;
    return make(CTok::Dot, Begin);
  case '!': return twoChar('=', CTok::BangEq, CTok::Bang);
  case '=': return twoChar('=', CTok::EqEq, CTok::Assign);
  case '^': return twoChar('=', CTok::CaretAssign, CTok::Caret);
  case '*': return twoChar('=', CTok::StarAssign, CTok::Star);
  case '/': return twoChar('=', CTok::SlashAssign, CTok::Slash);
  case '%': return twoChar('=', CTok::PercentAssign, CTok::Percent);
  case '+':
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '+') { ++Pos; return make(CTok::PlusPlus, Begin); }
    if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::PlusAssign, Begin); }
    return make(CTok::Plus, Begin);
  case '-':
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '-') { ++Pos; return make(CTok::MinusMinus, Begin); }
    if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::MinusAssign, Begin); }
    if (Pos < Text.size() && Text[Pos] == '>') { ++Pos; return make(CTok::Arrow, Begin); }
    return make(CTok::Minus, Begin);
  case '&':
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '&') { ++Pos; return make(CTok::AmpAmp, Begin); }
    if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::AmpAssign, Begin); }
    return make(CTok::Amp, Begin);
  case '|':
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '|') { ++Pos; return make(CTok::PipePipe, Begin); }
    if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::PipeAssign, Begin); }
    return make(CTok::Pipe, Begin);
  case '<':
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '<') {
      ++Pos;
      if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::LessLessAssign, Begin); }
      return make(CTok::LessLess, Begin);
    }
    if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::LessEq, Begin); }
    return make(CTok::Less, Begin);
  case '>':
    ++Pos;
    if (Pos < Text.size() && Text[Pos] == '>') {
      ++Pos;
      if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::GreaterGreaterAssign, Begin); }
      return make(CTok::GreaterGreater, Begin);
    }
    if (Pos < Text.size() && Text[Pos] == '=') { ++Pos; return make(CTok::GreaterEq, Begin); }
    return make(CTok::Greater, Begin);
  default:
    break;
  }
  ++Pos;
  Diags.error(locAt(Begin), std::string("unexpected character '") + C + "'");
  return make(CTok::Error, Begin);
}

//===- cfront/CParser.cpp - C parser ---------------------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"

#include "support/Metrics.h"

using namespace quals;
using namespace quals::cfront;

CParser::CParser(const SourceManager &SM, unsigned BufferId, CAstContext &Ast,
                 CTypeContext &Types, StringInterner &Idents,
                 DiagnosticEngine &Diags, TranslationUnit &TU)
    : Lex(SM, BufferId, Diags), Ast(Ast), Types(Types), Idents(Idents),
      Diags(Diags), TU(TU), InitialErrors(Diags.getNumErrors()) {
  TypedefScopes.emplace_back();
  TagScopes.emplace_back();
  advance();
}

bool CParser::expect(CTok Kind) {
  if (Tok.is(Kind)) {
    advance();
    return true;
  }
  error(std::string("expected ") + ctokName(Kind) + " but found " +
        ctokName(Tok.Kind));
  return false;
}

bool CParser::consumeIf(CTok Kind) {
  if (!Tok.is(Kind))
    return false;
  advance();
  return true;
}

void CParser::error(const std::string &Message) {
  Diags.error(Tok.Loc, Message);
  HadError = true;
}

void CParser::skipToRecovery() {
  unsigned Depth = 0;
  while (!Tok.is(CTok::Eof)) {
    if (Tok.is(CTok::LBrace))
      ++Depth;
    if (Tok.is(CTok::RBrace)) {
      if (Depth == 0) {
        advance();
        return;
      }
      --Depth;
    }
    if (Tok.is(CTok::Semi) && Depth == 0) {
      advance();
      return;
    }
    advance();
  }
}

void CParser::pushScope() {
  TypedefScopes.emplace_back();
  TagScopes.emplace_back();
}

void CParser::popScope() {
  TypedefScopes.pop_back();
  TagScopes.pop_back();
}

TypedefDecl *CParser::lookupTypedef(std::string_view Name) const {
  for (auto It = TypedefScopes.rbegin(); It != TypedefScopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

CDecl *CParser::lookupTag(std::string_view Name) const {
  for (auto It = TagScopes.rbegin(); It != TagScopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Declaration specifiers
//===----------------------------------------------------------------------===//

bool CParser::atDeclarationStart() {
  switch (Tok.Kind) {
  case CTok::KwVoid: case CTok::KwChar: case CTok::KwShort: case CTok::KwInt:
  case CTok::KwLong: case CTok::KwFloat: case CTok::KwDouble:
  case CTok::KwSigned: case CTok::KwUnsigned:
  case CTok::KwStruct: case CTok::KwUnion: case CTok::KwEnum:
  case CTok::KwTypedef: case CTok::KwConst: case CTok::KwVolatile:
  case CTok::KwStatic: case CTok::KwExtern: case CTok::KwRegister:
  case CTok::KwAuto:
    return true;
  case CTok::Ident:
    return lookupTypedef(Tok.Text) != nullptr;
  default:
    return false;
  }
}

bool CParser::atTypeNameStart() {
  switch (Tok.Kind) {
  case CTok::KwVoid: case CTok::KwChar: case CTok::KwShort: case CTok::KwInt:
  case CTok::KwLong: case CTok::KwFloat: case CTok::KwDouble:
  case CTok::KwSigned: case CTok::KwUnsigned:
  case CTok::KwStruct: case CTok::KwUnion: case CTok::KwEnum:
  case CTok::KwConst: case CTok::KwVolatile:
    return true;
  case CTok::Ident:
    return lookupTypedef(Tok.Text) != nullptr;
  default:
    return false;
  }
}

bool CParser::parseDeclSpec(DeclSpec &DS) {
  // Nested struct/union/enum definitions re-enter via the member loop.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok())
    return false;
  DS.Loc = Tok.Loc;
  unsigned Quals = CQ_None;
  bool SawUnsigned = false, SawSigned = false;
  bool SawChar = false, SawShort = false, SawInt = false, SawLong = false;
  bool SawVoid = false, SawFloat = false, SawDouble = false;
  const CType *Tagged = nullptr;
  const TypedefDecl *FromTypedef = nullptr;
  bool Any = false;

  for (;;) {
    switch (Tok.Kind) {
    case CTok::KwTypedef:  DS.SC = StorageClass::Typedef; advance(); break;
    case CTok::KwExtern:   DS.SC = StorageClass::Extern; advance(); break;
    case CTok::KwStatic:   DS.SC = StorageClass::Static; advance(); break;
    case CTok::KwRegister: DS.SC = StorageClass::Register; advance(); break;
    case CTok::KwAuto:     DS.SC = StorageClass::Auto; advance(); break;
    case CTok::KwConst:    Quals |= CQ_Const; advance(); break;
    case CTok::KwVolatile: Quals |= CQ_Volatile; advance(); break;
    case CTok::KwVoid:     SawVoid = true; advance(); break;
    case CTok::KwChar:     SawChar = true; advance(); break;
    case CTok::KwShort:    SawShort = true; advance(); break;
    case CTok::KwInt:      SawInt = true; advance(); break;
    case CTok::KwLong:     SawLong = true; advance(); break;
    case CTok::KwFloat:    SawFloat = true; advance(); break;
    case CTok::KwDouble:   SawDouble = true; advance(); break;
    case CTok::KwSigned:   SawSigned = true; advance(); break;
    case CTok::KwUnsigned: SawUnsigned = true; advance(); break;
    case CTok::KwStruct:
    case CTok::KwUnion:
      Tagged = parseStructOrUnionSpec();
      if (!Tagged)
        return false;
      break;
    case CTok::KwEnum:
      Tagged = parseEnumSpec();
      if (!Tagged)
        return false;
      break;
    case CTok::Ident: {
      // A typedef name is a type specifier only if no other type specifier
      // has been seen (so "typedef int foo; foo foo;" behaves).
      bool HaveType = Tagged || FromTypedef || SawVoid || SawChar ||
                      SawShort || SawInt || SawLong || SawFloat ||
                      SawDouble || SawSigned || SawUnsigned;
      if (HaveType)
        goto done;
      if (TypedefDecl *TD = lookupTypedef(Tok.Text)) {
        FromTypedef = TD;
        advance();
        break;
      }
      goto done;
    }
    default:
      goto done;
    }
    Any = true;
  }
done:
  if (!Any)
    return false;

  if (FromTypedef) {
    // Typedefs are macro-expanded (Section 4.2): splice the underlying type
    // and merge qualifiers.
    DS.Base = FromTypedef->getUnderlying().withQuals(Quals);
    return true;
  }
  if (Tagged) {
    DS.Base = CQualType(Tagged, Quals);
    return true;
  }

  BuiltinType::Id Id = BuiltinType::Id::Int;
  if (SawVoid)
    Id = BuiltinType::Id::Void;
  else if (SawChar)
    Id = SawUnsigned ? BuiltinType::Id::UChar
                     : (SawSigned ? BuiltinType::Id::SChar
                                  : BuiltinType::Id::Char);
  else if (SawDouble)
    Id = BuiltinType::Id::Double;
  else if (SawFloat)
    Id = BuiltinType::Id::Float;
  else if (SawShort)
    Id = SawUnsigned ? BuiltinType::Id::UShort : BuiltinType::Id::Short;
  else if (SawLong)
    Id = SawUnsigned ? BuiltinType::Id::ULong : BuiltinType::Id::Long;
  else
    Id = SawUnsigned ? BuiltinType::Id::UInt : BuiltinType::Id::Int;
  DS.Base = CQualType(Types.getBuiltin(Id), Quals);
  return true;
}

const CType *CParser::parseStructOrUnionSpec() {
  bool IsUnion = Tok.is(CTok::KwUnion);
  SourceLoc KwLoc = Tok.Loc;
  advance();

  std::string_view Tag;
  if (Tok.is(CTok::Ident)) {
    Tag = Idents.intern(Tok.Text);
    advance();
  }

  RecordDecl *RD = nullptr;
  if (!Tag.empty()) {
    if (auto *Existing = dyn_cast_or_null<RecordDecl>(lookupTag(Tag)))
      RD = Existing;
  }
  bool HasBody = Tok.is(CTok::LBrace);
  if (!RD || (HasBody && RD->isComplete())) {
    RD = Ast.create<RecordDecl>(Tag.empty() ? Idents.intern("<anon>") : Tag,
                                IsUnion, KwLoc);
    TU.Records.push_back(RD);
    TU.Decls.push_back(RD);
    if (!Tag.empty())
      TagScopes.back()[Tag] = RD;
  }

  if (!HasBody)
    return Types.getRecord(RD);

  advance(); // {
  std::vector<FieldDecl *> Fields;
  while (!Tok.is(CTok::RBrace) && !Tok.is(CTok::Eof)) {
    DeclSpec DS;
    if (!parseDeclSpec(DS)) {
      error("expected a field declaration");
      skipToRecovery();
      return Types.getRecord(RD);
    }
    do {
      Declarator D;
      if (!parseDeclarator(D, /*AllowAbstract=*/false)) {
        skipToRecovery();
        return Types.getRecord(RD);
      }
      CQualType FieldTy = buildType(DS.Base, D);
      Fields.push_back(Ast.create<FieldDecl>(D.Name, FieldTy,
                                             Fields.size(), D.Loc));
    } while (consumeIf(CTok::Comma));
    if (!expect(CTok::Semi))
      return Types.getRecord(RD);
  }
  expect(CTok::RBrace);
  RD->complete(std::move(Fields));
  return Types.getRecord(RD);
}

const CType *CParser::parseEnumSpec() {
  SourceLoc KwLoc = Tok.Loc;
  advance();

  std::string_view Tag;
  if (Tok.is(CTok::Ident)) {
    Tag = Idents.intern(Tok.Text);
    advance();
  }

  EnumDecl *ED = nullptr;
  if (!Tag.empty()) {
    if (auto *Existing = dyn_cast_or_null<EnumDecl>(lookupTag(Tag)))
      ED = Existing;
  }
  if (!ED) {
    ED = Ast.create<EnumDecl>(Tag.empty() ? Idents.intern("<anon>") : Tag,
                              KwLoc);
    TU.Decls.push_back(ED);
    if (!Tag.empty())
      TagScopes.back()[Tag] = ED;
  }

  if (!Tok.is(CTok::LBrace))
    return Types.getEnum(ED);

  advance(); // {
  long NextValue = 0;
  while (!Tok.is(CTok::RBrace) && !Tok.is(CTok::Eof)) {
    if (!Tok.is(CTok::Ident)) {
      error("expected enumerator name");
      skipToRecovery();
      return Types.getEnum(ED);
    }
    std::string_view Name = Idents.intern(Tok.Text);
    advance();
    if (consumeIf(CTok::Assign)) {
      long Value;
      if (!parseConstantInt(Value))
        return Types.getEnum(ED);
      NextValue = Value;
    }
    ED->addEnumerator(Name, NextValue);
    TU.EnumConstants[Name] = NextValue;
    ++NextValue;
    if (!consumeIf(CTok::Comma))
      break;
  }
  expect(CTok::RBrace);
  return Types.getEnum(ED);
}

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

bool CParser::parseDeclarator(Declarator &D, bool AllowAbstract) {
  if (!parseDeclaratorChunks(D, AllowAbstract))
    return false;
  D.TopIsFunction =
      !D.Chunks.empty() && D.Chunks.front().Kind == DeclChunk::K::Function;
  if (D.TopIsFunction)
    D.TopParams = D.Chunks.front().Params;
  return true;
}

bool CParser::parseDeclaratorChunks(Declarator &D, bool AllowAbstract) {
  // Parenthesized declarators ('(*(*(*...)))') recurse here.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok())
    return false;
  // Pointers (with qualifier lists) in source order.
  std::vector<DeclChunk> Ptrs;
  while (Tok.is(CTok::Star)) {
    advance();
    DeclChunk P;
    P.Kind = DeclChunk::K::Pointer;
    for (;;) {
      if (consumeIf(CTok::KwConst)) {
        P.Quals |= CQ_Const;
        continue;
      }
      if (consumeIf(CTok::KwVolatile)) {
        P.Quals |= CQ_Volatile;
        continue;
      }
      break;
    }
    Ptrs.push_back(P);
  }

  // Direct declarator. An identifier here is always the declared name,
  // even if it collides with a typedef: fields and block-scope locals may
  // shadow typedef names (the declspec already consumed any leading
  // typedef-as-type).
  if (Tok.is(CTok::Ident)) {
    D.Name = Idents.intern(Tok.Text);
    D.Loc = Tok.Loc;
    advance();
  } else if (Tok.is(CTok::LParen)) {
    // '(' begins a nested declarator when the inside cannot start a
    // parameter list: '*', '(', or a non-typedef identifier.
    const CToken &Next = peek();
    bool Nested = Next.is(CTok::Star) || Next.is(CTok::LParen) ||
                  (Next.is(CTok::Ident) && !lookupTypedef(Next.Text));
    if (Nested) {
      advance(); // (
      if (!parseDeclaratorChunks(D, AllowAbstract))
        return false;
      if (!expect(CTok::RParen))
        return false;
    } else if (!AllowAbstract) {
      // Function suffix handled below; but a concrete declarator needs a
      // name first.
      error("expected a declarator name");
      return false;
    }
  } else if (!AllowAbstract) {
    error("expected a declarator name");
    return false;
  }

  // Suffixes in source order.
  for (;;) {
    if (Tok.is(CTok::LBracket)) {
      advance();
      DeclChunk A;
      A.Kind = DeclChunk::K::Array;
      if (!Tok.is(CTok::RBracket)) {
        long Size;
        if (!parseConstantInt(Size))
          return false;
        A.ArraySize = Size;
      }
      if (!expect(CTok::RBracket))
        return false;
      D.Chunks.push_back(std::move(A));
      continue;
    }
    if (Tok.is(CTok::LParen)) {
      advance();
      DeclChunk F;
      F.Kind = DeclChunk::K::Function;
      if (!parseParamList(F))
        return false;
      D.Chunks.push_back(std::move(F));
      continue;
    }
    break;
  }

  // Pointers bind less tightly than suffixes: append them reversed.
  for (auto It = Ptrs.rbegin(); It != Ptrs.rend(); ++It)
    D.Chunks.push_back(std::move(*It));
  return true;
}

bool CParser::parseParamList(DeclChunk &Chunk) {
  if (consumeIf(CTok::RParen)) {
    Chunk.NoPrototype = true; // K&R "T f()"
    return true;
  }
  if (Tok.is(CTok::KwVoid) && peek().is(CTok::RParen)) {
    advance();
    advance();
    return true;
  }
  for (;;) {
    if (Tok.is(CTok::Ellipsis)) {
      advance();
      Chunk.Variadic = true;
      break;
    }
    DeclSpec DS;
    if (!parseDeclSpec(DS)) {
      error("expected a parameter declaration");
      return false;
    }
    Declarator D;
    if (!parseDeclarator(D, /*AllowAbstract=*/true))
      return false;
    CQualType T = buildType(DS.Base, D);
    // Parameter adjustment: arrays decay to pointers, functions to
    // function pointers.
    if (const auto *AT = dyn_cast<ArrayType>(T.getType()))
      T = CQualType(Types.getPointer(AT->getElement()), T.getQuals());
    else if (isa<FunctionType>(T.getType()))
      T = CQualType(Types.getPointer(CQualType(T.getType())), CQ_None);
    VarDecl *P = Ast.create<VarDecl>(D.Name, T, StorageClass::None,
                                     /*IsParam=*/true,
                                     D.Loc.isValid() ? D.Loc : DS.Loc);
    Chunk.Params.push_back(P);
    Chunk.ParamTypes.push_back(T);
    if (!consumeIf(CTok::Comma))
      break;
  }
  return expect(CTok::RParen);
}

CQualType CParser::buildType(CQualType Base, const Declarator &D) {
  CQualType T = Base;
  for (auto It = D.Chunks.rbegin(); It != D.Chunks.rend(); ++It) {
    switch (It->Kind) {
    case DeclChunk::K::Pointer:
      T = CQualType(Types.getPointer(T), It->Quals);
      break;
    case DeclChunk::K::Array:
      T = CQualType(Types.getArray(T, It->ArraySize));
      break;
    case DeclChunk::K::Function:
      T = CQualType(Types.getFunction(T, It->ParamTypes, It->Variadic,
                                      It->NoPrototype));
      break;
    }
  }
  return T;
}

bool CParser::parseTypeName(CQualType &Out) {
  DeclSpec DS;
  if (!parseDeclSpec(DS)) {
    error("expected a type name");
    return false;
  }
  Declarator D;
  if (!parseDeclarator(D, /*AllowAbstract=*/true))
    return false;
  Out = buildType(DS.Base, D);
  return true;
}

//===----------------------------------------------------------------------===//
// External declarations
//===----------------------------------------------------------------------===//

VarDecl *CParser::makeVarDecl(const DeclSpec &DS, const Declarator &D,
                              bool IsGlobal) {
  CQualType T = buildType(DS.Base, D);
  auto *V = Ast.create<VarDecl>(D.Name, T, DS.SC, /*IsParam=*/false,
                                D.Loc.isValid() ? D.Loc : DS.Loc);
  V->setGlobal(IsGlobal);
  return V;
}

bool CParser::parseExternalDecl() {
  DeclSpec DS;
  if (!parseDeclSpec(DS)) {
    error("expected a declaration");
    skipToRecovery();
    return false;
  }
  if (consumeIf(CTok::Semi))
    return true; // struct/union/enum declaration alone

  Declarator First;
  if (!parseDeclarator(First, /*AllowAbstract=*/false)) {
    skipToRecovery();
    return false;
  }

  // Typedef declarations.
  if (DS.SC == StorageClass::Typedef) {
    Declarator *D = &First;
    Declarator Extra;
    for (;;) {
      CQualType T = buildType(DS.Base, *D);
      auto *TD = Ast.create<TypedefDecl>(D->Name, T, D->Loc);
      TypedefScopes.back()[D->Name] = TD;
      TU.Decls.push_back(TD);
      if (!consumeIf(CTok::Comma))
        break;
      Extra = Declarator();
      if (!parseDeclarator(Extra, false)) {
        skipToRecovery();
        return false;
      }
      D = &Extra;
    }
    return expect(CTok::Semi);
  }

  // Function definition.
  if (First.TopIsFunction && Tok.is(CTok::LBrace)) {
    CQualType T = buildType(DS.Base, First);
    const auto *FT = cast<FunctionType>(T.getType());
    FunctionDecl *FD;
    auto It = TU.FunctionMap.find(First.Name);
    if (It != TU.FunctionMap.end() && !It->second->isDefined()) {
      // Complete a previous prototype; adopt the definition's parameter
      // names and type.
      FD = It->second;
      FD = Ast.create<FunctionDecl>(First.Name, FT, First.TopParams, DS.SC,
                                    First.Loc);
      TU.FunctionMap[First.Name] = FD;
      for (auto &F : TU.Functions)
        if (F->getName() == First.Name)
          F = FD;
    } else {
      FD = Ast.create<FunctionDecl>(First.Name, FT, First.TopParams, DS.SC,
                                    First.Loc);
      TU.FunctionMap[First.Name] = FD;
      TU.Functions.push_back(FD);
      TU.Decls.push_back(FD);
    }
    pushScope();
    const CStmt *Body = parseCompoundStmt();
    popScope();
    if (!Body)
      return false;
    FD->setBody(Body);
    return true;
  }

  // Prototypes and global variables (possibly a comma-separated list).
  std::vector<VarDecl *> Vars;
  if (!parseInitDeclarators(DS, First, Vars, /*IsGlobal=*/true))
    return false;
  return true;
}

bool CParser::parseInitDeclarators(const DeclSpec &DS, Declarator &First,
                                   std::vector<VarDecl *> &Out,
                                   bool IsGlobal) {
  Declarator *D = &First;
  Declarator Extra;
  for (;;) {
    if (D->TopIsFunction) {
      // A prototype.
      CQualType T = buildType(DS.Base, *D);
      const auto *FT = cast<FunctionType>(T.getType());
      if (!TU.FunctionMap.count(D->Name)) {
        auto *FD = Ast.create<FunctionDecl>(D->Name, FT, D->TopParams,
                                            DS.SC, D->Loc);
        TU.FunctionMap[D->Name] = FD;
        TU.Functions.push_back(FD);
        TU.Decls.push_back(FD);
      }
    } else {
      VarDecl *V = makeVarDecl(DS, *D, IsGlobal);
      if (consumeIf(CTok::Assign)) {
        const CExpr *Init;
        if (Tok.is(CTok::LBrace)) {
          advance();
          std::vector<const CExpr *> Inits;
          while (!Tok.is(CTok::RBrace) && !Tok.is(CTok::Eof)) {
            const CExpr *E = Tok.is(CTok::LBrace) ? nullptr
                                                  : parseAssignExpr();
            if (Tok.is(CTok::LBrace)) {
              // Nested initializer lists: parse recursively.
              advance();
              std::vector<const CExpr *> Nested;
              while (!Tok.is(CTok::RBrace) && !Tok.is(CTok::Eof)) {
                const CExpr *N = parseAssignExpr();
                if (!N)
                  return false;
                Nested.push_back(N);
                if (!consumeIf(CTok::Comma))
                  break;
              }
              expect(CTok::RBrace);
              E = Ast.create<CInitList>(std::move(Nested), Tok.Loc);
            }
            if (!E)
              return false;
            Inits.push_back(E);
            if (!consumeIf(CTok::Comma))
              break;
          }
          expect(CTok::RBrace);
          Init = Ast.create<CInitList>(std::move(Inits), V->getLoc());
        } else {
          Init = parseAssignExpr();
          if (!Init)
            return false;
        }
        V->setInit(Init);
      }
      Out.push_back(V);
      if (IsGlobal) {
        // Extern redeclarations of the same global merge.
        auto It = TU.GlobalMap.find(V->getName());
        if (It == TU.GlobalMap.end()) {
          TU.GlobalMap[V->getName()] = V;
          TU.Globals.push_back(V);
          TU.Decls.push_back(V);
        }
      }
    }
    if (!consumeIf(CTok::Comma))
      break;
    Extra = Declarator();
    if (!parseDeclarator(Extra, false)) {
      skipToRecovery();
      return false;
    }
    D = &Extra;
  }
  return expect(CTok::Semi);
}

bool CParser::parseTranslationUnit() {
  while (!Tok.is(CTok::Eof)) {
    if (Diags.shouldBail() || !Diags.checkResources(Tok.Loc)) {
      HadError = true;
      break;
    }
    if (!parseExternalDecl() && Tok.is(CTok::Eof))
      break;
  }
  // Lexer errors (unterminated comments/literals, bad characters) land in
  // the diagnostic engine without setting HadError; count them too.
  return !HadError && Diags.getNumErrors() == InitialErrors;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

const CStmt *CParser::parseCompoundStmt() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(CTok::LBrace))
    return nullptr;
  pushScope();
  std::vector<const CStmt *> Body;
  while (!Tok.is(CTok::RBrace) && !Tok.is(CTok::Eof)) {
    if (Diags.shouldBail())
      break;
    const CStmt *S = parseStmt();
    if (!S) {
      skipToRecovery();
      continue;
    }
    Body.push_back(S);
  }
  popScope();
  expect(CTok::RBrace);
  return Ast.create<CCompoundStmt>(std::move(Body), Loc);
}

const CStmt *CParser::parseStmt() {
  // Nested blocks and control-flow bodies recurse here.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok())
    return nullptr;
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case CTok::LBrace:
    return parseCompoundStmt();
  case CTok::Semi:
    advance();
    return Ast.create<CNullStmt>(Loc);
  case CTok::KwIf: {
    advance();
    if (!expect(CTok::LParen))
      return nullptr;
    const CExpr *Cond = parseExpr();
    if (!Cond || !expect(CTok::RParen))
      return nullptr;
    const CStmt *Then = parseStmt();
    if (!Then)
      return nullptr;
    const CStmt *Else = nullptr;
    if (consumeIf(CTok::KwElse)) {
      Else = parseStmt();
      if (!Else)
        return nullptr;
    }
    return Ast.create<CIfStmt>(Cond, Then, Else, Loc);
  }
  case CTok::KwWhile: {
    advance();
    if (!expect(CTok::LParen))
      return nullptr;
    const CExpr *Cond = parseExpr();
    if (!Cond || !expect(CTok::RParen))
      return nullptr;
    const CStmt *Body = parseStmt();
    if (!Body)
      return nullptr;
    return Ast.create<CWhileStmt>(Cond, Body, Loc);
  }
  case CTok::KwDo: {
    advance();
    const CStmt *Body = parseStmt();
    if (!Body || !expect(CTok::KwWhile) || !expect(CTok::LParen))
      return nullptr;
    const CExpr *Cond = parseExpr();
    if (!Cond || !expect(CTok::RParen) || !expect(CTok::Semi))
      return nullptr;
    return Ast.create<CDoWhileStmt>(Body, Cond, Loc);
  }
  case CTok::KwFor: {
    advance();
    if (!expect(CTok::LParen))
      return nullptr;
    const CStmt *Init = nullptr;
    if (!Tok.is(CTok::Semi)) {
      if (atDeclarationStart()) {
        Init = parseStmt(); // declaration statement consumes its ';'
        if (!Init)
          return nullptr;
      } else {
        const CExpr *E = parseExpr();
        if (!E || !expect(CTok::Semi))
          return nullptr;
        Init = Ast.create<CExprStmt>(E, Loc);
      }
    } else {
      advance();
    }
    const CExpr *Cond = nullptr;
    if (!Tok.is(CTok::Semi)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    }
    if (!expect(CTok::Semi))
      return nullptr;
    const CExpr *Step = nullptr;
    if (!Tok.is(CTok::RParen)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
    }
    if (!expect(CTok::RParen))
      return nullptr;
    const CStmt *Body = parseStmt();
    if (!Body)
      return nullptr;
    return Ast.create<CForStmt>(Init, Cond, Step, Body, Loc);
  }
  case CTok::KwReturn: {
    advance();
    const CExpr *Value = nullptr;
    if (!Tok.is(CTok::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(CTok::Semi))
      return nullptr;
    return Ast.create<CReturnStmt>(Value, Loc);
  }
  case CTok::KwBreak:
    advance();
    if (!expect(CTok::Semi))
      return nullptr;
    return Ast.create<CBreakStmt>(Loc);
  case CTok::KwContinue:
    advance();
    if (!expect(CTok::Semi))
      return nullptr;
    return Ast.create<CContinueStmt>(Loc);
  case CTok::KwSwitch: {
    advance();
    if (!expect(CTok::LParen))
      return nullptr;
    const CExpr *Cond = parseExpr();
    if (!Cond || !expect(CTok::RParen))
      return nullptr;
    const CStmt *Body = parseStmt();
    if (!Body)
      return nullptr;
    return Ast.create<CSwitchStmt>(Cond, Body, Loc);
  }
  case CTok::KwCase: {
    advance();
    const CExpr *Value = parseConditionalExpr();
    if (!Value || !expect(CTok::Colon))
      return nullptr;
    const CStmt *Sub = parseStmt();
    if (!Sub)
      return nullptr;
    return Ast.create<CCaseStmt>(Value, Sub, Loc);
  }
  case CTok::KwDefault: {
    advance();
    if (!expect(CTok::Colon))
      return nullptr;
    const CStmt *Sub = parseStmt();
    if (!Sub)
      return nullptr;
    return Ast.create<CDefaultStmt>(Sub, Loc);
  }
  case CTok::KwGoto: {
    advance();
    if (!Tok.is(CTok::Ident)) {
      error("expected label after 'goto'");
      return nullptr;
    }
    std::string_view Label = Idents.intern(Tok.Text);
    advance();
    if (!expect(CTok::Semi))
      return nullptr;
    return Ast.create<CGotoStmt>(Label, Loc);
  }
  case CTok::Ident:
    // Label?
    if (peek().is(CTok::Colon) && !lookupTypedef(Tok.Text)) {
      std::string_view Label = Idents.intern(Tok.Text);
      advance();
      advance();
      const CStmt *Sub = parseStmt();
      if (!Sub)
        return nullptr;
      return Ast.create<CLabelStmt>(Label, Sub, Loc);
    }
    break;
  default:
    break;
  }

  // Local declaration?
  if (atDeclarationStart()) {
    DeclSpec DS;
    if (!parseDeclSpec(DS))
      return nullptr;
    if (consumeIf(CTok::Semi))
      return Ast.create<CNullStmt>(Loc); // bare struct decl in a block
    Declarator First;
    if (!parseDeclarator(First, false))
      return nullptr;
    if (DS.SC == StorageClass::Typedef) {
      CQualType T = buildType(DS.Base, First);
      auto *TD = Ast.create<TypedefDecl>(First.Name, T, First.Loc);
      TypedefScopes.back()[First.Name] = TD;
      if (!expect(CTok::Semi))
        return nullptr;
      return Ast.create<CNullStmt>(Loc);
    }
    std::vector<VarDecl *> Vars;
    if (!parseInitDeclarators(DS, First, Vars, /*IsGlobal=*/false))
      return nullptr;
    return Ast.create<CDeclStmt>(std::move(Vars), Loc);
  }

  // Expression statement.
  const CExpr *E = parseExpr();
  if (!E || !expect(CTok::Semi))
    return nullptr;
  return Ast.create<CExprStmt>(E, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

bool CParser::parseConstantInt(long &Out) {
  // Constant expressions in the subset: integer literals, enum constants,
  // character literals, optional unary minus, sizeof approximations.
  bool Negate = false;
  while (Tok.is(CTok::Minus)) {
    Negate = !Negate;
    advance();
  }
  if (Tok.is(CTok::IntLit) || Tok.is(CTok::CharLit)) {
    Out = Negate ? -Tok.IntValue : Tok.IntValue;
    advance();
    return true;
  }
  if (Tok.is(CTok::Ident)) {
    auto It = TU.EnumConstants.find(Tok.Text);
    if (It != TU.EnumConstants.end()) {
      Out = Negate ? -It->second : It->second;
      advance();
      return true;
    }
  }
  if (Tok.is(CTok::KwSizeof)) {
    // Treat sizeof(...) as 8 in constant contexts; array extents are not
    // semantically relevant to the qualifier analysis.
    advance();
    if (consumeIf(CTok::LParen)) {
      CQualType T;
      if (atTypeNameStart()) {
        if (!parseTypeName(T))
          return false;
      } else if (!parseExpr()) {
        return false;
      }
      if (!expect(CTok::RParen))
        return false;
    }
    Out = Negate ? -8 : 8;
    return true;
  }
  error("expected a constant expression");
  return false;
}

const CExpr *CParser::parseExpr() {
  const CExpr *E = parseAssignExpr();
  if (!E)
    return nullptr;
  while (Tok.is(CTok::Comma)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    const CExpr *R = parseAssignExpr();
    if (!R)
      return nullptr;
    E = Ast.create<CComma>(E, R, Loc);
  }
  return E;
}

static bool tokToAssignOp(CTok Kind, BinaryOp &Op) {
  switch (Kind) {
  case CTok::Assign:                Op = BinaryOp::Assign; return true;
  case CTok::PlusAssign:            Op = BinaryOp::AddAssign; return true;
  case CTok::MinusAssign:           Op = BinaryOp::SubAssign; return true;
  case CTok::StarAssign:            Op = BinaryOp::MulAssign; return true;
  case CTok::SlashAssign:           Op = BinaryOp::DivAssign; return true;
  case CTok::PercentAssign:         Op = BinaryOp::RemAssign; return true;
  case CTok::LessLessAssign:        Op = BinaryOp::ShlAssign; return true;
  case CTok::GreaterGreaterAssign:  Op = BinaryOp::ShrAssign; return true;
  case CTok::AmpAssign:             Op = BinaryOp::AndAssign; return true;
  case CTok::PipeAssign:            Op = BinaryOp::OrAssign; return true;
  case CTok::CaretAssign:           Op = BinaryOp::XorAssign; return true;
  default:
    return false;
  }
}

const CExpr *CParser::parseAssignExpr() {
  const CExpr *Lhs = parseConditionalExpr();
  if (!Lhs)
    return nullptr;
  BinaryOp Op;
  if (!tokToAssignOp(Tok.Kind, Op))
    return Lhs;
  SourceLoc Loc = Tok.Loc;
  advance();
  const CExpr *Rhs = parseAssignExpr(); // right-associative
  if (!Rhs)
    return nullptr;
  return Ast.create<CBinary>(Op, Lhs, Rhs, Loc);
}

const CExpr *CParser::parseConditionalExpr() {
  const CExpr *Cond = parseBinaryExpr(0);
  if (!Cond)
    return nullptr;
  if (!Tok.is(CTok::Question))
    return Cond;
  SourceLoc Loc = Tok.Loc;
  advance();
  const CExpr *Then = parseExpr();
  if (!Then || !expect(CTok::Colon))
    return nullptr;
  const CExpr *Else = parseConditionalExpr();
  if (!Else)
    return nullptr;
  return Ast.create<CConditional>(Cond, Then, Else, Loc);
}

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};
} // namespace

static bool tokToBinOp(CTok Kind, BinOpInfo &Info) {
  switch (Kind) {
  case CTok::PipePipe:        Info = {BinaryOp::LOr, 1}; return true;
  case CTok::AmpAmp:          Info = {BinaryOp::LAnd, 2}; return true;
  case CTok::Pipe:            Info = {BinaryOp::Or, 3}; return true;
  case CTok::Caret:           Info = {BinaryOp::Xor, 4}; return true;
  case CTok::Amp:             Info = {BinaryOp::And, 5}; return true;
  case CTok::EqEq:            Info = {BinaryOp::Eq, 6}; return true;
  case CTok::BangEq:          Info = {BinaryOp::Ne, 6}; return true;
  case CTok::Less:            Info = {BinaryOp::Lt, 7}; return true;
  case CTok::Greater:         Info = {BinaryOp::Gt, 7}; return true;
  case CTok::LessEq:          Info = {BinaryOp::Le, 7}; return true;
  case CTok::GreaterEq:       Info = {BinaryOp::Ge, 7}; return true;
  case CTok::LessLess:        Info = {BinaryOp::Shl, 8}; return true;
  case CTok::GreaterGreater:  Info = {BinaryOp::Shr, 8}; return true;
  case CTok::Plus:            Info = {BinaryOp::Add, 9}; return true;
  case CTok::Minus:           Info = {BinaryOp::Sub, 9}; return true;
  case CTok::Star:            Info = {BinaryOp::Mul, 10}; return true;
  case CTok::Slash:           Info = {BinaryOp::Div, 10}; return true;
  case CTok::Percent:         Info = {BinaryOp::Rem, 10}; return true;
  default:
    return false;
  }
}

const CExpr *CParser::parseBinaryExpr(int MinPrec) {
  const CExpr *Lhs = parseCastExpr();
  if (!Lhs)
    return nullptr;
  for (;;) {
    BinOpInfo Info;
    if (!tokToBinOp(Tok.Kind, Info) || Info.Prec < MinPrec)
      return Lhs;
    SourceLoc Loc = Tok.Loc;
    advance();
    const CExpr *Rhs = parseBinaryExpr(Info.Prec + 1);
    if (!Rhs)
      return nullptr;
    Lhs = Ast.create<CBinary>(Info.Op, Lhs, Rhs, Loc);
  }
}

const CExpr *CParser::parseCastExpr() {
  // Every level of expression nesting -- parenthesized expressions, casts,
  // conditional/assignment chains -- owns one frame here.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok() || !Diags.checkResources(Tok.Loc))
    return nullptr;
  if (Tok.is(CTok::LParen)) {
    // Potential cast: '(' type-name ')' cast-expr.
    // Peek to see if a type name begins inside.
    const CToken &Next = peek();
    bool TypeInside = false;
    switch (Next.Kind) {
    case CTok::KwVoid: case CTok::KwChar: case CTok::KwShort:
    case CTok::KwInt: case CTok::KwLong: case CTok::KwFloat:
    case CTok::KwDouble: case CTok::KwSigned: case CTok::KwUnsigned:
    case CTok::KwStruct: case CTok::KwUnion: case CTok::KwEnum:
    case CTok::KwConst: case CTok::KwVolatile:
      TypeInside = true;
      break;
    case CTok::Ident:
      TypeInside = lookupTypedef(Next.Text) != nullptr;
      break;
    default:
      break;
    }
    if (TypeInside) {
      SourceLoc Loc = Tok.Loc;
      advance(); // (
      CQualType T;
      if (!parseTypeName(T) || !expect(CTok::RParen))
        return nullptr;
      const CExpr *Operand = parseCastExpr();
      if (!Operand)
        return nullptr;
      return Ast.create<CCast>(T, Operand, Loc);
    }
  }
  return parseUnaryExpr();
}

const CExpr *CParser::parseUnaryExpr() {
  // '++'/'--'/'sizeof' chains recurse here without a parseCastExpr frame.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok())
    return nullptr;
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case CTok::PlusPlus: {
    advance();
    const CExpr *E = parseUnaryExpr();
    return E ? Ast.create<CUnary>(UnaryOp::PreInc, E, Loc) : nullptr;
  }
  case CTok::MinusMinus: {
    advance();
    const CExpr *E = parseUnaryExpr();
    return E ? Ast.create<CUnary>(UnaryOp::PreDec, E, Loc) : nullptr;
  }
  case CTok::Amp: {
    advance();
    const CExpr *E = parseCastExpr();
    return E ? Ast.create<CUnary>(UnaryOp::AddrOf, E, Loc) : nullptr;
  }
  case CTok::Star: {
    advance();
    const CExpr *E = parseCastExpr();
    return E ? Ast.create<CUnary>(UnaryOp::Deref, E, Loc) : nullptr;
  }
  case CTok::Plus: {
    advance();
    const CExpr *E = parseCastExpr();
    return E ? Ast.create<CUnary>(UnaryOp::Plus, E, Loc) : nullptr;
  }
  case CTok::Minus: {
    advance();
    const CExpr *E = parseCastExpr();
    return E ? Ast.create<CUnary>(UnaryOp::Minus, E, Loc) : nullptr;
  }
  case CTok::Bang: {
    advance();
    const CExpr *E = parseCastExpr();
    return E ? Ast.create<CUnary>(UnaryOp::Not, E, Loc) : nullptr;
  }
  case CTok::Tilde: {
    advance();
    const CExpr *E = parseCastExpr();
    return E ? Ast.create<CUnary>(UnaryOp::BitNot, E, Loc) : nullptr;
  }
  case CTok::KwSizeof: {
    advance();
    if (Tok.is(CTok::LParen)) {
      const CToken &Next = peek();
      bool TypeInside = false;
      switch (Next.Kind) {
      case CTok::KwVoid: case CTok::KwChar: case CTok::KwShort:
      case CTok::KwInt: case CTok::KwLong: case CTok::KwFloat:
      case CTok::KwDouble: case CTok::KwSigned: case CTok::KwUnsigned:
      case CTok::KwStruct: case CTok::KwUnion: case CTok::KwEnum:
      case CTok::KwConst: case CTok::KwVolatile:
        TypeInside = true;
        break;
      case CTok::Ident:
        TypeInside = lookupTypedef(Next.Text) != nullptr;
        break;
      default:
        break;
      }
      if (TypeInside) {
        advance();
        CQualType T;
        if (!parseTypeName(T) || !expect(CTok::RParen))
          return nullptr;
        return Ast.create<CSizeOf>(T, nullptr, Loc);
      }
    }
    const CExpr *E = parseUnaryExpr();
    return E ? Ast.create<CSizeOf>(CQualType(), E, Loc) : nullptr;
  }
  default:
    return parsePostfixExpr();
  }
}

const CExpr *CParser::parsePostfixExpr() {
  const CExpr *E = parsePrimaryExpr();
  if (!E)
    return nullptr;
  for (;;) {
    SourceLoc Loc = Tok.Loc;
    switch (Tok.Kind) {
    case CTok::LParen: {
      advance();
      std::vector<const CExpr *> Args;
      if (!Tok.is(CTok::RParen)) {
        for (;;) {
          const CExpr *A = parseAssignExpr();
          if (!A)
            return nullptr;
          Args.push_back(A);
          if (!consumeIf(CTok::Comma))
            break;
        }
      }
      if (!expect(CTok::RParen))
        return nullptr;
      E = Ast.create<CCall>(E, std::move(Args), Loc);
      break;
    }
    case CTok::LBracket: {
      advance();
      const CExpr *Index = parseExpr();
      if (!Index || !expect(CTok::RBracket))
        return nullptr;
      E = Ast.create<CSubscript>(E, Index, Loc);
      break;
    }
    case CTok::Dot: {
      advance();
      if (!Tok.is(CTok::Ident)) {
        error("expected field name after '.'");
        return nullptr;
      }
      E = Ast.create<CMember>(E, Idents.intern(Tok.Text), false, Loc);
      advance();
      break;
    }
    case CTok::Arrow: {
      advance();
      if (!Tok.is(CTok::Ident)) {
        error("expected field name after '->'");
        return nullptr;
      }
      E = Ast.create<CMember>(E, Idents.intern(Tok.Text), true, Loc);
      advance();
      break;
    }
    case CTok::PlusPlus:
      advance();
      E = Ast.create<CUnary>(UnaryOp::PostInc, E, Loc);
      break;
    case CTok::MinusMinus:
      advance();
      E = Ast.create<CUnary>(UnaryOp::PostDec, E, Loc);
      break;
    default:
      return E;
    }
  }
}

const CExpr *CParser::parsePrimaryExpr() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case CTok::IntLit:
  case CTok::CharLit: {
    long Value = Tok.IntValue;
    advance();
    return Ast.create<CIntLit>(Value, Loc);
  }
  case CTok::FloatLit: {
    double Value = Tok.FloatValue;
    advance();
    return Ast.create<CFloatLit>(Value, Loc);
  }
  case CTok::StringLit: {
    std::string_view Text = Idents.intern(Tok.Text);
    advance();
    // Adjacent string literal concatenation.
    while (Tok.is(CTok::StringLit))
      advance();
    return Ast.create<CStringLit>(Text, Loc);
  }
  case CTok::Ident: {
    std::string_view Name = Idents.intern(Tok.Text);
    advance();
    return Ast.create<CDeclRef>(Name, Loc);
  }
  case CTok::LParen: {
    advance();
    const CExpr *E = parseExpr();
    if (!E || !expect(CTok::RParen))
      return nullptr;
    return E;
  }
  default:
    error(std::string("expected an expression but found ") +
          ctokName(Tok.Kind));
    return nullptr;
  }
}

bool quals::cfront::parseCSource(SourceManager &SM, std::string Name,
                                 std::string Source, CAstContext &Ast,
                                 CTypeContext &Types, StringInterner &Idents,
                                 DiagnosticEngine &Diags,
                                 TranslationUnit &TU) {
  std::string TraceArgs =
      "\"file\":\"" + jsonEscape(Name) + "\"";
  unsigned BufferId = SM.addBuffer(std::move(Name), std::move(Source));
  // Lexing is fused into the parse; measure it with a token-counting
  // pre-scan when observability is on (lex diagnostics go to a sink engine
  // -- the parse below re-lexes and re-reports them).
  if (observabilityActive()) {
    PhaseScope Phase("lex", "cfront");
    DiagnosticEngine Sink(SM);
    CLexer L(SM, BufferId, Sink);
    uint64_t Tokens = 0;
    while (L.next().Kind != CTok::Eof)
      ++Tokens;
    Phase.setTraceArgs(TraceArgs + ",\"tokens\":" + std::to_string(Tokens));
    if (MetricsRegistry::collecting())
      MetricsRegistry::global().counter("cfront.lex.tokens").add(Tokens);
  }
  PhaseScope Phase("parse", "cfront");
  Phase.setTraceArgs(std::move(TraceArgs));
  CParser P(SM, BufferId, Ast, Types, Idents, Diags, TU);
  return P.parseTranslationUnit();
}

//===- cfront/CToken.h - C token kinds ---------------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the C-subset front end used by the const-inference
/// system of Section 4. The subset covers everything the analysis needs:
/// declarator types (pointers/arrays/functions), const/volatile, structs,
/// unions, enums, typedefs, varargs, casts, and the full statement and
/// expression grammar. Preprocessor lines ('#...') are skipped as comments.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_CTOKEN_H
#define QUALS_CFRONT_CTOKEN_H

#include "support/SourceLoc.h"

#include <string_view>

namespace quals {
namespace cfront {

enum class CTok {
  Eof,
  Error,

  Ident,
  IntLit,
  CharLit,
  FloatLit,
  StringLit,

  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
  KwSigned, KwUnsigned,
  KwStruct, KwUnion, KwEnum, KwTypedef,
  KwConst, KwVolatile,
  KwStatic, KwExtern, KwRegister, KwAuto,
  KwReturn, KwIf, KwElse, KwWhile, KwFor, KwDo,
  KwBreak, KwContinue, KwSwitch, KwCase, KwDefault,
  KwSizeof, KwGoto,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Colon, Question, Ellipsis,
  Dot, Arrow,
  Amp, AmpAmp, Pipe, PipePipe, Caret, Tilde, Bang,
  Plus, PlusPlus, Minus, MinusMinus, Star, Slash, Percent,
  Less, LessEq, Greater, GreaterEq, EqEq, BangEq,
  LessLess, GreaterGreater,
  Assign,
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, LessLessAssign, GreaterGreaterAssign
};

/// A lexed C token.
struct CToken {
  CTok Kind = CTok::Eof;
  SourceLoc Loc;
  std::string_view Text;
  long IntValue = 0;        ///< For IntLit / CharLit.
  double FloatValue = 0.0;  ///< For FloatLit.

  bool is(CTok K) const { return Kind == K; }
};

/// Human-readable token-kind name for diagnostics.
const char *ctokName(CTok Kind);

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_CTOKEN_H

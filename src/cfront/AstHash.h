//===- cfront/AstHash.h - Structural hashing of C ASTs ----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable structural fingerprints of C declarations, used by the incremental
/// re-analysis layer (constinf/Summary.h, docs/INCREMENTAL.md) to decide
/// which functions an edit actually touched.
///
/// The hashes walk the *AST*, not the source bytes: kinds, operators,
/// literal values, referenced names, and every type annotation fold into a
/// support/Hash.h digest, while comments, whitespace, and formatting do not.
/// A formatting-only edit therefore hashes identically and invalidates
/// nothing, which is exactly the granularity an editor loop wants.
///
/// Two digests matter:
///
/// \li hashFunctionBody() covers one defined function's body (statements,
///     expressions, local declarations and their types). Changing a body
///     changes this hash; changing an unrelated function does not.
/// \li hashDeclRegion() covers everything *except* function bodies: function
///     signatures (name, type, parameter names, storage), global variables
///     (type and initializer), record/enum/typedef declarations, and their
///     order. Any change here restructures interfaces or shared qualifier
///     state, so the incremental layer falls back to a full analysis.
///
/// These are content fingerprints with the same non-cryptographic threat
/// model as support/Hash.h: collisions are astronomically unlikely by
/// accident but constructible on purpose, acceptable for a cache that only
/// serves the requester's own analysis results (docs/SERVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CFRONT_ASTHASH_H
#define QUALS_CFRONT_ASTHASH_H

#include "cfront/CAst.h"

#include <cstdint>

namespace quals {
namespace cfront {

/// Structural hash of \p T (qualifier bits included). Record and enum types
/// hash by *name* only -- their field/enumerator structure belongs to the
/// declaration region digest, keeping type hashing cycle-free.
uint64_t hashType(CQualType T);

/// Structural hash of expression \p E (null hashes to a fixed tag).
/// Referenced declarations hash by name plus a global/local discriminator.
uint64_t hashExpr(const CExpr *E);

/// Structural hash of statement \p S (null hashes to a fixed tag).
uint64_t hashStmt(const CStmt *S);

/// Structural hash of \p FD's body; 0 for undefined (library) functions --
/// the support/Hash.h "no hash" sentinel, so callers can tell "no body"
/// from every real digest.
uint64_t hashFunctionBody(const FunctionDecl *FD);

/// Structural hash of \p FD's interface: name, type (including source const
/// annotations), parameter names, storage class, and defined-ness.
uint64_t hashFunctionSignature(const FunctionDecl *FD);

/// Structural hash of everything in \p TU except function bodies; see the
/// file comment for what that covers and why bodies are excluded.
uint64_t hashDeclRegion(const TranslationUnit &TU);

} // namespace cfront
} // namespace quals

#endif // QUALS_CFRONT_ASTHASH_H

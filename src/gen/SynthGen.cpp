//===- gen/SynthGen.cpp - Synthetic C benchmark generator -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "gen/SynthGen.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

using namespace quals;
using namespace quals::synth;

namespace {

/// SplitMix64: tiny, deterministic, well-distributed.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  unsigned below(unsigned N) { return N ? next() % N : 0; }
  bool chance(double P) {
    return (next() >> 11) * 0x1.0p-53 < P;
  }

private:
  uint64_t State;
};

/// Kind of a generated function.
enum class FnKind { Reader, Writer, IdLike, SccPair };

struct ParamInfo {
  bool IsPointer;
  bool Written;       ///< The body writes through it.
  bool DeclConst;     ///< Annotated const in the source.
  bool UseTypedef;    ///< Spelled with the iptr typedef.
};

struct FnInfo {
  FnKind Kind;
  std::vector<ParamInfo> Params; ///< Pointer params first, then one int n.
  int Partner = -1;              ///< SCC partner index.
  bool TakesStruct = false;
  unsigned StructIdx = 0;
  bool WritesStructField = false;
};

class Generator {
public:
  Generator(const SynthParams &P) : P(P), R(P.Seed) {}

  SynthProgram run();
  std::vector<SynthProgram> runSplit(unsigned NumTus);

private:
  const SynthParams &P;
  Rng R;
  std::vector<FnInfo> Fns;
  std::string Out;

  void line(const std::string &S) {
    Out += S;
    Out += '\n';
  }

  void planFunctions();
  void emitLibraryDecls();
  void emitPrelude();
  void emitMain();
  void emitGlobals();
  std::string signature(unsigned I);
  void emitFunction(unsigned I);
  std::string pickReadablePtrArg(const FnInfo &F);
  std::string pickWritablePtrArg(const FnInfo &F);
  void emitCall(const FnInfo &Caller, unsigned CalleeIdx,
                std::vector<std::string> &Body);
};

void Generator::planFunctions() {
  Fns.resize(P.NumFunctions);
  for (unsigned I = 0; I != P.NumFunctions; ++I) {
    FnInfo &F = Fns[I];
    if (F.Partner >= 0)
      continue; // Second half of an SCC pair, already planned.

    if (I + 1 < P.NumFunctions && R.chance(P.SccRate)) {
      F.Kind = FnKind::SccPair;
      F.Partner = I + 1;
      F.Params = {{true, false, R.chance(P.ConstDeclRate), false}};
      Fns[I + 1] = F;
      Fns[I + 1].Partner = I;
      ++I; // Skip the partner.
      continue;
    }
    if (R.chance(P.IdLikeRate)) {
      F.Kind = FnKind::IdLike;
      // Return-a-pointer-parameter shape; never declared const so callers
      // may write through the result (the latent polymorphism pattern).
      F.Params = {{true, false, false, R.chance(0.3)}};
      continue;
    }
    bool Writer = R.chance(P.WriterRate);
    F.Kind = Writer ? FnKind::Writer : FnKind::Reader;
    unsigned NumPtr = 1 + R.below(P.MaxPtrParams);
    for (unsigned J = 0; J != NumPtr; ++J) {
      ParamInfo Param;
      Param.IsPointer = true;
      Param.Written = Writer && J == 0;
      Param.DeclConst = !Param.Written && R.chance(P.ConstDeclRate);
      Param.UseTypedef =
          !Param.DeclConst && P.NumTypedefs > 0 && R.chance(0.15);
      F.Params.push_back(Param);
    }
    if (P.NumStructs > 0 && R.chance(0.25)) {
      F.TakesStruct = true;
      F.StructIdx = R.below(P.NumStructs);
      F.WritesStructField = Writer && R.chance(0.4);
    }
  }
}

void Generator::emitLibraryDecls() {
  line("int printf(const char *fmt, ...);");
  line("char *strcpy(char *dst, const char *src);");
  line("int strcmp(const char *a, const char *b);");
  line("int external_io(int *buf);");
  line("int external_peek(const int *buf);");
}

void Generator::emitPrelude() {
  line("/* Generated benchmark: seed " + std::to_string(P.Seed) + ", " +
       std::to_string(P.NumFunctions) + " functions. */");
  line("");
  emitLibraryDecls();
  line("");
  for (unsigned S = 0; S != P.NumStructs; ++S) {
    line("struct rec" + std::to_string(S) + " {");
    line("  int value;");
    line("  int *slot;");
    line("  struct rec" + std::to_string(S) + " *next;");
    line("};");
  }
  for (unsigned T = 0; T != P.NumTypedefs; ++T)
    line("typedef int *iptr" + std::to_string(T) + ";");
  line("");
}

void Generator::emitGlobals() {
  for (unsigned G = 0; G != P.NumGlobals; ++G)
    line("int gval" + std::to_string(G) + " = " + std::to_string(G * 3) +
         ";");
  for (unsigned S = 0; S != P.NumStructs; ++S)
    line("struct rec" + std::to_string(S) + " grec" + std::to_string(S) +
         ";");
  line("int *gptr = &gval0;");
  line("");
}

std::string Generator::signature(unsigned I) {
  const FnInfo &F = Fns[I];
  std::string Sig;
  Sig += F.Kind == FnKind::IdLike ? "int *" : "int ";
  Sig += "fn" + std::to_string(I) + "(";
  unsigned TdIdx = I % std::max(1u, P.NumTypedefs);
  for (unsigned J = 0; J != F.Params.size(); ++J) {
    if (J)
      Sig += ", ";
    const ParamInfo &Param = F.Params[J];
    if (Param.UseTypedef && P.NumTypedefs > 0)
      Sig += "iptr" + std::to_string(TdIdx) + " p" + std::to_string(J);
    else
      Sig += std::string(Param.DeclConst ? "const int *" : "int *") + "p" +
             std::to_string(J);
  }
  if (F.TakesStruct)
    Sig += std::string(F.Params.empty() ? "" : ", ") + "struct rec" +
           std::to_string(F.StructIdx) + " *st";
  Sig += F.Params.empty() && !F.TakesStruct ? "int n)" : ", int n)";
  return Sig;
}

std::string Generator::pickReadablePtrArg(const FnInfo &F) {
  // For declared-const slots (and const library params): any pointer param
  // -- including declared-const ones -- a global, or a local address.
  unsigned NumChoices = F.Params.size() + 2;
  unsigned C = R.below(NumChoices);
  if (C < F.Params.size())
    return "p" + std::to_string(C);
  if (C == F.Params.size())
    return "&loc";
  return "&gval" + std::to_string(R.below(std::max(1u, P.NumGlobals)));
}

std::string Generator::pickWritablePtrArg(const FnInfo &F) {
  // For every slot that is not declared const: exclude the caller's
  // declared-const parameters. A non-const slot may be written through
  // transitively (by a deeper callee or library call), and passing a
  // declared-const pointer there would make the generated program an
  // incorrect C program. By induction this keeps declared-const pointers
  // inside declared-const slots only.
  std::vector<std::string> Choices;
  for (unsigned J = 0; J != F.Params.size(); ++J)
    if (!F.Params[J].DeclConst)
      Choices.push_back("p" + std::to_string(J));
  Choices.push_back("&loc");
  Choices.push_back("&gval" +
                    std::to_string(R.below(std::max(1u, P.NumGlobals))));
  return Choices[R.below(Choices.size())];
}

void Generator::emitCall(const FnInfo &Caller, unsigned CalleeIdx,
                         std::vector<std::string> &Body) {
  const FnInfo &Callee = Fns[CalleeIdx];
  std::string Call = "fn" + std::to_string(CalleeIdx) + "(";
  for (unsigned J = 0; J != Callee.Params.size(); ++J) {
    if (J)
      Call += ", ";
    // Declared-const slots accept anything; all other slots must not
    // receive the caller's declared-const pointers (see pickWritablePtrArg).
    Call += Callee.Params[J].DeclConst ? pickReadablePtrArg(Caller)
                                       : pickWritablePtrArg(Caller);
  }
  if (Callee.TakesStruct)
    Call += std::string(Callee.Params.empty() ? "" : ", ") + "&grec" +
            std::to_string(Callee.StructIdx);
  Call += Callee.Params.empty() && !Callee.TakesStruct ? "n - 1)" : ", n - 1)";

  if (Callee.Kind == FnKind::IdLike) {
    if (R.chance(0.5)) {
      // Writing use of an id-like result: the argument must be writable.
      std::string Arg = pickWritablePtrArg(Caller);
      Body.push_back("  *fn" + std::to_string(CalleeIdx) + "(" + Arg +
                     ", n - 1) = t;");
    } else {
      Body.push_back("  t += *" + Call + ";");
    }
    return;
  }
  Body.push_back("  t += " + Call + ";");
}

void Generator::emitFunction(unsigned I) {
  const FnInfo &F = Fns[I];
  std::vector<std::string> Body;
  Body.push_back("  int t = 0;");
  Body.push_back("  int loc = n + " + std::to_string(R.below(17)) + ";");

  // Reads of every pointer parameter.
  for (unsigned J = 0; J != F.Params.size(); ++J)
    if (!F.Params[J].Written)
      Body.push_back("  t += *p" + std::to_string(J) + ";");

  // The writer's store.
  for (unsigned J = 0; J != F.Params.size(); ++J)
    if (F.Params[J].Written)
      Body.push_back("  *p" + std::to_string(J) + " = t + n;");

  if (F.TakesStruct) {
    Body.push_back("  t += st->value;");
    if (F.WritesStructField)
      Body.push_back("  st->value = t;");
    else
      Body.push_back("  if (st->next) t += st->next->value;");
  }

  switch (F.Kind) {
  case FnKind::SccPair:
    Body.push_back("  if (n > 0) t += fn" + std::to_string(F.Partner) +
                   "(p0, n - 1);");
    break;
  case FnKind::IdLike:
    break;
  case FnKind::Reader:
  case FnKind::Writer: {
    unsigned Calls = std::min<unsigned>(P.CallsPerFunction, I);
    for (unsigned C = 0; C != Calls; ++C)
      emitCall(F, R.below(I), Body);
    break;
  }
  }

  if (R.chance(P.CastRate))
    // The cast severs the qualifier association, so even a declared-const
    // pointer is fair game here.
    Body.push_back("  t += *(const int *)" + pickReadablePtrArg(F) + ";");
  if (R.chance(P.VarargsCallRate))
    Body.push_back("  printf(\"%d %d\\n\", t, loc);");
  if (R.chance(P.LibraryCallRate)) {
    if (R.chance(0.5))
      Body.push_back("  t += external_peek(" + pickReadablePtrArg(F) + ");");
    else
      Body.push_back("  t += external_io(" + pickWritablePtrArg(F) + ");");
  }
  if (R.chance(0.3))
    Body.push_back("  if (t > 100) t -= loc;");

  if (F.Kind == FnKind::IdLike) {
    line(signature(I) + " {");
    for (const std::string &L : Body)
      line(L);
    line("  (void)t;");
    line("  return p0;");
    line("}");
    line("");
    return;
  }

  line(signature(I) + " {");
  for (const std::string &L : Body)
    line(L);
  line("  return t;");
  line("}");
  line("");
}

// main() exercises a handful of entry points.
void Generator::emitMain() {
  line("int main(void) {");
  line("  int t = 0;");
  line("  int loc = 41;");
  line("  int n = 7;");
  unsigned Entries = std::min(4u, P.NumFunctions);
  for (unsigned E = 0; E != Entries; ++E) {
    unsigned I = P.NumFunctions - 1 - E;
    FnInfo Main; // main has no pointer params; args come from globals/loc.
    std::vector<std::string> Body;
    emitCall(Main, I, Body);
    for (const std::string &L : Body)
      line(L);
  }
  line("  return t;");
  line("}");
}

SynthProgram Generator::run() {
  planFunctions();
  emitPrelude();
  emitGlobals();

  // Forward declarations for SCC partners (called before their definition).
  for (unsigned I = 0; I != P.NumFunctions; ++I)
    if (Fns[I].Partner > static_cast<int>(I))
      line(signature(Fns[I].Partner) + ";");
  line("");

  for (unsigned I = 0; I != P.NumFunctions; ++I)
    emitFunction(I);

  emitMain();

  SynthProgram Result;
  Result.LineCount =
      static_cast<unsigned>(std::count(Out.begin(), Out.end(), '\n'));
  Result.Source = std::move(Out);
  return Result;
}

std::vector<SynthProgram> Generator::runSplit(unsigned NumTus) {
  planFunctions();

  // Draw every function body (then main) in global index order, exactly as
  // run() would: the Rng stream is the determinism backbone, so the
  // definitions are byte-identical at every NumTus.
  std::vector<std::string> FnText(P.NumFunctions);
  for (unsigned I = 0; I != P.NumFunctions; ++I) {
    Out.clear();
    emitFunction(I);
    FnText[I] = std::move(Out);
  }
  Out.clear();
  emitMain();
  std::string MainText = std::move(Out);

  std::vector<SynthProgram> Tus(NumTus);
  for (unsigned K = 0; K != NumTus; ++K) {
    Out.clear();
    line("/* Generated benchmark: seed " + std::to_string(P.Seed) + ", " +
         std::to_string(P.NumFunctions) + " functions, TU " +
         std::to_string(K) + " of " + std::to_string(NumTus) + ". */");
    line("");
    emitLibraryDecls();
    line("");
    // Each global is defined in one TU and extern elsewhere; gptr's
    // address-of initializer lives in TU 0 alongside gval0's definition.
    for (unsigned G = 0; G != P.NumGlobals; ++G) {
      if (G % NumTus == K)
        line("int gval" + std::to_string(G) + " = " + std::to_string(G * 3) +
             ";");
      else
        line("extern int gval" + std::to_string(G) + ";");
    }
    line(K == 0 ? "int *gptr = &gval0;" : "extern int *gptr;");
    line("");
    // Whole-program prototypes: the in-TU ones merge with their definitions
    // (covering SCC partners), the rest are the cross-TU imports quallink
    // unifies by name.
    for (unsigned I = 0; I != P.NumFunctions; ++I)
      line(signature(I) + ";");
    line("");
    for (unsigned I = K; I < P.NumFunctions; I += NumTus)
      Out += FnText[I];
    if (K + 1 == NumTus)
      Out += MainText;
    Tus[K].LineCount =
        static_cast<unsigned>(std::count(Out.begin(), Out.end(), '\n'));
    Tus[K].Source = std::move(Out);
  }
  return Tus;
}

} // namespace

SynthProgram quals::synth::generateProgram(const SynthParams &Params) {
  PhaseScope Phase("generate", "gen");
  Generator G(Params);
  SynthProgram Prog = G.run();
  Phase.setTraceArgs("\"lines\":" + std::to_string(Prog.LineCount) +
                     ",\"bytes\":" + std::to_string(Prog.Source.size()));
  return Prog;
}

SynthParams quals::synth::paramsForLines(uint64_t Seed,
                                         unsigned TargetLines) {
  SynthParams P;
  P.Seed = Seed;
  // Roughly 11 lines per function plus a fixed prelude; refine by
  // regenerating (deterministic, so the returned params reproduce exactly).
  P.NumFunctions = std::max(4u, TargetLines / 11);
  for (int Iter = 0; Iter != 3; ++Iter) {
    P.NumGlobals = std::max(6u, P.NumFunctions / 8);
    P.NumStructs = std::max(2u, P.NumFunctions / 40);
    P.NumTypedefs = std::max(2u, P.NumFunctions / 60);
    SynthProgram Probe = generateProgram(P);
    if (Probe.LineCount == 0)
      break;
    double Ratio = static_cast<double>(TargetLines) / Probe.LineCount;
    if (Ratio > 0.97 && Ratio < 1.03)
      break;
    P.NumFunctions = std::max(
        4u, static_cast<unsigned>(P.NumFunctions * Ratio + 0.5));
  }
  return P;
}

SynthParams quals::synth::corpusFileParams(uint64_t Seed, unsigned Index,
                                           unsigned TargetLines) {
  // Stride the seeds apart so adjacent files draw unrelated SplitMix64
  // streams (consecutive integers would still be fine, but stay distinct
  // from any seed a caller is likely to pass for a standalone program).
  return paramsForLines(Seed * 0x100000001B3ULL + Index + 1, TargetLines);
}

std::string quals::synth::corpusFileName(unsigned Index) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "corpus_%04u.c", Index);
  return Buf;
}

std::vector<SynthProgram>
quals::synth::generateTuSplit(const SynthParams &Params, unsigned NumTus) {
  PhaseScope Phase("generate-tus", "gen");
  if (NumTus == 0)
    NumTus = 1;
  // No structs or typedefs in TU mode (see the SynthGen.h contract): a
  // struct tag redefined per TU is a distinct nominal type in the
  // concatenation, which would break split-vs-whole-program equivalence.
  SynthParams P = Params;
  P.NumStructs = 0;
  P.NumTypedefs = 0;
  Generator G(P);
  std::vector<SynthProgram> Tus = G.runSplit(NumTus);
  unsigned TotalLines = 0;
  size_t TotalBytes = 0;
  for (const SynthProgram &Tu : Tus) {
    TotalLines += Tu.LineCount;
    TotalBytes += Tu.Source.size();
  }
  Phase.setTraceArgs("\"tus\":" + std::to_string(NumTus) +
                     ",\"lines\":" + std::to_string(TotalLines) +
                     ",\"bytes\":" + std::to_string(TotalBytes));
  return Tus;
}

std::string quals::synth::tuFileName(unsigned Index) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "tu_%04u.c", Index);
  return Buf;
}

//===- gen/SynthGen.h - Synthetic C benchmark generator ---------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of C programs standing in for the paper's
/// benchmark suite (woman, patch, m4, diffutils, ssh, uucp), whose sources
/// are unavailable offline. The generator reproduces the program features
/// Section 4 identifies as driving the const analysis:
///
/// \li functions with pointer-valued parameters, a controllable fraction of
///     which are declared const (the paper picked programs "that show a
///     significant effort to use const");
/// \li writes through pointer parameters (pinning positions non-const);
/// \li identity-shaped helpers (return a pointer parameter) used in both
///     reading and writing contexts -- the pattern where polymorphism beats
///     monomorphic inference (the strchr example of the introduction);
/// \li a call graph with mutually-recursive cliques (FDG SCCs);
/// \li structs with shared field qualifiers, typedefs, explicit casts,
///     variadic library calls, and calls to undefined library functions.
///
/// Generation is fully deterministic given the seed, so Table 1/2 and
/// Figure 6 regenerate bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_GEN_SYNTHGEN_H
#define QUALS_GEN_SYNTHGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace quals {
namespace synth {

/// Generation knobs. Rates are probabilities in [0, 1].
struct SynthParams {
  uint64_t Seed = 1;
  unsigned NumFunctions = 100;
  unsigned NumGlobals = 12;
  unsigned NumStructs = 4;
  unsigned NumTypedefs = 3;
  /// Fraction of read-only pointer parameters annotated const in the
  /// source (the "significant effort to use const" of Table 1's programs).
  double ConstDeclRate = 0.35;
  /// Fraction of functions that write through their first pointer param.
  double WriterRate = 0.30;
  /// Fraction of functions shaped like strchr/id (return a pointer param).
  double IdLikeRate = 0.12;
  /// Fraction of functions participating in a mutual-recursion pair.
  double SccRate = 0.08;
  /// Per-function probability of an explicit cast.
  double CastRate = 0.15;
  /// Per-function probability of calling a variadic library function.
  double VarargsCallRate = 0.12;
  /// Per-function probability of calling an undefined library function.
  double LibraryCallRate = 0.12;
  /// Upper bound on pointer parameters per function.
  unsigned MaxPtrParams = 3;
  /// Calls to earlier functions emitted per function body.
  unsigned CallsPerFunction = 2;
};

/// A generated program.
struct SynthProgram {
  std::string Source;
  unsigned LineCount = 0;
};

/// Generates one C program from \p Params.
SynthProgram generateProgram(const SynthParams &Params);

/// Derives parameters whose output lands near \p TargetLines source lines
/// (matching the Table 1 line counts).
SynthParams paramsForLines(uint64_t Seed, unsigned TargetLines);

/// Parameters for file \p Index of a corpus: same target size for every
/// file, but an independent per-file seed derived from \p Seed so the
/// programs differ. Used by qualgen --corpus and the batch throughput
/// benchmark; each file depends only on (Seed, Index, TargetLines), so a
/// corpus generated on N pool workers is bit-identical to one worker's.
SynthParams corpusFileParams(uint64_t Seed, unsigned Index,
                             unsigned TargetLines);

/// Canonical name of corpus file \p Index: "corpus_0042.c".
std::string corpusFileName(unsigned Index);

/// Splits one deterministic program across \p NumTus translation units
/// (qualgen --tus; the separate-compilation workload of docs/LINK.md).
/// Function fnI is defined in TU I mod NumTus; every TU carries prototypes
/// for the whole program, extern declarations for the globals other TUs
/// define, and main() lands in the last TU. Function bodies are generated
/// in global index order, so for a fixed seed the definitions are
/// byte-identical at every NumTus -- only the declaration boilerplate
/// differs -- and concatenating the TUs in index order yields a program
/// whole-program inference (`qualcc tu_*.c`) analyzes to the same bounds
/// the link pipeline computes from per-TU summaries. TU mode generates no
/// structs or typedefs: a struct tag redefined per TU would be a distinct
/// nominal type in the concatenation, breaking that equivalence.
std::vector<SynthProgram> generateTuSplit(const SynthParams &Params,
                                          unsigned NumTus);

/// Canonical name of TU file \p Index: "tu_0007.c".
std::string tuFileName(unsigned Index);

} // namespace synth
} // namespace quals

#endif // QUALS_GEN_SYNTHGEN_H

//===- serve/ResultCache.h - Content-addressed result cache -----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis server's result cache: a byte-budgeted in-memory LRU of
/// serialized analysis outcomes, keyed by content address, with an optional
/// on-disk spill directory so warm state survives restarts.
///
/// **Keying.** A CacheKey is (ContentHash, ConfigHash): the 64-bit hash of
/// the exact source bytes (support/Hash.h) and the hash of everything else
/// that can change the output -- language, inference mode, print flags,
/// every resource limit, and the cache format version. Identical source
/// under different configs never collides; a config change (including a
/// --limit-* change, which can alter diagnostics) naturally cold-starts.
///
/// **Values.** The buffered stdout/stderr byte streams plus the exit code
/// of one isolated analysis -- exactly what the per-request context
/// produced, so a cached reply is byte-identical to the fresh run that
/// filled it (tools/smoke_server.sh asserts this end to end).
///
/// **Sharding.** The table is split into ShardCount independent shards
/// selected by ContentHash (all configs of one source share a shard, which
/// is what keeps invalidate-by-content a single-shard operation). Each
/// shard has its own mutex, LRU list, and byte budget (the total budget
/// divided evenly), so concurrent hits from many connections touch
/// different locks instead of convoying behind one. stats() aggregates
/// across shards.
///
/// **Eviction.** Least-recently-used per shard, triggered by the shard's
/// byte budget rather than an entry count: corpus files vary by 1000x in
/// output size, so counting entries would make worst-case memory
/// unbounded. An entry larger than its shard's whole budget is served but
/// never cached.
///
/// **Spill.** With a spill directory configured, every insert writes a
/// versioned entry file (<contenthash>-<confighash>.qres) and misses fall
/// back to disk before running the pipeline. Spill files carry a magic,
/// the format version, and both key halves; anything truncated, corrupt,
/// or from another version is ignored and deleted. Spill file reads and
/// writes happen *outside* the shard critical section -- a slow disk can
/// delay the request that touched it, never every concurrent cache
/// operation. See docs/SERVER.md.
///
/// All operations are thread-safe. Hit/miss/eviction/spill counts publish
/// to the PR-2 metrics registry as cache.* when collection is on, and are
/// always available via stats() for the server's `stats` method. A spill
/// promotion (disk entry pulled back into memory) counts as a hit plus a
/// promotion -- never as an insert, so Inserts <= Misses holds for the
/// server's miss-then-insert usage even across restart-warm workloads.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_RESULTCACHE_H
#define QUALS_SERVE_RESULTCACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace quals {
namespace serve {

/// The content address of one analysis result; see the file comment.
struct CacheKey {
  uint64_t ContentHash = 0; ///< Hash of the exact source bytes.
  uint64_t ConfigHash = 0;  ///< Hash of config + limits + format version.

  bool operator==(const CacheKey &O) const {
    return ContentHash == O.ContentHash && ConfigHash == O.ConfigHash;
  }
};

/// One cached analysis outcome: the buffered streams and exit code of a
/// fully isolated run.
struct CachedResult {
  std::string Out;  ///< Buffered stdout bytes.
  std::string Err;  ///< Buffered stderr bytes.
  int ExitCode = 0;
};

/// Point-in-time cache observability, served by qualsd's `stats` method.
/// Aggregated over every shard.
struct CacheStats {
  uint64_t Hits = 0;        ///< Lookups answered from memory or spill.
  uint64_t Misses = 0;      ///< Lookups that had to run the pipeline.
  uint64_t Evictions = 0;   ///< Entries dropped by a shard byte budget.
  uint64_t Inserts = 0;     ///< Successful insert() calls.
  uint64_t Promotions = 0;  ///< Spill entries promoted back into memory.
  uint64_t SpillLoads = 0;  ///< Hits satisfied from the spill directory.
  uint64_t SpillWrites = 0; ///< Entry files written.
  uint64_t Entries = 0;     ///< Current in-memory entry count.
  uint64_t Bytes = 0;       ///< Current in-memory payload bytes.
};

/// A sharded, byte-budgeted LRU over CachedResults; see the file comment.
class ResultCache {
public:
  /// Bumped whenever CachedResult serialization (or anything a key must
  /// capture) changes shape; folded into every ConfigHash and written into
  /// every spill file, so stale state from older builds is never replayed.
  static constexpr uint32_t FormatVersion = 1;

  /// Shards in the default configuration (power of two; selected by the
  /// low bits of ContentHash, which support/Hash.h fully avalanches).
  static constexpr unsigned DefaultShards = 16;

  /// \p MaxBytes is the total in-memory payload budget, divided evenly
  /// across shards; 0 disables caching entirely (every lookup misses,
  /// inserts are dropped) -- the knob the soak tests use to force the cold
  /// path. \p SpillDir, when non-empty, enables the disk spill layer (the
  /// directory is created on first write). \p Shards is the shard count,
  /// rounded up to a power of two; 1 gives the exact global-LRU semantics
  /// the eviction unit tests pin down.
  explicit ResultCache(uint64_t MaxBytes = 64u << 20,
                       std::string SpillDir = {},
                       unsigned Shards = DefaultShards);

  /// Looks \p Key up in memory, then in the spill directory. On a hit,
  /// fills \p Out, refreshes LRU position, and returns true.
  bool lookup(const CacheKey &Key, CachedResult &Out);

  /// Inserts (or refreshes) \p Key -> \p Value, evicting LRU entries until
  /// the shard's payload budget holds, and write-through spills when
  /// configured.
  void insert(const CacheKey &Key, CachedResult Value);

  /// Drops every entry (memory and spill). Returns the number of in-memory
  /// entries dropped.
  uint64_t invalidateAll();

  /// Drops every entry (memory and spill) whose ContentHash is \p
  /// ContentHash, whatever its config. Returns the in-memory drop count.
  uint64_t invalidateContent(uint64_t ContentHash);

  CacheStats stats() const;

  uint64_t maxBytes() const { return MaxBytes; }
  unsigned shardCount() const { return NumShards; }
  const std::string &spillDir() const { return SpillDir; }

private:
  struct KeyHash {
    size_t operator()(const CacheKey &K) const {
      // Both halves are already avalanched 64-bit digests; XOR-fold keeps
      // the table hash cheap without correlating buckets.
      return static_cast<size_t>(K.ContentHash ^ (K.ConfigHash * 0x9e3779b9));
    }
  };

  using LruList = std::list<std::pair<CacheKey, CachedResult>>;

  /// One independent slice of the cache. Shard::Counts carries the partial
  /// counters; stats() sums them.
  struct Shard {
    mutable std::mutex Mutex;
    LruList Lru; ///< Front = most recently used.
    std::unordered_map<CacheKey, LruList::iterator, KeyHash> Map;
    uint64_t CurBytes = 0;
    CacheStats Counts;
  };

  uint64_t MaxBytes;
  uint64_t ShardMaxBytes; ///< Per-shard budget: ceil(MaxBytes / NumShards).
  std::string SpillDir;
  unsigned NumShards;
  std::unique_ptr<Shard[]> Shards;

  Shard &shardFor(const CacheKey &Key) {
    return Shards[Key.ContentHash & (NumShards - 1)];
  }

  static uint64_t entryBytes(const CachedResult &R) {
    return R.Out.size() + R.Err.size() + 64; // 64 ~= bookkeeping overhead
  }

  /// Inserts into \p S (mutex held). \p CountInsert distinguishes a real
  /// insert from a spill promotion, which bumps Promotions instead.
  void insertShardLocked(Shard &S, const CacheKey &Key, CachedResult Value,
                         bool CountInsert);
  void evictOverBudgetLocked(Shard &S);

  // Spill-layer helpers; all file I/O, called with no shard mutex held.
  std::string spillPath(const CacheKey &Key) const;
  bool spillWrite(const CacheKey &Key, const CachedResult &Value);
  bool spillLoad(const CacheKey &Key, CachedResult &Out);
  void spillRemoveAll(uint64_t ContentHash, bool MatchContent);
  void bumpCacheCounter(const char *Name, uint64_t Delta = 1);
};

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_RESULTCACHE_H

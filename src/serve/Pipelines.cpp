//===- serve/Pipelines.cpp - Per-request analysis pipelines ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Pipelines.h"

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "constinf/Summary.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"
#include "support/Hash.h"
#include "support/Metrics.h"

#include <cstdarg>
#include <cstdio>

using namespace quals;
using namespace quals::serve;

uint64_t quals::serve::configHash(const AnalyzeJob &Job) {
  HashBuilder B;
  B.add(static_cast<uint64_t>(ResultCache::FormatVersion))
      .add(Job.Language)
      .add(Job.Name)
      .add(Job.Polymorphic)
      .add(Job.Protos)
      .add(static_cast<uint64_t>(Job.Lim.MaxErrors))
      .add(static_cast<uint64_t>(Job.Lim.MaxRecursionDepth))
      .add(Job.Lim.MaxConstraints)
      .add(Job.Lim.MaxArenaBytes);
  return B.digest();
}

namespace {

void appendf(std::string &Buf, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Buf, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  char Stack[256];
  int Needed = std::vsnprintf(Stack, sizeof(Stack), Fmt, Args);
  va_end(Args);
  if (Needed < 0)
    return;
  if (static_cast<size_t>(Needed) < sizeof(Stack)) {
    Buf.append(Stack, Needed);
    return;
  }
  size_t Old = Buf.size();
  Buf.resize(Old + Needed + 1);
  va_start(Args, Fmt);
  std::vsnprintf(&Buf[Old], Needed + 1, Fmt, Args);
  va_end(Args);
  Buf.resize(Old + Needed);
}

/// One isolated C front-end context: the per-request state runC and the
/// analyze-delta pipeline share (parse + sema staging).
struct CUnit {
  SourceManager SM;
  DiagnosticEngine Diags;
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;

  explicit CUnit(const Limits &Lim) : Diags(SM, Lim) {}

  /// Parse + sema. On failure fills \p R exactly like the cold pipeline
  /// (stderr diagnostics, exit 1) and returns false.
  bool frontend(const AnalyzeJob &Job, CachedResult &R) {
    using namespace quals::cfront;
    if (!parseCSource(SM, Job.Name, Job.Source, Ast, Types, Idents, Diags,
                      TU)) {
      R.Err += Diags.renderAll();
      R.ExitCode = 1;
      return false;
    }
    CSema Sema(Ast, Types, Idents, Diags);
    if (!Sema.analyze(TU)) {
      R.Err += Diags.renderAll();
      R.ExitCode = 1;
      return false;
    }
    return true;
  }
};

/// Renders the success report (optionally prototypes, then the counts
/// banner) from an explicit classification list. Both the cold and the
/// incremental path flow through here, so their bytes cannot diverge.
void renderCReport(const AnalyzeJob &Job,
                   const std::vector<constinf::ClassifiedPos> &Positions,
                   CachedResult &R) {
  using namespace quals::constinf;
  if (Job.Protos)
    R.Out += renderAnnotatedPrototypes(Positions);
  ConstCounts C = countPositions(Positions);
  appendf(R.Out,
          "declared %u, inferred possible-const %u, total positions %u\n",
          C.Declared, C.PossibleConst, C.Total);
}

/// Const inference over an already parsed+analyzed unit; shared by the cold
/// pipeline and the incremental path's full-fallback branch.
void runCInference(const AnalyzeJob &Job, CUnit &U, CachedResult &R,
                   std::shared_ptr<const constinf::UnitSnapshot> *Capture) {
  using namespace quals::constinf;
  ConstInference::Options InfOpts;
  InfOpts.Polymorphic = Job.Polymorphic;
  InfOpts.SolverJobs = Job.SolverJobs;
  InfOpts.SolverPool = Job.SolverPool;
  ConstInference Inf(U.TU, U.Diags, InfOpts);
  if (!Inf.run()) {
    appendf(R.Err, "qualsd: const errors detected:\n%s",
            U.Diags.renderAll().c_str());
    R.ExitCode = 2;
    return;
  }
  renderCReport(Job, Inf.classifiedPositions(), R);
  if (Capture)
    *Capture = captureSnapshot(U.TU, Inf);
}

/// The qualcc pipeline over one in-memory buffer: parse, sema, const
/// inference. Timing lines are deliberately omitted (see the header).
void runC(const AnalyzeJob &Job, CachedResult &R,
          std::shared_ptr<const constinf::UnitSnapshot> *Capture) {
  CUnit U(Job.Lim);
  if (!U.frontend(Job, R))
    return;
  runCInference(Job, U, R, Capture);
}

/// The qualcheck pipeline over one in-memory buffer with the default
/// qualifier set; no evaluation (servers check, they don't run programs).
void runLambda(const AnalyzeJob &Job, CachedResult &R) {
  using namespace quals::lambda;

  QualifierSet QS;
  QualifierId ConstQual = QS.add("const", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  QS.add("dynamic", Polarity::Positive);
  QS.add("tainted", Polarity::Positive);

  SourceManager SM;
  DiagnosticEngine Diags(SM, Job.Lim);
  AstContext Ast;
  StringInterner Idents;
  const Expr *Program =
      parseString(SM, Job.Name, Job.Source, QS, Ast, Idents, Diags);
  if (!Program) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }

  STyContext STys;
  SolverConfig SysConfig;
  SysConfig.MaxConstraints = Job.Lim.MaxConstraints;
  ConstraintSystem Sys(QS, SysConfig);
  QualTypeFactory Factory;
  LambdaTypeCtors Ctors;
  QualInferOptions Options;
  Options.Polymorphic = Job.Polymorphic;
  Options.ConstQual = ConstQual;

  CheckResult Result =
      checkProgram(Program, QS, STys, Sys, Factory, Ctors, Diags, Options);
  if (!Result.StdTypeOk) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }
  appendf(R.Out, "qualified type: %s\n",
          toString(QS, Result.Type, &Sys).c_str());
  if (!Result.QualOk) {
    R.Out += "qualifier check: REJECTED\n";
    for (const Violation &V : Result.Violations)
      R.Out += Sys.explain(V);
    R.ExitCode = 2;
    return;
  }
  appendf(R.Out, "qualifier check: accepted (%s)\n",
          Job.Polymorphic ? "polymorphic" : "monomorphic");
}

} // namespace

void quals::serve::runAnalysis(
    const AnalyzeJob &Job, CachedResult &R,
    std::shared_ptr<const constinf::UnitSnapshot> *Capture) {
  PhaseScope Phase("serve.analyze", "serve");
  if (Job.Language == "lambda")
    runLambda(Job, R);
  else
    runC(Job, R, Capture);
}

void quals::serve::runAnalysisDelta(
    const AnalyzeJob &Job, const constinf::UnitSnapshot &Prev,
    CachedResult &R, std::shared_ptr<const constinf::UnitSnapshot> &Next,
    DeltaOutcome &Outcome) {
  using namespace quals::constinf;

  Next = nullptr;
  auto fallBack = [&](const char *Reason) {
    Outcome.UsedDelta = false;
    Outcome.FallbackReason = Reason;
  };

  if (Job.Language == "lambda") {
    // The lambda pipeline has no incremental layer; serve it cold.
    fallBack("language");
    runAnalysis(Job, R, nullptr);
    return;
  }

  PhaseScope Phase("serve.analyze", "serve");
  CUnit U(Job.Lim);
  if (!U.frontend(Job, R)) {
    // Front-end failure: R already holds the exact cold bytes (the cold
    // pipeline stops at the same point with the same diagnostics).
    fallBack("frontend-error");
    return;
  }

  // Plan against the snapshot; any structural surprise means the snapshot's
  // node numbering or interfaces no longer line up, so run the rest of the
  // cold pipeline on the context we already built (identical from here on).
  Fdg Graph = buildFdg(U.TU);
  DeltaPlan Plan = planDelta(U.TU, Graph, Prev);
  if (!Plan.Compatible) {
    fallBack(Plan.FallbackReason);
    runCInference(Job, U, R, &Next);
    return;
  }

  ConstInference::Options InfOpts;
  InfOpts.Polymorphic = Job.Polymorphic;
  InfOpts.OnlyFunctions = &Plan.DirtyFunctions;
  InfOpts.GenGlobalInits = Plan.InitsDirty;
  InfOpts.SolverJobs = Job.SolverJobs;
  InfOpts.SolverPool = Job.SolverPool;
  ConstInference Inf(U.TU, U.Diags, InfOpts);
  if (!Inf.run()) {
    // The edit introduced a const error (or blew a resource budget) inside
    // the dirty region. Error rendering depends on constraint numbering,
    // which a restricted run cannot reproduce -- re-run cold in a fresh
    // context for byte-exact diagnostics.
    fallBack("analysis-error");
    CachedResult Cold;
    runAnalysis(Job, Cold, nullptr);
    R = std::move(Cold);
    return;
  }

  bool Ok = false;
  std::vector<ClassifiedPos> Positions = assemblePositions(Inf, Plan, Prev, Ok);
  if (!Ok) {
    fallBack("summary-miss");
    CachedResult Cold;
    runAnalysis(Job, Cold, &Next);
    R = std::move(Cold);
    return;
  }

  renderCReport(Job, Positions, R);
  Next = captureDeltaSnapshot(U.TU, Inf, Plan, Prev);
  Outcome.UsedDelta = true;
  Outcome.DirtySccs = Plan.NumDirtySccs;
  Outcome.ReusedSccs = Plan.NumReusedSccs;
}

//===- serve/Pipelines.cpp - Per-request analysis pipelines ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Pipelines.h"

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"
#include "support/Hash.h"
#include "support/Metrics.h"

#include <cstdarg>
#include <cstdio>

using namespace quals;
using namespace quals::serve;

uint64_t quals::serve::configHash(const AnalyzeJob &Job) {
  HashBuilder B;
  B.add(static_cast<uint64_t>(ResultCache::FormatVersion))
      .add(Job.Language)
      .add(Job.Name)
      .add(Job.Polymorphic)
      .add(Job.Protos)
      .add(static_cast<uint64_t>(Job.Lim.MaxErrors))
      .add(static_cast<uint64_t>(Job.Lim.MaxRecursionDepth))
      .add(Job.Lim.MaxConstraints)
      .add(Job.Lim.MaxArenaBytes);
  return B.digest();
}

namespace {

void appendf(std::string &Buf, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Buf, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  char Stack[256];
  int Needed = std::vsnprintf(Stack, sizeof(Stack), Fmt, Args);
  va_end(Args);
  if (Needed < 0)
    return;
  if (static_cast<size_t>(Needed) < sizeof(Stack)) {
    Buf.append(Stack, Needed);
    return;
  }
  size_t Old = Buf.size();
  Buf.resize(Old + Needed + 1);
  va_start(Args, Fmt);
  std::vsnprintf(&Buf[Old], Needed + 1, Fmt, Args);
  va_end(Args);
  Buf.resize(Old + Needed);
}

/// The qualcc pipeline over one in-memory buffer: parse, sema, const
/// inference. Timing lines are deliberately omitted (see the header).
void runC(const AnalyzeJob &Job, CachedResult &R) {
  using namespace quals::cfront;
  using namespace quals::constinf;

  SourceManager SM;
  DiagnosticEngine Diags(SM, Job.Lim);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  if (!parseCSource(SM, Job.Name, Job.Source, Ast, Types, Idents, Diags,
                    TU)) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }
  CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU)) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }

  ConstInference::Options InfOpts;
  InfOpts.Polymorphic = Job.Polymorphic;
  ConstInference Inf(TU, Diags, InfOpts);
  if (!Inf.run()) {
    appendf(R.Err, "qualsd: const errors detected:\n%s",
            Diags.renderAll().c_str());
    R.ExitCode = 2;
    return;
  }
  if (Job.Protos)
    R.Out += Inf.renderAnnotatedPrototypes();
  ConstCounts C = Inf.counts();
  appendf(R.Out,
          "declared %u, inferred possible-const %u, total positions %u\n",
          C.Declared, C.PossibleConst, C.Total);
}

/// The qualcheck pipeline over one in-memory buffer with the default
/// qualifier set; no evaluation (servers check, they don't run programs).
void runLambda(const AnalyzeJob &Job, CachedResult &R) {
  using namespace quals::lambda;

  QualifierSet QS;
  QualifierId ConstQual = QS.add("const", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  QS.add("dynamic", Polarity::Positive);
  QS.add("tainted", Polarity::Positive);

  SourceManager SM;
  DiagnosticEngine Diags(SM, Job.Lim);
  AstContext Ast;
  StringInterner Idents;
  const Expr *Program =
      parseString(SM, Job.Name, Job.Source, QS, Ast, Idents, Diags);
  if (!Program) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }

  STyContext STys;
  SolverConfig SysConfig;
  SysConfig.MaxConstraints = Job.Lim.MaxConstraints;
  ConstraintSystem Sys(QS, SysConfig);
  QualTypeFactory Factory;
  LambdaTypeCtors Ctors;
  QualInferOptions Options;
  Options.Polymorphic = Job.Polymorphic;
  Options.ConstQual = ConstQual;

  CheckResult Result =
      checkProgram(Program, QS, STys, Sys, Factory, Ctors, Diags, Options);
  if (!Result.StdTypeOk) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }
  appendf(R.Out, "qualified type: %s\n",
          toString(QS, Result.Type, &Sys).c_str());
  if (!Result.QualOk) {
    R.Out += "qualifier check: REJECTED\n";
    for (const Violation &V : Result.Violations)
      R.Out += Sys.explain(V);
    R.ExitCode = 2;
    return;
  }
  appendf(R.Out, "qualifier check: accepted (%s)\n",
          Job.Polymorphic ? "polymorphic" : "monomorphic");
}

} // namespace

void quals::serve::runAnalysis(const AnalyzeJob &Job, CachedResult &R) {
  PhaseScope Phase("serve.analyze", "serve");
  if (Job.Language == "lambda")
    runLambda(Job, R);
  else
    runC(Job, R);
}

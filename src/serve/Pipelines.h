//===- serve/Pipelines.h - Per-request analysis pipelines -------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis pipelines the server runs on a cache miss, mirroring the
/// batch tools (qualcc's analyzeUnit, qualcheck's checkOneFile) with two
/// server-driven differences:
///
/// \li **Full isolation.** Every call builds a fresh context -- its own
///     SourceManager, DiagnosticEngine, arenas, interner, constraint
///     system -- and tears it all down on return, exactly like one
///     tools/BatchDriver task. Nothing is retained between requests
///     except the result cache; the soak test
///     (tests/server_soak_test.cpp) holds this line.
/// \li **Deterministic output.** No wall-clock timings in the report, so
///     the same (source, config) pair always produces the same bytes --
///     the property that makes results cacheable and restart-warm replies
///     byte-comparable (docs/SERVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_PIPELINES_H
#define QUALS_SERVE_PIPELINES_H

#include "serve/ResultCache.h"
#include "support/Limits.h"

#include <cstdint>
#include <memory>
#include <string>

namespace quals {

class ThreadPool;

namespace constinf {
struct UnitSnapshot;
}

namespace serve {

/// Everything that determines one analysis run's output: the source bytes
/// plus the config half of the cache key.
struct AnalyzeJob {
  std::string Name;     ///< Buffer name for diagnostics.
  std::string Source;   ///< The exact source bytes to analyze.
  std::string Language; ///< "c" or "lambda".
  bool Polymorphic = true;
  bool Protos = false;  ///< Also print annotated prototypes (C only).
  Limits Lim;           ///< Resource budgets for the isolated context.

  // Solver shard concurrency for the C pipeline's dense bulk solves.
  // Deliberately NOT part of configHash: solved bytes are identical at any
  // value (docs/SOLVER.md determinism contract), so a cached result is
  // valid for every setting. The server only sets these when requests run
  // inline (--jobs 1); at --jobs > 1 the requests themselves are the
  // parallelism axis and the solver stays inline (docs/PARALLEL.md).
  unsigned SolverJobs = 1;    ///< Shard threads (1 = inline).
  ThreadPool *SolverPool = nullptr; ///< Borrowed pool; null = inline.
};

/// Hash of every output-affecting field of \p Job except the source bytes
/// (those are the other key half), folded with ResultCache::FormatVersion.
/// Name is included: diagnostics and banners embed it, so the same bytes
/// under a different name are a different (byte-exact) result. The content
/// half of the key stays a pure function of the source bytes, which is
/// what makes `invalidate` by content hash drop every alias at once.
uint64_t configHash(const AnalyzeJob &Job);

/// Runs the pipeline for \p Job in a fully isolated context, buffering
/// stdout/stderr bytes and the exit code into \p R (0 accepted, 1
/// front-end errors, 2 qualifier/const errors -- the tools' convention).
///
/// When \p Capture is non-null and the run is a successful C analysis, it
/// receives a UnitSnapshot for future analyze-delta requests (may stay null
/// for shapes the incremental layer does not support; docs/INCREMENTAL.md).
void runAnalysis(const AnalyzeJob &Job, CachedResult &R,
                 std::shared_ptr<const constinf::UnitSnapshot> *Capture =
                     nullptr);

/// What an incremental run actually did, for the server's delta metrics.
/// Never part of the response bytes: analyze-delta answers are
/// byte-identical to cold analyze answers by contract.
struct DeltaOutcome {
  /// True when the restricted re-analysis produced the answer; false when
  /// the pipeline fell back to a full run (FallbackReason says why).
  bool UsedDelta = false;
  /// "language", "decl-region", "function-set", "call-graph",
  /// "frontend-error", "analysis-error", or "summary-miss".
  const char *FallbackReason = nullptr;
  unsigned DirtySccs = 0;  ///< Components re-solved.
  unsigned ReusedSccs = 0; ///< Components replayed from the snapshot.
};

/// Incremental variant of runAnalysis against a prior snapshot of the same
/// (name, config): re-parses \p Job, re-solves only the SCCs the edit
/// dirtied (plus their coupling closure), and replays the rest from
/// \p Prev. Fills \p R with bytes identical to what a cold runAnalysis
/// would produce -- falling back to an actual cold run whenever that cannot
/// be guaranteed. \p Next receives the successor snapshot when available.
void runAnalysisDelta(const AnalyzeJob &Job,
                      const constinf::UnitSnapshot &Prev, CachedResult &R,
                      std::shared_ptr<const constinf::UnitSnapshot> &Next,
                      DeltaOutcome &Outcome);

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_PIPELINES_H

//===- serve/Protocol.cpp - qualsd wire protocol ---------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace quals;
using namespace quals::serve;

int64_t JsonValue::asInt64(bool &Ok) const {
  Ok = K == Kind::Number && Num == std::floor(Num) &&
       Num >= -9223372036854775808.0 && Num < 9223372036854775808.0;
  return Ok ? static_cast<int64_t>(Num) : 0;
}

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a bounded byte range. Every recursion
/// is metered against ProtocolLimits::MaxDepth, mirroring the front ends'
/// RecursionGuard discipline (the parser stack is the resource at risk).
class Parser {
public:
  Parser(std::string_view Text, const ProtocolLimits &Lim)
      : Text(Text), Lim(Lim) {}

  bool parse(JsonValue &Out, std::string &Error) {
    if (Text.size() > Lim.MaxRequestBytes)
      return fail(Lim.MaxRequestBytes, "request exceeds byte limit", Error);
    skipWs();
    if (!parseValue(Out, 0, Error))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail(Pos, "trailing garbage after document", Error);
    return true;
  }

private:
  std::string_view Text;
  const ProtocolLimits &Lim;
  size_t Pos = 0;

  static bool fail(size_t At, const char *Msg, std::string &Error) {
    Error = "byte " + std::to_string(At) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos != Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.substr(Pos, Len) != Word)
      return false;
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth, std::string &Error) {
    if (Depth >= Lim.MaxDepth)
      return fail(Pos, "nesting exceeds depth limit", Error);
    if (Pos == Text.size())
      return fail(Pos, "unexpected end of input", Error);
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth, Error);
    case '[':
      return parseArray(Out, Depth, Error);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str, Error);
    case 't':
      if (!literal("true"))
        return fail(Pos, "bad literal", Error);
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail(Pos, "bad literal", Error);
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail(Pos, "bad literal", Error);
      Out.K = JsonValue::Kind::Null;
      return true;
    default:
      return parseNumber(Out, Error);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth, std::string &Error) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos != Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos == Text.size() || Text[Pos] != '"')
        return fail(Pos, "expected object key", Error);
      std::string Key;
      if (!parseString(Key, Error))
        return false;
      skipWs();
      if (Pos == Text.size() || Text[Pos] != ':')
        return fail(Pos, "expected ':' after key", Error);
      ++Pos;
      skipWs();
      JsonValue Member;
      if (!parseValue(Member, Depth + 1, Error))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (Pos == Text.size())
        return fail(Pos, "unterminated object", Error);
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail(Pos, "expected ',' or '}'", Error);
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth, std::string &Error) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos != Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue Elem;
      if (!parseValue(Elem, Depth + 1, Error))
        return false;
      Out.Elems.push_back(std::move(Elem));
      skipWs();
      if (Pos == Text.size())
        return fail(Pos, "unterminated array", Error);
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail(Pos, "expected ',' or ']'", Error);
    }
  }

  /// Appends \p Code as UTF-8.
  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xc0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xe0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  bool parseHex4(uint32_t &Out, std::string &Error) {
    if (Pos + 4 > Text.size())
      return fail(Pos, "truncated \\u escape", Error);
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos + I];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        return fail(Pos + I, "bad hex digit in \\u escape", Error);
      Out = Out * 16 + D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out, std::string &Error) {
    ++Pos; // opening quote
    Out.clear();
    for (;;) {
      if (Pos == Text.size())
        return fail(Pos, "unterminated string", Error);
      if (Out.size() > Lim.MaxStringBytes)
        return fail(Pos, "string exceeds byte limit", Error);
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail(Pos, "unescaped control character in string", Error);
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos == Text.size())
        return fail(Pos, "truncated escape", Error);
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/'; break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'u': {
        uint32_t Code = 0;
        if (!parseHex4(Code, Error))
          return false;
        if (Code >= 0xd800 && Code <= 0xdbff) {
          // High surrogate: pair with a following \uXXXX low surrogate, or
          // substitute U+FFFD for a lone one (never crash, never emit
          // ill-formed UTF-8 the server would then re-serialize).
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            size_t Save = Pos;
            Pos += 2;
            uint32_t Low = 0;
            if (!parseHex4(Low, Error))
              return false;
            if (Low >= 0xdc00 && Low <= 0xdfff) {
              Code = 0x10000 + ((Code - 0xd800) << 10) + (Low - 0xdc00);
            } else {
              Pos = Save; // Not a low surrogate; leave it for the next loop.
              Code = 0xfffd;
            }
          } else {
            Code = 0xfffd;
          }
        } else if (Code >= 0xdc00 && Code <= 0xdfff) {
          Code = 0xfffd; // Lone low surrogate.
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail(Pos - 1, "unknown escape", Error);
      }
    }
  }

  bool parseNumber(JsonValue &Out, std::string &Error) {
    size_t Start = Pos;
    if (Pos != Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos == Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail(Start, "expected value", Error);
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (Pos != Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    if (Pos != Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos == Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail(Pos, "expected digits after '.'", Error);
      while (Pos != Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos != Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos != Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos == Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail(Pos, "expected exponent digits", Error);
      while (Pos != Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    // The grammar above admits only strtod-safe spellings, and the copy
    // bounds the parse for non-NUL-terminated views.
    std::string Spelling(Text.substr(Start, Pos - Start));
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(Spelling.c_str(), nullptr);
    if (!std::isfinite(Out.Num))
      return fail(Start, "number out of range", Error);
    return true;
  }
};

/// Reads an optional boolean member; false return = ill-typed.
bool readBool(const JsonValue &Obj, const char *Key, bool &Out,
              std::string &Error) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (V->kind() != JsonValue::Kind::Bool) {
    Error = std::string("param '") + Key + "' must be a boolean";
    return false;
  }
  Out = V->asBool();
  return true;
}

/// Reads an optional string member; false return = ill-typed.
bool readString(const JsonValue &Obj, const char *Key, std::string &Out,
                bool &Present, std::string &Error) {
  Present = false;
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (V->kind() != JsonValue::Kind::String) {
    Error = std::string("param '") + Key + "' must be a string";
    return false;
  }
  Out = V->asString();
  Present = true;
  return true;
}

} // namespace

bool quals::serve::parseJson(std::string_view Text, const ProtocolLimits &Lim,
                             JsonValue &Out, std::string &Error) {
  return Parser(Text, Lim).parse(Out, Error);
}

bool quals::serve::parseRequest(std::string_view Line,
                                const ProtocolLimits &Lim, Request &Out,
                                std::string &Error) {
  JsonValue Doc;
  if (!parseJson(Line, Lim, Doc, Error))
    return false;
  if (Doc.kind() != JsonValue::Kind::Object) {
    Error = "request must be a JSON object";
    return false;
  }

  // Pull the id first so even failed requests can echo it.
  if (const JsonValue *Id = Doc.find("id")) {
    bool Ok;
    int64_t V = Id->asInt64(Ok);
    if (!Ok) {
      Error = "'id' must be an integer";
      return false;
    }
    Out.Id = V;
    Out.HasId = true;
  }

  const JsonValue *MethodV = Doc.find("method");
  if (!MethodV || MethodV->kind() != JsonValue::Kind::String) {
    Error = "missing or non-string 'method'";
    return false;
  }
  const std::string &M = MethodV->asString();
  if (M == "analyze")
    Out.M = Method::Analyze;
  else if (M == "analyze-delta")
    Out.M = Method::AnalyzeDelta;
  else if (M == "invalidate")
    Out.M = Method::Invalidate;
  else if (M == "stats")
    Out.M = Method::Stats;
  else if (M == "metrics")
    Out.M = Method::Metrics;
  else if (M == "shutdown")
    Out.M = Method::Shutdown;
  else {
    Error = "unknown method '" + M + "'";
    return false;
  }

  const JsonValue *Params = Doc.find("params");
  if (Params && Params->kind() != JsonValue::Kind::Object) {
    Error = "'params' must be an object";
    return false;
  }

  if (Out.M == Method::Analyze || Out.M == Method::AnalyzeDelta) {
    if (!Params) {
      Error = "analyze requires params";
      return false;
    }
    bool HavePath = false, HaveName = false, HaveLang = false;
    bool Mono = false;
    if (!readString(*Params, "path", Out.Path, HavePath, Error) ||
        !readString(*Params, "source", Out.Source, Out.HasSource, Error) ||
        !readString(*Params, "name", Out.Name, HaveName, Error) ||
        !readString(*Params, "language", Out.Language, HaveLang, Error) ||
        !readBool(*Params, "mono", Mono, Error) ||
        !readBool(*Params, "protos", Out.Protos, Error))
      return false;
    Out.Polymorphic = !Mono;
    if (HavePath == Out.HasSource) {
      Error = "analyze requires exactly one of 'path' or 'source'";
      return false;
    }
    if (Out.Language != "c" && Out.Language != "lambda") {
      Error = "param 'language' must be \"c\" or \"lambda\"";
      return false;
    }
    if (HavePath)
      Out.Name = Out.Path;
  } else if (Out.M == Method::Invalidate) {
    if (Params) {
      bool Have = false;
      if (!readString(*Params, "hash", Out.ContentHashHex, Have, Error))
        return false;
      if (Have) {
        if (Out.ContentHashHex.empty() || Out.ContentHashHex.size() > 16) {
          Error = "param 'hash' must be 1..16 hex digits";
          return false;
        }
        for (char C : Out.ContentHashHex)
          if (!std::isxdigit(static_cast<unsigned char>(C))) {
            Error = "param 'hash' must be 1..16 hex digits";
            return false;
          }
      }
    }
  }
  return true;
}

void quals::serve::appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

//===- serve/SummaryStore.h - Retained snapshots for analyze-delta -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side home of constinf::UnitSnapshot (docs/INCREMENTAL.md).
/// Where the ResultCache is keyed by *content* (any source bytes, any
/// alias), the SummaryStore is keyed by *identity*: (name, config hash),
/// i.e. "the latest successfully analyzed version of this path under these
/// settings". An analyze-delta request for that identity plans its
/// incremental run against the stored snapshot and, on success, replaces it
/// -- the editor-loop progression the ROADMAP's incremental item asks for.
///
/// Snapshots share ResultCache's config discipline: the key folds the same
/// configHash (including ResultCache::FormatVersion), so a flag or format
/// change can never replay a stale summary. Entries are immutable
/// shared_ptrs -- concurrent analyze-delta requests for one identity plan
/// against whichever snapshot they observed and publish last-writer-wins,
/// which is safe because every snapshot is self-consistent and the response
/// bytes are identical either way.
///
/// Capacity is entry-counted (ServerConfig::MaxSnapshots) with LRU
/// eviction; an editor loop touches few identities, so a small cap holds
/// the working set.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_SUMMARYSTORE_H
#define QUALS_SERVE_SUMMARYSTORE_H

#include "constinf/Summary.h"

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace quals {
namespace serve {

/// Thread-safe LRU map from (unit name, config hash) to the latest
/// snapshot of that unit. All methods are safe to call concurrently.
class SummaryStore {
public:
  struct Stats {
    uint64_t Hits = 0;      ///< lookup() found a snapshot.
    uint64_t Misses = 0;    ///< lookup() found nothing.
    uint64_t Inserts = 0;   ///< store() calls (insert or replace).
    uint64_t Evictions = 0; ///< Entries dropped by the LRU cap.
    uint64_t Entries = 0;   ///< Current entry count.
    uint64_t Bytes = 0;     ///< Approximate retained bytes.
  };

  /// \p MaxEntries of 0 disables the store entirely (lookup always misses,
  /// store is a no-op) -- qualsd --snapshots=0.
  explicit SummaryStore(unsigned MaxEntries) : MaxEntries(MaxEntries) {}

  std::shared_ptr<const constinf::UnitSnapshot>
  lookup(const std::string &Name, uint64_t ConfigHash) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(key(Name, ConfigHash));
    if (It == Map.end() || MaxEntries == 0) {
      ++TheStats.Misses;
      return nullptr;
    }
    ++TheStats.Hits;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return It->second.Snap;
  }

  void store(const std::string &Name, uint64_t ConfigHash,
             std::shared_ptr<const constinf::UnitSnapshot> Snap) {
    if (!Snap || MaxEntries == 0)
      return;
    std::lock_guard<std::mutex> Lock(M);
    ++TheStats.Inserts;
    std::string K = key(Name, ConfigHash);
    auto It = Map.find(K);
    if (It != Map.end()) {
      TheStats.Bytes -= It->second.Snap->approxBytes();
      TheStats.Bytes += Snap->approxBytes();
      It->second.Snap = std::move(Snap);
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      return;
    }
    Lru.push_front(K);
    Entry E;
    E.Snap = std::move(Snap);
    E.LruIt = Lru.begin();
    TheStats.Bytes += E.Snap->approxBytes();
    Map.emplace(std::move(K), std::move(E));
    while (Map.size() > MaxEntries) {
      auto Victim = Map.find(Lru.back());
      TheStats.Bytes -= Victim->second.Snap->approxBytes();
      Map.erase(Victim);
      Lru.pop_back();
      ++TheStats.Evictions;
    }
  }

  /// Drops every snapshot (the `invalidate` request clears summaries along
  /// with cached results: both derive from previously served content).
  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Map.clear();
    Lru.clear();
    TheStats.Bytes = 0;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> Lock(M);
    Stats S = TheStats;
    S.Entries = Map.size();
    return S;
  }

private:
  struct Entry {
    std::shared_ptr<const constinf::UnitSnapshot> Snap;
    std::list<std::string>::iterator LruIt;
  };

  static std::string key(const std::string &Name, uint64_t ConfigHash) {
    char Buf[17];
    std::snprintf(Buf, sizeof(Buf), "%016llx",
                  static_cast<unsigned long long>(ConfigHash));
    return Name + '\0' + Buf;
  }

  const unsigned MaxEntries;
  mutable std::mutex M;
  std::unordered_map<std::string, Entry> Map;
  std::list<std::string> Lru; ///< Front = most recent; values are map keys.
  Stats TheStats;
};

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_SUMMARYSTORE_H

//===- serve/RequestLog.cpp - Structured NDJSON request log ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/RequestLog.h"

#include "support/Trace.h"

using namespace quals;

std::string RequestLog::render(const RequestLogEvent &Ev) {
  std::string Out = "{\"seq\":" + std::to_string(Ev.Seq) + ",\"id\":";
  Out += Ev.HasId ? std::to_string(Ev.Id) : "null";
  Out += ",\"method\":\"" + jsonEscape(Ev.Method) + "\",\"ok\":";
  Out += Ev.Ok ? "true" : "false";
  if (Ev.HasExit)
    Out += ",\"exit\":" + std::to_string(Ev.Exit);
  if (!Ev.HashPrefix.empty())
    Out += ",\"hash\":\"" + jsonEscape(Ev.HashPrefix) + "\"";
  if (Ev.Cache)
    Out += ",\"cache\":\"" + std::string(Ev.Cache) + "\"";
  if (Ev.Snapshot)
    Out += ",\"snapshot\":\"" + std::string(Ev.Snapshot) + "\"";
  if (Ev.Delta)
    Out += ",\"delta\":\"" + std::string(Ev.Delta) + "\"";
  Out += ",\"bytes_in\":" + std::to_string(Ev.BytesIn) +
         ",\"bytes_out\":" + std::to_string(Ev.BytesOut) +
         ",\"queue_us\":" + std::to_string(Ev.QueueUs) +
         ",\"service_us\":" + std::to_string(Ev.ServiceUs);
  if (Ev.Slow)
    Out += ",\"slow\":true";
  if (!Ev.PhasesUs.empty()) {
    Out += ",\"phases\":{";
    bool First = true;
    for (const auto &KV : Ev.PhasesUs) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"' + jsonEscape(KV.first) + "\":" + std::to_string(KV.second);
    }
    Out += '}';
  }
  Out += '}';
  return Out;
}

void RequestLog::write(RequestLogEvent &Ev) {
  if (!Out)
    return;
  if (SlowMicros && Ev.ServiceUs >= SlowMicros)
    Ev.Slow = true;
  std::string Line = render(Ev);
  Line += '\n';
  std::lock_guard<std::mutex> Lock(Mutex);
  // One write, one flush: a killed daemon leaves whole lines behind.
  Out->write(Line.data(), static_cast<std::streamsize>(Line.size()));
  Out->flush();
}

//===- serve/Transport.cpp - Socket transport for qualsd -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

#include "serve/Server.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <list>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace quals;
using namespace quals::serve;

namespace {

/// A bidirectional std::streambuf over one socket fd, so Server::run's
/// stream-based protocol loop works over sockets unchanged (the bounded
/// line reader pulls via sbumpc, responses go out via operator<<).
/// Writes use MSG_NOSIGNAL: a peer that disappeared mid-response must
/// surface as a stream error on this session, not SIGPIPE the process.
class FdStreamBuf : public std::streambuf {
public:
  explicit FdStreamBuf(int Fd) : Fd(Fd) {
    setg(InBuf, InBuf, InBuf);
    setp(OutBuf, OutBuf + sizeof(OutBuf));
  }
  ~FdStreamBuf() override { flushOut(); }

protected:
  int_type underflow() override {
    if (gptr() < egptr())
      return traits_type::to_int_type(*gptr());
    ssize_t N;
    do {
      N = ::recv(Fd, InBuf, sizeof(InBuf), 0);
    } while (N < 0 && errno == EINTR);
    if (N <= 0)
      return traits_type::eof(); // Peer closed (or read side shut down).
    setg(InBuf, InBuf, InBuf + N);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type C) override {
    if (!flushOut())
      return traits_type::eof();
    if (!traits_type::eq_int_type(C, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(C);
      pbump(1);
    }
    return traits_type::not_eof(C);
  }

  int sync() override { return flushOut() ? 0 : -1; }

private:
  bool flushOut() {
    const char *P = pbase();
    size_t N = static_cast<size_t>(pptr() - pbase());
    while (N) {
      ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false; // Dead peer: session sees a stream error, not a signal.
      }
      P += W;
      N -= static_cast<size_t>(W);
    }
    setp(OutBuf, OutBuf + sizeof(OutBuf));
    return true;
  }

  int Fd;
  char InBuf[8192];
  char OutBuf[8192];
};

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace

bool quals::serve::parseListenSpec(const std::string &Spec, ListenSpec &Out,
                                   std::string &Error) {
  if (Spec.empty()) {
    Error = "empty --listen spec";
    return false;
  }
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos) {
    Out.K = ListenSpec::Kind::Unix;
    Out.Path = Spec;
    return true;
  }
  Out.K = ListenSpec::Kind::Tcp;
  Out.Host = Spec.substr(0, Colon);
  std::string PortStr = Spec.substr(Colon + 1);
  if (PortStr.empty() ||
      PortStr.find_first_not_of("0123456789") != std::string::npos) {
    Error = "bad port in --listen spec '" + Spec + "'";
    return false;
  }
  unsigned long Port = std::strtoul(PortStr.c_str(), nullptr, 10);
  if (Port > 65535) {
    Error = "port out of range in --listen spec '" + Spec + "'";
    return false;
  }
  Out.Port = static_cast<uint16_t>(Port);
  return true;
}

/// One accepted connection: its socket, its session thread, and a done
/// flag the thread raises so the accept loop can reap it. Lives in a
/// std::list for address stability while the thread runs.
struct TransportSession {
  int Fd = -1;
  std::atomic<bool> Done{false};
  std::thread Th;
};

struct Transport::Impl {
  std::mutex Mutex; ///< Guards Sessions (accept loop vs. stop path).
  std::list<TransportSession> Sessions;
  std::atomic<bool> StopRequested{false};
};

Transport::Transport(Server &S, const ListenSpec &Spec)
    : S(S), Spec(Spec), I(new Impl) {}

Transport::~Transport() {
  // serve() joins on its way out; this handles open()-then-destroy and
  // failure paths.
  for (TransportSession &Sess : I->Sessions) {
    if (Sess.Th.joinable())
      Sess.Th.join();
    closeFd(Sess.Fd);
  }
  closeFd(ListenFd);
  closeFd(StopPipe[0]);
  closeFd(StopPipe[1]);
  if (Spec.K == ListenSpec::Kind::Unix && !BoundName.empty())
    ::unlink(BoundName.c_str());
  delete I;
}

bool Transport::open(std::string &Error) {
  if (::pipe(StopPipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (Spec.K == ListenSpec::Kind::Unix) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Spec.Path.size() >= sizeof(Addr.sun_path)) {
      Error = "unix socket path too long: '" + Spec.Path + "'";
      return false;
    }
    std::memcpy(Addr.sun_path, Spec.Path.c_str(), Spec.Path.size() + 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(Spec.Path.c_str()); // Replace a stale socket from a dead server.
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      Error = "bind '" + Spec.Path + "': " + std::strerror(errno);
      return false;
    }
    BoundName = Spec.Path;
  } else {
    addrinfo Hints{};
    Hints.ai_family = AF_UNSPEC;
    Hints.ai_socktype = SOCK_STREAM;
    Hints.ai_flags = AI_PASSIVE;
    std::string PortStr = std::to_string(Spec.Port);
    addrinfo *Res = nullptr;
    int Rc = ::getaddrinfo(Spec.Host.empty() ? nullptr : Spec.Host.c_str(),
                           PortStr.c_str(), &Hints, &Res);
    if (Rc != 0) {
      Error = "resolve '" + Spec.Host + "': " + ::gai_strerror(Rc);
      return false;
    }
    for (addrinfo *Ai = Res; Ai; Ai = Ai->ai_next) {
      ListenFd = ::socket(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol);
      if (ListenFd < 0)
        continue;
      int One = 1;
      ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
      if (::bind(ListenFd, Ai->ai_addr, Ai->ai_addrlen) == 0)
        break;
      closeFd(ListenFd);
    }
    ::freeaddrinfo(Res);
    if (ListenFd < 0) {
      Error = "bind '" + Spec.Host + ":" + PortStr +
              "': " + std::strerror(errno);
      return false;
    }
    // Report the real port (PORT 0 picks an ephemeral one).
    sockaddr_storage Bound{};
    socklen_t Len = sizeof(Bound);
    uint16_t Port = Spec.Port;
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) ==
        0) {
      if (Bound.ss_family == AF_INET)
        Port = ntohs(reinterpret_cast<sockaddr_in *>(&Bound)->sin_port);
      else if (Bound.ss_family == AF_INET6)
        Port = ntohs(reinterpret_cast<sockaddr_in6 *>(&Bound)->sin6_port);
    }
    BoundName = (Spec.Host.empty() ? std::string("0.0.0.0") : Spec.Host) +
                ":" + std::to_string(Port);
  }
  if (::listen(ListenFd, 64) != 0) {
    Error = "listen '" + BoundName + "': " + std::strerror(errno);
    return false;
  }
  return true;
}

void Transport::requestStop() {
  if (I->StopRequested.exchange(true))
    return;
  char B = 0;
  ssize_t W;
  do {
    W = ::write(StopPipe[1], &B, 1);
  } while (W < 0 && errno == EINTR);
}

void Transport::stop() { requestStop(); }

int Transport::serve() {
  std::fprintf(stderr, "qualsd: listening on %s\n", BoundName.c_str());
  // A session raises Done when its stream ends; the loop reaps (joins)
  // done sessions each pass so a long-lived server doesn't accumulate a
  // thread per past client.
  auto Reap = [this](bool All) {
    std::lock_guard<std::mutex> Lock(I->Mutex);
    for (auto It = I->Sessions.begin(); It != I->Sessions.end();) {
      if (All || It->Done.load(std::memory_order_acquire)) {
        if (It->Th.joinable())
          It->Th.join();
        closeFd(It->Fd);
        It = I->Sessions.erase(It);
      } else {
        ++It;
      }
    }
  };

  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    int Rc = ::poll(Fds, 2, /*timeout ms=*/200);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (I->StopRequested.load(std::memory_order_acquire))
      break;
    Reap(/*All=*/false);
    if (Rc == 0 || !(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> Lock(I->Mutex);
    I->Sessions.emplace_back();
    TransportSession &Sess = I->Sessions.back();
    Sess.Fd = Fd;
    Sess.Th = std::thread([this, &Sess] {
      FdStreamBuf Buf(Sess.Fd);
      std::istream In(&Buf);
      std::ostream Out(&Buf);
      S.run(In, Out);
      Out.flush();
      ::shutdown(Sess.Fd, SHUT_WR); // FIN: the peer sees a complete stream.
      // A `shutdown` request winds the whole transport down; the reply
      // above is already flushed on this connection, so stopping now
      // cannot truncate it.
      if (S.shutdownRequested())
        requestStop();
      Sess.Done.store(true, std::memory_order_release);
    });
  }

  // Wind-down: stop accepting, then close every other session's read side
  // -- each sees EOF, drains its in-flight analyzes, flushes its remaining
  // responses, and exits its loop. Join them all before returning.
  closeFd(ListenFd);
  {
    std::lock_guard<std::mutex> Lock(I->Mutex);
    for (TransportSession &Sess : I->Sessions)
      if (!Sess.Done.load(std::memory_order_acquire))
        ::shutdown(Sess.Fd, SHUT_RD);
  }
  Reap(/*All=*/true);
  if (Spec.K == ListenSpec::Kind::Unix) {
    ::unlink(BoundName.c_str());
    BoundName.clear(); // The dtor must not unlink a path we already freed.
  }
  return 0;
}

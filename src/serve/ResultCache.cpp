//===- serve/ResultCache.cpp - Content-addressed result cache --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/ResultCache.h"

#include "support/Metrics.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace quals;
using namespace quals::serve;

namespace {

/// Spill file layout (fixed-width little-endian-as-memcpy'd header, then
/// the two payloads back to back). Same-machine persistence only, so host
/// byte order is fine; the magic+version check rejects everything else.
struct SpillHeader {
  char Magic[4];        // "QSDC"
  uint32_t Version;     // ResultCache::FormatVersion
  uint64_t ContentHash;
  uint64_t ConfigHash;
  int32_t ExitCode;
  uint32_t Reserved;    // alignment/extension; always 0
  uint64_t OutLen;
  uint64_t ErrLen;
};

constexpr char SpillMagic[4] = {'Q', 'S', 'D', 'C'};

/// Largest spill file the loader will even consider; a corrupt length
/// field must not turn into a giant allocation.
constexpr uint64_t MaxSpillPayload = 1u << 30; // 1 GiB

} // namespace

ResultCache::ResultCache(uint64_t MaxBytes, std::string SpillDir)
    : MaxBytes(MaxBytes), SpillDir(std::move(SpillDir)) {}

void ResultCache::bumpCacheCounter(const char *Name, uint64_t Delta) {
  if (MetricsRegistry::collecting())
    MetricsRegistry::global().counter(Name).add(Delta);
}

bool ResultCache::lookup(const CacheKey &Key, CachedResult &Out) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    Lru.splice(Lru.begin(), Lru, It->second); // Refresh to most recent.
    Out = It->second->second;
    ++Counts.Hits;
    bumpCacheCounter("cache.hits");
    return true;
  }
  if (!SpillDir.empty() && spillLoadLocked(Key, Out)) {
    // Promote the spilled entry back into memory (no re-spill: the file is
    // already on disk).
    insertLocked(Key, Out, /*Spill=*/false);
    ++Counts.Hits;
    ++Counts.SpillLoads;
    bumpCacheCounter("cache.hits");
    bumpCacheCounter("cache.spill_loads");
    return true;
  }
  ++Counts.Misses;
  bumpCacheCounter("cache.misses");
  return false;
}

void ResultCache::insert(const CacheKey &Key, CachedResult Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  insertLocked(Key, std::move(Value), /*Spill=*/true);
}

void ResultCache::insertLocked(const CacheKey &Key, CachedResult Value,
                               bool Spill) {
  if (MaxBytes == 0)
    return; // Caching disabled.
  if (Spill && !SpillDir.empty())
    spillWriteLocked(Key, Value);
  if (entryBytes(Value) > MaxBytes)
    return; // Larger than the whole budget: serve it, don't cache it.
  auto It = Map.find(Key);
  if (It != Map.end()) {
    // Refresh: replace payload in place and move to most recent.
    CurBytes -= entryBytes(It->second->second);
    CurBytes += entryBytes(Value);
    It->second->second = std::move(Value);
    Lru.splice(Lru.begin(), Lru, It->second);
  } else {
    CurBytes += entryBytes(Value);
    Lru.emplace_front(Key, std::move(Value));
    Map[Key] = Lru.begin();
  }
  ++Counts.Inserts;
  evictOverBudgetLocked();
}

void ResultCache::evictOverBudgetLocked() {
  while (CurBytes > MaxBytes && !Lru.empty()) {
    auto &Victim = Lru.back();
    CurBytes -= entryBytes(Victim.second);
    Map.erase(Victim.first);
    Lru.pop_back();
    ++Counts.Evictions;
    bumpCacheCounter("cache.evictions");
  }
}

uint64_t ResultCache::invalidateAll() {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Dropped = Map.size();
  Map.clear();
  Lru.clear();
  CurBytes = 0;
  if (!SpillDir.empty())
    spillRemoveAllLocked(0, /*MatchContent=*/false);
  return Dropped;
}

uint64_t ResultCache::invalidateContent(uint64_t ContentHash) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Dropped = 0;
  for (auto It = Lru.begin(); It != Lru.end();) {
    if (It->first.ContentHash == ContentHash) {
      CurBytes -= entryBytes(It->second);
      Map.erase(It->first);
      It = Lru.erase(It);
      ++Dropped;
    } else {
      ++It;
    }
  }
  if (!SpillDir.empty())
    spillRemoveAllLocked(ContentHash, /*MatchContent=*/true);
  return Dropped;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  CacheStats S = Counts;
  S.Entries = Map.size();
  S.Bytes = CurBytes;
  return S;
}

std::string ResultCache::spillPathLocked(const CacheKey &Key) const {
  char Name[64];
  std::snprintf(Name, sizeof(Name), "%016llx-%016llx.qres",
                static_cast<unsigned long long>(Key.ContentHash),
                static_cast<unsigned long long>(Key.ConfigHash));
  return (std::filesystem::path(SpillDir) / Name).string();
}

void ResultCache::spillWriteLocked(const CacheKey &Key,
                                   const CachedResult &Value) {
  std::error_code Ec;
  std::filesystem::create_directories(SpillDir, Ec);
  if (Ec)
    return; // Spill is best-effort; memory caching still works.
  SpillHeader H;
  std::memcpy(H.Magic, SpillMagic, 4);
  H.Version = FormatVersion;
  H.ContentHash = Key.ContentHash;
  H.ConfigHash = Key.ConfigHash;
  H.ExitCode = Value.ExitCode;
  H.Reserved = 0;
  H.OutLen = Value.Out.size();
  H.ErrLen = Value.Err.size();
  // Write to a temp name then rename, so a crashed/killed server never
  // leaves a half-written entry a future process would have to distrust.
  std::string Final = spillPathLocked(Key);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return;
    OutF.write(reinterpret_cast<const char *>(&H), sizeof(H));
    OutF.write(Value.Out.data(), Value.Out.size());
    OutF.write(Value.Err.data(), Value.Err.size());
    if (!OutF) {
      OutF.close();
      std::filesystem::remove(Tmp, Ec);
      return;
    }
  }
  std::filesystem::rename(Tmp, Final, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return;
  }
  ++Counts.SpillWrites;
  bumpCacheCounter("cache.spill_writes");
}

bool ResultCache::spillLoadLocked(const CacheKey &Key, CachedResult &Out) {
  std::string Path = spillPathLocked(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  auto Reject = [&] {
    In.close();
    std::error_code Ec;
    std::filesystem::remove(Path, Ec); // Corrupt/stale: never retry it.
    return false;
  };
  SpillHeader H;
  if (!In.read(reinterpret_cast<char *>(&H), sizeof(H)))
    return Reject();
  if (std::memcmp(H.Magic, SpillMagic, 4) || H.Version != FormatVersion ||
      H.ContentHash != Key.ContentHash || H.ConfigHash != Key.ConfigHash ||
      H.Reserved != 0 || H.OutLen > MaxSpillPayload ||
      H.ErrLen > MaxSpillPayload)
    return Reject();
  CachedResult R;
  R.ExitCode = H.ExitCode;
  R.Out.resize(H.OutLen);
  R.Err.resize(H.ErrLen);
  if (H.OutLen && !In.read(R.Out.data(), H.OutLen))
    return Reject();
  if (H.ErrLen && !In.read(R.Err.data(), H.ErrLen))
    return Reject();
  // Exactly at end-of-payload: a longer file is corruption too.
  In.peek();
  if (!In.eof())
    return Reject();
  Out = std::move(R);
  return true;
}

void ResultCache::spillRemoveAllLocked(uint64_t ContentHash,
                                       bool MatchContent) {
  std::error_code Ec;
  std::filesystem::directory_iterator It(SpillDir, Ec), End;
  if (Ec)
    return;
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "%016llx-",
                static_cast<unsigned long long>(ContentHash));
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      return;
    const std::filesystem::path &P = It->path();
    if (P.extension() != ".qres")
      continue;
    if (MatchContent && P.filename().string().rfind(Prefix, 0) != 0)
      continue;
    std::filesystem::remove(P, Ec);
  }
}

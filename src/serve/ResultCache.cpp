//===- serve/ResultCache.cpp - Content-addressed result cache --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/ResultCache.h"

#include "support/Metrics.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace quals;
using namespace quals::serve;

namespace {

/// Spill file layout (fixed-width little-endian-as-memcpy'd header, then
/// the two payloads back to back). Same-machine persistence only, so host
/// byte order is fine; the magic+version check rejects everything else.
struct SpillHeader {
  char Magic[4];        // "QSDC"
  uint32_t Version;     // ResultCache::FormatVersion
  uint64_t ContentHash;
  uint64_t ConfigHash;
  int32_t ExitCode;
  uint32_t Reserved;    // alignment/extension; always 0
  uint64_t OutLen;
  uint64_t ErrLen;
};

constexpr char SpillMagic[4] = {'Q', 'S', 'D', 'C'};

/// Largest spill file the loader will even consider; a corrupt length
/// field must not turn into a giant allocation.
constexpr uint64_t MaxSpillPayload = 1u << 30; // 1 GiB

unsigned roundUpPow2(unsigned N) {
  unsigned P = 1;
  while (P < N && P < (1u << 16))
    P <<= 1;
  return P;
}

} // namespace

ResultCache::ResultCache(uint64_t MaxBytes, std::string SpillDir,
                         unsigned Shards)
    : MaxBytes(MaxBytes), SpillDir(std::move(SpillDir)),
      NumShards(roundUpPow2(Shards ? Shards : 1)) {
  ShardMaxBytes = (MaxBytes + NumShards - 1) / NumShards;
  this->Shards = std::make_unique<Shard[]>(NumShards);
}

void ResultCache::bumpCacheCounter(const char *Name, uint64_t Delta) {
  if (MetricsRegistry::collecting())
    MetricsRegistry::global().counter(Name).add(Delta);
}

bool ResultCache::lookup(const CacheKey &Key, CachedResult &Out) {
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // Refresh to recent.
      Out = It->second->second;
      ++S.Counts.Hits;
      bumpCacheCounter("cache.hits");
      return true;
    }
  }
  // Memory miss: consult the spill layer with no lock held -- disk reads
  // must stall only this request, never the shard's other traffic.
  if (!SpillDir.empty() && spillLoad(Key, Out)) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    // Promote the spilled entry back into memory (no re-spill: the file is
    // already on disk; and not an insert: nothing new was computed). A
    // racing lookup may have promoted it already -- insertShardLocked
    // refreshes in place, and the payload is identical by keying.
    insertShardLocked(S, Key, Out, /*CountInsert=*/false);
    ++S.Counts.Hits;
    ++S.Counts.SpillLoads;
    bumpCacheCounter("cache.hits");
    bumpCacheCounter("cache.spill_loads");
    return true;
  }
  std::lock_guard<std::mutex> Lock(S.Mutex);
  ++S.Counts.Misses;
  bumpCacheCounter("cache.misses");
  return false;
}

void ResultCache::insert(const CacheKey &Key, CachedResult Value) {
  if (MaxBytes == 0)
    return; // Caching disabled.
  // Write-through spill first, outside any lock: create_directories plus a
  // payload write and rename are the slowest thing the cache ever does,
  // and holding a shard mutex across them would serialize every
  // concurrent operation on the shard behind this request's disk.
  bool Spilled = false;
  if (!SpillDir.empty())
    Spilled = spillWrite(Key, Value);
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (Spilled) {
    ++S.Counts.SpillWrites;
    bumpCacheCounter("cache.spill_writes");
  }
  insertShardLocked(S, Key, std::move(Value), /*CountInsert=*/true);
}

void ResultCache::insertShardLocked(Shard &S, const CacheKey &Key,
                                    CachedResult Value, bool CountInsert) {
  if (MaxBytes == 0)
    return; // Caching disabled.
  if (entryBytes(Value) > ShardMaxBytes)
    return; // Larger than the shard's whole budget: serve, don't cache.
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    // Refresh: replace payload in place and move to most recent.
    S.CurBytes -= entryBytes(It->second->second);
    S.CurBytes += entryBytes(Value);
    It->second->second = std::move(Value);
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  } else {
    S.CurBytes += entryBytes(Value);
    S.Lru.emplace_front(Key, std::move(Value));
    S.Map[Key] = S.Lru.begin();
  }
  if (CountInsert) {
    ++S.Counts.Inserts;
  } else {
    ++S.Counts.Promotions;
    bumpCacheCounter("cache.promotions");
  }
  evictOverBudgetLocked(S);
}

void ResultCache::evictOverBudgetLocked(Shard &S) {
  while (S.CurBytes > ShardMaxBytes && !S.Lru.empty()) {
    auto &Victim = S.Lru.back();
    S.CurBytes -= entryBytes(Victim.second);
    S.Map.erase(Victim.first);
    S.Lru.pop_back();
    ++S.Counts.Evictions;
    bumpCacheCounter("cache.evictions");
  }
}

uint64_t ResultCache::invalidateAll() {
  uint64_t Dropped = 0;
  for (unsigned I = 0; I != NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Dropped += S.Map.size();
    S.Map.clear();
    S.Lru.clear();
    S.CurBytes = 0;
  }
  if (!SpillDir.empty())
    spillRemoveAll(0, /*MatchContent=*/false);
  return Dropped;
}

uint64_t ResultCache::invalidateContent(uint64_t ContentHash) {
  // Every config of one source lives in the shard ContentHash selects.
  Shard &S = Shards[ContentHash & (NumShards - 1)];
  uint64_t Dropped = 0;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (auto It = S.Lru.begin(); It != S.Lru.end();) {
      if (It->first.ContentHash == ContentHash) {
        S.CurBytes -= entryBytes(It->second);
        S.Map.erase(It->first);
        It = S.Lru.erase(It);
        ++Dropped;
      } else {
        ++It;
      }
    }
  }
  if (!SpillDir.empty())
    spillRemoveAll(ContentHash, /*MatchContent=*/true);
  return Dropped;
}

CacheStats ResultCache::stats() const {
  CacheStats Sum;
  for (unsigned I = 0; I != NumShards; ++I) {
    const Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Sum.Hits += S.Counts.Hits;
    Sum.Misses += S.Counts.Misses;
    Sum.Evictions += S.Counts.Evictions;
    Sum.Inserts += S.Counts.Inserts;
    Sum.Promotions += S.Counts.Promotions;
    Sum.SpillLoads += S.Counts.SpillLoads;
    Sum.SpillWrites += S.Counts.SpillWrites;
    Sum.Entries += S.Map.size();
    Sum.Bytes += S.CurBytes;
  }
  return Sum;
}

std::string ResultCache::spillPath(const CacheKey &Key) const {
  char Name[64];
  std::snprintf(Name, sizeof(Name), "%016llx-%016llx.qres",
                static_cast<unsigned long long>(Key.ContentHash),
                static_cast<unsigned long long>(Key.ConfigHash));
  return (std::filesystem::path(SpillDir) / Name).string();
}

bool ResultCache::spillWrite(const CacheKey &Key, const CachedResult &Value) {
  std::error_code Ec;
  std::filesystem::create_directories(SpillDir, Ec);
  if (Ec)
    return false; // Spill is best-effort; memory caching still works.
  SpillHeader H;
  std::memcpy(H.Magic, SpillMagic, 4);
  H.Version = FormatVersion;
  H.ContentHash = Key.ContentHash;
  H.ConfigHash = Key.ConfigHash;
  H.ExitCode = Value.ExitCode;
  H.Reserved = 0;
  H.OutLen = Value.Out.size();
  H.ErrLen = Value.Err.size();
  // Write to a temp name then rename, so a crashed/killed server never
  // leaves a half-written entry a future process would have to distrust.
  // Concurrent writers of the same key use distinct temp names; whichever
  // rename lands last wins with an identical payload (keying guarantees
  // it), so the race is benign.
  std::string Final = spillPath(Key);
  std::string Tmp = Final + ".tmp" +
                    std::to_string(reinterpret_cast<uintptr_t>(&Tmp) >> 4);
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF.write(reinterpret_cast<const char *>(&H), sizeof(H));
    OutF.write(Value.Out.data(), Value.Out.size());
    OutF.write(Value.Err.data(), Value.Err.size());
    if (!OutF) {
      OutF.close();
      std::filesystem::remove(Tmp, Ec);
      return false;
    }
  }
  std::filesystem::rename(Tmp, Final, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  return true;
}

bool ResultCache::spillLoad(const CacheKey &Key, CachedResult &Out) {
  std::string Path = spillPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  auto Reject = [&] {
    In.close();
    std::error_code Ec;
    std::filesystem::remove(Path, Ec); // Corrupt/stale: never retry it.
    return false;
  };
  SpillHeader H;
  if (!In.read(reinterpret_cast<char *>(&H), sizeof(H)))
    return Reject();
  if (std::memcmp(H.Magic, SpillMagic, 4) || H.Version != FormatVersion ||
      H.ContentHash != Key.ContentHash || H.ConfigHash != Key.ConfigHash ||
      H.Reserved != 0 || H.OutLen > MaxSpillPayload ||
      H.ErrLen > MaxSpillPayload)
    return Reject();
  CachedResult R;
  R.ExitCode = H.ExitCode;
  R.Out.resize(H.OutLen);
  R.Err.resize(H.ErrLen);
  if (H.OutLen && !In.read(R.Out.data(), H.OutLen))
    return Reject();
  if (H.ErrLen && !In.read(R.Err.data(), H.ErrLen))
    return Reject();
  // Exactly at end-of-payload: a longer file is corruption too.
  In.peek();
  if (!In.eof())
    return Reject();
  Out = std::move(R);
  return true;
}

void ResultCache::spillRemoveAll(uint64_t ContentHash, bool MatchContent) {
  std::error_code Ec;
  std::filesystem::directory_iterator It(SpillDir, Ec), End;
  if (Ec)
    return;
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "%016llx-",
                static_cast<unsigned long long>(ContentHash));
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      return;
    const std::filesystem::path &P = It->path();
    if (P.extension() != ".qres")
      continue;
    if (MatchContent && P.filename().string().rfind(Prefix, 0) != 0)
      continue;
    std::filesystem::remove(P, Ec);
  }
}

//===- serve/Protocol.h - qualsd wire protocol ------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qualsd request protocol: newline-delimited JSON on stdio. Each line
/// is one request object; the server answers with one response line per
/// request, in request order (docs/SERVER.md specifies the full protocol).
///
///   {"id":1,"method":"analyze","params":{"path":"foo.c"}}
///   {"id":2,"method":"analyze","params":{"source":"int f();","name":"b.c"}}
///   {"id":3,"method":"analyze-delta","params":{"path":"foo.c"}}
///   {"id":4,"method":"invalidate"}
///   {"id":5,"method":"stats"}
///   {"id":6,"method":"shutdown"}
///
/// analyze-delta takes exactly analyze's params and returns a response with
/// exactly analyze's schema and bytes; the only difference is how the
/// answer is computed (incremental re-analysis against the server's last
/// snapshot for that name+config, docs/INCREMENTAL.md).
///
/// The parser is hand-rolled (no new dependencies) and hardened in the
/// sense of docs/ROBUSTNESS.md: it is fed by the same untrusted peer the
/// front ends are, so every budget is explicit -- input bytes, nesting
/// depth (the recursive-descent parser meters its own recursion, mirroring
/// support/Limits.h MaxRecursionDepth), and per-string size. Malformed or
/// over-budget input yields a byte-offset error message, never a crash;
/// fuzz/fuzz_protocol.cpp and the `fuzz.replay_corpus` ctest enforce that.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_PROTOCOL_H
#define QUALS_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quals {
namespace serve {

/// Budgets for one protocol parse; all are hard caps with no "unlimited"
/// setting because the peer is always untrusted.
struct ProtocolLimits {
  /// Longest accepted request line (bytes). Inline sources ride inside
  /// requests, so this also bounds analyzable source size.
  size_t MaxRequestBytes = 8u << 20; // 8 MiB
  /// Deepest accepted JSON nesting; the parser recurses once per level.
  unsigned MaxDepth = 64;
  /// Longest accepted single string value (bytes, after unescaping).
  size_t MaxStringBytes = 4u << 20; // 4 MiB
};

/// A parsed JSON value. A small DOM rather than SAX: requests are tiny
/// (budgeted), and a DOM keeps parseRequest() trivially auditable.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  /// The number as an int64 when it is integral and in range; \p Ok tells.
  int64_t asInt64(bool &Ok) const;
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Object member lookup (first match); null when absent or not an object.
  const JsonValue *find(std::string_view Key) const;

  // Builder interface for the parser.
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parses \p Text as exactly one JSON document (leading/trailing whitespace
/// allowed, anything else after the document is an error). Returns false
/// and sets \p Error ("byte N: message") on malformed or over-budget input.
bool parseJson(std::string_view Text, const ProtocolLimits &Lim,
               JsonValue &Out, std::string &Error);

/// The request methods qualsd understands. AnalyzeDelta shares Analyze's
/// params and response schema; it differs only in the computation strategy.
enum class Method {
  Analyze,
  AnalyzeDelta,
  Invalidate,
  Stats,
  Metrics,
  Shutdown
};

/// One parsed request line.
struct Request {
  /// Request id echoed into the response; absent ids echo as null.
  int64_t Id = 0;
  bool HasId = false;

  Method M = Method::Analyze;

  // --- analyze params ---
  /// File to analyze; the server reads (and hashes) its current content.
  std::string Path;
  /// Inline source; mutually exclusive with Path.
  std::string Source;
  bool HasSource = false;
  /// Buffer name for inline source (diagnostics); default "<request>".
  std::string Name = "<request>";
  /// "c" (qualcc pipeline) or "lambda" (qualcheck pipeline).
  std::string Language = "c";
  /// Polymorphic qualifier inference (the paper's default).
  bool Polymorphic = true;
  /// Also print const-annotated prototypes (C pipeline only).
  bool Protos = false;

  // --- invalidate params ---
  /// Drop only entries whose source content hashes to this value
  /// (hex, as reported by analyze responses); empty drops everything.
  std::string ContentHashHex;
};

/// Parses one request line. Returns false and sets \p Error on malformed
/// JSON, an unknown method, or ill-typed params; \p Out.Id/HasId are still
/// filled in when the id was readable, so the error response can echo it.
bool parseRequest(std::string_view Line, const ProtocolLimits &Lim,
                  Request &Out, std::string &Error);

/// Appends \p S to \p Out as a JSON string literal (quotes included),
/// escaping everything the RFC requires. Byte-transparent for UTF-8;
/// analysis output is treated as opaque bytes.
void appendJsonString(std::string &Out, std::string_view S);

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_PROTOCOL_H

//===- serve/RequestLog.h - Structured NDJSON request log -------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// qualsd's structured request log: one machine-parseable JSON event per
/// request (`--request-log=FILE`), written at request completion. The
/// response stream carries none of this — responses stay pure functions of
/// (source bytes, analysis config) per docs/SERVER.md — so the log is where
/// per-request facts live: timings, cache/snapshot outcomes, per-phase
/// breakdowns (via support/Metrics.h PhaseCapture), byte counts.
///
/// Events appear in *completion* order (workers finish out of order); the
/// monotone `seq` field restores arrival order on the consumer side. Writes
/// are mutex-serialized and flushed per event so a crashed or killed daemon
/// leaves a readable log. The event schema is documented in
/// docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_REQUESTLOG_H
#define QUALS_SERVE_REQUESTLOG_H

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace quals {

/// Everything one log line says about one request. Built by the server
/// while handling the request; optional fields render only when set.
struct RequestLogEvent {
  uint64_t Seq = 0;               ///< Arrival order, 1-based.
  bool HasId = false;             ///< Renders "id":null when false.
  int64_t Id = 0;
  std::string Method;             ///< Wire method, or "invalid".
  bool Ok = false;                ///< Mirrors the response's "ok".
  bool HasExit = false;
  int Exit = 0;                   ///< Analysis exit code (analyze family).
  std::string HashPrefix;         ///< First 8 hex digits of the content hash.
  const char *Cache = nullptr;    ///< "hit" / "miss" (analyze family).
  const char *Snapshot = nullptr; ///< "hit" / "miss" (analyze-delta).
  const char *Delta = nullptr;    ///< "incremental" / "full" (analyze-delta).
  uint64_t BytesIn = 0;           ///< Request line length (sans newline).
  uint64_t BytesOut = 0;          ///< Response line length (with newline).
  uint64_t QueueUs = 0;           ///< Read-to-worker-pickup wait.
  uint64_t ServiceUs = 0;         ///< Read-to-response-ready, end to end.
  bool Slow = false;              ///< Set by RequestLog from --slow-ms.
  /// Aggregated per-phase micros (PhaseCapture samples summed by name),
  /// first-completion order. Non-empty only on cache-miss analyzes.
  std::vector<std::pair<std::string, uint64_t>> PhasesUs;
};

/// The sink. Null stream means logging is off; `if (Log)` gates all event
/// assembly so the disabled path costs one pointer test.
class RequestLog {
public:
  RequestLog() = default;
  RequestLog(std::ostream *Out, uint64_t SlowMicros)
      : Out(Out), SlowMicros(SlowMicros) {}

  explicit operator bool() const { return Out != nullptr; }

  /// Applies the slow-request threshold, renders, writes, and flushes.
  /// Thread-safe; events from concurrent workers serialize here.
  void write(RequestLogEvent &Ev);

  /// Renders one event as a single JSON line (no trailing newline) with a
  /// fixed key order. Exposed for tests.
  static std::string render(const RequestLogEvent &Ev);

private:
  std::ostream *Out = nullptr;
  uint64_t SlowMicros = 0;
  std::mutex Mutex;
};

} // namespace quals

#endif // QUALS_SERVE_REQUESTLOG_H

//===- serve/Server.cpp - Persistent analysis server -----------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Pipelines.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

using namespace quals;
using namespace quals::serve;

namespace {

/// Outcome of one bounded line read.
enum class ReadStatus { Eof, Ok, TooLong };

/// Reads one line (up to but not including '\n', trailing '\r' stripped)
/// with a hard byte cap: an over-cap line is consumed to its end and
/// reported TooLong, so one hostile line can neither exhaust memory nor
/// desynchronize the stream. The cap is judged on the line *after* CR
/// stripping -- a CRLF peer's request of exactly MaxBytes payload bytes is
/// within budget, identical to the same request with LF framing (the
/// buffer holds at most MaxBytes + 1 bytes to decide this).
ReadStatus readLimitedLine(std::istream &In, std::string &Line,
                           size_t MaxBytes) {
  Line.clear();
  std::streambuf *Buf = In.rdbuf();
  bool ReadAny = false, Over = false;
  for (;;) {
    int C = Buf ? Buf->sbumpc() : std::char_traits<char>::eof();
    if (C == std::char_traits<char>::eof()) {
      In.setstate(std::ios::eofbit);
      if (!ReadAny)
        return ReadStatus::Eof;
      break;
    }
    ReadAny = true;
    if (C == '\n')
      break;
    if (Line.size() > MaxBytes)
      Over = true; // Keep consuming to the newline, discard the excess.
    else
      Line += static_cast<char>(C);
  }
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  if (Line.size() > MaxBytes)
    Over = true;
  return Over ? ReadStatus::TooLong : ReadStatus::Ok;
}

void appendIdField(std::string &Out, bool HasId, int64_t Id) {
  Out += "{\"id\":";
  Out += HasId ? std::to_string(Id) : std::string("null");
}

std::string hashHex(uint64_t H) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// One in-flight request's response slot; the reader flushes the completed
/// prefix in request order (the BatchDriver discipline).
struct Slot {
  std::string Response;
  bool Done = false;
};

/// The wire name of a method, for histogram keys and request-log events.
const char *methodName(Method M) {
  switch (M) {
  case Method::Analyze:
    return "analyze";
  case Method::AnalyzeDelta:
    return "analyze-delta";
  case Method::Invalidate:
    return "invalidate";
  case Method::Stats:
    return "stats";
  case Method::Metrics:
    return "metrics";
  case Method::Shutdown:
    return "shutdown";
  }
  return "invalid";
}

} // namespace

std::string quals::serve::makeErrorResponse(bool HasId, int64_t Id,
                                            const std::string &Error) {
  std::string R;
  appendIdField(R, HasId, Id);
  R += ",\"ok\":false,\"error\":";
  appendJsonString(R, Error);
  R += "}\n";
  return R;
}

Server::Server(const ServerConfig &Config)
    : Config(Config),
      Cache(Config.CacheMaxBytes, Config.SpillDir, Config.CacheShards),
      Snapshots(Config.MaxSnapshots),
      Log(Config.RequestLogStream, Config.SlowMicros) {
  if (Config.Telemetry) {
    MetricsRegistry &R = MetricsRegistry::global();
    LatAnalyze = &R.histogram("server.latency.analyze");
    LatDelta = &R.histogram("server.latency.analyze-delta");
    LatInvalidate = &R.histogram("server.latency.invalidate");
    LatStats = &R.histogram("server.latency.stats");
    LatMetrics = &R.histogram("server.latency.metrics");
    QueueWait = &R.histogram("server.queue_wait");
    QueueDepth = &R.gauge("server.queue_depth");
  }
  // One shared analyze pool for every session: C connections multiplex
  // onto Jobs workers rather than spawning C pools (docs/SERVER.md).
  if (Config.Jobs > 1)
    WorkerPool = std::make_unique<ThreadPool>(Config.Jobs);
  // Nested-parallelism policy (ServerConfig::SolverJobs): a dedicated
  // solver pool exists only when requests run inline on the reader thread;
  // concurrent request workers keep their solvers inline instead.
  if (Config.SolverJobs > 1 && Config.Jobs <= 1)
    SolverPool = std::make_unique<ThreadPool>(Config.SolverJobs);
}

Server::~Server() = default;

Histogram *Server::latencyFor(Method M) const {
  switch (M) {
  case Method::Analyze:
    return LatAnalyze;
  case Method::AnalyzeDelta:
    return LatDelta;
  case Method::Invalidate:
    return LatInvalidate;
  case Method::Stats:
    return LatStats;
  case Method::Metrics:
    return LatMetrics;
  case Method::Shutdown:
    return nullptr;
  }
  return nullptr;
}

void Server::finishAnalyze(const Request &Req, uint64_t Seq, uint64_t T0,
                           uint64_t QueueUs, uint64_t BytesIn,
                           RequestLogEvent *Ev,
                           const std::string &Response) {
  Histogram *Lat = latencyFor(Req.M);
  if (!Lat && !Ev)
    return;
  uint64_t End = Tracer::nowMicros();
  if (Lat) {
    Lat->record(End - T0);
    QueueWait->record(QueueUs);
  }
  if (Ev) {
    Ev->Seq = Seq;
    Ev->HasId = Req.HasId;
    Ev->Id = Req.Id;
    Ev->Method = methodName(Req.M);
    Ev->BytesIn = BytesIn;
    Ev->BytesOut = Response.size();
    Ev->QueueUs = QueueUs;
    Ev->ServiceUs = End - T0;
    Log.write(*Ev);
  }
}

std::string Server::handleAnalyze(const Request &Req, uint64_t Seq,
                                  RequestLogEvent *Ev) {
  TraceScope Span("req:" + std::to_string(Seq), "serve");

  AnalyzeJob Job;
  Job.Name = Req.Name;
  Job.Language = Req.Language;
  Job.Polymorphic = Req.Polymorphic;
  Job.Protos = Req.Protos;
  Job.Lim = Config.Lim;
  if (SolverPool) {
    Job.SolverJobs = Config.SolverJobs;
    Job.SolverPool = SolverPool.get();
  }
  if (Req.HasSource) {
    Job.Source = Req.Source;
  } else {
    std::ifstream In(Req.Path, std::ios::binary);
    if (!In)
      return makeErrorResponse(Req.HasId, Req.Id,
                               "cannot read '" + Req.Path + "'");
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Job.Source = std::move(Buffer).str();
  }

  CacheKey Key;
  Key.ContentHash = hashString(Job.Source);
  Key.ConfigHash = configHash(Job);

  bool IsDelta = Req.M == Method::AnalyzeDelta;
  if (IsDelta) {
    ++DeltaRequests;
    if (MetricsRegistry::collecting())
      MetricsRegistry::global().counter("server.delta.requests").add();
  }

  CachedResult Res;
  bool Hit = Cache.lookup(Key, Res);
  if (!Hit) {
    // A miss computes the result and, for the C pipeline, captures a
    // snapshot so a later analyze-delta for the same name+config has a
    // basis. analyze-delta plans a restricted run against the stored
    // snapshot when one exists, falling back to the full pipeline
    // otherwise; either way the bytes are identical to a cold run
    // (docs/INCREMENTAL.md states the contract, tests enforce it).
    std::optional<PhaseCapture> Capture;
    if (Ev)
      Capture.emplace(); // Per-request phase breakdown for the log event.
    std::shared_ptr<const constinf::UnitSnapshot> Next;
    if (IsDelta) {
      auto Prev = Snapshots.lookup(Job.Name, Key.ConfigHash);
      if (Ev)
        Ev->Snapshot = Prev ? "hit" : "miss";
      if (MetricsRegistry::collecting())
        MetricsRegistry::global()
            .counter(Prev ? "server.delta.snapshot_hits"
                          : "server.delta.snapshot_misses")
            .add();
      DeltaOutcome Outcome;
      if (Prev)
        runAnalysisDelta(Job, *Prev, Res, Next, Outcome);
      else
        runAnalysis(Job, Res, &Next);
      if (Ev)
        Ev->Delta = Outcome.UsedDelta ? "incremental" : "full";
      if (Outcome.UsedDelta) {
        ++DeltaIncremental;
        DeltaDirtySccs += Outcome.DirtySccs;
        DeltaReused += Outcome.ReusedSccs;
        if (MetricsRegistry::collecting()) {
          MetricsRegistry::global().counter("server.delta.incremental").add();
          MetricsRegistry::global()
              .counter("server.delta.dirty_sccs")
              .add(Outcome.DirtySccs);
          MetricsRegistry::global()
              .counter("server.delta.reused")
              .add(Outcome.ReusedSccs);
        }
      } else {
        ++DeltaFull;
        if (MetricsRegistry::collecting())
          MetricsRegistry::global().counter("server.delta.full").add();
      }
    } else {
      runAnalysis(Job, Res, &Next);
    }
    Snapshots.store(Job.Name, Key.ConfigHash, std::move(Next));
    Cache.insert(Key, Res);
    if (Ev) {
      // Aggregate the capture by phase name (a phase can close many times
      // per request), keeping first-completion order for stable output.
      for (const PhaseCapture::Sample &Sample : Capture->samples()) {
        auto It = std::find_if(
            Ev->PhasesUs.begin(), Ev->PhasesUs.end(),
            [&](const auto &KV) { return KV.first == Sample.Name; });
        if (It != Ev->PhasesUs.end())
          It->second += Sample.Micros;
        else
          Ev->PhasesUs.emplace_back(Sample.Name, Sample.Micros);
      }
    }
  }
  if (Ev) {
    Ev->Ok = true;
    Ev->HasExit = true;
    Ev->Exit = Res.ExitCode;
    Ev->HashPrefix = hashHex(Key.ContentHash).substr(0, 8);
    Ev->Cache = Hit ? "hit" : "miss";
  }
  if (Tracer::isEnabled())
    Span.setArgs("\"cached\":" + std::string(Hit ? "true" : "false") +
                 ",\"exit\":" + std::to_string(Res.ExitCode));

  // The reply is a pure function of (content, config): the "cached" bit is
  // deliberately NOT in it, so a warm reply is byte-identical to the cold
  // run that filled it (hit-path visibility comes from `stats` and the
  // cache.* metrics instead).
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"exit\":" + std::to_string(Res.ExitCode);
  R += ",\"hash\":\"" + hashHex(Key.ContentHash) + "\"";
  R += ",\"stdout\":";
  appendJsonString(R, Res.Out);
  R += ",\"stderr\":";
  appendJsonString(R, Res.Err);
  R += "}\n";
  return R;
}

std::string Server::handleInvalidate(const Request &Req) {
  uint64_t Dropped;
  if (!Req.ContentHashHex.empty()) {
    Dropped = Cache.invalidateContent(
        std::strtoull(Req.ContentHashHex.c_str(), nullptr, 16));
  } else {
    Dropped = Cache.invalidateAll();
    // Snapshots derive from previously served content just like cached
    // results; a full invalidate drops both. (Content-hash invalidation
    // does not map onto identity-keyed snapshots and leaves them alone;
    // a stale snapshot is always safe -- it only seeds planning.)
    Snapshots.clear();
  }
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"dropped\":" + std::to_string(Dropped) + "}\n";
  return R;
}

std::string Server::handleStats(const Request &Req) {
  CacheStats S = Cache.stats();
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"requests\":" + std::to_string(Requests.load());
  R += ",\"cache\":{\"entries\":" + std::to_string(S.Entries);
  R += ",\"bytes\":" + std::to_string(S.Bytes);
  R += ",\"shards\":" + std::to_string(Cache.shardCount());
  R += ",\"hits\":" + std::to_string(S.Hits);
  R += ",\"misses\":" + std::to_string(S.Misses);
  R += ",\"evictions\":" + std::to_string(S.Evictions);
  R += ",\"inserts\":" + std::to_string(S.Inserts);
  R += ",\"promotions\":" + std::to_string(S.Promotions);
  R += ",\"spill_loads\":" + std::to_string(S.SpillLoads);
  R += ",\"spill_writes\":" + std::to_string(S.SpillWrites);
  R += "}";
  SummaryStore::Stats SS = Snapshots.stats();
  R += ",\"delta\":{\"snapshots\":" + std::to_string(SS.Entries);
  R += ",\"snapshot_bytes\":" + std::to_string(SS.Bytes);
  R += ",\"snapshot_hits\":" + std::to_string(SS.Hits);
  R += ",\"snapshot_misses\":" + std::to_string(SS.Misses);
  R += ",\"requests\":" + std::to_string(DeltaRequests.load());
  R += ",\"incremental\":" + std::to_string(DeltaIncremental.load());
  R += ",\"full\":" + std::to_string(DeltaFull.load());
  R += ",\"dirty_sccs\":" + std::to_string(DeltaDirtySccs.load());
  R += ",\"reused\":" + std::to_string(DeltaReused.load());
  R += "}";
  if (Config.Telemetry) {
    // Live per-method latency distributions; values are exact for this
    // session's traffic because control requests barrier on its in-flight
    // analyzes (other connections may record concurrently).
    auto AppendHist = [&R](const char *Name, const Histogram &H) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.3f", H.mean());
      R += "\"" + std::string(Name) +
           "\":{\"count\":" + std::to_string(H.count()) +
           ",\"mean_us\":" + Buf +
           ",\"p50_us\":" + std::to_string(H.quantile(0.50)) +
           ",\"p90_us\":" + std::to_string(H.quantile(0.90)) +
           ",\"p99_us\":" + std::to_string(H.quantile(0.99)) + "}";
    };
    R += ",\"latency\":{";
    AppendHist("analyze", *LatAnalyze);
    R += ",";
    AppendHist("analyze-delta", *LatDelta);
    R += ",";
    AppendHist("invalidate", *LatInvalidate);
    R += ",";
    AppendHist("stats", *LatStats);
    R += ",";
    AppendHist("metrics", *LatMetrics);
    R += ",";
    AppendHist("queue_wait", *QueueWait);
    R += "}";
  }
  R += "}\n";
  return R;
}

std::string Server::handleMetrics(const Request &Req) {
  // The full registry snapshot -- the server's histograms plus whatever
  // counters/timers the rest of the process has published -- compactly
  // rendered so the response stays one NDJSON line.
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"metrics\":";
  R += MetricsRegistry::global().renderJson(/*Compact=*/true);
  R += "}\n";
  return R;
}

bool Server::warmFromManifest(const std::string &ManifestPath,
                              WarmStats &Stats, std::string &Error) {
  std::ifstream In(ManifestPath, std::ios::binary);
  if (!In) {
    Error = "cannot read warm manifest '" + ManifestPath + "'";
    return false;
  }
  struct Entry {
    std::string Path;
    std::string Language;
  };
  std::vector<Entry> Entries;
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    Entry E;
    size_t Tab = Line.find('\t', First);
    if (Tab == std::string::npos) {
      E.Path = Line.substr(First);
    } else {
      E.Path = Line.substr(First, Tab - First);
      size_t LangFirst = Line.find_first_not_of(" \t", Tab);
      if (LangFirst != std::string::npos)
        E.Language = Line.substr(LangFirst);
    }
    if (E.Language.empty())
      E.Language = E.Path.size() >= 2 &&
                           E.Path.compare(E.Path.size() - 2, 2, ".q") == 0
                       ? "lambda"
                       : "c";
    Entries.push_back(std::move(E));
  }
  Stats.Listed = Entries.size();

  std::atomic<uint64_t> Warmed{0}, AlreadyCached{0}, Failed{0};
  auto WarmOne = [&](size_t I) {
    const Entry &E = Entries[I];
    AnalyzeJob Job;
    Job.Name = E.Path;
    Job.Language = E.Language;
    Job.Lim = Config.Lim;
    {
      std::ifstream F(E.Path, std::ios::binary);
      if (!F) {
        ++Failed;
        return;
      }
      std::ostringstream Buffer;
      Buffer << F.rdbuf();
      Job.Source = std::move(Buffer).str();
    }
    CacheKey Key;
    Key.ContentHash = hashString(Job.Source);
    Key.ConfigHash = configHash(Job);
    CachedResult Res;
    if (Cache.lookup(Key, Res)) { // Spill-warm from a previous run.
      ++AlreadyCached;
      return;
    }
    std::shared_ptr<const constinf::UnitSnapshot> Next;
    runAnalysis(Job, Res, &Next);
    Snapshots.store(Job.Name, Key.ConfigHash, std::move(Next));
    Cache.insert(Key, Res);
    ++Warmed;
  };
  TraceScope Span("server.warm", "serve");
  if (WorkerPool)
    WorkerPool->parallelForEach(Entries.size(), WarmOne);
  else
    for (size_t I = 0; I != Entries.size(); ++I)
      WarmOne(I);
  Stats.Warmed = Warmed;
  Stats.AlreadyCached = AlreadyCached;
  Stats.Failed = Failed;
  return true;
}

int Server::run(std::istream &In, std::ostream &Out) {
  TraceScope RunSpan("server.run", "serve");
  ThreadPool *Pool = WorkerPool.get();

  // Session state: everything below is local to this connection's stream,
  // so concurrent run() calls (one per transport connection) interact only
  // through the shared cache/pool/telemetry.
  std::deque<Slot> Pending;
  std::mutex Mutex;
  std::condition_variable DoneCv;

  auto SetDepthGauge = [this](int64_t Delta) {
    int64_t Now = InFlight.fetch_add(Delta) + Delta;
    if (QueueDepth)
      QueueDepth->set(Now);
  };
  // Writes the completed prefix of Pending to Out, in request order, then
  // flushes. Callers hold Mutex; both the reader thread and the worker
  // that completes the front slot call this (a synchronous peer -- send
  // one request, await the response -- must get its reply while the
  // reader is blocked on the next line, so flushing cannot be the
  // reader's job alone). All writes to Out happen under Mutex, so the
  // response stream stays serialized and in request order.
  auto FlushReadyLocked = [&] {
    int64_t Popped = 0;
    while (!Pending.empty() && Pending.front().Done) {
      Out << Pending.front().Response;
      Pending.pop_front();
      ++Popped;
    }
    if (Popped) {
      SetDepthGauge(-Popped);
      Out.flush();
    }
  };
  auto FlushReady = [&] {
    std::lock_guard<std::mutex> Lock(Mutex);
    FlushReadyLocked();
    Out.flush();
  };
  // Blocks until every in-flight request has completed and flushed; the
  // deterministic point at which control requests read/mutate state.
  auto Barrier = [&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      FlushReadyLocked();
      if (Pending.empty())
        break;
      // Workers may pop the whole queue themselves; guard front().
      DoneCv.wait(Lock,
                  [&] { return Pending.empty() || Pending.front().Done; });
    }
    Out.flush();
  };
  // Backpressure: a peer that streams analyze requests faster than the
  // workers drain them must not grow the response backlog without bound.
  // The reader stalls (flushing what it can) once this many requests are
  // in flight or awaiting flush.
  const size_t MaxBacklog = static_cast<size_t>(Config.Jobs) * 16 + 16;
  auto WaitBacklog = [&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (Pending.size() >= MaxBacklog) {
      // size >= MaxBacklog implies nonempty, so front() is safe here.
      DoneCv.wait(Lock,
                  [&] { return Pending.size() < MaxBacklog ||
                               Pending.front().Done; });
      FlushReadyLocked();
    }
  };
  auto EmitDone = [&](std::string Response) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Pending.push_back({std::move(Response), true});
      SetDepthGauge(+1);
    }
    FlushReady();
  };
  // Admits one request into the server-wide sequence; the returned value
  // is this request's seq (1-based, shared by every session).
  auto CountRequest = [&](bool IsError) -> uint64_t {
    uint64_t Seq = ++Requests;
    if (MetricsRegistry::collecting()) {
      MetricsRegistry::global().counter("server.requests").add();
      if (IsError)
        MetricsRegistry::global().counter("server.errors").add();
    }
    return Seq;
  };
  // Request-level instrumentation is fully off (no clock reads) unless a
  // histogram or the request log wants the numbers.
  const bool Instrument = Config.Telemetry || static_cast<bool>(Log);
  // Logs a request that never reached a handler (over-long or unparseable
  // line): no method, no exit, just the shape and the timings.
  auto LogInvalid = [&](uint64_t Seq, bool HasId, int64_t Id, uint64_t T0,
                        uint64_t BytesIn, const std::string &Response) {
    if (!Log)
      return;
    RequestLogEvent Ev;
    Ev.Seq = Seq;
    Ev.HasId = HasId;
    Ev.Id = Id;
    Ev.Method = "invalid";
    Ev.BytesIn = BytesIn;
    Ev.BytesOut = Response.size();
    Ev.ServiceUs = Tracer::nowMicros() - T0;
    Log.write(Ev);
  };
  // Telemetry + log for a control request (invalidate/stats/metrics/
  // shutdown); the barrier wait is part of its service time.
  auto FinishControl = [&](const Request &Req, uint64_t Seq, uint64_t T0,
                           uint64_t BytesIn, const std::string &Response) {
    Histogram *Lat = latencyFor(Req.M);
    if (!Lat && !Log)
      return;
    uint64_t End = Tracer::nowMicros();
    if (Lat)
      Lat->record(End - T0);
    if (Log) {
      RequestLogEvent Ev;
      Ev.Seq = Seq;
      Ev.HasId = Req.HasId;
      Ev.Id = Req.Id;
      Ev.Method = methodName(Req.M);
      Ev.Ok = true;
      Ev.BytesIn = BytesIn;
      Ev.BytesOut = Response.size();
      Ev.ServiceUs = End - T0;
      Log.write(Ev);
    }
  };

  std::string Line;
  for (;;) {
    ReadStatus S =
        readLimitedLine(In, Line, Config.ProtoLim.MaxRequestBytes);
    if (S == ReadStatus::Eof)
      break;
    if (Line.find_first_not_of(" \t") == std::string::npos)
      continue; // Blank lines are keep-alives, not requests.
    const uint64_t T0 = Instrument ? Tracer::nowMicros() : 0;
    const uint64_t BytesIn = Line.size();
    if (S == ReadStatus::TooLong) {
      uint64_t Seq = CountRequest(/*IsError=*/true);
      std::string R = makeErrorResponse(false, 0, "request exceeds byte limit");
      LogInvalid(Seq, false, 0, T0, BytesIn, R);
      EmitDone(std::move(R));
      continue;
    }
    Request Req;
    std::string Error;
    if (!parseRequest(Line, Config.ProtoLim, Req, Error)) {
      uint64_t Seq = CountRequest(/*IsError=*/true);
      std::string R = makeErrorResponse(Req.HasId, Req.Id, Error);
      LogInvalid(Seq, Req.HasId, Req.Id, T0, BytesIn, R);
      EmitDone(std::move(R));
      continue;
    }
    uint64_t Seq = CountRequest(/*IsError=*/false);

    switch (Req.M) {
    case Method::Analyze:
    case Method::AnalyzeDelta:
      // analyze-delta rides the same ordered-slot path as analyze: same
      // pool, same backpressure, same response schema. handleAnalyze picks
      // the computation strategy off Req.M.
      if (Pool) {
        WaitBacklog();
        Slot *S2;
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Pending.emplace_back();
          S2 = &Pending.back();
          SetDepthGauge(+1);
        }
        const uint64_t EnqueueUs = Instrument ? Tracer::nowMicros() : 0;
        Pool->enqueue([this, S2, &Mutex, &DoneCv, &FlushReadyLocked,
                       Req = std::move(Req), Seq, T0, BytesIn, EnqueueUs] {
          const uint64_t QueueUs =
              EnqueueUs ? Tracer::nowMicros() - EnqueueUs : 0;
          RequestLogEvent Ev;
          RequestLogEvent *EvPtr = Log ? &Ev : nullptr;
          std::string Response = handleAnalyze(Req, Seq, EvPtr);
          finishAnalyze(Req, Seq, T0, QueueUs, BytesIn, EvPtr, Response);
          std::lock_guard<std::mutex> Lock(Mutex);
          S2->Response = std::move(Response);
          S2->Done = true;
          // Flush the completed prefix from here: the reader may be
          // blocked on the next request line, and a synchronous peer
          // won't send one until this response reaches it.
          FlushReadyLocked();
          DoneCv.notify_all();
        });
      } else {
        RequestLogEvent Ev;
        RequestLogEvent *EvPtr = Log ? &Ev : nullptr;
        std::string Response = handleAnalyze(Req, Seq, EvPtr);
        finishAnalyze(Req, Seq, T0, /*QueueUs=*/0, BytesIn, EvPtr, Response);
        EmitDone(std::move(Response));
      }
      break;
    case Method::Invalidate: {
      Barrier();
      std::string R = handleInvalidate(Req);
      FinishControl(Req, Seq, T0, BytesIn, R);
      EmitDone(std::move(R));
      break;
    }
    case Method::Stats: {
      Barrier();
      std::string R = handleStats(Req);
      FinishControl(Req, Seq, T0, BytesIn, R);
      EmitDone(std::move(R));
      break;
    }
    case Method::Metrics: {
      Barrier();
      std::string R = handleMetrics(Req);
      FinishControl(Req, Seq, T0, BytesIn, R);
      EmitDone(std::move(R));
      break;
    }
    case Method::Shutdown: {
      Barrier();
      std::string R;
      appendIdField(R, Req.HasId, Req.Id);
      R += ",\"ok\":true}\n";
      FinishControl(Req, Seq, T0, BytesIn, R);
      EmitDone(std::move(R));
      // Signal the transport (if any): stop accepting, wind down the
      // other sessions. This session's stream is complete at this point.
      ShutdownFlag.store(true, std::memory_order_release);
      return 0;
    }
    }
  }
  Barrier();
  return 0;
}

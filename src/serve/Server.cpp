//===- serve/Server.cpp - Persistent analysis server -----------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Pipelines.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

using namespace quals;
using namespace quals::serve;

namespace {

/// Outcome of one bounded line read.
enum class ReadStatus { Eof, Ok, TooLong };

/// Reads one line (up to but not including '\n', trailing '\r' stripped)
/// with a hard byte cap: an over-cap line is consumed to its end and
/// reported TooLong, so one hostile line can neither exhaust memory nor
/// desynchronize the stream.
ReadStatus readLimitedLine(std::istream &In, std::string &Line,
                           size_t MaxBytes) {
  Line.clear();
  std::streambuf *Buf = In.rdbuf();
  bool ReadAny = false, Over = false;
  for (;;) {
    int C = Buf ? Buf->sbumpc() : std::char_traits<char>::eof();
    if (C == std::char_traits<char>::eof()) {
      In.setstate(std::ios::eofbit);
      if (!ReadAny)
        return ReadStatus::Eof;
      break;
    }
    ReadAny = true;
    if (C == '\n')
      break;
    if (Line.size() >= MaxBytes)
      Over = true; // Keep consuming to the newline, discard the excess.
    else
      Line += static_cast<char>(C);
  }
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  return Over ? ReadStatus::TooLong : ReadStatus::Ok;
}

void appendIdField(std::string &Out, bool HasId, int64_t Id) {
  Out += "{\"id\":";
  Out += HasId ? std::to_string(Id) : std::string("null");
}

std::string hashHex(uint64_t H) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// One in-flight request's response slot; the reader flushes the completed
/// prefix in request order (the BatchDriver discipline).
struct Slot {
  std::string Response;
  bool Done = false;
};

} // namespace

std::string quals::serve::makeErrorResponse(bool HasId, int64_t Id,
                                            const std::string &Error) {
  std::string R;
  appendIdField(R, HasId, Id);
  R += ",\"ok\":false,\"error\":";
  appendJsonString(R, Error);
  R += "}\n";
  return R;
}

Server::Server(const ServerConfig &Config)
    : Config(Config), Cache(Config.CacheMaxBytes, Config.SpillDir),
      Snapshots(Config.MaxSnapshots) {}

std::string Server::handleAnalyze(const Request &Req, uint64_t Seq) {
  TraceScope Span("req:" + std::to_string(Seq), "serve");

  AnalyzeJob Job;
  Job.Name = Req.Name;
  Job.Language = Req.Language;
  Job.Polymorphic = Req.Polymorphic;
  Job.Protos = Req.Protos;
  Job.Lim = Config.Lim;
  if (Req.HasSource) {
    Job.Source = Req.Source;
  } else {
    std::ifstream In(Req.Path, std::ios::binary);
    if (!In)
      return makeErrorResponse(Req.HasId, Req.Id,
                               "cannot read '" + Req.Path + "'");
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Job.Source = std::move(Buffer).str();
  }

  CacheKey Key;
  Key.ContentHash = hashString(Job.Source);
  Key.ConfigHash = configHash(Job);

  bool IsDelta = Req.M == Method::AnalyzeDelta;
  if (IsDelta) {
    ++DeltaRequests;
    if (MetricsRegistry::collecting())
      MetricsRegistry::global().counter("server.delta.requests").add();
  }

  CachedResult Res;
  bool Hit = Cache.lookup(Key, Res);
  if (!Hit) {
    // A miss computes the result and, for the C pipeline, captures a
    // snapshot so a later analyze-delta for the same name+config has a
    // basis. analyze-delta plans a restricted run against the stored
    // snapshot when one exists, falling back to the full pipeline
    // otherwise; either way the bytes are identical to a cold run
    // (docs/INCREMENTAL.md states the contract, tests enforce it).
    std::shared_ptr<const constinf::UnitSnapshot> Next;
    if (IsDelta) {
      auto Prev = Snapshots.lookup(Job.Name, Key.ConfigHash);
      if (MetricsRegistry::collecting())
        MetricsRegistry::global()
            .counter(Prev ? "server.delta.snapshot_hits"
                          : "server.delta.snapshot_misses")
            .add();
      DeltaOutcome Outcome;
      if (Prev)
        runAnalysisDelta(Job, *Prev, Res, Next, Outcome);
      else
        runAnalysis(Job, Res, &Next);
      if (Outcome.UsedDelta) {
        ++DeltaIncremental;
        DeltaDirtySccs += Outcome.DirtySccs;
        DeltaReused += Outcome.ReusedSccs;
        if (MetricsRegistry::collecting()) {
          MetricsRegistry::global().counter("server.delta.incremental").add();
          MetricsRegistry::global()
              .counter("server.delta.dirty_sccs")
              .add(Outcome.DirtySccs);
          MetricsRegistry::global()
              .counter("server.delta.reused")
              .add(Outcome.ReusedSccs);
        }
      } else {
        ++DeltaFull;
        if (MetricsRegistry::collecting())
          MetricsRegistry::global().counter("server.delta.full").add();
      }
    } else {
      runAnalysis(Job, Res, &Next);
    }
    Snapshots.store(Job.Name, Key.ConfigHash, std::move(Next));
    Cache.insert(Key, Res);
  }
  if (Tracer::isEnabled())
    Span.setArgs("\"cached\":" + std::string(Hit ? "true" : "false") +
                 ",\"exit\":" + std::to_string(Res.ExitCode));

  // The reply is a pure function of (content, config): the "cached" bit is
  // deliberately NOT in it, so a warm reply is byte-identical to the cold
  // run that filled it (hit-path visibility comes from `stats` and the
  // cache.* metrics instead).
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"exit\":" + std::to_string(Res.ExitCode);
  R += ",\"hash\":\"" + hashHex(Key.ContentHash) + "\"";
  R += ",\"stdout\":";
  appendJsonString(R, Res.Out);
  R += ",\"stderr\":";
  appendJsonString(R, Res.Err);
  R += "}\n";
  return R;
}

std::string Server::handleInvalidate(const Request &Req) {
  uint64_t Dropped;
  if (!Req.ContentHashHex.empty()) {
    Dropped = Cache.invalidateContent(
        std::strtoull(Req.ContentHashHex.c_str(), nullptr, 16));
  } else {
    Dropped = Cache.invalidateAll();
    // Snapshots derive from previously served content just like cached
    // results; a full invalidate drops both. (Content-hash invalidation
    // does not map onto identity-keyed snapshots and leaves them alone;
    // a stale snapshot is always safe -- it only seeds planning.)
    Snapshots.clear();
  }
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"dropped\":" + std::to_string(Dropped) + "}\n";
  return R;
}

std::string Server::handleStats(const Request &Req) {
  CacheStats S = Cache.stats();
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"requests\":" + std::to_string(Requests);
  R += ",\"cache\":{\"entries\":" + std::to_string(S.Entries);
  R += ",\"bytes\":" + std::to_string(S.Bytes);
  R += ",\"hits\":" + std::to_string(S.Hits);
  R += ",\"misses\":" + std::to_string(S.Misses);
  R += ",\"evictions\":" + std::to_string(S.Evictions);
  R += ",\"inserts\":" + std::to_string(S.Inserts);
  R += ",\"spill_loads\":" + std::to_string(S.SpillLoads);
  R += ",\"spill_writes\":" + std::to_string(S.SpillWrites);
  R += "}";
  SummaryStore::Stats SS = Snapshots.stats();
  R += ",\"delta\":{\"snapshots\":" + std::to_string(SS.Entries);
  R += ",\"snapshot_bytes\":" + std::to_string(SS.Bytes);
  R += ",\"snapshot_hits\":" + std::to_string(SS.Hits);
  R += ",\"snapshot_misses\":" + std::to_string(SS.Misses);
  R += ",\"requests\":" + std::to_string(DeltaRequests.load());
  R += ",\"incremental\":" + std::to_string(DeltaIncremental.load());
  R += ",\"full\":" + std::to_string(DeltaFull.load());
  R += ",\"dirty_sccs\":" + std::to_string(DeltaDirtySccs.load());
  R += ",\"reused\":" + std::to_string(DeltaReused.load());
  R += "}}\n";
  return R;
}

int Server::run(std::istream &In, std::ostream &Out) {
  TraceScope RunSpan("server.run", "serve");
  std::unique_ptr<ThreadPool> Pool;
  if (Config.Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Config.Jobs);

  std::deque<Slot> Pending;
  std::mutex Mutex;
  std::condition_variable DoneCv;

  // Writes the completed prefix of Pending to Out, in request order.
  // Reader thread only (the only thread that writes Out or pops).
  auto FlushReady = [&] {
    std::lock_guard<std::mutex> Lock(Mutex);
    while (!Pending.empty() && Pending.front().Done) {
      Out << Pending.front().Response;
      Pending.pop_front();
    }
    Out.flush();
  };
  // Blocks until every in-flight request has completed and flushed; the
  // deterministic point at which control requests read/mutate state.
  auto Barrier = [&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      while (!Pending.empty() && Pending.front().Done) {
        Out << Pending.front().Response;
        Pending.pop_front();
      }
      if (Pending.empty())
        break;
      DoneCv.wait(Lock, [&] { return Pending.front().Done; });
    }
    Out.flush();
  };
  // Backpressure: a peer that streams analyze requests faster than the
  // workers drain them must not grow the response backlog without bound.
  // The reader stalls (flushing what it can) once this many requests are
  // in flight or awaiting flush.
  const size_t MaxBacklog = static_cast<size_t>(Config.Jobs) * 16 + 16;
  auto WaitBacklog = [&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (Pending.size() >= MaxBacklog) {
      DoneCv.wait(Lock, [&] { return Pending.front().Done; });
      while (!Pending.empty() && Pending.front().Done) {
        Out << Pending.front().Response;
        Pending.pop_front();
      }
      Out.flush();
    }
  };
  auto EmitDone = [&](std::string Response) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Pending.push_back({std::move(Response), true});
    }
    FlushReady();
  };
  auto CountRequest = [&](bool IsError) {
    ++Requests;
    if (MetricsRegistry::collecting()) {
      MetricsRegistry::global().counter("server.requests").add();
      if (IsError)
        MetricsRegistry::global().counter("server.errors").add();
    }
  };

  std::string Line;
  for (;;) {
    ReadStatus S =
        readLimitedLine(In, Line, Config.ProtoLim.MaxRequestBytes);
    if (S == ReadStatus::Eof)
      break;
    if (Line.find_first_not_of(" \t") == std::string::npos)
      continue; // Blank lines are keep-alives, not requests.
    if (S == ReadStatus::TooLong) {
      CountRequest(/*IsError=*/true);
      EmitDone(makeErrorResponse(false, 0, "request exceeds byte limit"));
      continue;
    }
    Request Req;
    std::string Error;
    if (!parseRequest(Line, Config.ProtoLim, Req, Error)) {
      CountRequest(/*IsError=*/true);
      EmitDone(makeErrorResponse(Req.HasId, Req.Id, Error));
      continue;
    }
    CountRequest(/*IsError=*/false);
    uint64_t Seq = Requests;

    switch (Req.M) {
    case Method::Analyze:
    case Method::AnalyzeDelta:
      // analyze-delta rides the same ordered-slot path as analyze: same
      // pool, same backpressure, same response schema. handleAnalyze picks
      // the computation strategy off Req.M.
      if (Pool) {
        WaitBacklog();
        Slot *S2;
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Pending.emplace_back();
          S2 = &Pending.back();
        }
        Pool->enqueue([this, S2, &Mutex, &DoneCv, Req = std::move(Req),
                       Seq] {
          std::string Response = handleAnalyze(Req, Seq);
          std::lock_guard<std::mutex> Lock(Mutex);
          S2->Response = std::move(Response);
          S2->Done = true;
          DoneCv.notify_all();
        });
        FlushReady();
      } else {
        EmitDone(handleAnalyze(Req, Seq));
      }
      break;
    case Method::Invalidate:
      Barrier();
      EmitDone(handleInvalidate(Req));
      break;
    case Method::Stats:
      Barrier();
      EmitDone(handleStats(Req));
      break;
    case Method::Shutdown: {
      Barrier();
      std::string R;
      appendIdField(R, Req.HasId, Req.Id);
      R += ",\"ok\":true}\n";
      EmitDone(std::move(R));
      return 0;
    }
    }
  }
  Barrier();
  return 0;
}

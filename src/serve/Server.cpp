//===- serve/Server.cpp - Persistent analysis server -----------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Pipelines.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

using namespace quals;
using namespace quals::serve;

namespace {

/// Outcome of one bounded line read.
enum class ReadStatus { Eof, Ok, TooLong };

/// Reads one line (up to but not including '\n', trailing '\r' stripped)
/// with a hard byte cap: an over-cap line is consumed to its end and
/// reported TooLong, so one hostile line can neither exhaust memory nor
/// desynchronize the stream.
ReadStatus readLimitedLine(std::istream &In, std::string &Line,
                           size_t MaxBytes) {
  Line.clear();
  std::streambuf *Buf = In.rdbuf();
  bool ReadAny = false, Over = false;
  for (;;) {
    int C = Buf ? Buf->sbumpc() : std::char_traits<char>::eof();
    if (C == std::char_traits<char>::eof()) {
      In.setstate(std::ios::eofbit);
      if (!ReadAny)
        return ReadStatus::Eof;
      break;
    }
    ReadAny = true;
    if (C == '\n')
      break;
    if (Line.size() >= MaxBytes)
      Over = true; // Keep consuming to the newline, discard the excess.
    else
      Line += static_cast<char>(C);
  }
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  return Over ? ReadStatus::TooLong : ReadStatus::Ok;
}

void appendIdField(std::string &Out, bool HasId, int64_t Id) {
  Out += "{\"id\":";
  Out += HasId ? std::to_string(Id) : std::string("null");
}

std::string hashHex(uint64_t H) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// One in-flight request's response slot; the reader flushes the completed
/// prefix in request order (the BatchDriver discipline).
struct Slot {
  std::string Response;
  bool Done = false;
};

/// The wire name of a method, for histogram keys and request-log events.
const char *methodName(Method M) {
  switch (M) {
  case Method::Analyze:
    return "analyze";
  case Method::AnalyzeDelta:
    return "analyze-delta";
  case Method::Invalidate:
    return "invalidate";
  case Method::Stats:
    return "stats";
  case Method::Metrics:
    return "metrics";
  case Method::Shutdown:
    return "shutdown";
  }
  return "invalid";
}

} // namespace

std::string quals::serve::makeErrorResponse(bool HasId, int64_t Id,
                                            const std::string &Error) {
  std::string R;
  appendIdField(R, HasId, Id);
  R += ",\"ok\":false,\"error\":";
  appendJsonString(R, Error);
  R += "}\n";
  return R;
}

Server::Server(const ServerConfig &Config)
    : Config(Config), Cache(Config.CacheMaxBytes, Config.SpillDir),
      Snapshots(Config.MaxSnapshots),
      Log(Config.RequestLogStream, Config.SlowMicros) {
  if (Config.Telemetry) {
    MetricsRegistry &R = MetricsRegistry::global();
    LatAnalyze = &R.histogram("server.latency.analyze");
    LatDelta = &R.histogram("server.latency.analyze-delta");
    LatInvalidate = &R.histogram("server.latency.invalidate");
    LatStats = &R.histogram("server.latency.stats");
    LatMetrics = &R.histogram("server.latency.metrics");
    QueueWait = &R.histogram("server.queue_wait");
    QueueDepth = &R.gauge("server.queue_depth");
  }
  // Nested-parallelism policy (ServerConfig::SolverJobs): a dedicated
  // solver pool exists only when requests run inline on the reader thread;
  // concurrent request workers keep their solvers inline instead.
  if (Config.SolverJobs > 1 && Config.Jobs <= 1)
    SolverPool = std::make_unique<ThreadPool>(Config.SolverJobs);
}

Server::~Server() = default;

Histogram *Server::latencyFor(Method M) const {
  switch (M) {
  case Method::Analyze:
    return LatAnalyze;
  case Method::AnalyzeDelta:
    return LatDelta;
  case Method::Invalidate:
    return LatInvalidate;
  case Method::Stats:
    return LatStats;
  case Method::Metrics:
    return LatMetrics;
  case Method::Shutdown:
    return nullptr;
  }
  return nullptr;
}

void Server::finishAnalyze(const Request &Req, uint64_t Seq, uint64_t T0,
                           uint64_t QueueUs, uint64_t BytesIn,
                           RequestLogEvent *Ev,
                           const std::string &Response) {
  Histogram *Lat = latencyFor(Req.M);
  if (!Lat && !Ev)
    return;
  uint64_t End = Tracer::nowMicros();
  if (Lat) {
    Lat->record(End - T0);
    QueueWait->record(QueueUs);
  }
  if (Ev) {
    Ev->Seq = Seq;
    Ev->HasId = Req.HasId;
    Ev->Id = Req.Id;
    Ev->Method = methodName(Req.M);
    Ev->BytesIn = BytesIn;
    Ev->BytesOut = Response.size();
    Ev->QueueUs = QueueUs;
    Ev->ServiceUs = End - T0;
    Log.write(*Ev);
  }
}

std::string Server::handleAnalyze(const Request &Req, uint64_t Seq,
                                  RequestLogEvent *Ev) {
  TraceScope Span("req:" + std::to_string(Seq), "serve");

  AnalyzeJob Job;
  Job.Name = Req.Name;
  Job.Language = Req.Language;
  Job.Polymorphic = Req.Polymorphic;
  Job.Protos = Req.Protos;
  Job.Lim = Config.Lim;
  if (SolverPool) {
    Job.SolverJobs = Config.SolverJobs;
    Job.SolverPool = SolverPool.get();
  }
  if (Req.HasSource) {
    Job.Source = Req.Source;
  } else {
    std::ifstream In(Req.Path, std::ios::binary);
    if (!In)
      return makeErrorResponse(Req.HasId, Req.Id,
                               "cannot read '" + Req.Path + "'");
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Job.Source = std::move(Buffer).str();
  }

  CacheKey Key;
  Key.ContentHash = hashString(Job.Source);
  Key.ConfigHash = configHash(Job);

  bool IsDelta = Req.M == Method::AnalyzeDelta;
  if (IsDelta) {
    ++DeltaRequests;
    if (MetricsRegistry::collecting())
      MetricsRegistry::global().counter("server.delta.requests").add();
  }

  CachedResult Res;
  bool Hit = Cache.lookup(Key, Res);
  if (!Hit) {
    // A miss computes the result and, for the C pipeline, captures a
    // snapshot so a later analyze-delta for the same name+config has a
    // basis. analyze-delta plans a restricted run against the stored
    // snapshot when one exists, falling back to the full pipeline
    // otherwise; either way the bytes are identical to a cold run
    // (docs/INCREMENTAL.md states the contract, tests enforce it).
    std::optional<PhaseCapture> Capture;
    if (Ev)
      Capture.emplace(); // Per-request phase breakdown for the log event.
    std::shared_ptr<const constinf::UnitSnapshot> Next;
    if (IsDelta) {
      auto Prev = Snapshots.lookup(Job.Name, Key.ConfigHash);
      if (Ev)
        Ev->Snapshot = Prev ? "hit" : "miss";
      if (MetricsRegistry::collecting())
        MetricsRegistry::global()
            .counter(Prev ? "server.delta.snapshot_hits"
                          : "server.delta.snapshot_misses")
            .add();
      DeltaOutcome Outcome;
      if (Prev)
        runAnalysisDelta(Job, *Prev, Res, Next, Outcome);
      else
        runAnalysis(Job, Res, &Next);
      if (Ev)
        Ev->Delta = Outcome.UsedDelta ? "incremental" : "full";
      if (Outcome.UsedDelta) {
        ++DeltaIncremental;
        DeltaDirtySccs += Outcome.DirtySccs;
        DeltaReused += Outcome.ReusedSccs;
        if (MetricsRegistry::collecting()) {
          MetricsRegistry::global().counter("server.delta.incremental").add();
          MetricsRegistry::global()
              .counter("server.delta.dirty_sccs")
              .add(Outcome.DirtySccs);
          MetricsRegistry::global()
              .counter("server.delta.reused")
              .add(Outcome.ReusedSccs);
        }
      } else {
        ++DeltaFull;
        if (MetricsRegistry::collecting())
          MetricsRegistry::global().counter("server.delta.full").add();
      }
    } else {
      runAnalysis(Job, Res, &Next);
    }
    Snapshots.store(Job.Name, Key.ConfigHash, std::move(Next));
    Cache.insert(Key, Res);
    if (Ev) {
      // Aggregate the capture by phase name (a phase can close many times
      // per request), keeping first-completion order for stable output.
      for (const PhaseCapture::Sample &Sample : Capture->samples()) {
        auto It = std::find_if(
            Ev->PhasesUs.begin(), Ev->PhasesUs.end(),
            [&](const auto &KV) { return KV.first == Sample.Name; });
        if (It != Ev->PhasesUs.end())
          It->second += Sample.Micros;
        else
          Ev->PhasesUs.emplace_back(Sample.Name, Sample.Micros);
      }
    }
  }
  if (Ev) {
    Ev->Ok = true;
    Ev->HasExit = true;
    Ev->Exit = Res.ExitCode;
    Ev->HashPrefix = hashHex(Key.ContentHash).substr(0, 8);
    Ev->Cache = Hit ? "hit" : "miss";
  }
  if (Tracer::isEnabled())
    Span.setArgs("\"cached\":" + std::string(Hit ? "true" : "false") +
                 ",\"exit\":" + std::to_string(Res.ExitCode));

  // The reply is a pure function of (content, config): the "cached" bit is
  // deliberately NOT in it, so a warm reply is byte-identical to the cold
  // run that filled it (hit-path visibility comes from `stats` and the
  // cache.* metrics instead).
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"exit\":" + std::to_string(Res.ExitCode);
  R += ",\"hash\":\"" + hashHex(Key.ContentHash) + "\"";
  R += ",\"stdout\":";
  appendJsonString(R, Res.Out);
  R += ",\"stderr\":";
  appendJsonString(R, Res.Err);
  R += "}\n";
  return R;
}

std::string Server::handleInvalidate(const Request &Req) {
  uint64_t Dropped;
  if (!Req.ContentHashHex.empty()) {
    Dropped = Cache.invalidateContent(
        std::strtoull(Req.ContentHashHex.c_str(), nullptr, 16));
  } else {
    Dropped = Cache.invalidateAll();
    // Snapshots derive from previously served content just like cached
    // results; a full invalidate drops both. (Content-hash invalidation
    // does not map onto identity-keyed snapshots and leaves them alone;
    // a stale snapshot is always safe -- it only seeds planning.)
    Snapshots.clear();
  }
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"dropped\":" + std::to_string(Dropped) + "}\n";
  return R;
}

std::string Server::handleStats(const Request &Req) {
  CacheStats S = Cache.stats();
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"requests\":" + std::to_string(Requests);
  R += ",\"cache\":{\"entries\":" + std::to_string(S.Entries);
  R += ",\"bytes\":" + std::to_string(S.Bytes);
  R += ",\"hits\":" + std::to_string(S.Hits);
  R += ",\"misses\":" + std::to_string(S.Misses);
  R += ",\"evictions\":" + std::to_string(S.Evictions);
  R += ",\"inserts\":" + std::to_string(S.Inserts);
  R += ",\"spill_loads\":" + std::to_string(S.SpillLoads);
  R += ",\"spill_writes\":" + std::to_string(S.SpillWrites);
  R += "}";
  SummaryStore::Stats SS = Snapshots.stats();
  R += ",\"delta\":{\"snapshots\":" + std::to_string(SS.Entries);
  R += ",\"snapshot_bytes\":" + std::to_string(SS.Bytes);
  R += ",\"snapshot_hits\":" + std::to_string(SS.Hits);
  R += ",\"snapshot_misses\":" + std::to_string(SS.Misses);
  R += ",\"requests\":" + std::to_string(DeltaRequests.load());
  R += ",\"incremental\":" + std::to_string(DeltaIncremental.load());
  R += ",\"full\":" + std::to_string(DeltaFull.load());
  R += ",\"dirty_sccs\":" + std::to_string(DeltaDirtySccs.load());
  R += ",\"reused\":" + std::to_string(DeltaReused.load());
  R += "}";
  if (Config.Telemetry) {
    // Live per-method latency distributions; values are exact at this
    // point because control requests barrier on all in-flight analyzes.
    auto AppendHist = [&R](const char *Name, const Histogram &H) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.3f", H.mean());
      R += "\"" + std::string(Name) +
           "\":{\"count\":" + std::to_string(H.count()) +
           ",\"mean_us\":" + Buf +
           ",\"p50_us\":" + std::to_string(H.quantile(0.50)) +
           ",\"p90_us\":" + std::to_string(H.quantile(0.90)) +
           ",\"p99_us\":" + std::to_string(H.quantile(0.99)) + "}";
    };
    R += ",\"latency\":{";
    AppendHist("analyze", *LatAnalyze);
    R += ",";
    AppendHist("analyze-delta", *LatDelta);
    R += ",";
    AppendHist("invalidate", *LatInvalidate);
    R += ",";
    AppendHist("stats", *LatStats);
    R += ",";
    AppendHist("metrics", *LatMetrics);
    R += ",";
    AppendHist("queue_wait", *QueueWait);
    R += "}";
  }
  R += "}\n";
  return R;
}

std::string Server::handleMetrics(const Request &Req) {
  // The full registry snapshot -- the server's histograms plus whatever
  // counters/timers the rest of the process has published -- compactly
  // rendered so the response stays one NDJSON line.
  std::string R;
  appendIdField(R, Req.HasId, Req.Id);
  R += ",\"ok\":true,\"metrics\":";
  R += MetricsRegistry::global().renderJson(/*Compact=*/true);
  R += "}\n";
  return R;
}

int Server::run(std::istream &In, std::ostream &Out) {
  TraceScope RunSpan("server.run", "serve");
  std::unique_ptr<ThreadPool> Pool;
  if (Config.Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Config.Jobs);

  std::deque<Slot> Pending;
  std::mutex Mutex;
  std::condition_variable DoneCv;

  // Writes the completed prefix of Pending to Out, in request order.
  // Reader thread only (the only thread that writes Out or pops).
  auto FlushReady = [&] {
    std::lock_guard<std::mutex> Lock(Mutex);
    while (!Pending.empty() && Pending.front().Done) {
      Out << Pending.front().Response;
      Pending.pop_front();
    }
    if (QueueDepth)
      QueueDepth->set(static_cast<int64_t>(Pending.size()));
    Out.flush();
  };
  // Blocks until every in-flight request has completed and flushed; the
  // deterministic point at which control requests read/mutate state.
  auto Barrier = [&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      while (!Pending.empty() && Pending.front().Done) {
        Out << Pending.front().Response;
        Pending.pop_front();
      }
      if (Pending.empty())
        break;
      DoneCv.wait(Lock, [&] { return Pending.front().Done; });
    }
    if (QueueDepth)
      QueueDepth->set(0);
    Out.flush();
  };
  // Backpressure: a peer that streams analyze requests faster than the
  // workers drain them must not grow the response backlog without bound.
  // The reader stalls (flushing what it can) once this many requests are
  // in flight or awaiting flush.
  const size_t MaxBacklog = static_cast<size_t>(Config.Jobs) * 16 + 16;
  auto WaitBacklog = [&] {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (Pending.size() >= MaxBacklog) {
      DoneCv.wait(Lock, [&] { return Pending.front().Done; });
      while (!Pending.empty() && Pending.front().Done) {
        Out << Pending.front().Response;
        Pending.pop_front();
      }
      if (QueueDepth)
        QueueDepth->set(static_cast<int64_t>(Pending.size()));
      Out.flush();
    }
  };
  auto EmitDone = [&](std::string Response) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Pending.push_back({std::move(Response), true});
    }
    FlushReady();
  };
  auto CountRequest = [&](bool IsError) {
    ++Requests;
    if (MetricsRegistry::collecting()) {
      MetricsRegistry::global().counter("server.requests").add();
      if (IsError)
        MetricsRegistry::global().counter("server.errors").add();
    }
  };
  // Request-level instrumentation is fully off (no clock reads) unless a
  // histogram or the request log wants the numbers.
  const bool Instrument = Config.Telemetry || static_cast<bool>(Log);
  // Logs a request that never reached a handler (over-long or unparseable
  // line): no method, no exit, just the shape and the timings.
  auto LogInvalid = [&](bool HasId, int64_t Id, uint64_t T0,
                        uint64_t BytesIn, const std::string &Response) {
    if (!Log)
      return;
    RequestLogEvent Ev;
    Ev.Seq = Requests;
    Ev.HasId = HasId;
    Ev.Id = Id;
    Ev.Method = "invalid";
    Ev.BytesIn = BytesIn;
    Ev.BytesOut = Response.size();
    Ev.ServiceUs = Tracer::nowMicros() - T0;
    Log.write(Ev);
  };
  // Telemetry + log for a control request (invalidate/stats/metrics/
  // shutdown); the barrier wait is part of its service time.
  auto FinishControl = [&](const Request &Req, uint64_t T0, uint64_t BytesIn,
                           const std::string &Response) {
    Histogram *Lat = latencyFor(Req.M);
    if (!Lat && !Log)
      return;
    uint64_t End = Tracer::nowMicros();
    if (Lat)
      Lat->record(End - T0);
    if (Log) {
      RequestLogEvent Ev;
      Ev.Seq = Requests;
      Ev.HasId = Req.HasId;
      Ev.Id = Req.Id;
      Ev.Method = methodName(Req.M);
      Ev.Ok = true;
      Ev.BytesIn = BytesIn;
      Ev.BytesOut = Response.size();
      Ev.ServiceUs = End - T0;
      Log.write(Ev);
    }
  };

  std::string Line;
  for (;;) {
    ReadStatus S =
        readLimitedLine(In, Line, Config.ProtoLim.MaxRequestBytes);
    if (S == ReadStatus::Eof)
      break;
    if (Line.find_first_not_of(" \t") == std::string::npos)
      continue; // Blank lines are keep-alives, not requests.
    const uint64_t T0 = Instrument ? Tracer::nowMicros() : 0;
    const uint64_t BytesIn = Line.size();
    if (S == ReadStatus::TooLong) {
      CountRequest(/*IsError=*/true);
      std::string R = makeErrorResponse(false, 0, "request exceeds byte limit");
      LogInvalid(false, 0, T0, BytesIn, R);
      EmitDone(std::move(R));
      continue;
    }
    Request Req;
    std::string Error;
    if (!parseRequest(Line, Config.ProtoLim, Req, Error)) {
      CountRequest(/*IsError=*/true);
      std::string R = makeErrorResponse(Req.HasId, Req.Id, Error);
      LogInvalid(Req.HasId, Req.Id, T0, BytesIn, R);
      EmitDone(std::move(R));
      continue;
    }
    CountRequest(/*IsError=*/false);
    uint64_t Seq = Requests;

    switch (Req.M) {
    case Method::Analyze:
    case Method::AnalyzeDelta:
      // analyze-delta rides the same ordered-slot path as analyze: same
      // pool, same backpressure, same response schema. handleAnalyze picks
      // the computation strategy off Req.M.
      if (Pool) {
        WaitBacklog();
        Slot *S2;
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Pending.emplace_back();
          S2 = &Pending.back();
          if (QueueDepth)
            QueueDepth->set(static_cast<int64_t>(Pending.size()));
        }
        const uint64_t EnqueueUs = Instrument ? Tracer::nowMicros() : 0;
        Pool->enqueue([this, S2, &Mutex, &DoneCv, Req = std::move(Req), Seq,
                       T0, BytesIn, EnqueueUs] {
          const uint64_t QueueUs =
              EnqueueUs ? Tracer::nowMicros() - EnqueueUs : 0;
          RequestLogEvent Ev;
          RequestLogEvent *EvPtr = Log ? &Ev : nullptr;
          std::string Response = handleAnalyze(Req, Seq, EvPtr);
          finishAnalyze(Req, Seq, T0, QueueUs, BytesIn, EvPtr, Response);
          std::lock_guard<std::mutex> Lock(Mutex);
          S2->Response = std::move(Response);
          S2->Done = true;
          DoneCv.notify_all();
        });
        FlushReady();
      } else {
        RequestLogEvent Ev;
        RequestLogEvent *EvPtr = Log ? &Ev : nullptr;
        std::string Response = handleAnalyze(Req, Seq, EvPtr);
        finishAnalyze(Req, Seq, T0, /*QueueUs=*/0, BytesIn, EvPtr, Response);
        EmitDone(std::move(Response));
      }
      break;
    case Method::Invalidate: {
      Barrier();
      std::string R = handleInvalidate(Req);
      FinishControl(Req, T0, BytesIn, R);
      EmitDone(std::move(R));
      break;
    }
    case Method::Stats: {
      Barrier();
      std::string R = handleStats(Req);
      FinishControl(Req, T0, BytesIn, R);
      EmitDone(std::move(R));
      break;
    }
    case Method::Metrics: {
      Barrier();
      std::string R = handleMetrics(Req);
      FinishControl(Req, T0, BytesIn, R);
      EmitDone(std::move(R));
      break;
    }
    case Method::Shutdown: {
      Barrier();
      std::string R;
      appendIdField(R, Req.HasId, Req.Id);
      R += ",\"ok\":true}\n";
      FinishControl(Req, T0, BytesIn, R);
      EmitDone(std::move(R));
      return 0;
    }
    }
  }
  Barrier();
  return 0;
}

//===- serve/Server.h - Persistent analysis server --------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qualsd request loop: reads newline-delimited JSON requests from an
/// input stream, dispatches `analyze` bodies onto a support/ThreadPool, and
/// answers -- one response line per request, **in request order** -- from
/// the content-addressed ResultCache, falling back to a fully isolated
/// serve/Pipelines run on a miss.
///
/// Ordering works exactly like tools/BatchDriver: workers complete
/// out-of-order into per-request slots, the reader thread flushes the
/// completed prefix, so the response stream is byte-identical for every
/// worker count. Control requests (`invalidate`, `stats`, `shutdown`)
/// barrier on all in-flight analyzes first, so their observable state is
/// deterministic too.
///
/// **Sessions.** run() serves one request stream (one "connection"); its
/// state -- the ordered response slots, backpressure, barriers -- is local
/// to the call, and the cache, snapshot store, worker pool, and telemetry
/// are shared, so many run() calls may execute concurrently: that is
/// exactly what serve/Transport.h does with one session per accepted
/// socket. Response ordering and the control-request barrier are
/// *per-session*; the sequence counter, cache, and metrics are server-wide
/// (docs/SERVER.md defines the cross-connection semantics precisely).
///
/// Robustness follows docs/ROBUSTNESS.md: request lines are read under a
/// hard byte cap (an over-long line is consumed, answered with an error,
/// and the stream keeps serving), the protocol parser is depth- and
/// size-budgeted, and every analysis runs under the server's --limit-*
/// budgets. A malformed request never takes the server down.
///
/// Observability: each request runs under a "req:<n>" trace span in
/// category "serve", and the loop publishes server.requests /
/// server.errors counters next to the cache.* metrics. Request-level
/// telemetry (on by default, ServerConfig::Telemetry) additionally records
/// every request's queue wait and end-to-end service time into
/// server.latency.<method> / server.queue_wait histograms, readable live
/// through the `metrics` request and the `stats` latency block; an
/// optional structured request log (serve/RequestLog.h) emits one NDJSON
/// event per request. None of it ever touches response bytes: the response
/// stream stays byte-identical at any -jN, telemetry on or off
/// (docs/SERVER.md, docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_SERVER_H
#define QUALS_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "serve/RequestLog.h"
#include "serve/ResultCache.h"
#include "serve/SummaryStore.h"
#include "support/Limits.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace quals {

class ThreadPool;

namespace serve {

/// One server's configuration; fixed for the daemon's lifetime.
struct ServerConfig {
  /// Analyze workers; 1 (the default) runs requests inline on the reader
  /// thread, which is fully deterministic and right for edit streams.
  /// With a socket transport the pool is shared by every connection.
  unsigned Jobs = 1;
  /// Shard the constraint solver's dense bulk passes over this many
  /// threads (SolverConfig::Jobs; docs/SOLVER.md). Nested-parallelism
  /// policy: this only takes effect when Jobs == 1 -- with concurrent
  /// request workers the requests are the parallelism axis and per-request
  /// solvers stay inline, so the two layers never compete for cores (and a
  /// request worker can never block on a pool it is itself running on).
  /// Response bytes are identical at every setting.
  unsigned SolverJobs = 1;
  /// In-memory cache payload budget; 0 disables caching.
  uint64_t CacheMaxBytes = 64u << 20;
  /// Result-cache shards (per-shard mutex + LRU + budget slice); rounded
  /// up to a power of two. More shards cut lock contention under
  /// concurrent multi-connection hits (docs/SERVER.md).
  unsigned CacheShards = ResultCache::DefaultShards;
  /// Spill directory for restart-warm state; empty disables spill.
  std::string SpillDir;
  /// Resource budgets applied to every per-request analysis context.
  Limits Lim;
  /// Budgets for the request parser itself.
  ProtocolLimits ProtoLim;
  /// Retained analysis snapshots for analyze-delta (entry count per
  /// (name, config) identity; 0 disables incremental re-analysis and every
  /// analyze-delta request is served by a full run).
  unsigned MaxSnapshots = 64;
  /// Request-level telemetry: per-method latency histograms plus queue
  /// instrumentation, registered in MetricsRegistry::global() and exposed
  /// through the `metrics` request and the `stats` latency block. On by
  /// default (independent of --metrics collection); off makes the serving
  /// loop metric-free. Response bytes are identical either way.
  bool Telemetry = true;
  /// Structured request-log sink (one NDJSON event per request, completion
  /// order; serve/RequestLog.h); null disables. Not owned; must outlive
  /// the server. Shared by every session (writes are mutex-serialized).
  std::ostream *RequestLogStream = nullptr;
  /// Request-log events with end-to-end service time at or above this many
  /// microseconds are tagged "slow":true; 0 disables tagging.
  uint64_t SlowMicros = 0;
};

/// What cache warm-up from a corpus manifest accomplished; see
/// Server::warmFromManifest.
struct WarmStats {
  uint64_t Listed = 0;        ///< Manifest entries (after comments/blanks).
  uint64_t Warmed = 0;        ///< Files analyzed and inserted.
  uint64_t AlreadyCached = 0; ///< Files whose key was already warm (spill).
  uint64_t Failed = 0;        ///< Files that could not be read.
};

/// The persistent analysis server; see the file comment.
class Server {
public:
  explicit Server(const ServerConfig &Config);
  ~Server(); // Out of line: the pools' ThreadPool is incomplete here.

  /// Serves requests from \p In until `shutdown` or end of input, writing
  /// one response line per request to \p Out in request order. Returns the
  /// process exit code (0 on clean shutdown/EOF). May be called again on a
  /// new stream (the cache stays warm across calls; tests and
  /// bench/server_cache rely on this to model reconnects) and
  /// concurrently from several threads, one call per connection
  /// (serve/Transport.h) -- ordering and barriers are per-call, the cache
  /// and pool are shared.
  int run(std::istream &In, std::ostream &Out);

  /// Pre-analyzes every file listed in \p ManifestPath so the first
  /// clients hit a warm cache (qualsd --warm). Manifest format: one entry
  /// per line, `PATH` or `PATH<TAB>LANGUAGE`; blank lines and lines
  /// starting with '#' are skipped; without an explicit language, `.q`
  /// files run the lambda pipeline and everything else runs C
  /// (docs/SERVER.md). Entries run on the worker pool when Jobs > 1.
  /// Warm-up traffic counts into the cache.* stats (one miss + insert per
  /// cold file). Returns false with \p Error set only when the manifest
  /// itself cannot be read; per-file failures just count in \p Stats.
  bool warmFromManifest(const std::string &ManifestPath, WarmStats &Stats,
                        std::string &Error);

  /// True once any session has processed a `shutdown` request; the
  /// transport polls this to stop accepting and close other connections.
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_acquire);
  }

  /// The cache, for stats assertions in tests/bench.
  const ResultCache &cache() const { return Cache; }

  /// The snapshot store backing analyze-delta, for tests/bench.
  const SummaryStore &snapshots() const { return Snapshots; }

  /// Requests read so far, across every session (all methods, including
  /// malformed lines).
  uint64_t requestsServed() const { return Requests.load(); }

private:
  ServerConfig Config;
  ResultCache Cache;
  SummaryStore Snapshots;
  /// Analyze workers (ServerConfig::Jobs > 1), shared by every session so
  /// C connections multiplex onto one fixed pool instead of C pools; null
  /// when requests run inline on each session's reader thread.
  std::unique_ptr<ThreadPool> WorkerPool;
  /// Pool for sharding per-request dense solves; created only under the
  /// nested-parallelism policy (SolverJobs > 1 AND Jobs == 1, see
  /// ServerConfig::SolverJobs), null otherwise.
  std::unique_ptr<ThreadPool> SolverPool;
  /// Server-wide request sequence; also the `stats` requests count.
  std::atomic<uint64_t> Requests{0};
  /// Requests admitted but not yet flushed, summed over sessions (the
  /// server.queue_depth gauge).
  std::atomic<int64_t> InFlight{0};
  /// Set by the session that processes `shutdown`; never cleared.
  std::atomic<bool> ShutdownFlag{false};

  // analyze-delta accounting (atomic: analyzes run on pool workers).
  std::atomic<uint64_t> DeltaRequests{0};    ///< analyze-delta lines seen.
  std::atomic<uint64_t> DeltaIncremental{0}; ///< Served by a restricted run.
  std::atomic<uint64_t> DeltaFull{0};        ///< Fell back to a full run.
  std::atomic<uint64_t> DeltaDirtySccs{0};   ///< SCCs re-solved, summed.
  std::atomic<uint64_t> DeltaReused{0};      ///< SCC summaries replayed, summed.

  // Request-level telemetry: per-method latency histograms plus queue
  // instrumentation, owned by MetricsRegistry::global() (stable refs) so
  // the `metrics` request and --metrics reports see them; all null when
  // Config.Telemetry is off, which is the only gate the serving loop
  // checks.
  Histogram *LatAnalyze = nullptr;
  Histogram *LatDelta = nullptr;
  Histogram *LatInvalidate = nullptr;
  Histogram *LatStats = nullptr;
  Histogram *LatMetrics = nullptr;
  Histogram *QueueWait = nullptr;
  Gauge *QueueDepth = nullptr;
  RequestLog Log;

  /// The latency histogram for \p M; null for shutdown or with telemetry
  /// off.
  Histogram *latencyFor(Method M) const;

  /// Builds the response line (including trailing newline) for one
  /// analyze request; runs on a pool worker when Jobs > 1. With \p Ev set
  /// (request logging on), fills the event's analysis facts: ok/exit,
  /// content-hash prefix, cache and snapshot outcomes, and the per-phase
  /// breakdown captured while computing a miss.
  std::string handleAnalyze(const Request &Req, uint64_t Seq,
                            RequestLogEvent *Ev);

  /// Records latency/queue telemetry for a finished analyze-family request
  /// and, when \p Ev is set, completes and writes its log event.
  void finishAnalyze(const Request &Req, uint64_t Seq, uint64_t T0,
                     uint64_t QueueUs, uint64_t BytesIn, RequestLogEvent *Ev,
                     const std::string &Response);

  std::string handleInvalidate(const Request &Req);
  std::string handleStats(const Request &Req);
  std::string handleMetrics(const Request &Req);
};

/// Serializes an error response: {"id":<id|null>,"ok":false,"error":"..."}.
std::string makeErrorResponse(bool HasId, int64_t Id,
                              const std::string &Error);

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_SERVER_H

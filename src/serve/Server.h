//===- serve/Server.h - Persistent analysis server --------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qualsd request loop: reads newline-delimited JSON requests from an
/// input stream, dispatches `analyze` bodies onto a support/ThreadPool, and
/// answers -- one response line per request, **in request order** -- from
/// the content-addressed ResultCache, falling back to a fully isolated
/// serve/Pipelines run on a miss.
///
/// Ordering works exactly like tools/BatchDriver: workers complete
/// out-of-order into per-request slots, the reader thread flushes the
/// completed prefix, so the response stream is byte-identical for every
/// worker count. Control requests (`invalidate`, `stats`, `shutdown`)
/// barrier on all in-flight analyzes first, so their observable state is
/// deterministic too.
///
/// Robustness follows docs/ROBUSTNESS.md: request lines are read under a
/// hard byte cap (an over-long line is consumed, answered with an error,
/// and the stream keeps serving), the protocol parser is depth- and
/// size-budgeted, and every analysis runs under the server's --limit-*
/// budgets. A malformed request never takes the server down.
///
/// Observability: each request runs under a "req:<n>" trace span in
/// category "serve", and the loop publishes server.requests /
/// server.errors counters next to the cache.* metrics (docs/SERVER.md,
/// docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_SERVER_H
#define QUALS_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "serve/ResultCache.h"
#include "serve/SummaryStore.h"
#include "support/Limits.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace quals {
namespace serve {

/// One server's configuration; fixed for the daemon's lifetime.
struct ServerConfig {
  /// Analyze workers; 1 (the default) runs requests inline on the reader
  /// thread, which is fully deterministic and right for edit streams.
  unsigned Jobs = 1;
  /// In-memory cache payload budget; 0 disables caching.
  uint64_t CacheMaxBytes = 64u << 20;
  /// Spill directory for restart-warm state; empty disables spill.
  std::string SpillDir;
  /// Resource budgets applied to every per-request analysis context.
  Limits Lim;
  /// Budgets for the request parser itself.
  ProtocolLimits ProtoLim;
  /// Retained analysis snapshots for analyze-delta (entry count per
  /// (name, config) identity; 0 disables incremental re-analysis and every
  /// analyze-delta request is served by a full run).
  unsigned MaxSnapshots = 64;
};

/// The persistent analysis server; see the file comment.
class Server {
public:
  explicit Server(const ServerConfig &Config);

  /// Serves requests from \p In until `shutdown` or end of input, writing
  /// one response line per request to \p Out in request order. Returns the
  /// process exit code (0 on clean shutdown/EOF). May be called again on a
  /// new stream: the cache stays warm across calls (tests and
  /// bench/server_cache rely on this to model reconnects).
  int run(std::istream &In, std::ostream &Out);

  /// The cache, for stats assertions in tests/bench.
  const ResultCache &cache() const { return Cache; }

  /// The snapshot store backing analyze-delta, for tests/bench.
  const SummaryStore &snapshots() const { return Snapshots; }

  /// Requests read so far (all methods, including malformed lines).
  uint64_t requestsServed() const { return Requests; }

private:
  ServerConfig Config;
  ResultCache Cache;
  SummaryStore Snapshots;
  uint64_t Requests = 0;

  // analyze-delta accounting (atomic: analyzes run on pool workers).
  std::atomic<uint64_t> DeltaRequests{0};    ///< analyze-delta lines seen.
  std::atomic<uint64_t> DeltaIncremental{0}; ///< Served by a restricted run.
  std::atomic<uint64_t> DeltaFull{0};        ///< Fell back to a full run.
  std::atomic<uint64_t> DeltaDirtySccs{0};   ///< SCCs re-solved, summed.
  std::atomic<uint64_t> DeltaReused{0};      ///< SCC summaries replayed, summed.

  /// Builds the response line (including trailing newline) for one
  /// analyze request; runs on a pool worker when Jobs > 1.
  std::string handleAnalyze(const Request &Req, uint64_t Seq);

  std::string handleInvalidate(const Request &Req);
  std::string handleStats(const Request &Req);
};

/// Serializes an error response: {"id":<id|null>,"ok":false,"error":"..."}.
std::string makeErrorResponse(bool HasId, int64_t Id,
                              const std::string &Error);

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_SERVER_H

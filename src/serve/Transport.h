//===- serve/Transport.h - Socket transport for qualsd ----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket front end for the persistent analysis server: a listener
/// (unix-domain or TCP) that accepts many concurrent connections and runs
/// one Server session (one Server::run call) per connection, all
/// multiplexed onto the server's shared worker pool and cache.
///
/// **Listen specs** (qualsd --listen=SPEC):
///   - a spec containing no ':' is a filesystem path -> unix-domain socket
///     (a stale socket file at that path is replaced);
///   - `HOST:PORT` binds TCP on HOST (numeric or name; empty HOST means
///     all interfaces), PORT 0 picks an ephemeral port -- boundName()
///     reports the actual address, and the transport announces it on
///     stderr as `qualsd: listening on ...` so scripts can scrape it.
///
/// **Connection lifecycle.** Each accepted socket gets a dedicated session
/// thread running the stdio protocol loop verbatim over the socket (same
/// bounded line reader, same ordered-slot responses, same backpressure), so
/// per-connection byte streams are identical to what the same requests
/// would produce over stdio. A client closing its write side (or the whole
/// socket) ends only that session: in-flight requests drain, responses
/// flush, the connection closes, and the server keeps serving others --
/// unlike stdio, EOF does not stop the process.
///
/// **Cross-connection semantics** (docs/SERVER.md): response ordering and
/// control-request barriers are per-connection -- an `invalidate` barriers
/// its own connection's in-flight analyzes, then drops shared cache state;
/// analyzes racing on *other* connections may complete before or after the
/// drop (either order is sound: results are pure functions of content).
/// A `shutdown` on any connection answers on that connection first, then
/// stops the listener and closes the read side of every other connection;
/// their sessions drain and flush before serve() returns. Responses never
/// get dropped mid-stream.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SERVE_TRANSPORT_H
#define QUALS_SERVE_TRANSPORT_H

#include <cstdint>
#include <string>

namespace quals {
namespace serve {

class Server;

/// A parsed --listen spec; see the file comment for the grammar.
struct ListenSpec {
  enum class Kind { Unix, Tcp } K = Kind::Unix;
  std::string Path; ///< Unix: socket path.
  std::string Host; ///< Tcp: interface (empty = all).
  uint16_t Port = 0; ///< Tcp: port (0 = ephemeral).
};

/// Parses \p Spec into \p Out. Returns false with \p Error set on a
/// malformed spec (bad port, empty path).
bool parseListenSpec(const std::string &Spec, ListenSpec &Out,
                     std::string &Error);

/// Owns the listening socket and the per-connection session threads; see
/// the file comment. Not copyable. The Server must outlive it.
class Transport {
public:
  Transport(Server &S, const ListenSpec &Spec);
  ~Transport(); // Joins any remaining sessions, unlinks a unix socket.

  Transport(const Transport &) = delete;
  Transport &operator=(const Transport &) = delete;

  /// Creates, binds, and starts listening on the socket. Returns false
  /// with \p Error set on any socket-layer failure (path in use, port in
  /// use, resolve failure); the transport is then unusable.
  bool open(std::string &Error);

  /// Accepts connections and serves them until a session processes
  /// `shutdown` (or stop() is called). Blocks; returns the process exit
  /// code (0 on clean shutdown). Call open() first.
  int serve();

  /// Asks serve() to wind down exactly as a `shutdown` request would:
  /// stop accepting, close other connections' read sides, drain. Safe
  /// from any thread; tests use it to end a serve() loop externally.
  void stop();

  /// The bound address in --listen syntax ("PATH" or "HOST:PORT" with the
  /// real port), valid after open(); how tests learn an ephemeral port.
  const std::string &boundName() const { return BoundName; }

private:
  Server &S;
  ListenSpec Spec;
  int ListenFd = -1;
  int StopPipe[2] = {-1, -1}; ///< Self-pipe: wakes the accept poll.
  std::string BoundName;
  struct Impl; ///< Connection bookkeeping (kept out of the header).
  Impl *I;

  void requestStop();
};

} // namespace serve
} // namespace quals

#endif // QUALS_SERVE_TRANSPORT_H

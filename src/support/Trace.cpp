//===- support/Trace.cpp - Chrome-trace-event recording -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

using namespace quals;

std::atomic<bool> Tracer::Enabled{false};

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

uint64_t Tracer::nowMicros() {
  using Clock = std::chrono::steady_clock;
  // The epoch is the first call, so timestamps start near zero and the
  // viewer's timeline is not offset by machine uptime.
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               Epoch)
      .count();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
}

uint32_t Tracer::denseTidLocked(uint64_t ThreadHash) {
  for (uint32_t I = 0, E = ThreadIds.size(); I != E; ++I)
    if (ThreadIds[I] == ThreadHash)
      return I;
  ThreadIds.push_back(ThreadHash);
  return ThreadIds.size() - 1;
}

void Tracer::recordComplete(std::string Name, std::string Category,
                            uint64_t StartUs, uint64_t DurUs,
                            std::string ArgsJson) {
  uint64_t Hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back({std::move(Name), std::move(Category), 'X', StartUs,
                    DurUs, denseTidLocked(Hash), std::move(ArgsJson)});
}

void Tracer::recordInstant(std::string Name, std::string Category,
                           std::string ArgsJson) {
  uint64_t Now = nowMicros();
  uint64_t Hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back({std::move(Name), std::move(Category), 'i', Now, 0,
                    denseTidLocked(Hash), std::move(ArgsJson)});
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events;
}

std::string quals::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Tracer::toChromeJson() const {
  std::vector<TraceEvent> Sorted = snapshot();
  // Spans close in LIFO order, so recording order is by *end* time; the
  // trace-event format wants non-decreasing "ts" per document for friendly
  // loading. Sort by start time, breaking ties by longer duration first so
  // parents precede their children. When both tie (a sub-microsecond parent
  // and child share a start stamp), fall back to *reverse* recording order:
  // LIFO close means the parent was recorded after the child, so later
  // recording sorts first. The index key also makes the sort total, so the
  // serialization is deterministic for any snapshot.
  std::vector<size_t> Order(Sorted.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&Sorted](size_t IA, size_t IB) {
    const TraceEvent &A = Sorted[IA], &B = Sorted[IB];
    if (A.StartUs != B.StartUs)
      return A.StartUs < B.StartUs;
    if (A.DurUs != B.DurUs)
      return A.DurUs > B.DurUs;
    return IA > IB;
  });
  {
    std::vector<TraceEvent> Reordered;
    Reordered.reserve(Sorted.size());
    for (size_t I : Order)
      Reordered.push_back(std::move(Sorted[I]));
    Sorted = std::move(Reordered);
  }
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Sorted) {
    if (!First)
      Out += ',';
    First = false;
    Out += "\n{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
           jsonEscape(E.Category) + "\",\"ph\":\"";
    Out += E.Phase;
    Out += "\",\"ts\":" + std::to_string(E.StartUs);
    if (E.Phase == 'X')
      Out += ",\"dur\":" + std::to_string(E.DurUs);
    if (E.Phase == 'i')
      Out += ",\"s\":\"t\""; // thread-scoped instant
    Out += ",\"pid\":1,\"tid\":" + std::to_string(E.Tid);
    if (!E.Args.empty())
      Out += ",\"args\":{" + E.Args + "}";
    Out += '}';
  }
  Out += "\n]}\n";
  return Out;
}

bool Tracer::writeChromeJson(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << toChromeJson();
  return static_cast<bool>(Out);
}

//===- support/Scc.cpp - Strongly-connected components --------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Scc.h"

#include <cassert>
#include <cstdint>

using namespace quals;

namespace {

constexpr unsigned Undefined = ~0u;

/// Explicit-stack Tarjan state for one DFS root.
struct Frame {
  unsigned Node;
  size_t NextSucc;
};

} // namespace

SccResult quals::computeSccs(const Digraph &G) {
  unsigned N = G.getNumNodes();
  SccResult Result;
  Result.ComponentOf.assign(N, Undefined);

  std::vector<unsigned> Index(N, Undefined);
  std::vector<unsigned> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  std::vector<Frame> CallStack;
  unsigned NextIndex = 0;

  for (unsigned Root = 0; Root != N; ++Root) {
    if (Index[Root] != Undefined)
      continue;
    CallStack.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      unsigned V = F.Node;
      const std::vector<unsigned> &Succs = G.successors(V);
      if (F.NextSucc < Succs.size()) {
        unsigned W = Succs[F.NextSucc++];
        if (Index[W] == Undefined) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          CallStack.push_back({W, 0});
        } else if (OnStack[W] && Index[W] < LowLink[V]) {
          LowLink[V] = Index[W];
        }
        continue;
      }

      // All successors explored: maybe pop an SCC, then return to caller.
      if (LowLink[V] == Index[V]) {
        std::vector<unsigned> Component;
        unsigned W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Result.ComponentOf[W] = Result.Components.size();
          Component.push_back(W);
        } while (W != V);
        Result.Components.push_back(std::move(Component));
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        unsigned Parent = CallStack.back().Node;
        if (LowLink[V] < LowLink[Parent])
          LowLink[Parent] = LowLink[V];
      }
    }
  }

  assert(Stack.empty() && "Tarjan stack should be empty at the end");
  return Result;
}

SccFlatResult quals::computeSccsFlat(const CsrGraphView &G) {
  unsigned N = G.NumNodes;
  SccFlatResult Result;
  Result.ComponentOf.assign(N, Undefined);
  Result.Order.reserve(N);
  Result.CompStart.push_back(0);

  std::vector<unsigned> Index(N, Undefined);
  std::vector<unsigned> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  std::vector<Frame> CallStack;
  unsigned NextIndex = 0;

  for (unsigned Root = 0; Root != N; ++Root) {
    // Nodes without successors only need visiting when some edge reaches
    // them (the DFS below pulls those in); skipping them as roots keeps the
    // pass proportional to the nodes that participate in edges, which for
    // the constraint solver is a small fraction of all variables.
    if (Index[Root] != Undefined || G.RowStart[Root] == G.RowStart[Root + 1])
      continue;
    CallStack.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      unsigned V = F.Node;
      uint32_t RowEnd = G.RowStart[V + 1];
      if (F.NextSucc + G.RowStart[V] < RowEnd) {
        unsigned W = G.Targets[G.RowStart[V] + F.NextSucc++];
        if (Index[W] == Undefined) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          CallStack.push_back({W, 0});
        } else if (OnStack[W] && Index[W] < LowLink[V]) {
          LowLink[V] = Index[W];
        }
        continue;
      }

      if (LowLink[V] == Index[V]) {
        unsigned Comp = Result.CompStart.size() - 1;
        unsigned W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Result.ComponentOf[W] = Comp;
          Result.Order.push_back(W);
        } while (W != V);
        Result.CompStart.push_back(Result.Order.size());
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        unsigned Parent = CallStack.back().Node;
        if (LowLink[V] < LowLink[Parent])
          LowLink[Parent] = LowLink[V];
      }
    }
  }

  assert(Stack.empty() && "Tarjan stack should be empty at the end");
  return Result;
}

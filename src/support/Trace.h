//===- support/Trace.h - Chrome-trace-event recording -----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide tracer recording hierarchical phase spans and point events
/// in the Chrome trace-event format, loadable in chrome://tracing and
/// Perfetto (https://ui.perfetto.dev). The paper's whole evaluation (Table 2,
/// Figure 6) is about *measuring* inference; this is the measuring device:
/// every pipeline layer (cfront, lambda, constinf, qual, gen) opens
/// TraceScope spans around its phases, and the CLI tools dump the result via
/// --trace-out=<file>.
///
/// Design constraints:
///
/// \li **Near-zero cost when disabled.** The enabled flag is a process-wide
///     relaxed atomic; a disabled TraceScope is one load in the constructor
///     and one branch in the destructor -- no clock reads, no locking, no
///     allocation. Instrumentation may therefore stay in release builds.
/// \li **Thread-safe.** Events append under a mutex (span granularity is
///     phases, not per-token work, so contention is irrelevant); thread ids
///     are mapped to small dense integers in first-use order so traces are
///     stable across runs.
/// \li **Monotonic timestamps.** All times are microseconds on
///     steady_clock relative to a fixed process epoch, so events serialize
///     in plausible, strictly non-decreasing begin order.
///
/// Span/metric naming conventions live in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_TRACE_H
#define QUALS_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace quals {

/// One recorded trace event (complete span or instant).
struct TraceEvent {
  std::string Name;     ///< Event name (span or instant label).
  std::string Category; ///< Module: "cfront", "lambda", "constinf", ...
  char Phase;           ///< 'X' complete span, 'i' instant.
  uint64_t StartUs;     ///< Microseconds since the tracer epoch.
  uint64_t DurUs;       ///< Span duration ('X' only; 0 for instants).
  uint32_t Tid;         ///< Dense thread id (0 = first recording thread).
  std::string Args;     ///< Pre-serialized JSON object body ("" = none).
};

/// The process-wide trace-event recorder. All members are thread-safe.
class Tracer {
public:
  /// The process-wide instance.
  static Tracer &instance();

  /// True when recording; checked inline by every instrumentation site.
  static bool isEnabled() { return Enabled.load(std::memory_order_relaxed); }

  /// Turns recording on or off (existing events are kept).
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Drops all recorded events (recording state is unchanged).
  void clear();

  /// Microseconds since the tracer epoch (monotonic).
  static uint64_t nowMicros();

  /// Records a complete span ('X'). \p ArgsJson, when non-empty, must be the
  /// body of a JSON object, e.g. "\"tokens\":42".
  void recordComplete(std::string Name, std::string Category,
                      uint64_t StartUs, uint64_t DurUs,
                      std::string ArgsJson = {});

  /// Records an instant event ('i') at the current time.
  void recordInstant(std::string Name, std::string Category,
                     std::string ArgsJson = {});

  /// Number of events recorded so far.
  size_t eventCount() const;

  /// Copy of the recorded events (tests; ordering is recording order).
  std::vector<TraceEvent> snapshot() const;

  /// Serializes every event as a Chrome trace-event JSON document
  /// ({"traceEvents": [...], ...}), sorted by start time.
  std::string toChromeJson() const;

  /// Writes toChromeJson() to \p Path; false if the file cannot be written.
  bool writeChromeJson(const std::string &Path) const;

private:
  Tracer() = default;

  static std::atomic<bool> Enabled;

  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  /// Thread-id registration order; index = dense tid.
  std::vector<uint64_t> ThreadIds;

  uint32_t denseTidLocked(uint64_t ThreadHash);
};

/// RAII span: records one complete event on the process tracer covering the
/// scope's lifetime. When tracing is disabled at construction the scope is
/// inert (the destructor re-checks nothing and records nothing).
class TraceScope {
public:
  explicit TraceScope(std::string Name, std::string Category = "quals")
      : Active(Tracer::isEnabled()) {
    if (Active) {
      this->Name = std::move(Name);
      this->Category = std::move(Category);
      StartUs = Tracer::nowMicros();
    }
  }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  /// Attaches a JSON object body (e.g. "\"tokens\":42") to the span.
  void setArgs(std::string ArgsJson) {
    if (Active)
      Args = std::move(ArgsJson);
  }

  ~TraceScope() {
    if (Active)
      Tracer::instance().recordComplete(std::move(Name), std::move(Category),
                                        StartUs,
                                        Tracer::nowMicros() - StartUs,
                                        std::move(Args));
  }

private:
  bool Active;
  std::string Name;
  std::string Category;
  std::string Args;
  uint64_t StartUs = 0;
};

/// Records an instant event when tracing is enabled; no-op otherwise.
inline void traceInstant(std::string Name, std::string Category = "quals",
                         std::string ArgsJson = {}) {
  if (Tracer::isEnabled())
    Tracer::instance().recordInstant(std::move(Name), std::move(Category),
                                     std::move(ArgsJson));
}

/// Escapes \p S for inclusion in a JSON string literal (quotes not added).
std::string jsonEscape(const std::string &S);

} // namespace quals

#endif // QUALS_SUPPORT_TRACE_H

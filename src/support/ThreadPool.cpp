//===- support/ThreadPool.cpp - Fixed-size worker thread pool -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>

using namespace quals;

unsigned ThreadPool::defaultWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = 1;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  // Workers drain the remaining queue before exiting (graceful shutdown).
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // A task that was enqueued while the workers were already exiting -- for
  // example by a task still running during the shutdown race -- can land in
  // the queue after every worker observed it empty. enqueue() promises the
  // task will run, so drain the leftovers inline. Tasks these tasks enqueue
  // are picked up by the same loop; no lock is held while running them.
  for (;;) {
    std::function<void()> Task;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Queue.empty())
        break;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkCv.wait(Lock, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty())
        return; // Stop was set and nothing is left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Running;
      if (Queue.empty() && Running == 0)
        IdleCv.notify_all();
    }
  }
}

void ThreadPool::parallelForEach(size_t Count,
                                 const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  // Pump tasks pull indices from a shared counter so a slow index never
  // idles the other workers; completion is tracked independently of the
  // pool-wide queue so concurrent enqueue() traffic cannot wake us early.
  struct SharedState {
    std::atomic<size_t> Next{0};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    unsigned LivePumps;
  };
  auto State = std::make_shared<SharedState>();
  unsigned Pumps = static_cast<unsigned>(
      std::min<size_t>(numWorkers(), Count));
  State->LivePumps = Pumps;
  for (unsigned I = 0; I != Pumps; ++I)
    enqueue([State, Count, &Body] {
      for (size_t Idx;
           (Idx = State->Next.fetch_add(1, std::memory_order_relaxed)) <
           Count;)
        Body(Idx);
      std::lock_guard<std::mutex> Lock(State->DoneMutex);
      if (--State->LivePumps == 0)
        State->DoneCv.notify_all();
    });
  std::unique_lock<std::mutex> Lock(State->DoneMutex);
  State->DoneCv.wait(Lock, [&State] { return State->LivePumps == 0; });
}

void ThreadPool::parallelForEach(
    size_t Count, size_t Grain,
    const std::function<void(size_t, size_t)> &Chunk) {
  if (Count == 0)
    return;
  if (Grain == 0)
    Grain = 1;
  const size_t NumChunks = (Count + Grain - 1) / Grain;
  struct SharedState {
    std::atomic<size_t> NextChunk{0};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    unsigned LivePumps;
  };
  auto State = std::make_shared<SharedState>();
  // Each pump drains chunks from the shared counter until none are left;
  // enqueueing at most numWorkers() pumps keeps a fleet of tiny chunks
  // from drowning the pool queue.
  auto Pump = [State, Count, Grain, NumChunks, &Chunk] {
    for (size_t C;
         (C = State->NextChunk.fetch_add(1, std::memory_order_relaxed)) <
         NumChunks;)
      Chunk(C * Grain, std::min(Count, (C + 1) * Grain));
  };
  unsigned Pumps =
      static_cast<unsigned>(std::min<size_t>(numWorkers(), NumChunks));
  State->LivePumps = Pumps;
  for (unsigned I = 0; I != Pumps; ++I)
    enqueue([State, Pump] {
      Pump();
      std::lock_guard<std::mutex> Lock(State->DoneMutex);
      if (--State->LivePumps == 0)
        State->DoneCv.notify_all();
    });
  // Caller participation: pull chunks on this thread too. If the workers
  // are saturated (or this call itself runs on a pool worker), the caller
  // completes the whole range alone and the pumps exit immediately once
  // scheduled -- no deadlock, no idle caller.
  Pump();
  std::unique_lock<std::mutex> Lock(State->DoneMutex);
  State->DoneCv.wait(Lock, [&State] { return State->LivePumps == 0; });
}

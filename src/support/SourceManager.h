//===- support/SourceManager.h - Buffer & line/column mapping --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns source buffers and maps SourceLocs back to (file, line, column).
/// Buffers occupy disjoint offset ranges in a single global offset space so a
/// bare 32-bit SourceLoc identifies both the buffer and the position.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_SOURCEMANAGER_H
#define QUALS_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace quals {

/// Human-readable position of a SourceLoc.
struct PresumedLoc {
  std::string_view Filename;
  unsigned Line = 0;   ///< 1-based.
  unsigned Column = 0; ///< 1-based.
  bool isValid() const { return Line != 0; }
};

/// Owns the text of every file handed to the front ends.
class SourceManager {
public:
  SourceManager();

  /// Registers \p Text under \p Filename; returns the buffer id.
  unsigned addBuffer(std::string Filename, std::string Text);

  /// Number of registered buffers.
  unsigned getNumBuffers() const { return Buffers.size(); }

  /// Full text of buffer \p Id.
  std::string_view getBufferText(unsigned Id) const;

  /// Filename of buffer \p Id.
  std::string_view getBufferName(unsigned Id) const;

  /// The location of the first character of buffer \p Id.
  SourceLoc getBufferStart(unsigned Id) const;

  /// The location for offset \p Off within buffer \p Id.
  SourceLoc getLocForOffset(unsigned Id, size_t Off) const;

  /// Maps a location back to (file, line, column); invalid for SourceLoc().
  PresumedLoc getPresumedLoc(SourceLoc Loc) const;

  /// Returns the full line of text containing \p Loc (without newline).
  std::string_view getLineText(SourceLoc Loc) const;

private:
  struct Buffer {
    std::string Filename;
    std::string Text;
    uint32_t StartOffset; ///< Global offset of Text[0].
    std::vector<uint32_t> LineOffsets; ///< Buffer-local offsets of line starts.
  };

  std::vector<Buffer> Buffers;
  uint32_t NextOffset = 1; // 0 is reserved for the invalid location.

  const Buffer *findBuffer(SourceLoc Loc) const;
};

} // namespace quals

#endif // QUALS_SUPPORT_SOURCEMANAGER_H

//===- support/ThreadPool.h - Fixed-size worker thread pool -----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of worker threads behind a FIFO work queue, the engine
/// of the batch-analysis layer (tools/BatchDriver.h): the paper's evaluation
/// runs const inference over whole benchmark corpora, and corpus throughput
/// comes from analyzing many translation units concurrently, one fully
/// isolated per-file context per task.
///
/// Design constraints:
///
/// \li **Tasks do not throw.** The analysis pipelines report failure through
///     diagnostics and exit codes, never exceptions, so the pool neither
///     catches nor propagates them; a throwing task terminates the process
///     (same as exceptions-off builds).
/// \li **FIFO dispatch.** Workers pick tasks strictly in enqueue order, so a
///     single-worker pool executes tasks exactly in submission order (the
///     determinism tests rely on this).
/// \li **Graceful shutdown.** The destructor finishes every task already
///     enqueued, then joins the workers; work is never silently dropped.
/// \li **Shared-state contract.** A task may touch process-wide state only
///     through the thread-safe observability singletons (support/Trace.h,
///     support/Metrics.h, BumpPtrAllocator's byte counters); everything else
///     it uses must be confined to the task. docs/PARALLEL.md spells out the
///     full shared-vs-per-worker inventory.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_THREADPOOL_H
#define QUALS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace quals {

/// A fixed-size worker pool; see the file comment.
class ThreadPool {
public:
  /// Spawns \p NumWorkers threads (at least one).
  explicit ThreadPool(unsigned NumWorkers);

  /// Finishes every enqueued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Appends \p Task to the queue; some worker will run it.
  void enqueue(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is running.
  void wait();

  /// Runs Body(0) .. Body(Count-1) on the workers and blocks until all
  /// calls returned. Indices are handed out in increasing order but run
  /// concurrently; Body must tolerate any interleaving across indices.
  /// Independent of other enqueue() traffic (separate completion tracking).
  void parallelForEach(size_t Count, const std::function<void(size_t)> &Body);

  /// Chunked variant for fleets of tiny items (e.g. thousands of
  /// single-node solver shards): hands out half-open ranges of about
  /// \p Grain indices, so the queue sees at most numWorkers() pump tasks
  /// instead of one task per item. Chunk(Begin, End) calls collectively
  /// cover [0, Count) exactly once; chunks run concurrently in increasing
  /// order of their start index. The calling thread participates in the
  /// work (it pulls chunks too), which both keeps a 1-worker machine
  /// productive and makes the call safe from inside a task of this same
  /// pool: the caller can never block waiting on workers that are all busy
  /// behind it. Blocks until every chunk returned.
  void parallelForEach(size_t Count, size_t Grain,
                       const std::function<void(size_t, size_t)> &Chunk);

  unsigned numWorkers() const { return Workers.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static unsigned defaultWorkers();

private:
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkCv;  ///< Signals workers: task ready or stop.
  std::condition_variable IdleCv;  ///< Signals wait(): pool went idle.
  std::deque<std::function<void()>> Queue;
  unsigned Running = 0; ///< Tasks currently executing.
  bool Stop = false;    ///< Set once by the destructor.

  void workerLoop();
};

} // namespace quals

#endif // QUALS_SUPPORT_THREADPOOL_H

//===- support/Casting.h - Kind-tag based casting utilities ----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight LLVM-style RTTI replacement. Class hierarchies opt in by
/// providing a static `classof(const Base *)` predicate, typically backed by
/// an explicit Kind enumerator. No vtables or compiler RTTI are required.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_CASTING_H
#define QUALS_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace quals {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible kind");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible kind");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null argument (returns null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Like dyn_cast_or_null<>, const overload.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace quals

#endif // QUALS_SUPPORT_CASTING_H

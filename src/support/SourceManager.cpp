//===- support/SourceManager.cpp - Buffer & line/column mapping ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace quals;

SourceManager::SourceManager() = default;

unsigned SourceManager::addBuffer(std::string Filename, std::string Text) {
  Buffer B;
  B.Filename = std::move(Filename);
  B.Text = std::move(Text);
  B.StartOffset = NextOffset;
  B.LineOffsets.push_back(0);
  for (size_t I = 0, E = B.Text.size(); I != E; ++I)
    if (B.Text[I] == '\n')
      B.LineOffsets.push_back(I + 1);
  NextOffset += B.Text.size() + 1; // +1 so even empty buffers are disjoint.
  Buffers.push_back(std::move(B));
  return Buffers.size() - 1;
}

std::string_view SourceManager::getBufferText(unsigned Id) const {
  assert(Id < Buffers.size() && "buffer id out of range");
  return Buffers[Id].Text;
}

std::string_view SourceManager::getBufferName(unsigned Id) const {
  assert(Id < Buffers.size() && "buffer id out of range");
  return Buffers[Id].Filename;
}

SourceLoc SourceManager::getBufferStart(unsigned Id) const {
  assert(Id < Buffers.size() && "buffer id out of range");
  return SourceLoc(Buffers[Id].StartOffset);
}

SourceLoc SourceManager::getLocForOffset(unsigned Id, size_t Off) const {
  assert(Id < Buffers.size() && "buffer id out of range");
  assert(Off <= Buffers[Id].Text.size() && "offset past end of buffer");
  return SourceLoc(Buffers[Id].StartOffset + Off);
}

const SourceManager::Buffer *SourceManager::findBuffer(SourceLoc Loc) const {
  if (!Loc.isValid())
    return nullptr;
  uint32_t Off = Loc.getOffset();
  // Buffers are sorted by StartOffset; find the last buffer starting at or
  // before Off.
  auto It = std::upper_bound(
      Buffers.begin(), Buffers.end(), Off,
      [](uint32_t O, const Buffer &B) { return O < B.StartOffset; });
  if (It == Buffers.begin())
    return nullptr;
  --It;
  if (Off > It->StartOffset + It->Text.size())
    return nullptr;
  return &*It;
}

PresumedLoc SourceManager::getPresumedLoc(SourceLoc Loc) const {
  PresumedLoc P;
  const Buffer *B = findBuffer(Loc);
  if (!B)
    return P;
  uint32_t Local = Loc.getOffset() - B->StartOffset;
  auto It = std::upper_bound(B->LineOffsets.begin(), B->LineOffsets.end(),
                             Local);
  unsigned Line = It - B->LineOffsets.begin(); // 1-based already.
  P.Filename = B->Filename;
  P.Line = Line;
  P.Column = Local - B->LineOffsets[Line - 1] + 1;
  return P;
}

std::string_view SourceManager::getLineText(SourceLoc Loc) const {
  const Buffer *B = findBuffer(Loc);
  if (!B)
    return {};
  uint32_t Local = Loc.getOffset() - B->StartOffset;
  auto It =
      std::upper_bound(B->LineOffsets.begin(), B->LineOffsets.end(), Local);
  unsigned Line = It - B->LineOffsets.begin();
  uint32_t Begin = B->LineOffsets[Line - 1];
  uint32_t End = Line < B->LineOffsets.size() ? B->LineOffsets[Line] - 1
                                              : B->Text.size();
  return std::string_view(B->Text).substr(Begin, End - Begin);
}

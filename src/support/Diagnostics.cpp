//===- support/Diagnostics.cpp - Diagnostic collection -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/Allocator.h"
#include "support/SourceManager.h"

using namespace quals;

DiagnosticEngine::DiagnosticEngine(const SourceManager &SM, Limits L)
    : SM(SM), Lim(L),
      ArenaBaseline(BumpPtrAllocator::threadBytesAllocated()) {}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  ++NumErrors;
  // After a bailout only the count advances: recording millions of
  // diagnostics is exactly the resource exhaustion the cap exists to stop.
  if (Bailout)
    return;
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  if (Lim.MaxErrors && NumErrors >= Lim.MaxErrors)
    fatal(Loc, "resource limit: too many errors emitted (" +
                   std::to_string(Lim.MaxErrors) +
                   "); stopping analysis (raise with --limit-errors=N, 0 "
                   "for unlimited)");
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  if (Bailout)
    return;
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  if (Bailout)
    return;
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::fatal(SourceLoc Loc, std::string Message) {
  ++NumErrors;
  if (Bailout)
    return; // Only the first fatal condition is recorded.
  Bailout = true;
  Diags.push_back({DiagKind::Fatal, Loc, std::move(Message)});
}

bool DiagnosticEngine::enterRecursion(SourceLoc Loc) {
  ++Depth;
  if (Bailout)
    return false;
  if (Lim.MaxRecursionDepth && Depth > Lim.MaxRecursionDepth) {
    fatal(Loc, "resource limit: nesting too deep (limit " +
                   std::to_string(Lim.MaxRecursionDepth) +
                   "; raise with --limit-depth=N, 0 for unlimited)");
    return false;
  }
  return true;
}

bool DiagnosticEngine::checkResources(SourceLoc Loc) {
  if (Bailout)
    return false;
  if (Lim.MaxArenaBytes &&
      BumpPtrAllocator::threadBytesAllocated() - ArenaBaseline >
          Lim.MaxArenaBytes) {
    fatal(Loc, "resource limit: analysis exceeded " +
                   std::to_string(Lim.MaxArenaBytes) +
                   " arena bytes (raise with --limit-arena-mb=N, 0 for "
                   "unlimited)");
    return false;
  }
  return true;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  Depth = 0;
  Bailout = false;
  ArenaBaseline = BumpPtrAllocator::threadBytesAllocated();
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    PresumedLoc P = SM.getPresumedLoc(D.Loc);
    if (P.isValid()) {
      Out += P.Filename;
      Out += ':';
      Out += std::to_string(P.Line);
      Out += ':';
      Out += std::to_string(P.Column);
      Out += ": ";
    }
    switch (D.Kind) {
    case DiagKind::Error:
      Out += "error: ";
      break;
    case DiagKind::Warning:
      Out += "warning: ";
      break;
    case DiagKind::Note:
      Out += "note: ";
      break;
    case DiagKind::Fatal:
      Out += "fatal: ";
      break;
    }
    Out += D.Message;
    Out += '\n';
    if (P.isValid()) {
      Out += SM.getLineText(D.Loc);
      Out += '\n';
      for (unsigned I = 1; I < P.Column; ++I)
        Out += ' ';
      Out += "^\n";
    }
  }
  return Out;
}

//===- support/Diagnostics.cpp - Diagnostic collection -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"

using namespace quals;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    PresumedLoc P = SM.getPresumedLoc(D.Loc);
    if (P.isValid()) {
      Out += P.Filename;
      Out += ':';
      Out += std::to_string(P.Line);
      Out += ':';
      Out += std::to_string(P.Column);
      Out += ": ";
    }
    switch (D.Kind) {
    case DiagKind::Error:
      Out += "error: ";
      break;
    case DiagKind::Warning:
      Out += "warning: ";
      break;
    case DiagKind::Note:
      Out += "note: ";
      break;
    }
    Out += D.Message;
    Out += '\n';
    if (P.isValid()) {
      Out += SM.getLineText(D.Loc);
      Out += '\n';
      for (unsigned I = 1; I < P.Column; ++I)
        Out += ' ';
      Out += "^\n";
    }
  }
  return Out;
}

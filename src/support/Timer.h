//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used by the benchmark harnesses (Table 2 reports
/// compile/mono/poly times averaged over five runs).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_TIMER_H
#define QUALS_SUPPORT_TIMER_H

#include <chrono>

namespace quals {

/// Monotonic stopwatch with pause/resume accumulation; starts running on
/// construction. stop()/resume() let a phase timer exclude nested callee
/// phases: stop before calling into the nested phase, resume after, and
/// seconds() reports only the accumulated self time.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch: zeroes the accumulated time and runs.
  void reset() {
    Accumulated = 0;
    Running = true;
    Start = Clock::now();
  }

  /// Pauses: banks the running segment. No-op if already stopped.
  void stop() {
    if (!Running)
      return;
    Accumulated +=
        std::chrono::duration<double>(Clock::now() - Start).count();
    Running = false;
  }

  /// Continues accumulating after a stop(). No-op if already running.
  void resume() {
    if (Running)
      return;
    Running = true;
    Start = Clock::now();
  }

  /// True between construction/reset()/resume() and the next stop().
  bool isRunning() const { return Running; }

  /// Accumulated seconds: every completed run segment plus the live one.
  double seconds() const {
    double S = Accumulated;
    if (Running)
      S += std::chrono::duration<double>(Clock::now() - Start).count();
    return S;
  }

  /// Milliseconds elapsed.
  double milliseconds() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
  double Accumulated = 0;
  bool Running = true;
};

} // namespace quals

#endif // QUALS_SUPPORT_TIMER_H

//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used by the benchmark harnesses (Table 2 reports
/// compile/mono/poly times averaged over five runs).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_TIMER_H
#define QUALS_SUPPORT_TIMER_H

#include <chrono>

namespace quals {

/// Simple monotonic stopwatch; starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed.
  double milliseconds() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace quals

#endif // QUALS_SUPPORT_TIMER_H

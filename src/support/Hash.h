//===- support/Hash.h - Stable 64-bit content hashing ----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable, seedless 64-bit hash for content addressing. The analysis
/// server (src/serve) keys its result cache by (source content hash,
/// analysis config hash); those keys are persisted to disk by the spill
/// layer and must therefore be identical across processes, runs, and
/// platforms -- which rules out std::hash (unspecified, may be salted).
///
/// The byte hash is FNV-1a with a murmur-style avalanche finalizer: FNV-1a
/// walks the input as a byte stream (endian-independent), and the finalizer
/// fixes FNV's weak high-bit diffusion so truncations of the digest are
/// usable too. This is a content fingerprint, not a cryptographic hash:
/// collisions are astronomically unlikely by accident but constructible on
/// purpose, which is fine for a cache that only ever serves back the
/// requester's own analysis results (docs/SERVER.md discusses the threat
/// model).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_HASH_H
#define QUALS_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace quals {

/// Finalizer from MurmurHash3 (fmix64): full avalanche, so every input bit
/// affects every output bit.
inline uint64_t hashMix(uint64_t H) {
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ULL;
  H ^= H >> 33;
  return H;
}

/// Hashes \p Size bytes starting at \p Data. Stable across runs, processes,
/// and platforms; never returns 0 (0 is a convenient "no hash" sentinel).
inline uint64_t hashBytes(const void *Data, size_t Size) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL; // FNV offset basis
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL; // FNV prime
  }
  H = hashMix(H ^ Size);
  return H ? H : 1;
}

/// Hashes a string's bytes (not including any terminator).
inline uint64_t hashString(std::string_view S) {
  return hashBytes(S.data(), S.size());
}

/// Order-dependent combination of two digests: combine(a, b) != combine(b, a).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// Incremental byte hashing with a chunk-split-invariant digest: feeding
/// the same byte sequence through any sequence of update() calls yields the
/// digest hashBytes() would produce over the concatenation. The link
/// layer's summary content addresses are built this way (a .qsum streamed
/// from disk in reads of any size must key identically to one hashed in a
/// single buffer); HashBuilder::addBytes() does NOT have this property --
/// it digests each chunk separately and combines the digests, so the chunk
/// boundaries are part of its result.
class StreamHasher {
public:
  StreamHasher &update(const void *Data, size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Size; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ULL; // FNV prime
    }
    Count += Size;
    return *this;
  }
  StreamHasher &update(std::string_view S) {
    return update(S.data(), S.size());
  }

  /// Total bytes fed so far.
  uint64_t size() const { return Count; }

  /// Digest of every byte fed so far: equals hashBytes(concatenation).
  /// Never 0; may be called at any point (it does not consume state).
  uint64_t digest() const {
    uint64_t D = hashMix(H ^ Count);
    return D ? D : 1;
  }

private:
  uint64_t H = 0xcbf29ce484222325ULL; // FNV offset basis
  uint64_t Count = 0;
};

/// Accumulates heterogeneous fields into one digest; the serve layer builds
/// its cache-config hash this way. Field order matters (by design: the hash
/// describes a specific tuple, not a set).
class HashBuilder {
public:
  HashBuilder &add(uint64_t V) {
    H = hashCombine(H, hashMix(V));
    return *this;
  }
  HashBuilder &add(bool V) { return add(static_cast<uint64_t>(V)); }
  HashBuilder &add(std::string_view S) { return add(hashString(S)); }
  HashBuilder &addBytes(const void *Data, size_t Size) {
    return add(hashBytes(Data, Size));
  }

  /// The digest of everything added so far; never 0.
  uint64_t digest() const { return H ? H : 1; }

private:
  uint64_t H = 0x9ae16a3b2f90404fULL;
};

} // namespace quals

#endif // QUALS_SUPPORT_HASH_H

//===- support/Allocator.h - Bump-pointer arena allocation -----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena. AST nodes, type shapes, and constraint objects are
/// allocated here and live for the duration of the owning analysis.
/// create() registers a deferred destructor for types that are not
/// trivially destructible (nodes holding std::vector members and the
/// like), run in reverse order when the arena dies -- so long-lived batch
/// processes reclaim node-owned heap memory with every analysis context,
/// not just the slabs. Raw allocate()/copyArray() memory never runs
/// destructors; keep it trivial.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_ALLOCATOR_H
#define QUALS_SUPPORT_ALLOCATOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace quals {

/// A simple bump-pointer allocator backed by geometrically growing slabs.
class BumpPtrAllocator {
public:
  BumpPtrAllocator() = default;
  BumpPtrAllocator(const BumpPtrAllocator &) = delete;
  BumpPtrAllocator &operator=(const BumpPtrAllocator &) = delete;
  BumpPtrAllocator(BumpPtrAllocator &&) = default;
  BumpPtrAllocator &operator=(BumpPtrAllocator &&) = default;

  ~BumpPtrAllocator() {
    // Reverse construction order, mirroring stack unwinding.
    for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
      It->Destroy(It->Obj);
  }

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align);

  /// Allocates and default-constructs a \p T with constructor args. When T
  /// is not trivially destructible its destructor is deferred to the
  /// arena's death (see the file comment).
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(CtorArgs)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Copies \p Count objects of trivially-copyable \p T into the arena and
  /// returns a pointer to the copy (null when \p Count is zero).
  template <typename T> T *copyArray(const T *Src, size_t Count) {
    if (Count == 0)
      return nullptr;
    T *Mem = static_cast<T *>(allocate(sizeof(T) * Count, alignof(T)));
    for (size_t I = 0; I != Count; ++I)
      new (Mem + I) T(Src[I]);
    return Mem;
  }

  /// Total bytes handed out so far (diagnostic/statistics use).
  size_t bytesAllocated() const { return BytesAllocated; }

  /// Bytes handed out by *every* arena in the process since startup. A
  /// relaxed atomic add per allocate() call -- negligible next to the slab
  /// work it accounts for.
  static uint64_t totalBytesAllocated() {
    return TotalBytes.load(std::memory_order_relaxed);
  }

  /// Bytes handed out by arenas on the *calling thread* since it started;
  /// the observability layer (support/Metrics.h PhaseScope) snapshots this
  /// at phase boundaries to attribute arena growth to pipeline phases.
  /// Thread-local so concurrent batch workers (support/ThreadPool.h) never
  /// bill their allocations to another worker's open phase -- each
  /// analysis context is confined to one task, so its allocations all land
  /// on the counter of the thread running that task.
  static uint64_t threadBytesAllocated() { return ThreadBytes; }

private:
  static constexpr size_t SlabSize = 64 * 1024;

  static std::atomic<uint64_t> TotalBytes;
  static thread_local uint64_t ThreadBytes;

  /// A deferred destructor for one non-trivially-destructible node.
  struct DtorEntry {
    void *Obj;
    void (*Destroy)(void *);
  };

  std::vector<DtorEntry> Dtors;
  std::vector<std::unique_ptr<char[]>> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;

  void startNewSlab(size_t MinSize);
};

} // namespace quals

#endif // QUALS_SUPPORT_ALLOCATOR_H

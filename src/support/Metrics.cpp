//===- support/Metrics.cpp - Named counter/gauge/timer registry -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Allocator.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace quals;

std::atomic<bool> MetricsRegistry::Collecting{false};

uint64_t Histogram::quantile(double P) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  if (P < 0.0)
    P = 0.0;
  if (P > 1.0)
    P = 1.0;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(P * static_cast<double>(Total)));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Cumulative = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cumulative += bucketCount(I);
    if (Cumulative >= Rank) {
      uint64_t Lo = bucketLo(I);
      uint64_t Hi = bucketHi(I);
      // Exact buckets (width 1) return the value itself; log buckets the
      // midpoint, clamped into the recorded range.
      uint64_t Estimate = Lo + (Hi - 1 - Lo) / 2;
      return std::min(Estimate, max());
    }
  }
  // Buckets momentarily trail the total under concurrent recording.
  return max();
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

TimerMetric &MetricsRegistry::timer(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<TimerMetric> &Slot = Timers[Name];
  if (!Slot)
    Slot = std::make_unique<TimerMetric>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.empty() && Gauges.empty() && Histograms.empty() &&
         Timers.empty();
}

void MetricsRegistry::resetValues() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &KV : Counters)
    KV.second->reset();
  for (auto &KV : Gauges)
    KV.second->reset();
  for (auto &KV : Histograms)
    KV.second->reset();
  for (auto &KV : Timers)
    KV.second->reset();
}

std::string MetricsRegistry::renderTable() const {
  // One merged, name-sorted listing: kind column disambiguates same-named
  // metrics of different kinds.
  struct Row {
    std::string Name, Kind, Value;
  };
  std::vector<Row> Rows;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &KV : Counters)
      Rows.push_back({KV.first, "counter",
                      std::to_string(KV.second->value())});
    for (const auto &KV : Gauges)
      Rows.push_back({KV.first, "gauge",
                      std::to_string(KV.second->value())});
    for (const auto &KV : Histograms) {
      const Histogram &H = *KV.second;
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "p50=%llu p90=%llu p99=%llu max=%llu (n=%llu)",
                    static_cast<unsigned long long>(H.quantile(0.50)),
                    static_cast<unsigned long long>(H.quantile(0.90)),
                    static_cast<unsigned long long>(H.quantile(0.99)),
                    static_cast<unsigned long long>(H.max()),
                    static_cast<unsigned long long>(H.count()));
      Rows.push_back({KV.first, "histogram", Buf});
    }
    for (const auto &KV : Timers) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.3f ms (x%llu)",
                    KV.second->seconds() * 1000.0,
                    static_cast<unsigned long long>(KV.second->count()));
      Rows.push_back({KV.first, "timer", Buf});
    }
  }
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const Row &A, const Row &B) { return A.Name < B.Name; });
  TextTable T;
  T.addColumn("Metric");
  T.addColumn("Kind");
  T.addColumn("Value", Align::Right);
  for (const Row &R : Rows)
    T.addRow({R.Name, R.Kind, R.Value});
  return T.render();
}

static void appendHistogramJson(std::string &Out, const Histogram &H) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", H.mean());
  Out += "{\"count\":" + std::to_string(H.count()) +
         ",\"sum\":" + std::to_string(H.sum()) +
         ",\"min\":" + std::to_string(H.min()) +
         ",\"max\":" + std::to_string(H.max()) + ",\"mean\":" + Buf +
         ",\"p50\":" + std::to_string(H.quantile(0.50)) +
         ",\"p90\":" + std::to_string(H.quantile(0.90)) +
         ",\"p99\":" + std::to_string(H.quantile(0.99)) + ",\"buckets\":[";
  bool First = true;
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
    uint64_t C = H.bucketCount(I);
    if (!C)
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += '[' + std::to_string(Histogram::bucketLo(I)) + ',' +
           std::to_string(Histogram::bucketHi(I)) + ',' + std::to_string(C) +
           ']';
  }
  Out += "]}";
}

std::string MetricsRegistry::renderJson(bool Compact) const {
  // Compact mode collapses the document to one newline-free line so it can
  // be embedded in an NDJSON response; the section order and every value
  // byte are identical either way.
  const char *Entry = Compact ? "" : "\n  ";
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &KV : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += Entry;
    Out += '"' + jsonEscape(KV.first) +
           "\":" + std::to_string(KV.second->value());
  }
  Out += Compact ? "},\"gauges\":{" : "},\n\"gauges\":{";
  First = true;
  for (const auto &KV : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += Entry;
    Out += '"' + jsonEscape(KV.first) +
           "\":" + std::to_string(KV.second->value());
  }
  Out += Compact ? "},\"histograms\":{" : "},\n\"histograms\":{";
  First = true;
  for (const auto &KV : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += Entry;
    Out += '"' + jsonEscape(KV.first) + "\":";
    appendHistogramJson(Out, *KV.second);
  }
  Out += Compact ? "},\"timers\":{" : "},\n\"timers\":{";
  First = true;
  for (const auto &KV : Timers) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", KV.second->seconds());
    if (!First)
      Out += ',';
    First = false;
    Out += Entry;
    Out += '"' + jsonEscape(KV.first) + "\":{\"seconds\":" + Buf +
           ",\"count\":" + std::to_string(KV.second->count()) + "}";
  }
  Out += Compact ? "}}" : "}}\n";
  return Out;
}

static thread_local PhaseCapture *CurrentCapture = nullptr;

PhaseCapture::PhaseCapture() : Prev(CurrentCapture) { CurrentCapture = this; }

PhaseCapture::~PhaseCapture() { CurrentCapture = Prev; }

PhaseCapture *PhaseCapture::current() { return CurrentCapture; }

PhaseScope::PhaseScope(const char *Name, const char *Category)
    : Span(Name, Category), Name(Name),
      Collect(MetricsRegistry::collecting()), Capture(PhaseCapture::current()) {
  if (Collect || Capture)
    StartUs = Tracer::nowMicros();
  if (Collect) {
    // Thread-local, not process-wide: a concurrent batch worker's
    // allocations must not be billed to this thread's open phase.
    StartArenaBytes = BumpPtrAllocator::threadBytesAllocated();
  }
}

PhaseScope::~PhaseScope() {
  if (Capture)
    Capture->add(Name, Tracer::nowMicros() - StartUs);
  if (!Collect)
    return;
  MetricsRegistry &R = MetricsRegistry::global();
  std::string Base = "phase.";
  Base += Name;
  R.timer(Base).addSeconds((Tracer::nowMicros() - StartUs) * 1e-6);
  R.gauge(Base + ".arena_bytes")
      .add(static_cast<int64_t>(BumpPtrAllocator::threadBytesAllocated() -
                                StartArenaBytes));
}

//===- support/Metrics.cpp - Named counter/gauge/timer registry -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Allocator.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace quals;

std::atomic<bool> MetricsRegistry::Collecting{false};

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

TimerMetric &MetricsRegistry::timer(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<TimerMetric> &Slot = Timers[Name];
  if (!Slot)
    Slot = std::make_unique<TimerMetric>();
  return *Slot;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.empty() && Gauges.empty() && Timers.empty();
}

void MetricsRegistry::resetValues() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &KV : Counters)
    KV.second->reset();
  for (auto &KV : Gauges)
    KV.second->reset();
  for (auto &KV : Timers)
    KV.second->reset();
}

std::string MetricsRegistry::renderTable() const {
  // One merged, name-sorted listing: kind column disambiguates same-named
  // metrics of different kinds.
  struct Row {
    std::string Name, Kind, Value;
  };
  std::vector<Row> Rows;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &KV : Counters)
      Rows.push_back({KV.first, "counter",
                      std::to_string(KV.second->value())});
    for (const auto &KV : Gauges)
      Rows.push_back({KV.first, "gauge",
                      std::to_string(KV.second->value())});
    for (const auto &KV : Timers) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.3f ms (x%llu)",
                    KV.second->seconds() * 1000.0,
                    static_cast<unsigned long long>(KV.second->count()));
      Rows.push_back({KV.first, "timer", Buf});
    }
  }
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const Row &A, const Row &B) { return A.Name < B.Name; });
  TextTable T;
  T.addColumn("Metric");
  T.addColumn("Kind");
  T.addColumn("Value", Align::Right);
  for (const Row &R : Rows)
    T.addRow({R.Name, R.Kind, R.Value});
  return T.render();
}

std::string MetricsRegistry::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &KV : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += "\n  \"" + jsonEscape(KV.first) +
           "\":" + std::to_string(KV.second->value());
  }
  Out += "},\n\"gauges\":{";
  First = true;
  for (const auto &KV : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += "\n  \"" + jsonEscape(KV.first) +
           "\":" + std::to_string(KV.second->value());
  }
  Out += "},\n\"timers\":{";
  First = true;
  for (const auto &KV : Timers) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", KV.second->seconds());
    if (!First)
      Out += ',';
    First = false;
    Out += "\n  \"" + jsonEscape(KV.first) + "\":{\"seconds\":" + Buf +
           ",\"count\":" + std::to_string(KV.second->count()) + "}";
  }
  Out += "}}\n";
  return Out;
}

PhaseScope::PhaseScope(const char *Name, const char *Category)
    : Span(Name, Category), Name(Name),
      Collect(MetricsRegistry::collecting()) {
  if (Collect) {
    StartUs = Tracer::nowMicros();
    // Thread-local, not process-wide: a concurrent batch worker's
    // allocations must not be billed to this thread's open phase.
    StartArenaBytes = BumpPtrAllocator::threadBytesAllocated();
  }
}

PhaseScope::~PhaseScope() {
  if (!Collect)
    return;
  MetricsRegistry &R = MetricsRegistry::global();
  std::string Base = "phase.";
  Base += Name;
  R.timer(Base).addSeconds((Tracer::nowMicros() - StartUs) * 1e-6);
  R.gauge(Base + ".arena_bytes")
      .add(static_cast<int64_t>(BumpPtrAllocator::threadBytesAllocated() -
                                StartArenaBytes));
}

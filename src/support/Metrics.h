//===- support/Metrics.h - Named counter/gauge/timer registry ---*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named metrics backing the tools' --metrics output and the
/// benchmark harnesses' per-phase breakdowns (the paper's Table 2 measures
/// compile/mono/poly time; this generalizes that to every pipeline phase).
/// Three kinds:
///
/// \li **Counter** -- monotonically increasing uint64 (events, tokens,
///     edge visits).
/// \li **Gauge** -- settable/addable int64 snapshot (arena bytes, live
///     graph sizes).
/// \li **TimerMetric** -- accumulated wall seconds plus a sample count
///     (per-phase time; "phase.<name>" by convention).
/// \li **Histogram** -- a fixed log-spaced distribution of uint64 samples
///     with lock-free recording and deterministic p50/p90/p99 estimation
///     (request latency; "server.latency.<method>" by convention).
///
/// Registration is idempotent: asking for an existing name returns the same
/// metric object, so independent pipeline stages may "register" the same
/// metric without coordination. References returned by the registry are
/// stable for the registry's lifetime. Value updates are atomic and
/// lock-free; registration takes a lock.
///
/// A process-wide instance (MetricsRegistry::global()) collects the CLI
/// pipelines' phases. Collection is gated on an atomic flag
/// (setCollecting()) so un-instrumented runs pay one relaxed load per
/// phase. Rendering is deterministic (names sorted) in two formats: an
/// aligned table (support/TextTable) for humans and a stable JSON document
/// for machine diffing and bench archival.
///
/// PhaseScope is the one-liner used by every pipeline layer: an RAII span
/// that feeds (1) the Chrome tracer (support/Trace.h), (2) a
/// "phase.<name>" TimerMetric, and (3) a "phase.<name>.arena_bytes" gauge
/// measuring bump-allocator growth attributable to the phase.
///
/// Naming conventions live in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_METRICS_H
#define QUALS_SUPPORT_METRICS_H

#include "support/Trace.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace quals {

/// A monotonically increasing event count.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A point-in-time value that can be set or adjusted.
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Accumulated wall-clock seconds with a sample count.
class TimerMetric {
public:
  void addSeconds(double S) {
    // Accumulate in integer nanoseconds so concurrent adds stay lock-free.
    Nanos.fetch_add(static_cast<uint64_t>(S * 1e9),
                    std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
  }
  double seconds() const {
    return Nanos.load(std::memory_order_relaxed) * 1e-9;
  }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  void reset() {
    Nanos.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Nanos{0};
  std::atomic<uint64_t> Count{0};
};

/// A fixed-layout distribution of uint64 samples (latencies in
/// microseconds, sizes in bytes -- the histogram itself is unit-agnostic).
///
/// Bucket layout: 256 buckets covering the full uint64 range. Values 0..15
/// get one exact bucket each; every larger power-of-two octave is split
/// into 4 log-spaced sub-buckets, bounding the relative width of any
/// bucket (and therefore any quantile estimate) at ~12.5%. The layout is a
/// compile-time constant -- no configuration, no allocation, and two
/// histograms always have comparable buckets.
///
/// record() is wait-free: three relaxed fetch_adds plus two bounded CAS
/// loops for min/max. Readers see a consistent-enough snapshot (totals can
/// momentarily lead bucket sums under concurrent writes); quiesce writers
/// for exact numbers, as the server's control-request barrier does.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 256;

  /// Adds one sample.
  void record(uint64_t Value) {
    Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
    uint64_t Seen = Min.load(std::memory_order_relaxed);
    while (Value < Seen &&
           !Min.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
      ;
    Seen = Max.load(std::memory_order_relaxed);
    while (Value > Seen &&
           !Max.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
      ;
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  uint64_t min() const {
    uint64_t V = Min.load(std::memory_order_relaxed);
    return V == UINT64_MAX ? 0 : V;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
  }
  uint64_t bucketCount(unsigned Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

  /// The sample at rank ceil(P * count), estimated from the bucket layout:
  /// exact for values < 16, a bucket midpoint (<= ~12.5% relative error)
  /// above. Deterministic for a quiesced histogram. 0 when empty.
  uint64_t quantile(double P) const;

  void reset() {
    for (std::atomic<uint64_t> &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Min.store(UINT64_MAX, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

  /// The bucket a value lands in: the value itself below 16, then
  /// 4 sub-buckets per octave keyed off the top three significant bits.
  static unsigned bucketIndex(uint64_t Value) {
    if (Value < 16)
      return static_cast<unsigned>(Value);
    unsigned Octave = 63 - static_cast<unsigned>(std::countl_zero(Value));
    unsigned Sub = static_cast<unsigned>((Value >> (Octave - 2)) & 3);
    return 16 + (Octave - 4) * 4 + Sub;
  }
  /// Inclusive lower bound of a bucket's value range.
  static uint64_t bucketLo(unsigned Index) {
    if (Index < 16)
      return Index;
    unsigned Octave = 4 + (Index - 16) / 4;
    unsigned Sub = (Index - 16) % 4;
    return static_cast<uint64_t>(4 + Sub) << (Octave - 2);
  }
  /// Exclusive upper bound; UINT64_MAX sentinel for the last bucket.
  static uint64_t bucketHi(unsigned Index) {
    if (Index + 1 >= NumBuckets)
      return UINT64_MAX;
    return bucketLo(Index + 1);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// A registry of named metrics; see the file comment.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry the pipelines publish into.
  static MetricsRegistry &global();

  /// True when the pipelines should publish phase metrics; one relaxed
  /// atomic load, mirroring Tracer::isEnabled().
  static bool collecting() {
    return Collecting.load(std::memory_order_relaxed);
  }
  static void setCollecting(bool On) {
    Collecting.store(On, std::memory_order_relaxed);
  }

  /// Returns the metric named \p Name, registering it on first use.
  /// Duplicate registration (same name, same kind) returns the same object.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  TimerMetric &timer(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// True if nothing has been registered.
  bool empty() const;

  /// Zeroes every metric's value; registrations are kept.
  void resetValues();

  /// Renders all metrics as an aligned ASCII table: name, kind, value
  /// (timers show milliseconds and sample count). Rows sort by name.
  std::string renderTable() const;

  /// Renders all metrics as a stable JSON document:
  ///   {"counters":{...},"gauges":{...},"histograms":{...},
  ///    "timers":{"phase.parse":{"seconds":0.0123,"count":2},...}}
  /// A histogram renders its totals, p50/p90/p99, and every non-empty
  /// bucket as [lo, hi, count] triples. Keys sort lexicographically, timer
  /// seconds print with fixed precision, so two runs diff cleanly.
  /// \p Compact drops all newlines (one line, no trailing newline) so the
  /// document can be embedded in a line-oriented protocol response.
  std::string renderJson(bool Compact = false) const;

private:
  static std::atomic<bool> Collecting;

  mutable std::mutex Mutex;
  // std::map: stable references plus lexicographic iteration for free.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, std::unique_ptr<TimerMetric>> Timers;
};

/// True when any observability sink is live (tracer or metrics); pipeline
/// layers use this to gate work that only exists to be measured, such as
/// the standalone lex pre-scan phase.
inline bool observabilityActive() {
  return Tracer::isEnabled() || MetricsRegistry::collecting();
}

/// A per-thread sink collecting the (name, duration) of every PhaseScope
/// that closes while it is installed -- the per-request phase breakdown
/// behind qualsd's request log, independent of the process-global registry
/// and of whether --metrics collection is on. RAII: construction installs
/// the capture on the current thread (stacking over any previous one),
/// destruction restores the previous sink. Works because one request's
/// pipeline runs entirely on one worker thread; the disabled path costs
/// PhaseScope one extra thread-local load.
class PhaseCapture {
public:
  struct Sample {
    const char *Name;
    uint64_t Micros;
  };

  PhaseCapture();
  ~PhaseCapture();
  PhaseCapture(const PhaseCapture &) = delete;
  PhaseCapture &operator=(const PhaseCapture &) = delete;

  /// Captured phases in completion order (inner scopes before outer).
  const std::vector<Sample> &samples() const { return Samples; }

  /// The sink installed on the current thread, or null.
  static PhaseCapture *current();

private:
  friend class PhaseScope;
  void add(const char *Name, uint64_t Micros) {
    Samples.push_back({Name, Micros});
  }

  std::vector<Sample> Samples;
  PhaseCapture *Prev;
};

/// RAII phase instrumentation: a Chrome-trace span named \p Name in
/// category \p Category plus, when metrics collection is on, an
/// accumulation into the global registry's "phase.<Name>" timer and
/// "phase.<Name>.arena_bytes" gauge (bump-allocator bytes allocated *on
/// this thread* while the phase was open; nested phases' bytes count
/// toward every open phase, and concurrent batch workers' allocations are
/// never billed to another thread's phase). Additionally feeds the current
/// thread's PhaseCapture, when one is installed. Inert when all sinks are
/// off.
class PhaseScope {
public:
  explicit PhaseScope(const char *Name, const char *Category = "quals");
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;
  ~PhaseScope();

  /// Attaches a JSON object body to the underlying trace span.
  void setTraceArgs(std::string ArgsJson) {
    Span.setArgs(std::move(ArgsJson));
  }

private:
  TraceScope Span;
  const char *Name;
  bool Collect;
  PhaseCapture *Capture;
  uint64_t StartUs = 0;
  uint64_t StartArenaBytes = 0;
};

} // namespace quals

#endif // QUALS_SUPPORT_METRICS_H

//===- support/Metrics.h - Named counter/gauge/timer registry ---*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named metrics backing the tools' --metrics output and the
/// benchmark harnesses' per-phase breakdowns (the paper's Table 2 measures
/// compile/mono/poly time; this generalizes that to every pipeline phase).
/// Three kinds:
///
/// \li **Counter** -- monotonically increasing uint64 (events, tokens,
///     edge visits).
/// \li **Gauge** -- settable/addable int64 snapshot (arena bytes, live
///     graph sizes).
/// \li **TimerMetric** -- accumulated wall seconds plus a sample count
///     (per-phase time; "phase.<name>" by convention).
///
/// Registration is idempotent: asking for an existing name returns the same
/// metric object, so independent pipeline stages may "register" the same
/// metric without coordination. References returned by the registry are
/// stable for the registry's lifetime. Value updates are atomic and
/// lock-free; registration takes a lock.
///
/// A process-wide instance (MetricsRegistry::global()) collects the CLI
/// pipelines' phases. Collection is gated on an atomic flag
/// (setCollecting()) so un-instrumented runs pay one relaxed load per
/// phase. Rendering is deterministic (names sorted) in two formats: an
/// aligned table (support/TextTable) for humans and a stable JSON document
/// for machine diffing and bench archival.
///
/// PhaseScope is the one-liner used by every pipeline layer: an RAII span
/// that feeds (1) the Chrome tracer (support/Trace.h), (2) a
/// "phase.<name>" TimerMetric, and (3) a "phase.<name>.arena_bytes" gauge
/// measuring bump-allocator growth attributable to the phase.
///
/// Naming conventions live in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_METRICS_H
#define QUALS_SUPPORT_METRICS_H

#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace quals {

/// A monotonically increasing event count.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A point-in-time value that can be set or adjusted.
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Accumulated wall-clock seconds with a sample count.
class TimerMetric {
public:
  void addSeconds(double S) {
    // Accumulate in integer nanoseconds so concurrent adds stay lock-free.
    Nanos.fetch_add(static_cast<uint64_t>(S * 1e9),
                    std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
  }
  double seconds() const {
    return Nanos.load(std::memory_order_relaxed) * 1e-9;
  }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  void reset() {
    Nanos.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Nanos{0};
  std::atomic<uint64_t> Count{0};
};

/// A registry of named metrics; see the file comment.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry the pipelines publish into.
  static MetricsRegistry &global();

  /// True when the pipelines should publish phase metrics; one relaxed
  /// atomic load, mirroring Tracer::isEnabled().
  static bool collecting() {
    return Collecting.load(std::memory_order_relaxed);
  }
  static void setCollecting(bool On) {
    Collecting.store(On, std::memory_order_relaxed);
  }

  /// Returns the metric named \p Name, registering it on first use.
  /// Duplicate registration (same name, same kind) returns the same object.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  TimerMetric &timer(const std::string &Name);

  /// True if nothing has been registered.
  bool empty() const;

  /// Zeroes every metric's value; registrations are kept.
  void resetValues();

  /// Renders all metrics as an aligned ASCII table: name, kind, value
  /// (timers show milliseconds and sample count). Rows sort by name.
  std::string renderTable() const;

  /// Renders all metrics as a stable JSON document:
  ///   {"counters":{...},"gauges":{...},
  ///    "timers":{"phase.parse":{"seconds":0.0123,"count":2},...}}
  /// Keys sort lexicographically, timer seconds print with fixed
  /// precision, so two runs diff cleanly.
  std::string renderJson() const;

private:
  static std::atomic<bool> Collecting;

  mutable std::mutex Mutex;
  // std::map: stable references plus lexicographic iteration for free.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<TimerMetric>> Timers;
};

/// True when any observability sink is live (tracer or metrics); pipeline
/// layers use this to gate work that only exists to be measured, such as
/// the standalone lex pre-scan phase.
inline bool observabilityActive() {
  return Tracer::isEnabled() || MetricsRegistry::collecting();
}

/// RAII phase instrumentation: a Chrome-trace span named \p Name in
/// category \p Category plus, when metrics collection is on, an
/// accumulation into the global registry's "phase.<Name>" timer and
/// "phase.<Name>.arena_bytes" gauge (bump-allocator bytes allocated *on
/// this thread* while the phase was open; nested phases' bytes count
/// toward every open phase, and concurrent batch workers' allocations are
/// never billed to another thread's phase). Inert when both sinks are off.
class PhaseScope {
public:
  explicit PhaseScope(const char *Name, const char *Category = "quals");
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;
  ~PhaseScope();

  /// Attaches a JSON object body to the underlying trace span.
  void setTraceArgs(std::string ArgsJson) {
    Span.setArgs(std::move(ArgsJson));
  }

private:
  TraceScope Span;
  const char *Name;
  bool Collect;
  uint64_t StartUs = 0;
  uint64_t StartArenaBytes = 0;
};

} // namespace quals

#endif // QUALS_SUPPORT_METRICS_H

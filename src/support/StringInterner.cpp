//===- support/StringInterner.cpp - Unique'd identifier storage ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace quals;

std::string_view StringInterner::intern(std::string_view Str) {
  auto It = Map.find(Str);
  if (It != Map.end())
    return It->second;
  Storage.emplace_back(Str);
  std::string_view Stable = Storage.back();
  Map.emplace(Stable, Stable);
  return Stable;
}

//===- support/Limits.h - Resource limits for hostile input ----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource limits guarding every entry point against hostile or degenerate
/// input. The paper's evaluation runs the tool over arbitrary real-world C
/// (Section 5); at corpus scale "never crash, always diagnose" is a hard
/// requirement, so exhaustion of any budget below must surface as a
/// recoverable `fatal: resource limit` diagnostic plus a nonzero exit --
/// never a stack overflow, OOM kill, or assert.
///
/// The Limits value rides inside DiagnosticEngine (which every front end and
/// analysis already threads), so one knob block configures a whole analysis
/// context. The tools expose the knobs as `--limit-*` flags
/// (tools/LimitFlags.h); a value of 0 always means "unlimited".
///
/// See docs/ROBUSTNESS.md for the threat model and how each limit is
/// enforced.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_LIMITS_H
#define QUALS_SUPPORT_LIMITS_H

#include <cstdint>

namespace quals {

/// Per-analysis-context resource budgets. Each field uses 0 for "unlimited";
/// the defaults are generous enough that no legitimate benchmark in the
/// repository ever trips them, and small enough that a pathological input
/// dies with a diagnostic instead of taking the process down.
struct Limits {
  /// Errors reported before the engine emits a `fatal: too many errors`
  /// diagnostic, stops recording, and asks callers to bail out. A
  /// pathological input otherwise emits millions of diagnostics.
  unsigned MaxErrors = 64;

  /// Nesting depth of recursive-descent parsing (expressions, declarators,
  /// statements, abstractions). Each level costs a handful of stack frames,
  /// so the default keeps the deepest parse well inside an 1 MiB stack while
  /// accepting any human-written program.
  unsigned MaxRecursionDepth = 256;

  /// Qualifier constraints a ConstraintSystem will store. Enforced by the
  /// solver itself (SolverConfig::MaxConstraints); the analyses translate
  /// exhaustion into a fatal diagnostic.
  uint64_t MaxConstraints = 1u << 24; // 16M constraints

  /// Arena bytes one analysis context may allocate, measured as the growth
  /// of BumpPtrAllocator::threadBytesAllocated() since the context's
  /// DiagnosticEngine was created (a context is confined to one thread; see
  /// docs/PARALLEL.md).
  uint64_t MaxArenaBytes = 4ull << 30; // 4 GiB
};

} // namespace quals

#endif // QUALS_SUPPORT_LIMITS_H

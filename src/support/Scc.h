//===- support/Scc.h - Strongly-connected components ------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's SCC algorithm over a dense adjacency-list digraph. Used to find
/// the sets of mutually-recursive functions in the function dependence graph
/// (Definition 4 in the paper) for polymorphic const inference.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_SCC_H
#define QUALS_SUPPORT_SCC_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quals {

/// A digraph over dense node ids [0, N).
class Digraph {
public:
  explicit Digraph(unsigned NumNodes) : Adj(NumNodes) {}

  unsigned getNumNodes() const { return Adj.size(); }

  /// Adds a node, returning its id.
  unsigned addNode() {
    Adj.emplace_back();
    return Adj.size() - 1;
  }

  /// Adds the edge From -> To (parallel edges allowed and harmless).
  void addEdge(unsigned From, unsigned To) { Adj[From].push_back(To); }

  const std::vector<unsigned> &successors(unsigned Node) const {
    return Adj[Node];
  }

private:
  std::vector<std::vector<unsigned>> Adj;
};

/// Result of an SCC decomposition.
struct SccResult {
  /// Components in *reverse topological order*: every edge goes from a
  /// component with a higher index in this vector to one with a lower or
  /// equal index. This is exactly the order the paper's FDG traversal wants
  /// (callees analyzed before callers).
  std::vector<std::vector<unsigned>> Components;

  /// Maps node id -> index into Components.
  std::vector<unsigned> ComponentOf;
};

/// Runs Tarjan's algorithm (iterative; safe for deep graphs).
SccResult computeSccs(const Digraph &G);

/// A borrowed CSR (compressed sparse row) digraph: node v's successors are
/// Targets[RowStart[v] .. RowStart[v+1]). Lets large-graph callers (the
/// constraint solver's rebuild) run Tarjan without per-node allocations.
struct CsrGraphView {
  unsigned NumNodes = 0;
  const uint32_t *RowStart = nullptr; ///< NumNodes + 1 offsets.
  const uint32_t *Targets = nullptr;  ///< RowStart[NumNodes] node ids.
};

/// SccResult's allocation-free sibling: component c's nodes are
/// Order[CompStart[c] .. CompStart[c+1]), components in the same *reverse
/// topological order* as SccResult::Components. Nodes that touch no edge at
/// all are excluded from Order and keep ComponentOf == ~0u; every endpoint
/// of an edge is covered.
struct SccFlatResult {
  std::vector<unsigned> Order;      ///< All nodes, grouped by component.
  std::vector<uint32_t> CompStart;  ///< numComponents() + 1 offsets.
  std::vector<unsigned> ComponentOf;

  unsigned numComponents() const { return CompStart.size() - 1; }
};

/// Tarjan over a CSR view, producing flat arrays (three allocations total
/// instead of one per node/component).
SccFlatResult computeSccsFlat(const CsrGraphView &G);

} // namespace quals

#endif // QUALS_SUPPORT_SCC_H

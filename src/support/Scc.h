//===- support/Scc.h - Strongly-connected components ------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's SCC algorithm over a dense adjacency-list digraph. Used to find
/// the sets of mutually-recursive functions in the function dependence graph
/// (Definition 4 in the paper) for polymorphic const inference.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_SCC_H
#define QUALS_SUPPORT_SCC_H

#include <cstddef>
#include <vector>

namespace quals {

/// A digraph over dense node ids [0, N).
class Digraph {
public:
  explicit Digraph(unsigned NumNodes) : Adj(NumNodes) {}

  unsigned getNumNodes() const { return Adj.size(); }

  /// Adds a node, returning its id.
  unsigned addNode() {
    Adj.emplace_back();
    return Adj.size() - 1;
  }

  /// Adds the edge From -> To (parallel edges allowed and harmless).
  void addEdge(unsigned From, unsigned To) { Adj[From].push_back(To); }

  const std::vector<unsigned> &successors(unsigned Node) const {
    return Adj[Node];
  }

private:
  std::vector<std::vector<unsigned>> Adj;
};

/// Result of an SCC decomposition.
struct SccResult {
  /// Components in *reverse topological order*: every edge goes from a
  /// component with a higher index in this vector to one with a lower or
  /// equal index. This is exactly the order the paper's FDG traversal wants
  /// (callees analyzed before callers).
  std::vector<std::vector<unsigned>> Components;

  /// Maps node id -> index into Components.
  std::vector<unsigned> ComponentOf;
};

/// Runs Tarjan's algorithm (iterative; safe for deep graphs).
SccResult computeSccs(const Digraph &G);

} // namespace quals

#endif // QUALS_SUPPORT_SCC_H

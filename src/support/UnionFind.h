//===- support/UnionFind.h - Disjoint-set forest ---------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find with path compression and union by rank. Used by the shape
/// unifiers (standard type inference runs before qualifier inference, per the
/// paper's two-phase factorization) and by equality-constraint merging.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_UNIONFIND_H
#define QUALS_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace quals {

/// Disjoint sets over dense unsigned ids.
class UnionFind {
public:
  /// Creates a fresh singleton set and returns its id.
  unsigned makeSet() {
    Parent.push_back(Parent.size());
    Rank.push_back(0);
    return Parent.size() - 1;
  }

  /// Number of elements ever created.
  unsigned size() const { return Parent.size(); }

  /// Representative of \p X's set (with path compression).
  unsigned find(unsigned X) {
    assert(X < Parent.size() && "union-find id out of range");
    unsigned Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[X] != Root) {
      unsigned Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Merges the sets of \p A and \p B; returns the surviving representative.
  unsigned unite(unsigned A, unsigned B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
    return A;
  }

  /// True if \p A and \p B are currently in the same set.
  bool connected(unsigned A, unsigned B) { return find(A) == find(B); }

private:
  std::vector<unsigned> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace quals

#endif // QUALS_SUPPORT_UNIONFIND_H

//===- support/TextTable.cpp - ASCII tables and bar charts ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace quals;

void TextTable::addColumn(std::string Header, Align Alignment) {
  assert(Rows.empty() && "declare all columns before adding rows");
  Headers.push_back(std::move(Header));
  Alignments.push_back(Alignment);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row/column count mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto emitRow = [&](const std::vector<std::string> &Cells,
                     std::string &Out) {
    for (size_t C = 0; C != Cells.size(); ++C) {
      size_t Pad = Widths[C] - Cells[C].size();
      if (Alignments[C] == Align::Right)
        Out.append(Pad, ' ');
      Out += Cells[C];
      if (Alignments[C] == Align::Left && C + 1 != Cells.size())
        Out.append(Pad, ' ');
      if (C + 1 != Cells.size())
        Out += "  ";
    }
    Out += '\n';
  };

  std::string Out;
  emitRow(Headers, Out);
  for (size_t C = 0; C != Headers.size(); ++C) {
    Out.append(Widths[C], '-');
    if (C + 1 != Headers.size())
      Out += "  ";
  }
  Out += '\n';
  for (const auto &Row : Rows)
    emitRow(Row, Out);
  return Out;
}

std::string quals::renderStackedBar(const std::vector<BarSegment> &Segments,
                                    unsigned Width) {
  std::string Bar;
  unsigned Used = 0;
  for (size_t I = 0; I != Segments.size(); ++I) {
    unsigned Chars;
    if (I + 1 == Segments.size()) {
      Chars = Width > Used ? Width - Used : 0;
    } else {
      Chars = static_cast<unsigned>(
          std::lround(Segments[I].Fraction * Width));
      Chars = std::min(Chars, Width - Used);
    }
    Bar.append(Chars, Segments[I].Fill);
    Used += Chars;
  }
  return Bar;
}

//===- support/StringInterner.h - Unique'd identifier storage --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier strings so the front ends can compare names by pointer.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_STRINGINTERNER_H
#define QUALS_SUPPORT_STRINGINTERNER_H

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace quals {

/// Stable, unique'd string storage. Returned string_views remain valid for
/// the lifetime of the interner.
class StringInterner {
public:
  /// Interns \p Str; equal strings always return the same view (same .data()).
  std::string_view intern(std::string_view Str);

  /// Number of distinct strings interned.
  size_t size() const { return Map.size(); }

private:
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, std::string_view> Map;
};

} // namespace quals

#endif // QUALS_SUPPORT_STRINGINTERNER_H

//===- support/Diagnostics.h - Diagnostic collection -----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic engine shared by every front end and analysis in the project.
/// Library code never aborts on user errors; it reports here and the caller
/// inspects the collected diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_DIAGNOSTICS_H
#define QUALS_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace quals {

class SourceManager;

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics; rendering is separated so analyses can run silently.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }
  void clear();

  /// Renders every diagnostic as "file:line:col: severity: message" followed
  /// by the offending source line, clang style.
  std::string renderAll() const;

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace quals

#endif // QUALS_SUPPORT_DIAGNOSTICS_H

//===- support/Diagnostics.h - Diagnostic collection -----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic engine shared by every front end and analysis in the project.
/// Library code never aborts on user errors; it reports here and the caller
/// inspects the collected diagnostics.
///
/// The engine doubles as the resource guard of one analysis context
/// (support/Limits.h): it caps the number of recorded errors, meters the
/// recursion depth of the parsers, and watches the context's arena growth.
/// When any budget is exhausted it records a single `fatal:` diagnostic and
/// flips shouldBail(); every phase checks that flag at its loop heads and
/// unwinds cleanly, so hostile input ends in a rendered diagnostic and a
/// nonzero exit instead of a stack overflow or OOM kill.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_DIAGNOSTICS_H
#define QUALS_SUPPORT_DIAGNOSTICS_H

#include "support/Limits.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace quals {

class SourceManager;

/// Severity of a diagnostic. Fatal marks a resource-limit (or internal
/// invariant) bailout: analysis stops at the next checkpoint.
enum class DiagKind { Error, Warning, Note, Fatal };

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics; rendering is separated so analyses can run silently.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM, Limits L = Limits());

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  /// Reports an unrecoverable condition (resource exhaustion, broken
  /// internal invariant observed in release builds) and flips shouldBail().
  /// Counts as an error for hasErrors()/exit-code purposes.
  void fatal(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }
  void clear();

  /// The resource budgets this context runs under.
  const Limits &limits() const { return Lim; }

  /// True once a fatal condition fired; phases must stop starting new work.
  bool shouldBail() const { return Bailout; }

  //===--------------------------------------------------------------------===//
  // Recursion metering (prefer the RecursionGuard RAII below)
  //===--------------------------------------------------------------------===//

  /// Enters one level of parser/analysis recursion. Returns false (emitting
  /// the fatal diagnostic exactly once) when the depth limit is exceeded.
  /// Always pairs with exitRecursion(), even on a false return.
  bool enterRecursion(SourceLoc Loc);
  void exitRecursion() { --Depth; }

  /// Checks the non-recursion budgets (currently arena bytes) at a cheap
  /// checkpoint -- one thread-local read. Returns false, emitting the fatal
  /// diagnostic once, when a budget is exhausted or a bailout is pending.
  bool checkResources(SourceLoc Loc);

  /// Renders every diagnostic as "file:line:col: severity: message" followed
  /// by the offending source line, clang style.
  std::string renderAll() const;

private:
  const SourceManager &SM;
  Limits Lim;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned Depth = 0;
  uint64_t ArenaBaseline;
  bool Bailout = false;
};

/// RAII recursion meter: place at the top of every self-recursive parse
/// function and bail out (returning the function's failure value) when ok()
/// is false.
class RecursionGuard {
public:
  RecursionGuard(DiagnosticEngine &D, SourceLoc Loc)
      : D(D), Entered(D.enterRecursion(Loc)) {}
  ~RecursionGuard() { D.exitRecursion(); }
  RecursionGuard(const RecursionGuard &) = delete;
  RecursionGuard &operator=(const RecursionGuard &) = delete;

  /// False when the depth limit was exceeded: unwind now.
  bool ok() const { return Entered; }

private:
  DiagnosticEngine &D;
  bool Entered;
};

} // namespace quals

#endif // QUALS_SUPPORT_DIAGNOSTICS_H

//===- support/SourceLoc.h - Source locations and ranges -------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compact source locations. A SourceLoc is an offset into the SourceManager's
/// concatenated buffer space; 0 is the invalid location.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_SOURCELOC_H
#define QUALS_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace quals {

/// An opaque offset into the SourceManager's global buffer space.
class SourceLoc {
public:
  SourceLoc() = default;
  explicit SourceLoc(uint32_t Offset) : Offset(Offset) {}

  bool isValid() const { return Offset != 0; }
  uint32_t getOffset() const { return Offset; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Offset == B.Offset;
  }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return !(A == B); }
  friend bool operator<(SourceLoc A, SourceLoc B) {
    return A.Offset < B.Offset;
  }

private:
  uint32_t Offset = 0;
};

/// A half-open [Begin, End) range of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace quals

#endif // QUALS_SUPPORT_SOURCELOC_H

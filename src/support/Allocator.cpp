//===- support/Allocator.cpp - Bump-pointer arena allocation -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Allocator.h"

#include <algorithm>
#include <cassert>

using namespace quals;

std::atomic<uint64_t> BumpPtrAllocator::TotalBytes{0};
thread_local uint64_t BumpPtrAllocator::ThreadBytes = 0;

void BumpPtrAllocator::startNewSlab(size_t MinSize) {
  size_t Size = std::max(SlabSize, MinSize);
  Slabs.push_back(std::make_unique<char[]>(Size));
  Cur = Slabs.back().get();
  End = Cur + Size;
}

void *BumpPtrAllocator::allocate(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
  size_t Adjust = Aligned - P;
  if (!Cur || Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
    startNewSlab(Size + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
    Adjust = Aligned - P;
  }
  Cur += Adjust + Size;
  BytesAllocated += Size;
  TotalBytes.fetch_add(Size, std::memory_order_relaxed);
  ThreadBytes += Size;
  return reinterpret_cast<void *>(Aligned);
}

//===- support/TextTable.h - ASCII tables and bar charts --------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering helpers for the benchmark harnesses: aligned ASCII tables
/// (Tables 1 and 2) and stacked horizontal percentage bars (Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_SUPPORT_TEXTTABLE_H
#define QUALS_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace quals {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// with a header separator.
class TextTable {
public:
  /// Declares a column; call once per column before adding rows.
  void addColumn(std::string Header, Align Alignment = Align::Left);

  /// Appends a row; must have exactly as many cells as declared columns.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows).
  std::string render() const;

private:
  std::vector<std::string> Headers;
  std::vector<Align> Alignments;
  std::vector<std::vector<std::string>> Rows;
};

/// One segment of a stacked bar: a label and a fraction in [0, 1].
struct BarSegment {
  std::string Label;
  double Fraction;
  char Fill;
};

/// Renders a stacked horizontal bar of \p Width characters; the paper's
/// Figure 6 stacks Declared / Mono / Poly / Other fractions per benchmark.
std::string renderStackedBar(const std::vector<BarSegment> &Segments,
                             unsigned Width);

} // namespace quals

#endif // QUALS_SUPPORT_TEXTTABLE_H

//===- qual/QualType.cpp - Qualified types over user constructors ---------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/QualType.h"

using namespace quals;

bool QualType::shapeEquals(QualType Other) const {
  if (isNull() || Other.isNull())
    return isNull() == Other.isNull();
  if (getCtor() != Other.getCtor())
    return false;
  for (unsigned I = 0, E = getNumArgs(); I != E; ++I)
    if (!getArg(I).shapeEquals(Other.getArg(I)))
      return false;
  return true;
}

void QualType::visit(const std::function<void(QualType)> &Fn) const {
  if (isNull())
    return;
  Fn(*this);
  for (unsigned I = 0, E = getNumArgs(); I != E; ++I)
    getArg(I).visit(Fn);
}

QualType QualTypeFactory::make(QualExpr Qual, const TypeCtor *Ctor,
                               const std::vector<QualType> &Args) {
  assert(Ctor && "null type constructor");
  assert(Args.size() == Ctor->arity() && "constructor arity mismatch");
  QualType *ArgArray =
      Args.empty() ? nullptr : Arena.copyArray(Args.data(), Args.size());
  ShapeNode *Shape = Arena.create<ShapeNode>();
  Shape->Ctor = Ctor;
  Shape->Args = ArgArray;
  return QualType(Qual, Shape);
}

QualType QualTypeFactory::substitute(
    QualType T, const std::function<QualExpr(QualVarId)> &MapVar) {
  if (T.isNull())
    return T;
  QualExpr Q = T.getQual();
  if (Q.isVar())
    Q = MapVar(Q.getVar());
  std::vector<QualType> Args;
  Args.reserve(T.getNumArgs());
  bool ArgsChanged = false;
  for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I) {
    QualType NewArg = substitute(T.getArg(I), MapVar);
    ArgsChanged |= NewArg.getShape() != T.getArg(I).getShape() ||
                   NewArg.getQual() != T.getArg(I).getQual();
    Args.push_back(NewArg);
  }
  if (!ArgsChanged)
    return T.withQual(Q);
  return make(Q, T.getCtor(), Args);
}

QualType QualTypeFactory::spread(ConstraintSystem &Sys, QualType T,
                                 const std::string &NameHint, SourceLoc Loc) {
  if (T.isNull())
    return T;
  std::vector<QualType> Args;
  Args.reserve(T.getNumArgs());
  for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I)
    Args.push_back(spread(Sys, T.getArg(I), NameHint, Loc));
  QualExpr Fresh = QualExpr::makeVar(Sys.freshVar(NameHint, Loc));
  return make(Fresh, T.getCtor(), Args);
}

static void printQual(const QualifierSet &QS, QualExpr Q,
                      const ConstraintSystem *Sys, std::string &Out) {
  if (Q.isConst()) {
    std::string S = QS.toString(Q.getConst());
    if (!S.empty()) {
      Out += S;
      Out += ' ';
    }
    return;
  }
  if (Sys) {
    std::string S = QS.toString(Sys->lower(Q.getVar()));
    if (!S.empty()) {
      Out += S;
      Out += ' ';
    }
    return;
  }
  Out += '$';
  Out += Sys ? "" : std::to_string(Q.getVar());
  Out += ' ';
}

static void printType(const QualifierSet &QS, QualType T,
                      const ConstraintSystem *Sys, std::string &Out) {
  if (T.isNull()) {
    Out += "<null>";
    return;
  }
  printQual(QS, T.getQual(), Sys, Out);
  const TypeCtor *Ctor = T.getCtor();
  if (Ctor->getPrintStyle() == PrintStyle::Infix) {
    Out += '(';
    printType(QS, T.getArg(0), Sys, Out);
    Out += ' ';
    Out += Ctor->getName();
    Out += ' ';
    printType(QS, T.getArg(1), Sys, Out);
    Out += ')';
    return;
  }
  Out += Ctor->getName();
  if (Ctor->arity() == 0)
    return;
  Out += '(';
  for (unsigned I = 0, E = Ctor->arity(); I != E; ++I) {
    if (I)
      Out += ", ";
    printType(QS, T.getArg(I), Sys, Out);
  }
  Out += ')';
}

std::string quals::toString(const QualifierSet &QS, QualType T,
                            const ConstraintSystem *Sys) {
  std::string Out;
  printType(QS, T, Sys, Out);
  return Out;
}

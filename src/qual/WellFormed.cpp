//===- qual/WellFormed.cpp - Well-formedness conditions -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/WellFormed.h"

using namespace quals;

void quals::requireUpwardClosed(ConstraintSystem &Sys, QualType T,
                                QualifierId Q,
                                const ConstraintOrigin &Origin) {
  if (T.isNull())
    return;
  uint64_t Mask = Sys.getQualifierSet().bitFor(Q);
  for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I) {
    QualType Child = T.getArg(I);
    if (Child.isNull())
      continue;
    Sys.addLeqMasked(Child.getQual(), T.getQual(), Mask, Origin);
    requireUpwardClosed(Sys, Child, Q, Origin);
  }
}

void quals::requireDownwardClosed(ConstraintSystem &Sys, QualType T,
                                  QualifierId Q,
                                  const ConstraintOrigin &Origin) {
  if (T.isNull())
    return;
  uint64_t Mask = Sys.getQualifierSet().bitFor(Q);
  for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I) {
    QualType Child = T.getArg(I);
    if (Child.isNull())
      continue;
    Sys.addLeqMasked(T.getQual(), Child.getQual(), Mask, Origin);
    requireDownwardClosed(Sys, Child, Q, Origin);
  }
}

bool quals::checkNoInnerWithoutOuter(const ConstraintSystem &Sys, QualType T,
                                     QualifierId Outer, QualifierId Inner) {
  if (T.isNull())
    return true;
  const QualifierSet &QS = Sys.getQualifierSet();
  bool ParentHasOuter =
      T.getQual().isVar()
          ? QS.contains(Sys.lower(T.getQual().getVar()), Outer)
          : QS.contains(T.getQual().getConst(), Outer);
  for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I) {
    QualType Child = T.getArg(I);
    if (Child.isNull())
      continue;
    bool ChildHasInner =
        Child.getQual().isVar()
            ? QS.contains(Sys.lower(Child.getQual().getVar()), Inner)
            : QS.contains(Child.getQual().getConst(), Inner);
    if (ChildHasInner && !ParentHasOuter)
      return false;
    if (!checkNoInnerWithoutOuter(Sys, Child, Outer, Inner))
      return false;
  }
  return true;
}

//===- qual/Qualifier.h - Qualifiers and the qualifier lattice --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-registered type qualifiers and the product lattice they induce.
///
/// Following Definition 1 of the paper, a qualifier q is *positive* when
/// tau <= q tau for every type tau (e.g. const: unqualified values promote to
/// qualified ones) and *negative* when q tau <= tau (e.g. nonnull: qualified
/// values promote to unqualified ones). Per Definition 2, each qualifier
/// contributes a two-point lattice and the full qualifier lattice L is their
/// product.
///
/// Representation: a lattice element is a bitmask with one bit per registered
/// qualifier, where a set bit is the *top* of that qualifier's two-point
/// lattice. For a positive qualifier, top means "present"; for a negative
/// qualifier, top means "absent" (the dualization the paper describes in
/// Section 2). This makes the whole product lattice a powerset lattice:
/// <= is subset, join is bitwise-or, meet is bitwise-and.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_QUALIFIER_H
#define QUALS_QUAL_QUALIFIER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quals {

/// Whether tau <= q tau (Positive) or q tau <= tau (Negative); Definition 1.
enum class Polarity { Positive, Negative };

/// Dense id of a registered qualifier within its QualifierSet.
using QualifierId = unsigned;

/// An element of the qualifier lattice L = L_q1 x ... x L_qn (Definition 2).
///
/// Plain value type; interpretation of the bits requires the owning
/// QualifierSet (see file comment for the encoding).
class LatticeValue {
public:
  LatticeValue() = default;
  explicit LatticeValue(uint64_t Bits) : Bits(Bits) {}

  uint64_t bits() const { return Bits; }

  /// Lattice order: this <= Other.
  bool subsumedBy(LatticeValue Other) const {
    return (Bits & ~Other.Bits) == 0;
  }

  LatticeValue join(LatticeValue Other) const {
    return LatticeValue(Bits | Other.Bits);
  }
  LatticeValue meet(LatticeValue Other) const {
    return LatticeValue(Bits & Other.Bits);
  }

  friend bool operator==(LatticeValue A, LatticeValue B) {
    return A.Bits == B.Bits;
  }
  friend bool operator!=(LatticeValue A, LatticeValue B) { return !(A == B); }

private:
  uint64_t Bits = 0;
};

/// One registered qualifier.
struct Qualifier {
  std::string Name;
  Polarity Pol;
};

/// The user-supplied set of qualifiers q1, ..., qn and the lattice they
/// generate. At most 64 qualifiers per set (one bit each).
class QualifierSet {
public:
  /// Registers a qualifier; names must be unique within the set.
  QualifierId add(std::string Name, Polarity Pol);

  unsigned size() const { return Qualifiers.size(); }

  const Qualifier &get(QualifierId Id) const {
    assert(Id < Qualifiers.size() && "qualifier id out of range");
    return Qualifiers[Id];
  }

  /// Finds a qualifier by name; returns true and sets \p Id on success.
  bool lookup(std::string_view Name, QualifierId &Id) const;

  /// The single lattice bit belonging to qualifier \p Id.
  uint64_t bitFor(QualifierId Id) const {
    assert(Id < Qualifiers.size() && "qualifier id out of range");
    return uint64_t(1) << Id;
  }

  /// Mask of all bits in use by this set.
  uint64_t usedBits() const {
    return Qualifiers.size() == 64 ? ~uint64_t(0)
                                   : (uint64_t(1) << Qualifiers.size()) - 1;
  }

  /// Bottom of L: every positive qualifier absent, every negative present.
  LatticeValue bottom() const { return LatticeValue(0); }

  /// Top of L: every positive qualifier present, every negative absent.
  LatticeValue top() const { return LatticeValue(usedBits()); }

  /// True if qualifier \p Id is semantically *present* in \p V.
  bool contains(LatticeValue V, QualifierId Id) const {
    bool BitSet = (V.bits() & bitFor(Id)) != 0;
    return get(Id).Pol == Polarity::Positive ? BitSet : !BitSet;
  }

  /// Returns \p V with qualifier \p Id made present.
  LatticeValue withQual(LatticeValue V, QualifierId Id) const {
    if (get(Id).Pol == Polarity::Positive)
      return LatticeValue(V.bits() | bitFor(Id));
    return LatticeValue(V.bits() & ~bitFor(Id));
  }

  /// Returns \p V with qualifier \p Id made absent.
  LatticeValue withoutQual(LatticeValue V, QualifierId Id) const {
    if (get(Id).Pol == Polarity::Positive)
      return LatticeValue(V.bits() & ~bitFor(Id));
    return LatticeValue(V.bits() | bitFor(Id));
  }

  /// The paper's ":q" element: top everywhere except qualifier \p Id, which
  /// is absent. Used as the upper bound in assertions like e |_{:const}.
  LatticeValue notQual(QualifierId Id) const {
    return withoutQual(top(), Id);
  }

  /// The element where exactly the named qualifiers are present and every
  /// other qualifier is absent-if-positive / present-if-negative (i.e. the
  /// literal annotation "q1 q2 e" from the paper's source syntax, which sits
  /// at the *bottom* of every unmentioned qualifier's component).
  LatticeValue valueWithPresent(const std::vector<QualifierId> &Ids) const;

  /// Renders \p V as the space-separated names of the qualifiers present in
  /// it ("const nonzero"), or "" for a value with no qualifiers present.
  std::string toString(LatticeValue V) const;

private:
  std::vector<Qualifier> Qualifiers;
};

} // namespace quals

#endif // QUALS_QUAL_QUALIFIER_H

//===- qual/Qualifier.cpp - Qualifiers and the qualifier lattice ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/Qualifier.h"

using namespace quals;

QualifierId QualifierSet::add(std::string Name, Polarity Pol) {
  assert(Qualifiers.size() < 64 && "at most 64 qualifiers per set");
#ifndef NDEBUG
  for (const Qualifier &Q : Qualifiers)
    assert(Q.Name != Name && "duplicate qualifier name");
#endif
  Qualifiers.push_back({std::move(Name), Pol});
  return Qualifiers.size() - 1;
}

bool QualifierSet::lookup(std::string_view Name, QualifierId &Id) const {
  for (unsigned I = 0, E = Qualifiers.size(); I != E; ++I) {
    if (Qualifiers[I].Name == Name) {
      Id = I;
      return true;
    }
  }
  return false;
}

LatticeValue
QualifierSet::valueWithPresent(const std::vector<QualifierId> &Ids) const {
  LatticeValue V = bottom();
  for (QualifierId Id : Ids)
    V = withQual(V, Id);
  return V;
}

std::string QualifierSet::toString(LatticeValue V) const {
  std::string Out;
  for (unsigned I = 0, E = Qualifiers.size(); I != E; ++I) {
    if (!contains(V, I))
      continue;
    if (!Out.empty())
      Out += ' ';
    Out += Qualifiers[I].Name;
  }
  return Out;
}

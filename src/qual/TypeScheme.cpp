//===- qual/TypeScheme.cpp - Polymorphic constrained types ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// Generalization performs *constraint simplification*: the paper notes that
/// "in practice these constraint systems can be large"; replaying a whole
/// function body's constraints at every call site makes polymorphic
/// inference quadratic or worse up the call DAG. Since the constraints are
/// atomic inequalities over a powerset lattice, the observable effect of a
/// scheme on its interface is fully characterized by
///
///   (1) the join of constants reaching each interface variable through the
///       scheme's local constraint subgraph (a lower-bound summary),
///   (2) the meet of constant upper bounds reachable from it (an upper-bound
///       summary), and
///   (3) bit-masked reachability between interface variables and the free
///       (environment) variables adjacent to the subgraph.
///
/// Internal variables are eliminated entirely; the canned constraints are
/// linear in the interface size instead of the body size. This is exactly
/// the specialization-over-BANE speedup the paper anticipates in
/// Section 4.4.
///
//===----------------------------------------------------------------------===//

#include "qual/TypeScheme.h"

#include <unordered_map>

using namespace quals;

namespace {

/// A var-to-var edge of the local (post-watermark) constraint subgraph.
struct LocalEdge {
  QualVarId Target;
  uint64_t Mask;
};

} // namespace

QualScheme
QualScheme::generalize(const ConstraintSystem &Sys, QualType Body,
                       Watermark Mark,
                       const std::function<bool(QualVarId)> &Escapes) {
  QualScheme S;
  S.Body = Body;

  auto IsFresh = [&](QualVarId V) {
    return V >= Mark.FirstVar && !(Escapes && Escapes(V));
  };

  // Interface variables: fresh variables occurring in the body type. Only
  // these are observable by callers, so only these need per-instance copies.
  Body.visit([&](QualType T) {
    if (!T.getQual().isVar())
      return;
    QualVarId V = T.getQual().getVar();
    if (IsFresh(V) && !S.BoundSet.count(V)) {
      S.BoundVars.push_back(V);
      S.BoundSet.insert(V);
    }
  });
  if (S.BoundVars.empty())
    return S;

  const uint64_t UsedBits = Sys.getQualifierSet().usedBits();

  // Build the local subgraph and collect every variable it touches.
  std::unordered_map<QualVarId, std::vector<LocalEdge>> Fwd, Bwd;
  std::unordered_map<QualVarId, uint64_t> LowerSeed; // const -> var
  std::unordered_map<QualVarId, uint64_t> UpperSeed; // var -> const
  std::unordered_map<QualVarId, uint64_t> Touched;   // var -> 0 (set keys)

  for (ConstraintId Id = Mark.FirstConstraint, E = Sys.getNumConstraints();
       Id != E; ++Id) {
    const Constraint &C = Sys.getConstraint(Id);
    if (C.Lhs.isVar())
      Touched.emplace(C.Lhs.getVar(), 0);
    if (C.Rhs.isVar())
      Touched.emplace(C.Rhs.getVar(), 0);
    if (C.Lhs.isVar() && C.Rhs.isVar()) {
      Fwd[C.Lhs.getVar()].push_back({C.Rhs.getVar(), C.Mask});
      Bwd[C.Rhs.getVar()].push_back({C.Lhs.getVar(), C.Mask});
    } else if (C.Lhs.isConst() && C.Rhs.isVar()) {
      LowerSeed[C.Rhs.getVar()] |= C.Lhs.getConst().bits() & C.Mask;
    } else if (C.Lhs.isVar() && C.Rhs.isConst()) {
      uint64_t Cap = C.Rhs.getConst().bits() | ~C.Mask;
      auto It = UpperSeed.emplace(C.Lhs.getVar(), UsedBits).first;
      It->second &= Cap;
    }
  }

  // External nodes: bound interface variables plus free variables adjacent
  // to the subgraph (environment variables such as globals).
  std::vector<QualVarId> Externals(S.BoundVars.begin(), S.BoundVars.end());
  for (const auto &Entry : Touched)
    if (!IsFresh(Entry.first))
      Externals.push_back(Entry.first);

  // (1) Lower-bound summaries: forward join propagation of local constants.
  std::unordered_map<QualVarId, uint64_t> Lower = LowerSeed;
  {
    std::vector<QualVarId> Work;
    for (const auto &Entry : LowerSeed)
      Work.push_back(Entry.first);
    while (!Work.empty()) {
      QualVarId V = Work.back();
      Work.pop_back();
      uint64_t Bits = Lower[V];
      auto It = Fwd.find(V);
      if (It == Fwd.end())
        continue;
      for (const LocalEdge &Edge : It->second) {
        uint64_t Add = Bits & Edge.Mask & ~Lower[Edge.Target];
        if (Add) {
          Lower[Edge.Target] |= Add;
          Work.push_back(Edge.Target);
        }
      }
    }
  }

  // (2) Upper-bound summaries: backward meet propagation.
  std::unordered_map<QualVarId, uint64_t> Upper = UpperSeed;
  {
    auto upperOf = [&](QualVarId V) {
      auto It = Upper.find(V);
      return It == Upper.end() ? UsedBits : It->second;
    };
    std::vector<QualVarId> Work;
    for (const auto &Entry : UpperSeed)
      Work.push_back(Entry.first);
    while (!Work.empty()) {
      QualVarId V = Work.back();
      Work.pop_back();
      uint64_t Bits = upperOf(V);
      auto It = Bwd.find(V);
      if (It == Bwd.end())
        continue;
      for (const LocalEdge &Edge : It->second) {
        uint64_t Cap = Bits | ~Edge.Mask;
        uint64_t Old = upperOf(Edge.Target);
        if ((Old & Cap) != Old) {
          Upper[Edge.Target] = Old & Cap;
          Work.push_back(Edge.Target);
        }
      }
    }
  }

  // (3) Bit-masked reachability between external nodes, one BFS per source.
  auto emitPair = [&](QualVarId From, QualVarId To, uint64_t Bits) {
    if (From == To)
      return;
    // Pairs of free variables are already linked in the global system.
    if (!S.BoundSet.count(From) && !S.BoundSet.count(To))
      return;
    S.Canned.push_back({QualExpr::makeVar(From), QualExpr::makeVar(To),
                        Bits,
                        ConstraintOrigin("scheme summary edge")});
  };

  std::unordered_map<QualVarId, uint64_t> Reach;
  for (QualVarId Source : Externals) {
    Reach.clear();
    Reach[Source] = UsedBits;
    std::vector<QualVarId> Work{Source};
    while (!Work.empty()) {
      QualVarId V = Work.back();
      Work.pop_back();
      uint64_t Bits = Reach[V];
      auto It = Fwd.find(V);
      if (It == Fwd.end())
        continue;
      for (const LocalEdge &Edge : It->second) {
        uint64_t Add = Bits & Edge.Mask & ~Reach[Edge.Target];
        if (Add) {
          Reach[Edge.Target] |= Add;
          Work.push_back(Edge.Target);
        }
      }
    }
    for (QualVarId Target : Externals) {
      auto It = Reach.find(Target);
      if (It != Reach.end() && Target != Source)
        emitPair(Source, Target, It->second);
    }
  }

  // Constant summaries for the bound interface variables. (Free variables
  // already carry their local constant bounds in the global system.)
  for (QualVarId V : S.BoundVars) {
    auto L = Lower.find(V);
    if (L != Lower.end() && L->second)
      S.Canned.push_back({QualExpr::makeConst(LatticeValue(L->second)),
                          QualExpr::makeVar(V), UsedBits,
                          ConstraintOrigin("scheme lower-bound summary")});
    auto U = Upper.find(V);
    if (U != Upper.end() && (U->second & UsedBits) != UsedBits)
      S.Canned.push_back({QualExpr::makeVar(V),
                          QualExpr::makeConst(LatticeValue(U->second)),
                          UsedBits,
                          ConstraintOrigin("scheme upper-bound summary")});
  }

  return S;
}

QualType QualScheme::instantiate(ConstraintSystem &Sys,
                                 QualTypeFactory &Factory,
                                 SourceLoc Loc) const {
  if (BoundVars.empty())
    return Body;

  std::unordered_map<QualVarId, QualVarId> Fresh;
  Fresh.reserve(BoundVars.size());
  for (QualVarId V : BoundVars)
    Fresh.emplace(V, Sys.freshVar(Sys.getVarName(V) + "'", Loc));

  auto MapVar = [&Fresh](QualVarId V) {
    auto It = Fresh.find(V);
    return QualExpr::makeVar(It == Fresh.end() ? V : It->second);
  };
  auto MapExpr = [&MapVar](QualExpr E) {
    return E.isVar() ? MapVar(E.getVar()) : E;
  };

  for (const Constraint &C : Canned)
    Sys.addLeqMasked(MapExpr(C.Lhs), MapExpr(C.Rhs), C.Mask, C.Origin);

  return Factory.substitute(Body, MapVar);
}

//===- qual/QualType.h - Qualified types over user constructors -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's qualified types (Section 2.1):
///
///   QTyp ::= Q tau      tau ::= c(QTyp_1, ..., QTyp_arity(c))
///
/// Types are terms over a user-registered signature of type constructors,
/// with a qualifier expression on every level. Each constructor declares the
/// *variance* of each argument position, which drives the structural
/// subtyping decomposition (Subtype.h): functions are contravariant in the
/// domain and covariant in the range (SubFun), updateable references are
/// invariant in their contents (SubRef -- the paper's fix for the classic
/// unsound ref-subtyping rule).
///
/// Type variables are not needed at this level: per the paper's two-phase
/// factorization, the standard type system resolves all type structure
/// *before* qualifier inference, so qualified types are always fully
/// constructed (Observation 1: qualifiers never change the type structure).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_QUALTYPE_H
#define QUALS_QUAL_QUALTYPE_H

#include "qual/ConstraintSystem.h"
#include "qual/QualExpr.h"
#include "support/Allocator.h"

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace quals {

/// Subtyping behaviour of one constructor argument position.
enum class Variance {
  Covariant,     ///< arg_1 <= arg_2 required (e.g. function results).
  Contravariant, ///< arg_2 <= arg_1 required (e.g. function parameters).
  Invariant      ///< arg_1 = arg_2 required (e.g. ref contents, SubRef).
};

/// How a constructor renders in pretty-printed types.
enum class PrintStyle {
  Prefix, ///< name(arg1, arg2)  -- and bare "name" for arity 0.
  Infix   ///< (arg1 name arg2)  -- arity-2 only, e.g. "->".
};

/// A type constructor c in Sigma with its arity and per-argument variance.
class TypeCtor {
public:
  TypeCtor(std::string Name, std::vector<Variance> ArgVariance,
           PrintStyle Style = PrintStyle::Prefix)
      : Name(std::move(Name)), ArgVariance(std::move(ArgVariance)),
        Style(Style) {
    assert((Style != PrintStyle::Infix || arity() == 2) &&
           "infix constructors must be binary");
  }

  const std::string &getName() const { return Name; }
  unsigned arity() const { return ArgVariance.size(); }
  Variance getVariance(unsigned Arg) const {
    assert(Arg < ArgVariance.size() && "argument index out of range");
    return ArgVariance[Arg];
  }
  PrintStyle getPrintStyle() const { return Style; }

private:
  std::string Name;
  std::vector<Variance> ArgVariance;
  PrintStyle Style;
};

class QualType;

/// Arena-allocated application of a constructor to qualified-type arguments.
struct ShapeNode {
  const TypeCtor *Ctor;
  const QualType *Args; ///< Arena array of Ctor->arity() children.
};

/// A qualified type Q tau: a qualifier expression plus a shape. Cheap value
/// type (two words + qual expr); shapes are interned per factory call.
class QualType {
public:
  QualType() : Shape(nullptr) {}
  QualType(QualExpr Qual, const ShapeNode *Shape)
      : Qual(Qual), Shape(Shape) {}

  bool isNull() const { return Shape == nullptr; }

  QualExpr getQual() const { return Qual; }
  const TypeCtor *getCtor() const {
    assert(Shape && "null qualified type");
    return Shape->Ctor;
  }
  unsigned getNumArgs() const { return getCtor()->arity(); }
  QualType getArg(unsigned I) const {
    assert(Shape && I < getNumArgs() && "argument index out of range");
    return Shape->Args[I];
  }
  const ShapeNode *getShape() const { return Shape; }

  /// Returns the same type with its top-level qualifier replaced, sharing
  /// the shape (used by the annotation rule, which retypes l e at l tau).
  QualType withQual(QualExpr NewQual) const {
    return QualType(NewQual, Shape);
  }

  /// Structural equality of shapes (same constructors everywhere),
  /// ignoring qualifiers.
  bool shapeEquals(QualType Other) const;

  /// Calls \p Fn on this type and every nested qualified type, preorder.
  void visit(const std::function<void(QualType)> &Fn) const;

private:
  QualExpr Qual;
  const ShapeNode *Shape;
};

/// Allocates qualified types. Owns the arena backing every shape node it
/// creates; types remain valid while the factory lives.
class QualTypeFactory {
public:
  /// Builds Q c(Args...).
  QualType make(QualExpr Qual, const TypeCtor *Ctor,
                const std::vector<QualType> &Args);

  /// Builds a nullary Q c.
  QualType make(QualExpr Qual, const TypeCtor *Ctor) {
    return make(Qual, Ctor, std::vector<QualType>());
  }

  /// Rebuilds \p T with every qualifier variable remapped through \p MapVar
  /// (variables not in the map's domain are kept). Used by scheme
  /// instantiation.
  QualType substitute(
      QualType T,
      const std::function<QualExpr(QualVarId)> &MapVar);

  /// The sp operator of Section 3.1: rebuilds \p T with *fresh* qualifier
  /// variables at every level, preserving the shape. \p Sys provides fresh
  /// variables; \p NameHint labels them for diagnostics.
  QualType spread(ConstraintSystem &Sys, QualType T,
                  const std::string &NameHint, SourceLoc Loc = SourceLoc());

private:
  BumpPtrAllocator Arena;
};

/// Renders a qualified type. Qualifier variables print as their name when
/// \p Sys is null; when \p Sys is provided (solved), variables print as
/// their least-solution lattice value.
std::string toString(const QualifierSet &QS, QualType T,
                     const ConstraintSystem *Sys = nullptr);

} // namespace quals

#endif // QUALS_QUAL_QUALTYPE_H

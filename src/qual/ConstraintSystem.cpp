//===- qual/ConstraintSystem.cpp - Atomic qualifier constraints -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"

#include "support/Metrics.h"
#include "support/Scc.h"
#include "support/TextTable.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>

using namespace quals;

QualVarId ConstraintSystem::freshVar(std::string Name, SourceLoc Loc) {
  VarInfo V;
  V.Name = std::move(Name);
  V.Loc = Loc;
  V.Lower = QS.bottom();
  V.Upper = QS.top();
  Vars.push_back(std::move(V));
  QualVarId Id = Reps.makeSet();
  (void)Id;
  assert(Id + 1 == Vars.size() && "rep ids must mirror var ids");
  return Vars.size() - 1;
}

void ConstraintSystem::addLeq(QualExpr Lhs, QualExpr Rhs,
                              ConstraintOrigin Origin) {
  addLeqMasked(Lhs, Rhs, QS.usedBits(), std::move(Origin));
}

void ConstraintSystem::addLeqMasked(QualExpr Lhs, QualExpr Rhs, uint64_t Mask,
                                    ConstraintOrigin Origin) {
  if (Config.MaxConstraints && Constraints.size() >= Config.MaxConstraints) {
    // Dropping the constraint keeps every invariant intact; the latch below
    // forces callers onto their resource-limit failure path before any
    // solution could be reported.
    ConstraintLimitHit = true;
    return;
  }
  ConstraintId Id = Constraints.size();
  Constraints.push_back({Lhs, Rhs, Mask, std::move(Origin)});
  if (Lhs.isVar() && Rhs.isVar()) {
    VarVarEdges.push_back(Id);
    ++NewVarVarEdges;
    // Representatives are stable between rebuilds, so keying the pending
    // lists by the current representative keeps them reachable from the
    // worklist propagation until the next rebuild folds them into the CSR.
    QualVarId L = Reps.find(Lhs.getVar());
    QualVarId R = Reps.find(Rhs.getVar());
    if (Vars[L].PendingSuccHead == ~0u && Vars[L].PendingPredHead == ~0u)
      PendingTouched.push_back(L);
    PendingPool.push_back({Id, Vars[L].PendingSuccHead});
    Vars[L].PendingSuccHead = PendingPool.size() - 1;
    if (Vars[R].PendingSuccHead == ~0u && Vars[R].PendingPredHead == ~0u)
      PendingTouched.push_back(R);
    PendingPool.push_back({Id, Vars[R].PendingPredHead});
    Vars[R].PendingPredHead = PendingPool.size() - 1;
    return;
  }
  if (Rhs.isConst()) {
    if (Lhs.isConst())
      ConstConstIds.push_back(Id);
    else
      UpperBoundIds.push_back(Id);
  }
}

void ConstraintSystem::addEq(QualExpr Lhs, QualExpr Rhs,
                             ConstraintOrigin Origin) {
  addLeq(Lhs, Rhs, Origin);
  addLeq(Rhs, Lhs, std::move(Origin));
}

bool ConstraintSystem::raiseLower(QualVarId Rep, LatticeValue NewBits,
                                  ConstraintId Cause) {
  uint64_t Gained = NewBits.bits() & ~Vars[Rep].Lower.bits();
  if (!Gained)
    return false;
  Vars[Rep].Lower = Vars[Rep].Lower.join(NewBits);
  Vars[Rep].FirstSet.push_back({Gained, Cause, ProvClock++});
  return true;
}

bool ConstraintSystem::capUpper(QualVarId Rep, LatticeValue Cap) {
  LatticeValue NewUpper = Vars[Rep].Upper.meet(Cap);
  if (NewUpper == Vars[Rep].Upper)
    return false;
  Vars[Rep].Upper = NewUpper;
  return true;
}

QualVarId ConstraintSystem::mergeReps(QualVarId A, QualVarId B) {
  assert(A != B && "merging a representative with itself");
  QualVarId Win = Reps.unite(A, B);
  QualVarId Lose = Win == A ? B : A;
  VarInfo &W = Vars[Win];
  VarInfo &L = Vars[Lose];
  W.Lower = W.Lower.join(L.Lower);
  W.Upper = W.Upper.meet(L.Upper);
  // Keep every provenance event; explain() selects the minimum-time event
  // per bit, which is the one whose cause lies outside the merged component.
  W.FirstSet.insert(W.FirstSet.end(), L.FirstSet.begin(), L.FirstSet.end());
  // clear() keeps the loser's capacity until destruction: the loser is
  // never a representative again, so its list is dead, and deferring the
  // free keeps rebuilds out of the allocator.
  L.FirstSet.clear();
  ++Stats.VarsCollapsed;
  return Win;
}

bool ConstraintSystem::shouldRebuild() const {
  if (!Config.CollapseCycles || NewVarVarEdges == 0)
    return false;
  if (NewVarVarEdges < Config.CollapseMinNewEdges)
    return false;
  // Rebuild on demonstrated pressure only: the worklist must have traversed
  // the graph CollapsePressureFactor times over since the last rebuild.
  // Workloads that visit each edge at most about once (acyclic flows, a
  // single batch solve) never pay for a rebuild they could not recoup.
  return TotalEdgeVisits - VisitsAtRebuild >=
         uint64_t(Config.CollapsePressureFactor) * VarVarEdges.size();
}

void ConstraintSystem::rebuildCompactGraph(
    std::vector<QualVarId> &MergedReps) {
  unsigned N = Vars.size();

  // Everything below is counting sorts and CSR arrays -- O(V + E) with a
  // fixed number of large allocations, no per-node vectors and no
  // comparison sort. Deduplication runs FIRST so the Tarjan pass and the
  // collapse remap only ever touch the deduplicated edge set (constraint
  // generators restate the same flow freely, e.g. once per call site).
  struct RawEdge {
    QualVarId From, To;
    uint64_t Mask;
    ConstraintId Cons;
  };
  std::vector<RawEdge> Edges;
  Edges.reserve(VarVarEdges.size());
  for (ConstraintId Id : VarVarEdges) {
    const Constraint &C = Constraints[Id];
    QualVarId From = Reps.find(C.Lhs.getVar());
    QualVarId To = Reps.find(C.Rhs.getVar());
    if (From == To) {
      ++Stats.SelfEdgesDropped;
      continue;
    }
    Edges.push_back({From, To, C.Mask, Id});
  }

  std::vector<RawEdge> Tmp;
  std::vector<uint32_t> Count(N + 1);
  // Two stable counting-sort passes group the edges by (From, To) with
  // insertion order preserved inside each group; then duplicates (same
  // endpoints and mask) collapse to the group's first occurrence. Masks
  // within a group arrive unordered, so the dedup scans the group's kept
  // prefix -- groups are tiny (duplicates of one flow, usually one mask).
  auto sortAndDedup = [&] {
    Tmp.resize(Edges.size());
    auto pass = [&](const std::vector<RawEdge> &In, std::vector<RawEdge> &Out,
                    bool ByFrom) {
      std::fill(Count.begin(), Count.end(), 0);
      for (const RawEdge &E : In)
        ++Count[(ByFrom ? E.From : E.To) + 1];
      for (unsigned I = 0; I != N; ++I)
        Count[I + 1] += Count[I];
      for (const RawEdge &E : In)
        Out[Count[ByFrom ? E.From : E.To]++] = E;
    };
    pass(Edges, Tmp, /*ByFrom=*/false);
    pass(Tmp, Edges, /*ByFrom=*/true);
    size_t Unique = 0, GroupStart = 0;
    for (size_t I = 0; I != Edges.size(); ++I) {
      if (!Unique || Edges[Unique - 1].From != Edges[I].From ||
          Edges[Unique - 1].To != Edges[I].To) {
        GroupStart = Unique;
        Edges[Unique++] = Edges[I];
        continue;
      }
      bool Duplicate = false;
      for (size_t J = GroupStart; J != Unique && !Duplicate; ++J)
        Duplicate = Edges[J].Mask == Edges[I].Mask;
      if (Duplicate) {
        ++Stats.EdgesDeduped;
        continue;
      }
      Edges[Unique++] = Edges[I];
    }
    Edges.resize(Unique);
  };
  sortAndDedup();

  // Cycle pass: Tarjan over the unmasked deduplicated edges; every
  // multi-node component is a <=-cycle whose members provably share one
  // least and one greatest solution, so collapse it onto a representative.
  bool Merged = false;
  {
    std::fill(Count.begin(), Count.end(), 0);
    for (const RawEdge &E : Edges)
      if (isFullMask(E.Mask))
        ++Count[E.From + 1];
    for (unsigned I = 0; I != N; ++I)
      Count[I + 1] += Count[I];
    std::vector<uint32_t> Targets(Count[N]);
    {
      std::vector<uint32_t> Fill(Count.begin(), Count.end() - 1);
      for (const RawEdge &E : Edges)
        if (isFullMask(E.Mask))
          Targets[Fill[E.From]++] = E.To;
    }
    SccFlatResult Cycles =
        computeSccsFlat({N, Count.data(), Targets.data()});
    for (unsigned Comp = 0, NC = Cycles.numComponents(); Comp != NC;
         ++Comp) {
      uint32_t B = Cycles.CompStart[Comp], E = Cycles.CompStart[Comp + 1];
      if (E - B < 2)
        continue;
      ++Stats.SccsCollapsed;
      Merged = true;
      QualVarId Rep = Cycles.Order[B];
      for (uint32_t I = B + 1; I != E; ++I)
        Rep = mergeReps(Rep, Cycles.Order[I]);
      // The representative's solution state is the join of the whole
      // component's; the caller re-seeds it into the worklists.
      MergedReps.push_back(Rep);
    }
  }

  // If anything collapsed, remap the edges onto the new representatives:
  // intra-component edges vanish and formerly-distinct edges can become
  // parallel, so drop and re-dedup (still only over the deduplicated set).
  // Remaining cycles of the final graph can only run through masked edges;
  // the worklist handles those by plain fixpoint iteration.
  if (Merged) {
    size_t Kept = 0;
    for (size_t I = 0; I != Edges.size(); ++I) {
      RawEdge E = Edges[I];
      E.From = Reps.find(E.From);
      E.To = Reps.find(E.To);
      if (E.From == E.To) {
        ++Stats.SelfEdgesDropped;
        continue;
      }
      Edges[Kept++] = E;
    }
    Edges.resize(Kept);
    sortAndDedup();
  }

  // CSR rows (counting sort by endpoint; Edges is already sorted by From).
  SuccStart.assign(N + 1, 0);
  PredStart.assign(N + 1, 0);
  for (const RawEdge &E : Edges) {
    ++SuccStart[E.From + 1];
    ++PredStart[E.To + 1];
  }
  for (unsigned I = 0; I != N; ++I) {
    SuccStart[I + 1] += SuccStart[I];
    PredStart[I + 1] += PredStart[I];
  }
  SuccEdges = static_cast<CompactEdge *>(
      EdgeArena.allocate(sizeof(CompactEdge) * Edges.size(),
                         alignof(CompactEdge)));
  PredEdges = static_cast<CompactEdge *>(
      EdgeArena.allocate(sizeof(CompactEdge) * Edges.size(),
                         alignof(CompactEdge)));
  {
    std::vector<uint32_t> SuccFill(SuccStart.begin(), SuccStart.end() - 1);
    std::vector<uint32_t> PredFill(PredStart.begin(), PredStart.end() - 1);
    for (const RawEdge &E : Edges) {
      SuccEdges[SuccFill[E.From]++] = {E.Cons, E.To};
      PredEdges[PredFill[E.To]++] = {E.Cons, E.From};
    }
  }

  // Drop the pending lists: every edge is now in the CSR. PendingTouched
  // names exactly the vars holding one, so this is proportional to the
  // edges added since the last rebuild, not to the variable count.
  for (QualVarId V : PendingTouched) {
    Vars[V].PendingSuccHead = ~0u;
    Vars[V].PendingPredHead = ~0u;
  }
  PendingTouched.clear();
  PendingPool.clear();
  NewVarVarEdges = 0;
  VisitsAtRebuild = TotalEdgeVisits;
  ++Stats.CollapsePasses;
  Stats.CompactEdges = Edges.size();
  CompactEdgeCount = Edges.size();
  traceInstant("solver.rebuild", "qual",
               "\"compact_edges\":" + std::to_string(Edges.size()) +
                   ",\"sccs_collapsed\":" +
                   std::to_string(Stats.SccsCollapsed) +
                   ",\"vars_collapsed\":" +
                   std::to_string(Stats.VarsCollapsed));
}

void ConstraintSystem::runWorklists(std::vector<QualVarId> &LowerWork,
                                    std::vector<QualVarId> &UpperWork) {
  auto forEachSucc = [this](QualVarId V, auto &&Fn) {
    if (V + 1 < SuccStart.size())
      for (uint32_t I = SuccStart[V], E = SuccStart[V + 1]; I != E; ++I)
        Fn(SuccEdges[I].Cons, SuccEdges[I].Other);
    for (uint32_t I = Vars[V].PendingSuccHead; I != ~0u;
         I = PendingPool[I].Next) {
      ConstraintId Id = PendingPool[I].Cons;
      Fn(Id, Reps.find(Constraints[Id].Rhs.getVar()));
    }
  };
  auto forEachPred = [this](QualVarId V, auto &&Fn) {
    if (V + 1 < PredStart.size())
      for (uint32_t I = PredStart[V], E = PredStart[V + 1]; I != E; ++I)
        Fn(PredEdges[I].Cons, PredEdges[I].Other);
    for (uint32_t I = Vars[V].PendingPredHead; I != ~0u;
         I = PendingPool[I].Next) {
      ConstraintId Id = PendingPool[I].Cons;
      Fn(Id, Reps.find(Constraints[Id].Lhs.getVar()));
    }
  };

  // Tier-up on demonstrated pressure: once the drain has re-visited edges
  // often enough to pay for a rebuild (see shouldRebuild), compact the
  // graph in place and resume. Representatives that absorbed a merge took
  // on their component's joined bounds, so they re-enter both worklists;
  // entries naming a merged-away variable are redirected at pop below.
  auto maybeTierUp = [&] {
    if (!shouldRebuild())
      return;
    std::vector<QualVarId> Merged;
    rebuildCompactGraph(Merged);
    for (QualVarId R : Merged) {
      LowerWork.push_back(R);
      UpperWork.push_back(R);
    }
    Stats.WorklistPushes += 2 * Merged.size();
  };

  // The upper drain can re-fill the lower worklist through a mid-drain
  // merge, hence the outer loop; without a merge each inner loop empties
  // its list for good.
  while (!LowerWork.empty() || !UpperWork.empty()) {
    // Forward join propagation: least solution of the lower bounds.
    while (!LowerWork.empty()) {
      maybeTierUp();
      QualVarId V = Reps.find(LowerWork.back());
      LowerWork.pop_back();
      LatticeValue LV = Vars[V].Lower;
      forEachSucc(V, [&](ConstraintId Id, QualVarId To) {
        ++Stats.EdgeVisits;
        ++TotalEdgeVisits;
        const Constraint &C = Constraints[Id];
        if (raiseLower(To, LatticeValue(LV.bits() & C.Mask), Id)) {
          LowerWork.push_back(To);
          ++Stats.WorklistPushes;
        }
      });
    }

    // Backward meet propagation: greatest solution of the upper bounds.
    while (!UpperWork.empty()) {
      maybeTierUp();
      QualVarId V = Reps.find(UpperWork.back());
      UpperWork.pop_back();
      LatticeValue UV = Vars[V].Upper;
      forEachPred(V, [&](ConstraintId Id, QualVarId From) {
        ++Stats.EdgeVisits;
        ++TotalEdgeVisits;
        const Constraint &C = Constraints[Id];
        if (capUpper(From, LatticeValue(UV.bits() | ~C.Mask))) {
          UpperWork.push_back(From);
          ++Stats.WorklistPushes;
        }
      });
    }
  }
}

bool ConstraintSystem::solve() {
  PhaseScope Phase("solve", "qual");
  Timer SolveTimer;
  // Work counters describe one solve; lifetime accounting that must survive
  // (rebuild pressure) lives in TotalEdgeVisits/CompactEdgeCount.
  Stats.reset();
  ++Stats.SolveCalls;

  std::vector<QualVarId> LowerWork;
  std::vector<QualVarId> UpperWork;

  // Pressure accumulated over earlier solves may already justify a rebuild;
  // doing it before seeding lets the new constraints land straight in the
  // compact graph. Merged representatives changed value, so they propagate.
  if (shouldRebuild()) {
    std::vector<QualVarId> Merged;
    rebuildCompactGraph(Merged);
    for (QualVarId R : Merged) {
      LowerWork.push_back(R);
      UpperWork.push_back(R);
    }
  }

  // Seed the solution state from constraints added since the last solve.
  for (ConstraintId Id = SolvedConstraints, E = Constraints.size(); Id != E;
       ++Id) {
    const Constraint &C = Constraints[Id];
    if (C.Lhs.isConst() && C.Rhs.isVar()) {
      QualVarId R = Reps.find(C.Rhs.getVar());
      if (raiseLower(R, LatticeValue(C.Lhs.getConst().bits() & C.Mask), Id))
        LowerWork.push_back(R);
    } else if (C.Lhs.isVar() && C.Rhs.isVar()) {
      // A new edge may carry an already-known lower bound forward and an
      // already-known upper bound backward.
      QualVarId L = Reps.find(C.Lhs.getVar());
      QualVarId R = Reps.find(C.Rhs.getVar());
      if (raiseLower(R, LatticeValue(Vars[L].Lower.bits() & C.Mask), Id))
        LowerWork.push_back(R);
      if (capUpper(L, LatticeValue(Vars[R].Upper.bits() | ~C.Mask)))
        UpperWork.push_back(L);
    } else if (C.Lhs.isVar() && C.Rhs.isConst()) {
      QualVarId L = Reps.find(C.Lhs.getVar());
      if (capUpper(L, LatticeValue(C.Rhs.getConst().bits() | ~C.Mask)))
        UpperWork.push_back(L);
    }
    // const <= const constraints are checked in collectViolations().
  }
  SolvedConstraints = Constraints.size();

  Stats.WorklistPushes += LowerWork.size() + UpperWork.size();
  runWorklists(LowerWork, UpperWork);

  // Satisfiable iff no variable's required bits exceed its allowed bits and
  // no direct upper bound fails; a cheap necessary-and-sufficient check is
  // lower <= upper on every representative plus the const-const constraints.
  bool Ok = true;
  for (QualVarId V = 0, N = Vars.size(); Ok && V != N; ++V) {
    if (Reps.find(V) != V)
      continue;
    if (!Vars[V].Lower.subsumedBy(Vars[V].Upper))
      Ok = false;
  }
  for (size_t I = 0; Ok && I != ConstConstIds.size(); ++I) {
    const Constraint &C = Constraints[ConstConstIds[I]];
    if ((C.Lhs.getConst().bits() & C.Mask) & ~C.Rhs.getConst().bits())
      Ok = false;
  }
  Stats.SolveSeconds += SolveTimer.seconds();
  if (MetricsRegistry::collecting())
    getStats().publishTo(MetricsRegistry::global());
  return Ok;
}

bool ConstraintSystem::mustHave(QualVarId Var, QualifierId Id) const {
  // Positive qualifier: present iff bit set, and the bit is set in every
  // solution iff it is in the least solution. Negative qualifier: present iff
  // bit clear, and the bit is clear in every solution iff it is not in the
  // greatest solution.
  if (QS.get(Id).Pol == Polarity::Positive)
    return (lower(Var).bits() & QS.bitFor(Id)) != 0;
  return (upper(Var).bits() & QS.bitFor(Id)) == 0;
}

bool ConstraintSystem::mayHave(QualVarId Var, QualifierId Id) const {
  if (QS.get(Id).Pol == Polarity::Positive)
    return (upper(Var).bits() & QS.bitFor(Id)) != 0;
  return (lower(Var).bits() & QS.bitFor(Id)) == 0;
}

std::vector<Violation> ConstraintSystem::collectViolations() const {
  assert(SolvedConstraints == Constraints.size() && "call solve() first");
  std::vector<Violation> Result;
  for (ConstraintId Id : UpperBoundIds) {
    const Constraint &C = Constraints[Id];
    LatticeValue Actual = lower(C.Lhs.getVar());
    uint64_t Off = (Actual.bits() & C.Mask) & ~C.Rhs.getConst().bits();
    if (Off)
      Result.push_back({Id, Actual, C.Rhs.getConst(), Off});
  }
  for (ConstraintId Id : ConstConstIds) {
    const Constraint &C = Constraints[Id];
    uint64_t Off =
        (C.Lhs.getConst().bits() & C.Mask) & ~C.Rhs.getConst().bits();
    if (Off)
      Result.push_back({Id, C.Lhs.getConst(), C.Rhs.getConst(), Off});
  }
  return Result;
}

bool ConstraintSystem::isSatisfiable() {
  if (!solve())
    return false;
  return collectViolations().empty();
}

std::string ConstraintSystem::explain(const Violation &V) const {
  // Follow the provenance of the lowest offending bit backwards from the
  // violated constraint's left-hand side to the constant that introduced it.
  uint64_t Bit = V.OffendingBits & ~(V.OffendingBits - 1);

  // Name every offending qualifier component in the header line.
  const Constraint &Cause = Constraints[V.Cause];
  std::string Out = "qualifier constraint violated (";
  bool First = true;
  for (unsigned I = 0, E = QS.size(); I != E; ++I) {
    if (!(V.OffendingBits & QS.bitFor(I)))
      continue;
    if (!First)
      Out += "; ";
    First = false;
    const Qualifier &Q = QS.get(I);
    if (Q.Pol == Polarity::Positive) {
      Out += "qualifier '";
      Out += Q.Name;
      Out += "' not allowed here";
    } else {
      Out += "qualifier '";
      Out += Q.Name;
      Out += "' required here";
    }
  }
  Out += ")";
  Out += "\n  bound: ";
  Out += Cause.Origin.Reason;
  Out += '\n';

  // Walk the first-set provenance chain. At each variable the minimum-time
  // event for the bit is chosen: after cycle collapsing a representative's
  // event list is the concatenation of its members' lists, and the earliest
  // event is the one that carried the bit *into* the component (its cause's
  // left-hand side is a constant or an earlier, outside variable), so the
  // walk strictly decreases in time and cannot cycle.
  QualExpr Cur = Cause.Lhs;
  unsigned Guard = 0;
  while (Cur.isVar() && Guard++ < 1000) {
    QualVarId Rep = Reps.find(Cur.getVar());
    const VarInfo &Info = Vars[Rep];
    const ProvEvent *Event = nullptr;
    for (const ProvEvent &E : Info.FirstSet)
      if ((E.Gained & Bit) && (!Event || E.Time < Event->Time))
        Event = &E;
    if (!Event)
      break; // Bit came from the variable's initial value (impossible for
             // lower bounds, but be defensive).
    const Constraint &Step = Constraints[Event->Cause];
    Out += "  via: ";
    Out += Step.Origin.Reason.empty() ? "(unlabeled constraint)"
                                      : Step.Origin.Reason;
    Out += '\n';
    if (Step.Lhs == Cur)
      break; // Self-edge; stop rather than loop.
    if (Step.Lhs.isVar() && Reps.find(Step.Lhs.getVar()) == Rep)
      break; // Cause inside the same collapsed component; defensive stop.
    Cur = Step.Lhs;
  }
  if (Cur.isConst()) {
    Out += "  source: qualifier constant '";
    Out += QS.toString(Cur.getConst());
    Out += "'\n";
  }
  return Out;
}

SolverStats ConstraintSystem::getStats() const {
  SolverStats S = Stats;
  S.NumVars = Vars.size();
  S.NumConstraints = Constraints.size();
  S.VarVarEdges = VarVarEdges.size();
  S.CompactEdges = CompactEdgeCount;
  return S;
}

void SolverStats::publishTo(MetricsRegistry &R) const {
  R.gauge("solver.vars").set(NumVars);
  R.gauge("solver.constraints").set(NumConstraints);
  R.gauge("solver.var_var_edges").set(VarVarEdges);
  R.gauge("solver.compact_edges").set(CompactEdges);
  R.counter("solver.solve_calls").add(SolveCalls);
  R.counter("solver.collapse_passes").add(CollapsePasses);
  R.counter("solver.sccs_collapsed").add(SccsCollapsed);
  R.counter("solver.vars_collapsed").add(VarsCollapsed);
  R.counter("solver.edges_deduped").add(EdgesDeduped);
  R.counter("solver.self_edges_dropped").add(SelfEdgesDropped);
  R.counter("solver.worklist_pushes").add(WorklistPushes);
  R.counter("solver.edge_visits").add(EdgeVisits);
  R.timer("solver.solve").addSeconds(SolveSeconds);
}

std::string quals::renderSolverStats(const SolverStats &S) {
  TextTable T;
  T.addColumn("Solver metric");
  T.addColumn("Value", Align::Right);
  auto Row = [&T](const char *Name, uint64_t Value) {
    T.addRow({Name, std::to_string(Value)});
  };
  Row("qualifier vars", S.NumVars);
  Row("constraints", S.NumConstraints);
  Row("var->var edges", S.VarVarEdges);
  Row("compact edges (post-rebuild)", S.CompactEdges);
  Row("solve() calls", S.SolveCalls);
  Row("collapse passes", S.CollapsePasses);
  Row("cycles (SCCs) collapsed", S.SccsCollapsed);
  Row("vars folded into a rep", S.VarsCollapsed);
  Row("parallel edges deduped", S.EdgesDeduped);
  Row("intra-component edges dropped", S.SelfEdgesDropped);
  Row("worklist pushes", S.WorklistPushes);
  Row("edge visits", S.EdgeVisits);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", S.SolveSeconds * 1000.0);
  T.addRow({"solve time (ms)", Buf});
  return T.render();
}

//===- qual/ConstraintSystem.cpp - Atomic qualifier constraints -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"

#include <algorithm>

using namespace quals;

QualVarId ConstraintSystem::freshVar(std::string Name, SourceLoc Loc) {
  VarInfo V;
  V.Name = std::move(Name);
  V.Loc = Loc;
  V.Lower = QS.bottom();
  V.Upper = QS.top();
  Vars.push_back(std::move(V));
  return Vars.size() - 1;
}

void ConstraintSystem::addLeq(QualExpr Lhs, QualExpr Rhs,
                              ConstraintOrigin Origin) {
  addLeqMasked(Lhs, Rhs, QS.usedBits(), std::move(Origin));
}

void ConstraintSystem::addLeqMasked(QualExpr Lhs, QualExpr Rhs, uint64_t Mask,
                                    ConstraintOrigin Origin) {
  ConstraintId Id = Constraints.size();
  Constraints.push_back({Lhs, Rhs, Mask, std::move(Origin)});
  if (Lhs.isVar() && Rhs.isVar()) {
    Vars[Lhs.getVar()].Succs.push_back(Id);
    Vars[Rhs.getVar()].Preds.push_back(Id);
    return;
  }
  if (Rhs.isConst()) {
    if (Lhs.isConst())
      ConstConstIds.push_back(Id);
    else
      UpperBoundIds.push_back(Id);
  }
}

void ConstraintSystem::addEq(QualExpr Lhs, QualExpr Rhs,
                             ConstraintOrigin Origin) {
  addLeq(Lhs, Rhs, Origin);
  addLeq(Rhs, Lhs, std::move(Origin));
}

void ConstraintSystem::raiseLower(QualVarId Var, LatticeValue NewBits,
                                  ConstraintId Cause,
                                  std::vector<QualVarId> &Worklist) {
  uint64_t Gained = NewBits.bits() & ~Vars[Var].Lower.bits();
  if (!Gained)
    return;
  Vars[Var].Lower = Vars[Var].Lower.join(NewBits);
  Vars[Var].FirstSet.push_back({Gained, Cause});
  Worklist.push_back(Var);
}

bool ConstraintSystem::solve() {
  std::vector<QualVarId> LowerWork;
  std::vector<QualVarId> UpperWork;

  // Seed the worklists from constraints added since the last solve.
  for (ConstraintId Id = SolvedConstraints, E = Constraints.size(); Id != E;
       ++Id) {
    const Constraint &C = Constraints[Id];
    if (C.Lhs.isConst() && C.Rhs.isVar()) {
      raiseLower(C.Rhs.getVar(),
                 LatticeValue(C.Lhs.getConst().bits() & C.Mask), Id,
                 LowerWork);
    } else if (C.Lhs.isVar() && C.Rhs.isVar()) {
      // A new edge may carry already-known lower bounds forward and
      // already-known upper bounds backward.
      QualVarId L = C.Lhs.getVar(), R = C.Rhs.getVar();
      raiseLower(R, LatticeValue(Vars[L].Lower.bits() & C.Mask), Id,
                 LowerWork);
      LatticeValue Cap(Vars[R].Upper.bits() | ~C.Mask);
      LatticeValue NewUpper = Vars[L].Upper.meet(Cap);
      if (NewUpper != Vars[L].Upper) {
        Vars[L].Upper = NewUpper;
        UpperWork.push_back(L);
      }
    } else if (C.Lhs.isVar() && C.Rhs.isConst()) {
      QualVarId L = C.Lhs.getVar();
      LatticeValue Cap(C.Rhs.getConst().bits() | ~C.Mask);
      LatticeValue NewUpper = Vars[L].Upper.meet(Cap);
      if (NewUpper != Vars[L].Upper) {
        Vars[L].Upper = NewUpper;
        UpperWork.push_back(L);
      }
    }
    // const <= const constraints are checked in collectViolations().
  }
  SolvedConstraints = Constraints.size();

  // Forward join propagation: least solution of the lower bounds.
  while (!LowerWork.empty()) {
    QualVarId V = LowerWork.back();
    LowerWork.pop_back();
    LatticeValue LV = Vars[V].Lower;
    for (ConstraintId Id : Vars[V].Succs) {
      const Constraint &C = Constraints[Id];
      raiseLower(C.Rhs.getVar(), LatticeValue(LV.bits() & C.Mask), Id,
                 LowerWork);
    }
  }

  // Backward meet propagation: greatest solution of the upper bounds.
  while (!UpperWork.empty()) {
    QualVarId V = UpperWork.back();
    UpperWork.pop_back();
    LatticeValue UV = Vars[V].Upper;
    for (ConstraintId Id : Vars[V].Preds) {
      const Constraint &C = Constraints[Id];
      QualVarId L = C.Lhs.getVar();
      LatticeValue Cap(UV.bits() | ~C.Mask);
      LatticeValue NewUpper = Vars[L].Upper.meet(Cap);
      if (NewUpper != Vars[L].Upper) {
        Vars[L].Upper = NewUpper;
        UpperWork.push_back(L);
      }
    }
  }

  // Satisfiable iff no variable's required bits exceed its allowed bits and
  // no direct upper bound fails; a cheap necessary-and-sufficient check is
  // lower <= upper everywhere plus the const-const constraints.
  for (const VarInfo &V : Vars)
    if (!V.Lower.subsumedBy(V.Upper))
      return false;
  for (ConstraintId Id : ConstConstIds) {
    const Constraint &C = Constraints[Id];
    if ((C.Lhs.getConst().bits() & C.Mask) & ~C.Rhs.getConst().bits())
      return false;
  }
  return true;
}

bool ConstraintSystem::mustHave(QualVarId Var, QualifierId Id) const {
  // Positive qualifier: present iff bit set, and the bit is set in every
  // solution iff it is in the least solution. Negative qualifier: present iff
  // bit clear, and the bit is clear in every solution iff it is not in the
  // greatest solution.
  if (QS.get(Id).Pol == Polarity::Positive)
    return (lower(Var).bits() & QS.bitFor(Id)) != 0;
  return (upper(Var).bits() & QS.bitFor(Id)) == 0;
}

bool ConstraintSystem::mayHave(QualVarId Var, QualifierId Id) const {
  if (QS.get(Id).Pol == Polarity::Positive)
    return (upper(Var).bits() & QS.bitFor(Id)) != 0;
  return (lower(Var).bits() & QS.bitFor(Id)) == 0;
}

std::vector<Violation> ConstraintSystem::collectViolations() const {
  assert(SolvedConstraints == Constraints.size() && "call solve() first");
  std::vector<Violation> Result;
  for (ConstraintId Id : UpperBoundIds) {
    const Constraint &C = Constraints[Id];
    LatticeValue Actual = Vars[C.Lhs.getVar()].Lower;
    uint64_t Off = (Actual.bits() & C.Mask) & ~C.Rhs.getConst().bits();
    if (Off)
      Result.push_back({Id, Actual, C.Rhs.getConst(), Off});
  }
  for (ConstraintId Id : ConstConstIds) {
    const Constraint &C = Constraints[Id];
    uint64_t Off =
        (C.Lhs.getConst().bits() & C.Mask) & ~C.Rhs.getConst().bits();
    if (Off)
      Result.push_back({Id, C.Lhs.getConst(), C.Rhs.getConst(), Off});
  }
  return Result;
}

bool ConstraintSystem::isSatisfiable() {
  if (!solve())
    return false;
  return collectViolations().empty();
}

std::string ConstraintSystem::explain(const Violation &V) const {
  // Follow the provenance of the lowest offending bit backwards from the
  // violated constraint's left-hand side to the constant that introduced it.
  uint64_t Bit = V.OffendingBits & ~(V.OffendingBits - 1);

  // Name every offending qualifier component in the header line.
  const Constraint &Cause = Constraints[V.Cause];
  std::string Out = "qualifier constraint violated (";
  bool First = true;
  for (unsigned I = 0, E = QS.size(); I != E; ++I) {
    if (!(V.OffendingBits & QS.bitFor(I)))
      continue;
    if (!First)
      Out += "; ";
    First = false;
    const Qualifier &Q = QS.get(I);
    if (Q.Pol == Polarity::Positive) {
      Out += "qualifier '";
      Out += Q.Name;
      Out += "' not allowed here";
    } else {
      Out += "qualifier '";
      Out += Q.Name;
      Out += "' required here";
    }
  }
  Out += ")";
  Out += "\n  bound: ";
  Out += Cause.Origin.Reason;
  Out += '\n';

  // Walk the first-set provenance chain.
  QualExpr Cur = Cause.Lhs;
  unsigned Guard = 0;
  while (Cur.isVar() && Guard++ < 1000) {
    QualVarId Var = Cur.getVar();
    const VarInfo &Info = Vars[Var];
    const std::pair<uint64_t, ConstraintId> *Event = nullptr;
    for (const auto &E : Info.FirstSet) {
      if (E.first & Bit) {
        Event = &E;
        break;
      }
    }
    if (!Event)
      break; // Bit came from the variable's initial value (impossible for
             // lower bounds, but be defensive).
    const Constraint &Step = Constraints[Event->second];
    Out += "  via: ";
    Out += Step.Origin.Reason.empty() ? "(unlabeled constraint)"
                                      : Step.Origin.Reason;
    Out += '\n';
    if (Step.Lhs == Cur)
      break; // Self-edge; stop rather than loop.
    Cur = Step.Lhs;
  }
  if (Cur.isConst()) {
    Out += "  source: qualifier constant '";
    Out += QS.toString(Cur.getConst());
    Out += "'\n";
  }
  return Out;
}

//===- qual/ConstraintSystem.cpp - Atomic qualifier constraints -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"

#include "support/Metrics.h"
#include "support/Scc.h"
#include "support/TextTable.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>

using namespace quals;

QualVarId ConstraintSystem::freshVar(std::string Name, SourceLoc Loc) {
  VarInfo V;
  V.Name = std::move(Name);
  V.Loc = Loc;
  V.Lower = QS.bottom();
  V.Upper = QS.top();
  Vars.push_back(std::move(V));
  QualVarId Id = Reps.makeSet();
  (void)Id;
  assert(Id + 1 == Vars.size() && "rep ids must mirror var ids");
  return Vars.size() - 1;
}

void ConstraintSystem::addLeq(QualExpr Lhs, QualExpr Rhs,
                              ConstraintOrigin Origin) {
  addLeqMasked(Lhs, Rhs, QS.usedBits(), std::move(Origin));
}

void ConstraintSystem::addLeqMasked(QualExpr Lhs, QualExpr Rhs, uint64_t Mask,
                                    ConstraintOrigin Origin) {
  if (Config.MaxConstraints && Constraints.size() >= Config.MaxConstraints) {
    // Dropping the constraint keeps every invariant intact; the latch below
    // forces callers onto their resource-limit failure path before any
    // solution could be reported.
    ConstraintLimitHit = true;
    return;
  }
  ConstraintId Id = Constraints.size();
  Constraints.push_back({Lhs, Rhs, Mask, std::move(Origin)});
  if (Lhs.isVar() && Rhs.isVar()) {
    VarVarEdges.push_back(Id);
    ++NewVarVarEdges;
    // Representatives are stable between rebuilds, so keying the pending
    // lists by the current representative keeps them reachable from the
    // worklist propagation until the next rebuild folds them into the CSR.
    QualVarId L = Reps.find(Lhs.getVar());
    QualVarId R = Reps.find(Rhs.getVar());
    if (Vars[L].PendingSuccHead == ~0u && Vars[L].PendingPredHead == ~0u)
      PendingTouched.push_back(L);
    PendingPool.push_back({Id, Vars[L].PendingSuccHead});
    Vars[L].PendingSuccHead = PendingPool.size() - 1;
    if (Vars[R].PendingSuccHead == ~0u && Vars[R].PendingPredHead == ~0u)
      PendingTouched.push_back(R);
    PendingPool.push_back({Id, Vars[R].PendingPredHead});
    Vars[R].PendingPredHead = PendingPool.size() - 1;
    return;
  }
  if (Rhs.isConst()) {
    if (Lhs.isConst())
      ConstConstIds.push_back(Id);
    else
      UpperBoundIds.push_back(Id);
  }
}

void ConstraintSystem::addEq(QualExpr Lhs, QualExpr Rhs,
                             ConstraintOrigin Origin) {
  addLeq(Lhs, Rhs, Origin);
  addLeq(Rhs, Lhs, std::move(Origin));
}

bool ConstraintSystem::raiseLower(QualVarId Rep, LatticeValue NewBits) {
  uint64_t Gained = NewBits.bits() & ~Vars[Rep].Lower.bits();
  if (!Gained)
    return false;
  Vars[Rep].Lower = Vars[Rep].Lower.join(NewBits);
  return true;
}

bool ConstraintSystem::capUpper(QualVarId Rep, LatticeValue Cap) {
  LatticeValue NewUpper = Vars[Rep].Upper.meet(Cap);
  if (NewUpper == Vars[Rep].Upper)
    return false;
  Vars[Rep].Upper = NewUpper;
  return true;
}

QualVarId ConstraintSystem::mergeReps(QualVarId A, QualVarId B) {
  assert(A != B && "merging a representative with itself");
  QualVarId Win = Reps.unite(A, B);
  QualVarId Lose = Win == A ? B : A;
  VarInfo &W = Vars[Win];
  VarInfo &L = Vars[Lose];
  W.Lower = W.Lower.join(L.Lower);
  W.Upper = W.Upper.meet(L.Upper);
  ++Stats.VarsCollapsed;
  return Win;
}

bool ConstraintSystem::shouldRebuild() const {
  if (!Config.CollapseCycles || NewVarVarEdges == 0)
    return false;
  if (NewVarVarEdges < Config.CollapseMinNewEdges)
    return false;
  // Rebuild on demonstrated pressure only: the worklist must have traversed
  // the graph CollapsePressureFactor times over since the last rebuild.
  // Workloads that visit each edge at most about once (acyclic flows, a
  // single batch solve) never pay for a rebuild they could not recoup.
  return TotalEdgeVisits - VisitsAtRebuild >=
         uint64_t(Config.CollapsePressureFactor) * VarVarEdges.size();
}

void ConstraintSystem::rebuildCompactGraph(
    std::vector<QualVarId> &MergedReps) {
  unsigned N = Vars.size();

  // Everything below is counting sorts and CSR arrays -- O(V + E) with a
  // fixed number of large allocations, no per-node vectors and no
  // comparison sort. Deduplication runs FIRST so the Tarjan pass and the
  // collapse remap only ever touch the deduplicated edge set (constraint
  // generators restate the same flow freely, e.g. once per call site).
  struct RawEdge {
    QualVarId From, To;
    uint64_t Mask;
    ConstraintId Cons;
  };
  std::vector<RawEdge> Edges;
  Edges.reserve(VarVarEdges.size());
  for (ConstraintId Id : VarVarEdges) {
    const Constraint &C = Constraints[Id];
    QualVarId From = Reps.find(C.Lhs.getVar());
    QualVarId To = Reps.find(C.Rhs.getVar());
    if (From == To) {
      ++Stats.SelfEdgesDropped;
      continue;
    }
    Edges.push_back({From, To, C.Mask, Id});
  }

  std::vector<RawEdge> Tmp;
  std::vector<uint32_t> Count(N + 1);
  // Two stable counting-sort passes group the edges by (From, To) with
  // insertion order preserved inside each group; then duplicates (same
  // endpoints and mask) collapse to the group's first occurrence. Masks
  // within a group arrive unordered, so the dedup scans the group's kept
  // prefix -- groups are tiny (duplicates of one flow, usually one mask).
  auto sortAndDedup = [&] {
    Tmp.resize(Edges.size());
    auto pass = [&](const std::vector<RawEdge> &In, std::vector<RawEdge> &Out,
                    bool ByFrom) {
      std::fill(Count.begin(), Count.end(), 0);
      for (const RawEdge &E : In)
        ++Count[(ByFrom ? E.From : E.To) + 1];
      for (unsigned I = 0; I != N; ++I)
        Count[I + 1] += Count[I];
      for (const RawEdge &E : In)
        Out[Count[ByFrom ? E.From : E.To]++] = E;
    };
    pass(Edges, Tmp, /*ByFrom=*/false);
    pass(Tmp, Edges, /*ByFrom=*/true);
    size_t Unique = 0, GroupStart = 0;
    for (size_t I = 0; I != Edges.size(); ++I) {
      if (!Unique || Edges[Unique - 1].From != Edges[I].From ||
          Edges[Unique - 1].To != Edges[I].To) {
        GroupStart = Unique;
        Edges[Unique++] = Edges[I];
        continue;
      }
      bool Duplicate = false;
      for (size_t J = GroupStart; J != Unique && !Duplicate; ++J)
        Duplicate = Edges[J].Mask == Edges[I].Mask;
      if (Duplicate) {
        ++Stats.EdgesDeduped;
        continue;
      }
      Edges[Unique++] = Edges[I];
    }
    Edges.resize(Unique);
  };
  sortAndDedup();

  // Cycle pass: Tarjan over the unmasked deduplicated edges; every
  // multi-node component is a <=-cycle whose members provably share one
  // least and one greatest solution, so collapse it onto a representative.
  bool Merged = false;
  {
    std::fill(Count.begin(), Count.end(), 0);
    for (const RawEdge &E : Edges)
      if (isFullMask(E.Mask))
        ++Count[E.From + 1];
    for (unsigned I = 0; I != N; ++I)
      Count[I + 1] += Count[I];
    std::vector<uint32_t> Targets(Count[N]);
    {
      std::vector<uint32_t> Fill(Count.begin(), Count.end() - 1);
      for (const RawEdge &E : Edges)
        if (isFullMask(E.Mask))
          Targets[Fill[E.From]++] = E.To;
    }
    SccFlatResult Cycles =
        computeSccsFlat({N, Count.data(), Targets.data()});
    for (unsigned Comp = 0, NC = Cycles.numComponents(); Comp != NC;
         ++Comp) {
      uint32_t B = Cycles.CompStart[Comp], E = Cycles.CompStart[Comp + 1];
      if (E - B < 2)
        continue;
      ++Stats.SccsCollapsed;
      Merged = true;
      QualVarId Rep = Cycles.Order[B];
      for (uint32_t I = B + 1; I != E; ++I)
        Rep = mergeReps(Rep, Cycles.Order[I]);
      // The representative's solution state is the join of the whole
      // component's; the caller re-seeds it into the worklists.
      MergedReps.push_back(Rep);
    }
  }

  // If anything collapsed, remap the edges onto the new representatives:
  // intra-component edges vanish and formerly-distinct edges can become
  // parallel, so drop and re-dedup (still only over the deduplicated set).
  // Remaining cycles of the final graph can only run through masked edges;
  // the worklist handles those by plain fixpoint iteration.
  if (Merged) {
    size_t Kept = 0;
    for (size_t I = 0; I != Edges.size(); ++I) {
      RawEdge E = Edges[I];
      E.From = Reps.find(E.From);
      E.To = Reps.find(E.To);
      if (E.From == E.To) {
        ++Stats.SelfEdgesDropped;
        continue;
      }
      Edges[Kept++] = E;
    }
    Edges.resize(Kept);
    sortAndDedup();
  }

  // CSR rows (counting sort by endpoint; Edges is already sorted by From).
  SuccStart.assign(N + 1, 0);
  PredStart.assign(N + 1, 0);
  for (const RawEdge &E : Edges) {
    ++SuccStart[E.From + 1];
    ++PredStart[E.To + 1];
  }
  for (unsigned I = 0; I != N; ++I) {
    SuccStart[I + 1] += SuccStart[I];
    PredStart[I + 1] += PredStart[I];
  }
  SuccEdges = static_cast<CompactEdge *>(
      EdgeArena.allocate(sizeof(CompactEdge) * Edges.size(),
                         alignof(CompactEdge)));
  PredEdges = static_cast<CompactEdge *>(
      EdgeArena.allocate(sizeof(CompactEdge) * Edges.size(),
                         alignof(CompactEdge)));
  {
    std::vector<uint32_t> SuccFill(SuccStart.begin(), SuccStart.end() - 1);
    std::vector<uint32_t> PredFill(PredStart.begin(), PredStart.end() - 1);
    for (const RawEdge &E : Edges) {
      SuccEdges[SuccFill[E.From]++] = {E.Cons, E.To};
      PredEdges[PredFill[E.To]++] = {E.Cons, E.From};
    }
  }

  // Drop the pending lists: every edge is now in the CSR. PendingTouched
  // names exactly the vars holding one, so this is proportional to the
  // edges added since the last rebuild, not to the variable count.
  for (QualVarId V : PendingTouched) {
    Vars[V].PendingSuccHead = ~0u;
    Vars[V].PendingPredHead = ~0u;
  }
  PendingTouched.clear();
  PendingPool.clear();
  NewVarVarEdges = 0;
  VisitsAtRebuild = TotalEdgeVisits;
  ++Stats.CollapsePasses;
  Stats.CompactEdges = Edges.size();
  CompactEdgeCount = Edges.size();
  traceInstant("solver.rebuild", "qual",
               "\"compact_edges\":" + std::to_string(Edges.size()) +
                   ",\"sccs_collapsed\":" +
                   std::to_string(Stats.SccsCollapsed) +
                   ",\"vars_collapsed\":" +
                   std::to_string(Stats.VarsCollapsed));
}

void ConstraintSystem::runWorklists(std::vector<QualVarId> &LowerWork,
                                    std::vector<QualVarId> &UpperWork) {
  auto forEachSucc = [this](QualVarId V, auto &&Fn) {
    if (V + 1 < SuccStart.size())
      for (uint32_t I = SuccStart[V], E = SuccStart[V + 1]; I != E; ++I)
        Fn(SuccEdges[I].Cons, SuccEdges[I].Other);
    for (uint32_t I = Vars[V].PendingSuccHead; I != ~0u;
         I = PendingPool[I].Next) {
      ConstraintId Id = PendingPool[I].Cons;
      Fn(Id, Reps.find(Constraints[Id].Rhs.getVar()));
    }
  };
  auto forEachPred = [this](QualVarId V, auto &&Fn) {
    if (V + 1 < PredStart.size())
      for (uint32_t I = PredStart[V], E = PredStart[V + 1]; I != E; ++I)
        Fn(PredEdges[I].Cons, PredEdges[I].Other);
    for (uint32_t I = Vars[V].PendingPredHead; I != ~0u;
         I = PendingPool[I].Next) {
      ConstraintId Id = PendingPool[I].Cons;
      Fn(Id, Reps.find(Constraints[Id].Lhs.getVar()));
    }
  };

  // Tier-up on demonstrated pressure: once the drain has re-visited edges
  // often enough to pay for a rebuild (see shouldRebuild), compact the
  // graph in place and resume. Representatives that absorbed a merge took
  // on their component's joined bounds, so they re-enter both worklists;
  // entries naming a merged-away variable are redirected at pop below.
  auto maybeTierUp = [&] {
    if (!shouldRebuild())
      return;
    std::vector<QualVarId> Merged;
    rebuildCompactGraph(Merged);
    for (QualVarId R : Merged) {
      LowerWork.push_back(R);
      UpperWork.push_back(R);
    }
    Stats.WorklistPushes += 2 * Merged.size();
  };

  // The upper drain can re-fill the lower worklist through a mid-drain
  // merge, hence the outer loop; without a merge each inner loop empties
  // its list for good.
  while (!LowerWork.empty() || !UpperWork.empty()) {
    // Forward join propagation: least solution of the lower bounds.
    while (!LowerWork.empty()) {
      maybeTierUp();
      QualVarId V = Reps.find(LowerWork.back());
      LowerWork.pop_back();
      LatticeValue LV = Vars[V].Lower;
      forEachSucc(V, [&](ConstraintId Id, QualVarId To) {
        ++Stats.EdgeVisits;
        ++TotalEdgeVisits;
        const Constraint &C = Constraints[Id];
        if (raiseLower(To, LatticeValue(LV.bits() & C.Mask))) {
          LowerWork.push_back(To);
          ++Stats.WorklistPushes;
        }
      });
    }

    // Backward meet propagation: greatest solution of the upper bounds.
    while (!UpperWork.empty()) {
      maybeTierUp();
      QualVarId V = Reps.find(UpperWork.back());
      UpperWork.pop_back();
      LatticeValue UV = Vars[V].Upper;
      forEachPred(V, [&](ConstraintId Id, QualVarId From) {
        ++Stats.EdgeVisits;
        ++TotalEdgeVisits;
        const Constraint &C = Constraints[Id];
        if (capUpper(From, LatticeValue(UV.bits() | ~C.Mask))) {
          UpperWork.push_back(From);
          ++Stats.WorklistPushes;
        }
      });
    }
  }
}

bool ConstraintSystem::shouldSolveDense() const {
  if (!Config.DenseSolve || !Config.CollapseCycles)
    return false;
  unsigned Floor = std::max(1u, Config.DenseMinNewEdges);
  if (NewVarVarEdges < Floor)
    return false;
  // Bulk solves only: the new batch must be at least half the system, so
  // over any sequence of edits the dense passes touch O(total edges) work
  // in total (geometric growth) and incremental pipeline solves stay on
  // the worklist tier.
  return uint64_t(NewVarVarEdges) * 2 >= VarVarEdges.size();
}

void ConstraintSystem::solveDense() {
  // The caller just ran rebuildCompactGraph(): every edge is in the CSR
  // (rows keyed by representative, endpoints pre-resolved), pending lists
  // are empty, and constraint seeds are already applied to Lower/Upper.
  const unsigned N = Vars.size();

  // Dense representative ids: lattice state and adjacency are re-indexed
  // from sparse var ids onto [0, R) so the propagation loops run over
  // contiguous uint64_t words instead of striding through VarInfo records.
  std::vector<uint32_t> DenseId(N, ~0u);
  std::vector<QualVarId> RepVar;
  RepVar.reserve(N);
  for (unsigned V = 0; V != N; ++V)
    if (Reps.find(V) == V) {
      DenseId[V] = RepVar.size();
      RepVar.push_back(V);
    }
  const uint32_t R = RepVar.size();
  const uint32_t E = CompactEdgeCount;

  // Flat CSR in both directions with the constraint masks inlined next to
  // the targets: the inner loops below never touch Constraints[] (an
  // ~80-byte stride) or chase a pending list -- each visit is two word
  // loads, an AND/OR, and an accumulate.
  std::vector<uint32_t> OutStart(R + 1, 0), InStart(R + 1, 0);
  std::vector<uint32_t> OutTgt(E), InSrc(E);
  std::vector<uint64_t> OutMask(E), InMask(E);
  for (uint32_t D = 0; D != R; ++D) {
    QualVarId V = RepVar[D];
    OutStart[D + 1] = OutStart[D] + (SuccStart[V + 1] - SuccStart[V]);
    InStart[D + 1] = InStart[D] + (PredStart[V + 1] - PredStart[V]);
  }
  for (uint32_t D = 0; D != R; ++D) {
    QualVarId V = RepVar[D];
    uint32_t O = OutStart[D];
    for (uint32_t I = SuccStart[V], En = SuccStart[V + 1]; I != En; ++I, ++O) {
      OutTgt[O] = DenseId[SuccEdges[I].Other];
      OutMask[O] = Constraints[SuccEdges[I].Cons].Mask;
    }
    uint32_t P = InStart[D];
    for (uint32_t I = PredStart[V], En = PredStart[V + 1]; I != En; ++I, ++P) {
      InSrc[P] = DenseId[PredEdges[I].Other];
      InMask[P] = Constraints[PredEdges[I].Cons].Mask;
    }
  }

  // Scheduling DAG: Tarjan over ALL dense edges (masked ones too -- the
  // rebuild only collapses unmasked cycles, so masked cycles survive and
  // must land inside one scheduling component, where they iterate to a
  // local fixpoint as a single work item). Components come back in reverse
  // topological order: every edge goes from a higher component index to a
  // lower one.
  SccFlatResult Sched = computeSccsFlat({R, OutStart.data(), OutTgt.data()});
  const uint32_t NC = Sched.numComponents();

  // Levelize: level(c) = 1 + max level of the components feeding c (0 for
  // sources). All components on one level are pairwise non-adjacent, so a
  // level is an independent shard set for the forward pass; and since every
  // successor of c sits on a strictly higher level, the same partition run
  // in reverse serves the backward pass.
  std::vector<uint32_t> CompLevel(NC, 0);
  uint32_t NumLevels = NC ? 1 : 0;
  for (uint32_t C = NC; C-- > 0;) { // Descending index = topological order.
    uint32_t Lvl = 0;
    for (uint32_t I = Sched.CompStart[C], En = Sched.CompStart[C + 1];
         I != En; ++I) {
      uint32_t D = Sched.Order[I];
      for (uint32_t J = InStart[D], E2 = InStart[D + 1]; J != E2; ++J) {
        uint32_t SC = Sched.ComponentOf[InSrc[J]];
        if (SC != C && CompLevel[SC] >= Lvl)
          Lvl = CompLevel[SC] + 1;
      }
    }
    CompLevel[C] = Lvl;
    NumLevels = std::max(NumLevels, Lvl + 1);
  }
  std::vector<uint32_t> LevelStart(NumLevels + 1, 0);
  for (uint32_t C = 0; C != NC; ++C)
    ++LevelStart[CompLevel[C] + 1];
  for (uint32_t L = 0; L != NumLevels; ++L)
    LevelStart[L + 1] += LevelStart[L];
  std::vector<uint32_t> CompsByLevel(NC);
  {
    std::vector<uint32_t> Fill(LevelStart.begin(), LevelStart.end() - 1);
    for (uint32_t C = NC; C-- > 0;) // Topological order within each level.
      CompsByLevel[Fill[CompLevel[C]]++] = C;
  }

  // Lattice state as packed words. Nodes outside every component (isolated
  // representatives, excluded by computeSccsFlat) have no edges, so their
  // seeded values are already final; the write-back below covers them
  // harmlessly.
  std::vector<uint64_t> Low(R), Up(R);
  for (uint32_t D = 0; D != R; ++D) {
    Low[D] = Vars[RepVar[D]].Lower.bits();
    Up[D] = Vars[RepVar[D]].Upper.bits();
  }

  // One component's forward pass: pull-based join over in-edges, so this
  // shard is the only writer of its nodes -- predecessor levels are final
  // and same-level components are non-adjacent, which is the whole
  // determinism argument (any schedule computes the same unique fixpoint).
  // Multi-node components are masked cycles: sweep to a local fixpoint.
  auto forwardComp = [&](uint32_t C) -> uint64_t {
    uint32_t B = Sched.CompStart[C], En = Sched.CompStart[C + 1];
    uint64_t Visits = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t I = B; I != En; ++I) {
        uint32_t D = Sched.Order[I];
        uint64_t LV = Low[D];
        for (uint32_t J = InStart[D], E2 = InStart[D + 1]; J != E2; ++J)
          LV |= Low[InSrc[J]] & InMask[J];
        Visits += InStart[D + 1] - InStart[D];
        if (LV != Low[D]) {
          Low[D] = LV;
          Changed = true;
        }
      }
      if (En - B == 1)
        break; // Singleton (no self edges survive the rebuild): one sweep.
    }
    return Visits;
  };
  // The backward meet pass, symmetric over out-edges.
  auto backwardComp = [&](uint32_t C) -> uint64_t {
    uint32_t B = Sched.CompStart[C], En = Sched.CompStart[C + 1];
    uint64_t Visits = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t I = B; I != En; ++I) {
        uint32_t D = Sched.Order[I];
        uint64_t UV = Up[D];
        for (uint32_t J = OutStart[D], E2 = OutStart[D + 1]; J != E2; ++J)
          UV &= Up[OutTgt[J]] | ~OutMask[J];
        Visits += OutStart[D + 1] - OutStart[D];
        if (UV != Up[D]) {
          Up[D] = UV;
          Changed = true;
        }
      }
      if (En - B == 1)
        break;
    }
    return Visits;
  };

  // Per-level edge weight decides whether dispatching the level onto the
  // pool can pay for itself (tiny levels run inline even at Jobs > 1).
  std::vector<uint64_t> LevelEdges(NumLevels, 0);
  for (uint32_t C = 0; C != NC; ++C) {
    uint64_t W = 0;
    for (uint32_t I = Sched.CompStart[C], En = Sched.CompStart[C + 1];
         I != En; ++I) {
      uint32_t D = Sched.Order[I];
      W += InStart[D + 1] - InStart[D];
    }
    LevelEdges[CompLevel[C]] += W;
  }

  // Visit counts accumulate per shard chunk and merge with relaxed atomics
  // at the level barrier; every component's count is schedule-independent,
  // so the merged total is byte-for-byte identical at any job count.
  std::atomic<uint64_t> DenseVisits{0};
  const bool UsePool = Config.Pool && Config.Jobs > 1;
  auto runLevel = [&](uint32_t L, auto &&CompFn) {
    uint32_t LB = LevelStart[L], LE = LevelStart[L + 1];
    if (UsePool && LE - LB > 1 && LevelEdges[L] >= Config.ShardMinLevelEdges) {
      Config.Pool->parallelForEach(
          LE - LB, std::max(1u, Config.ShardGrain),
          [&](size_t Begin, size_t End) {
            uint64_t V = 0;
            for (size_t I = Begin; I != End; ++I)
              V += CompFn(CompsByLevel[LB + I]);
            DenseVisits.fetch_add(V, std::memory_order_relaxed);
          });
    } else {
      uint64_t V = 0;
      for (uint32_t I = LB; I != LE; ++I)
        V += CompFn(CompsByLevel[I]);
      DenseVisits.fetch_add(V, std::memory_order_relaxed);
    }
  };

  for (uint32_t L = 0; L != NumLevels; ++L)
    runLevel(L, forwardComp);
  for (uint32_t L = NumLevels; L-- > 0;)
    runLevel(L, backwardComp);

  for (uint32_t D = 0; D != R; ++D) {
    Vars[RepVar[D]].Lower = LatticeValue(Low[D]);
    Vars[RepVar[D]].Upper = LatticeValue(Up[D]);
  }

  // Dense visits are exact one-shot work, not re-traversal pressure: they
  // count toward the per-solve stats but not toward TotalEdgeVisits, so a
  // bulk pass never tricks the pressure policy into an extra rebuild.
  Stats.EdgeVisits += DenseVisits.load(std::memory_order_relaxed);
  ++Stats.DensePasses;
  traceInstant("solver.dense", "qual",
               "\"reps\":" + std::to_string(R) +
                   ",\"edges\":" + std::to_string(E) +
                   ",\"levels\":" + std::to_string(NumLevels) +
                   ",\"components\":" + std::to_string(NC));
}

bool ConstraintSystem::solve() {
  PhaseScope Phase("solve", "qual");
  Timer SolveTimer;
  // Work counters describe one solve; lifetime accounting that must survive
  // (rebuild pressure) lives in TotalEdgeVisits/CompactEdgeCount.
  Stats.reset();
  ++Stats.SolveCalls;

  std::vector<QualVarId> LowerWork;
  std::vector<QualVarId> UpperWork;

  // A bulk ingest takes the dense path: rebuild unconditionally (collapse +
  // dedup + CSR is the layout the dense core runs on), seed, then replace
  // the worklist drain with the two levelized passes.
  bool Dense = shouldSolveDense();

  // Pressure accumulated over earlier solves may already justify a rebuild;
  // doing it before seeding lets the new constraints land straight in the
  // compact graph. Merged representatives changed value, so they propagate.
  if (Dense || shouldRebuild()) {
    std::vector<QualVarId> Merged;
    rebuildCompactGraph(Merged);
    for (QualVarId R : Merged) {
      LowerWork.push_back(R);
      UpperWork.push_back(R);
    }
  }

  // Seed the solution state from constraints added since the last solve.
  for (ConstraintId Id = SolvedConstraints, E = Constraints.size(); Id != E;
       ++Id) {
    const Constraint &C = Constraints[Id];
    if (C.Lhs.isConst() && C.Rhs.isVar()) {
      QualVarId R = Reps.find(C.Rhs.getVar());
      if (raiseLower(R, LatticeValue(C.Lhs.getConst().bits() & C.Mask)))
        LowerWork.push_back(R);
    } else if (C.Lhs.isVar() && C.Rhs.isVar()) {
      // A new edge may carry an already-known lower bound forward and an
      // already-known upper bound backward.
      QualVarId L = Reps.find(C.Lhs.getVar());
      QualVarId R = Reps.find(C.Rhs.getVar());
      if (raiseLower(R, LatticeValue(Vars[L].Lower.bits() & C.Mask)))
        LowerWork.push_back(R);
      if (capUpper(L, LatticeValue(Vars[R].Upper.bits() | ~C.Mask)))
        UpperWork.push_back(L);
    } else if (C.Lhs.isVar() && C.Rhs.isConst()) {
      QualVarId L = Reps.find(C.Lhs.getVar());
      if (capUpper(L, LatticeValue(C.Rhs.getConst().bits() | ~C.Mask)))
        UpperWork.push_back(L);
    }
    // const <= const constraints are checked in collectViolations().
  }
  SolvedConstraints = Constraints.size();

  if (Dense) {
    // The dense passes recompute both fixpoints from the seeded state over
    // the whole CSR; the incremental work vectors are subsumed.
    solveDense();
  } else {
    Stats.WorklistPushes += LowerWork.size() + UpperWork.size();
    runWorklists(LowerWork, UpperWork);
  }

  // Satisfiable iff no variable's required bits exceed its allowed bits and
  // no direct upper bound fails; a cheap necessary-and-sufficient check is
  // lower <= upper on every representative plus the const-const constraints.
  bool Ok = true;
  for (QualVarId V = 0, N = Vars.size(); Ok && V != N; ++V) {
    if (Reps.find(V) != V)
      continue;
    if (!Vars[V].Lower.subsumedBy(Vars[V].Upper))
      Ok = false;
  }
  for (size_t I = 0; Ok && I != ConstConstIds.size(); ++I) {
    const Constraint &C = Constraints[ConstConstIds[I]];
    if ((C.Lhs.getConst().bits() & C.Mask) & ~C.Rhs.getConst().bits())
      Ok = false;
  }
  Stats.SolveSeconds += SolveTimer.seconds();
  if (MetricsRegistry::collecting())
    getStats().publishTo(MetricsRegistry::global());
  return Ok;
}

bool ConstraintSystem::mustHave(QualVarId Var, QualifierId Id) const {
  // Positive qualifier: present iff bit set, and the bit is set in every
  // solution iff it is in the least solution. Negative qualifier: present iff
  // bit clear, and the bit is clear in every solution iff it is not in the
  // greatest solution.
  if (QS.get(Id).Pol == Polarity::Positive)
    return (lower(Var).bits() & QS.bitFor(Id)) != 0;
  return (upper(Var).bits() & QS.bitFor(Id)) == 0;
}

bool ConstraintSystem::mayHave(QualVarId Var, QualifierId Id) const {
  if (QS.get(Id).Pol == Polarity::Positive)
    return (upper(Var).bits() & QS.bitFor(Id)) != 0;
  return (lower(Var).bits() & QS.bitFor(Id)) == 0;
}

std::vector<Violation> ConstraintSystem::collectViolations() const {
  assert(SolvedConstraints == Constraints.size() && "call solve() first");
  std::vector<Violation> Result;
  for (ConstraintId Id : UpperBoundIds) {
    const Constraint &C = Constraints[Id];
    LatticeValue Actual = lower(C.Lhs.getVar());
    uint64_t Off = (Actual.bits() & C.Mask) & ~C.Rhs.getConst().bits();
    if (Off)
      Result.push_back({Id, Actual, C.Rhs.getConst(), Off});
  }
  for (ConstraintId Id : ConstConstIds) {
    const Constraint &C = Constraints[Id];
    uint64_t Off =
        (C.Lhs.getConst().bits() & C.Mask) & ~C.Rhs.getConst().bits();
    if (Off)
      Result.push_back({Id, C.Lhs.getConst(), C.Rhs.getConst(), Off});
  }
  return Result;
}

bool ConstraintSystem::isSatisfiable() {
  if (!solve())
    return false;
  return collectViolations().empty();
}

std::string ConstraintSystem::explain(const Violation &V) const {
  // Reconstruct the provenance of the lowest offending bit backwards from
  // the violated constraint's left-hand side to a constant that introduced
  // it. Provenance is computed lazily here (never recorded during
  // propagation), so the hot loops stay branch-free and the rendered chain
  // is a pure function of the constraint sequence -- byte-identical across
  // the worklist/dense layouts and every job count.
  uint64_t Bit = V.OffendingBits & ~(V.OffendingBits - 1);

  // Name every offending qualifier component in the header line.
  const Constraint &Cause = Constraints[V.Cause];
  std::string Out = "qualifier constraint violated (";
  bool First = true;
  for (unsigned I = 0, E = QS.size(); I != E; ++I) {
    if (!(V.OffendingBits & QS.bitFor(I)))
      continue;
    if (!First)
      Out += "; ";
    First = false;
    const Qualifier &Q = QS.get(I);
    if (Q.Pol == Polarity::Positive) {
      Out += "qualifier '";
      Out += Q.Name;
      Out += "' not allowed here";
    } else {
      Out += "qualifier '";
      Out += Q.Name;
      Out += "' required here";
    }
  }
  Out += ")";
  Out += "\n  bound: ";
  Out += Cause.Origin.Reason;
  Out += '\n';

  if (Cause.Lhs.isVar()) {
    // Breadth-first search from the violated variable backwards over the
    // constraints that can carry the bit: an edge Src <= Dst with the bit
    // in its mask is a genuine carrier iff the bit is in Src's least
    // solution (the solved fixpoint guarantees it then reached Dst), and a
    // constant left-hand side with the bit under the mask is a seed. FIFO
    // order with in-edges scanned in constraint-id order makes the chain
    // deterministic: the shortest one, ties broken by lowest id.
    QualVarId Root = Reps.find(Cause.Lhs.getVar());
    std::vector<std::pair<QualVarId, ConstraintId>> Parent; // BFS tree.
    std::vector<uint32_t> ParentOf(Vars.size(), ~0u); // Rep -> Parent index.
    std::vector<QualVarId> Queue{Root};
    ParentOf[Root] = ~1u; // Visited marker for the root (no parent edge).
    ConstraintId SeedCons = ~0u;
    QualVarId SeedAt = Root;
    // Index the bit-carrying in-edges per representative, in id order.
    std::vector<std::vector<ConstraintId>> InEdges(Vars.size());
    for (ConstraintId Id = 0, E = Constraints.size(); Id != E; ++Id) {
      const Constraint &C = Constraints[Id];
      if (!C.Rhs.isVar() || !(C.Mask & Bit))
        continue;
      if (C.Lhs.isVar() && !(Vars[Reps.find(C.Lhs.getVar())].Lower.bits() & Bit))
        continue;
      if (C.Lhs.isConst() && !(C.Lhs.getConst().bits() & C.Mask & Bit))
        continue;
      InEdges[Reps.find(C.Rhs.getVar())].push_back(Id);
    }
    for (size_t Head = 0; Head != Queue.size() && SeedCons == ~0u; ++Head) {
      QualVarId At = Queue[Head];
      for (ConstraintId Id : InEdges[At]) {
        const Constraint &C = Constraints[Id];
        if (C.Lhs.isConst()) {
          SeedCons = Id;
          SeedAt = At;
          break;
        }
        QualVarId Src = Reps.find(C.Lhs.getVar());
        if (Src == At || ParentOf[Src] != ~0u)
          continue;
        Parent.push_back({At, Id});
        ParentOf[Src] = Parent.size() - 1;
        Queue.push_back(Src);
      }
    }
    if (SeedCons != ~0u) {
      // Unwind the tree from the seed's variable back to the root, then
      // print the chain violation-first: each step's constraint, ending at
      // the seed itself and its constant.
      std::vector<ConstraintId> Chain;
      for (QualVarId At = SeedAt; At != Root;) {
        auto &Link = Parent[ParentOf[At]];
        Chain.push_back(Link.second);
        At = Link.first;
      }
      std::reverse(Chain.begin(), Chain.end());
      Chain.push_back(SeedCons);
      for (ConstraintId Id : Chain) {
        const Constraint &Step = Constraints[Id];
        Out += "  via: ";
        Out += Step.Origin.Reason.empty() ? "(unlabeled constraint)"
                                          : Step.Origin.Reason;
        Out += '\n';
      }
      Out += "  source: qualifier constant '";
      Out += QS.toString(Constraints[SeedCons].Lhs.getConst());
      Out += "'\n";
    }
    // No seed found would mean the bit appeared from nowhere; be defensive
    // and leave the chain empty (matches the old walker's defensive stop).
  } else {
    // A const <= const violation: the constant itself is the source.
    Out += "  source: qualifier constant '";
    Out += QS.toString(Cause.Lhs.getConst());
    Out += "'\n";
  }
  return Out;
}

SolverStats ConstraintSystem::getStats() const {
  SolverStats S = Stats;
  S.NumVars = Vars.size();
  S.NumConstraints = Constraints.size();
  S.VarVarEdges = VarVarEdges.size();
  S.CompactEdges = CompactEdgeCount;
  return S;
}

void SolverStats::publishTo(MetricsRegistry &R) const {
  R.gauge("solver.vars").set(NumVars);
  R.gauge("solver.constraints").set(NumConstraints);
  R.gauge("solver.var_var_edges").set(VarVarEdges);
  R.gauge("solver.compact_edges").set(CompactEdges);
  R.counter("solver.solve_calls").add(SolveCalls);
  R.counter("solver.dense_passes").add(DensePasses);
  R.counter("solver.collapse_passes").add(CollapsePasses);
  R.counter("solver.sccs_collapsed").add(SccsCollapsed);
  R.counter("solver.vars_collapsed").add(VarsCollapsed);
  R.counter("solver.edges_deduped").add(EdgesDeduped);
  R.counter("solver.self_edges_dropped").add(SelfEdgesDropped);
  R.counter("solver.worklist_pushes").add(WorklistPushes);
  R.counter("solver.edge_visits").add(EdgeVisits);
  R.timer("solver.solve").addSeconds(SolveSeconds);
}

std::string quals::renderSolverStats(const SolverStats &S) {
  TextTable T;
  T.addColumn("Solver metric");
  T.addColumn("Value", Align::Right);
  auto Row = [&T](const char *Name, uint64_t Value) {
    T.addRow({Name, std::to_string(Value)});
  };
  Row("qualifier vars", S.NumVars);
  Row("constraints", S.NumConstraints);
  Row("var->var edges", S.VarVarEdges);
  Row("compact edges (post-rebuild)", S.CompactEdges);
  Row("solve() calls", S.SolveCalls);
  Row("dense bulk passes", S.DensePasses);
  Row("collapse passes", S.CollapsePasses);
  Row("cycles (SCCs) collapsed", S.SccsCollapsed);
  Row("vars folded into a rep", S.VarsCollapsed);
  Row("parallel edges deduped", S.EdgesDeduped);
  Row("intra-component edges dropped", S.SelfEdgesDropped);
  Row("worklist pushes", S.WorklistPushes);
  Row("edge visits", S.EdgeVisits);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", S.SolveSeconds * 1000.0);
  T.addRow({"solve time (ms)", Buf});
  return T.render();
}

//===- qual/Subtype.cpp - Structural subtype decomposition ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "qual/Subtype.h"

using namespace quals;

bool quals::decomposeLeq(ConstraintSystem &Sys, QualType A, QualType B,
                         const ConstraintOrigin &Origin) {
  if (A.isNull() || B.isNull())
    return A.isNull() == B.isNull();
  if (A.getCtor() != B.getCtor())
    return false;
  Sys.addLeq(A.getQual(), B.getQual(), Origin);
  bool Ok = true;
  for (unsigned I = 0, E = A.getNumArgs(); I != E; ++I) {
    switch (A.getCtor()->getVariance(I)) {
    case Variance::Covariant:
      Ok &= decomposeLeq(Sys, A.getArg(I), B.getArg(I), Origin);
      break;
    case Variance::Contravariant:
      Ok &= decomposeLeq(Sys, B.getArg(I), A.getArg(I), Origin);
      break;
    case Variance::Invariant:
      Ok &= decomposeEq(Sys, A.getArg(I), B.getArg(I), Origin);
      break;
    }
  }
  return Ok;
}

bool quals::decomposeEq(ConstraintSystem &Sys, QualType A, QualType B,
                        const ConstraintOrigin &Origin) {
  if (A.isNull() || B.isNull())
    return A.isNull() == B.isNull();
  if (A.getCtor() != B.getCtor())
    return false;
  Sys.addEq(A.getQual(), B.getQual(), Origin);
  bool Ok = true;
  for (unsigned I = 0, E = A.getNumArgs(); I != E; ++I)
    Ok &= decomposeEq(Sys, A.getArg(I), B.getArg(I), Origin);
  return Ok;
}

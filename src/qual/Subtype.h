//===- qual/Subtype.h - Structural subtype decomposition -------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the subtyping rules of Figure 4a generically: a subtype
/// constraint rho_1 <= rho_2 between qualified types with identical shape
/// decomposes into the atomic constraint Q_1 <= Q_2 on the top-level
/// qualifiers plus recursive constraints on the arguments directed by each
/// constructor's declared variance:
///
///   Covariant      arg_1 <= arg_2        (SubFun result position)
///   Contravariant  arg_2 <= arg_1        (SubFun parameter position)
///   Invariant      arg_1 = arg_2         (SubRef -- sound ref subtyping)
///
/// After decomposition only atomic lattice constraints remain, which the
/// ConstraintSystem solves in linear time (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_SUBTYPE_H
#define QUALS_QUAL_SUBTYPE_H

#include "qual/QualType.h"

namespace quals {

/// Adds the atomic constraints for \p A <= \p B. Returns false (adding
/// nothing further) if the shapes disagree -- callers that ran standard type
/// checking first will never see that, but the API stays total.
bool decomposeLeq(ConstraintSystem &Sys, QualType A, QualType B,
                  const ConstraintOrigin &Origin);

/// Adds the atomic constraints for \p A = \p B (equality at every level).
bool decomposeEq(ConstraintSystem &Sys, QualType A, QualType B,
                 const ConstraintOrigin &Origin);

} // namespace quals

#endif // QUALS_QUAL_SUBTYPE_H

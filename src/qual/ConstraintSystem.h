//===- qual/ConstraintSystem.h - Atomic qualifier constraints --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic subtyping constraint system of Section 3.1. After structural
/// decomposition (Subtype.h) all constraints have the form kappa <= kappa',
/// kappa <= l, l <= kappa, or l <= l', over the qualifier lattice. Such
/// systems are solvable in linear time for a fixed qualifier set [HR97]; the
/// solver below computes the *least* solution by forward join propagation and
/// the *greatest* solution by backward meet propagation, then reports every
/// upper-bound violation with a provenance path.
///
/// The paper solved these with BANE's generic engine and remarks that "we
/// expect substantial speedups would be achieved with a framework specialized
/// to the qualifier lattice" -- this class is that specialized framework.
/// Scaling machinery (all observable only through getStats() and wall-clock):
///
/// \li **Cycle collapsing.** Variables on a <= cycle have equal least and
///     greatest solutions, so each strongly connected component of the
///     var->var graph (restricted to unmasked edges) is collapsed to a single
///     union-find representative by a Tarjan pass (support/Scc.h). Dense
///     recursive blobs then cost one node instead of endless re-propagation.
/// \li **Compact edge storage.** Adjacency is rebuilt into CSR-style arrays
///     backed by a bump arena, dropping duplicate parallel edges and edges
///     internal to a collapsed component. Edges added after a rebuild go to
///     small per-representative pending lists until the next rebuild.
/// \li **Pressure-triggered tiering.** Incremental propagation is the
///     worklist algorithm; the O(V+E) rebuild above only fires once the
///     worklist has demonstrably re-traversed the graph enough times to pay
///     for it (SolverConfig::CollapsePressureFactor), checked both between
///     solves and mid-drain. One-shot or cycle-free workloads therefore
///     never pay for a rebuild, while dense cyclic regions tier up as soon
///     as the re-bouncing shows up in the visit counter.
/// \li **Dense bulk solving.** A solve that ingests a large batch of new
///     edges (SolverConfig::DenseMinNewEdges and at least half the system)
///     skips the worklist entirely: the condensation is packed into flat
///     CSR arrays with inline masks, lattice state into plain `uint64_t`
///     words indexed by dense representative id, and two branch-free
///     levelized passes (forward `|=`, backward `&=`) over the topological
///     levels of the scheduling DAG compute both fixpoints in exactly one
///     visit per edge per direction. Levels are independent, so their
///     components optionally solve concurrently on a support/ThreadPool
///     (SolverConfig::Jobs/Pool) -- results and every rendered byte are
///     identical at any job count because each node's value is written only
///     by its own shard from already-final predecessor levels.
///
/// Constraints optionally carry a bit \p Mask restricting them to a subset of
/// the qualifier components; masked constraints implement well-formedness
/// rules such as binding-time's "nothing dynamic inside something static"
/// (see WellFormed.h) without leaving the atomic fragment. Cycles through
/// masked edges do *not* force equality on all components and are never
/// collapsed.
///
/// See docs/SOLVER.md for the full algorithm and invariants.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_CONSTRAINTSYSTEM_H
#define QUALS_QUAL_CONSTRAINTSYSTEM_H

#include "qual/QualExpr.h"
#include "support/Allocator.h"
#include "support/SourceLoc.h"
#include "support/UnionFind.h"

#include <string>
#include <vector>

namespace quals {

class ThreadPool;

/// Where (and why) a constraint was generated; used in error explanations.
struct ConstraintOrigin {
  SourceLoc Loc;
  std::string Reason;

  ConstraintOrigin() = default;
  ConstraintOrigin(std::string Reason) : Reason(std::move(Reason)) {}
  ConstraintOrigin(SourceLoc Loc, std::string Reason)
      : Loc(Loc), Reason(std::move(Reason)) {}
};

/// Dense id of a constraint within its ConstraintSystem.
using ConstraintId = uint32_t;

/// An atomic constraint: (Lhs & Mask) <= (Rhs | ~Mask) componentwise, i.e.
/// Lhs <= Rhs restricted to the qualifier bits in Mask.
struct Constraint {
  QualExpr Lhs;
  QualExpr Rhs;
  uint64_t Mask;
  ConstraintOrigin Origin;
};

/// A failed upper bound discovered by the solver.
struct Violation {
  ConstraintId Cause;       ///< The upper-bound constraint that failed.
  LatticeValue Actual;      ///< Least solution of the left-hand side.
  LatticeValue Bound;       ///< The bound it had to fit under.
  uint64_t OffendingBits;   ///< Lattice bits of Actual exceeding Bound.
};

/// Tuning knobs for the solver's scaling machinery.
struct SolverConfig {
  /// Collapse <=-cycles onto union-find representatives and rebuild the
  /// compact edge graph when enough edges accumulate. Turning this off
  /// reverts to pure worklist propagation over per-variable pending edges
  /// (the ablation baseline; bench/solver_microbench measures both).
  bool CollapseCycles = true;

  /// A rebuild is considered only when at least this many var->var edges
  /// were added since the last one (small systems never pay for Tarjan).
  unsigned CollapseMinNewEdges = 64;

  /// A rebuild fires only once the worklist has visited at least this many
  /// edges per var->var edge since the last rebuild -- i.e. once observed
  /// propagation pressure proves the graph is being traversed repeatedly
  /// (cycles, duplicate edges, or many re-solves). Light workloads that
  /// visit each edge at most once never pay for a rebuild at all. 0 forces
  /// a rebuild on every solve that meets CollapseMinNewEdges.
  unsigned CollapsePressureFactor = 2;

  /// Constraint budget (support/Limits.h): once this many constraints are
  /// stored, further add*() calls are dropped and hitConstraintLimit()
  /// latches. The analyses translate the latch into a recoverable
  /// `fatal: resource limit` diagnostic. 0 = unlimited.
  uint64_t MaxConstraints = 0;

  /// Use the dense branch-free condensation core for bulk solves (see the
  /// file comment). Requires CollapseCycles; turning either off reverts
  /// every solve to worklist propagation (the ablation baseline measured by
  /// bench/solver_microbench and bench/solver_throughput).
  bool DenseSolve = true;

  /// A solve takes the dense path only when at least this many var->var
  /// edges arrived since the last rebuild AND they make up at least half of
  /// all var->var edges ever added -- i.e. the solve is a bulk ingest, not
  /// an incremental re-solve. The half-the-system condition keeps the total
  /// dense work over any edit sequence amortized linear; the floor keeps
  /// small systems on the cheap worklist tier.
  unsigned DenseMinNewEdges = 1024;

  /// Shard concurrency for the dense passes. With Jobs > 1 and Pool set,
  /// each topological level's components are dispatched in chunks onto the
  /// pool; results are byte-identical to Jobs == 1 (the determinism suite
  /// asserts this). Jobs <= 1 or a null Pool solves inline.
  unsigned Jobs = 1;

  /// The pool the dense passes shard onto; borrowed, must outlive the
  /// system. Null keeps solving inline regardless of Jobs. The caller must
  /// not invoke solve() from inside a task of this same pool unless the
  /// pool's parallelForEach participates from the calling thread (ours
  /// does) -- see docs/PARALLEL.md on nested parallelism.
  ThreadPool *Pool = nullptr;

  /// Components per chunk when a level is dispatched onto the pool; keeps
  /// thousands of tiny single-node shards from drowning the pool queue.
  unsigned ShardGrain = 64;

  /// Levels with fewer than this many dense edge visits are solved inline
  /// even when a pool is configured (dispatch overhead would dominate).
  unsigned ShardMinLevelEdges = 2048;
};

class MetricsRegistry;

/// Counters describing where solve time went; see getStats().
///
/// Work counters (SolveCalls, CollapsePasses, SccsCollapsed, VarsCollapsed,
/// EdgesDeduped, SelfEdgesDropped, WorklistPushes, EdgeVisits, SolveSeconds)
/// describe the *most recent* solve(): the system zeroes them on solve()
/// entry so repeated incremental solves never report accumulated counts.
/// Snapshot fields (NumVars..CompactEdges) describe the current state
/// regardless of when it was built. Callers wanting lifetime totals sum the
/// per-solve snapshots (or read the "solver.*" counters a metrics-collecting
/// run accumulates in MetricsRegistry::global(); see publishTo()).
struct SolverStats {
  unsigned NumVars = 0;         ///< Qualifier variables created.
  unsigned NumConstraints = 0;  ///< Constraints added (all four forms).
  unsigned VarVarEdges = 0;     ///< var <= var constraints among them.
  unsigned CompactEdges = 0;    ///< Edges in the compact graph (post-rebuild).
  unsigned SolveCalls = 0;      ///< solve() invocations.
  unsigned DensePasses = 0;     ///< Bulk solves taken by the dense core.
  unsigned CollapsePasses = 0;  ///< Graph rebuilds (dedup + Tarjan + CSR).
  unsigned SccsCollapsed = 0;   ///< Multi-variable cycles collapsed.
  unsigned VarsCollapsed = 0;   ///< Variables folded into a representative.
  unsigned EdgesDeduped = 0;    ///< Duplicate parallel edges dropped.
  unsigned SelfEdgesDropped = 0;///< Edges internal to a collapsed component.
  uint64_t WorklistPushes = 0;  ///< Worklist insertions (incremental solves).
  /// Edge traversals across all propagation. Deterministic for a given
  /// constraint sequence and config: the dense passes count one visit per
  /// in/out edge per sweep with per-shard subtotals merged at each level
  /// barrier, so the total is identical at every SolverConfig::Jobs (the
  /// determinism suite asserts merged totals equal the -j1 totals).
  uint64_t EdgeVisits = 0;
  double SolveSeconds = 0;      ///< Wall-clock spent inside solve().

  /// Zeroes every field (solve() calls this on entry; also for tests and
  /// harnesses reusing a stats value).
  void reset() { *this = SolverStats(); }

  /// Publishes this snapshot into \p R under the "solver." namespace: work
  /// counters *add* (so per-solve snapshots accumulate into lifetime
  /// totals), snapshot fields *set* gauges, and SolveSeconds feeds the
  /// "solver.solve" timer. solve() does this automatically when
  /// MetricsRegistry::collecting() is on.
  ///
  /// Safe to call from concurrent batch workers (docs/PARALLEL.md): the
  /// registry synchronizes internally, counters/timers accumulate into
  /// corpus totals, and the gauges are last-writer-wins snapshots.
  void publishTo(MetricsRegistry &R) const;
};

/// Renders \p Stats as an aligned two-column ASCII table (support/TextTable)
/// for the tools' --stats output.
std::string renderSolverStats(const SolverStats &Stats);

/// Collects and solves atomic qualifier constraints.
///
/// Solving is incremental: constraints may be added after a solve() and the
/// next solve() only propagates the new information. Queries (lower/upper)
/// require a preceding solve() with no constraints added in between.
class ConstraintSystem {
public:
  explicit ConstraintSystem(const QualifierSet &QS, SolverConfig Config = {})
      : QS(QS), Config(Config) {}

  const QualifierSet &getQualifierSet() const { return QS; }
  const SolverConfig &getConfig() const { return Config; }

  /// Creates a fresh qualifier variable. \p Name is kept for diagnostics.
  QualVarId freshVar(std::string Name, SourceLoc Loc = SourceLoc());

  unsigned getNumVars() const { return Vars.size(); }
  unsigned getNumConstraints() const { return Constraints.size(); }

  const std::string &getVarName(QualVarId Var) const {
    return Vars[Var].Name;
  }
  SourceLoc getVarLoc(QualVarId Var) const { return Vars[Var].Loc; }

  const Constraint &getConstraint(ConstraintId Id) const {
    return Constraints[Id];
  }

  /// Adds Lhs <= Rhs over all qualifier components.
  void addLeq(QualExpr Lhs, QualExpr Rhs, ConstraintOrigin Origin);

  /// Adds Lhs <= Rhs restricted to the components in \p Mask.
  void addLeqMasked(QualExpr Lhs, QualExpr Rhs, uint64_t Mask,
                    ConstraintOrigin Origin);

  /// Adds Lhs = Rhs (as two <= constraints).
  void addEq(QualExpr Lhs, QualExpr Rhs, ConstraintOrigin Origin);

  /// Runs the propagation fixpoint over constraints added since the last
  /// solve. Returns true if the system is satisfiable so far.
  bool solve();

  /// Least solution of \p Var (valid after solve()).
  LatticeValue lower(QualVarId Var) const {
    assert(SolvedConstraints == Constraints.size() && "call solve() first");
    return Vars[Reps.find(Var)].Lower;
  }

  /// Greatest solution of \p Var (valid after solve()).
  LatticeValue upper(QualVarId Var) const {
    assert(SolvedConstraints == Constraints.size() && "call solve() first");
    return Vars[Reps.find(Var)].Upper;
  }

  /// Least solution of an arbitrary qualifier expression.
  LatticeValue lower(QualExpr E) const {
    return E.isVar() ? lower(E.getVar()) : E.getConst();
  }

  /// Greatest solution of an arbitrary qualifier expression.
  LatticeValue upper(QualExpr E) const {
    return E.isVar() ? upper(E.getVar()) : E.getConst();
  }

  /// True if qualifier \p Id *must* be present in \p Var in every solution.
  bool mustHave(QualVarId Var, QualifierId Id) const;

  /// True if qualifier \p Id *may* be present in \p Var in some solution.
  bool mayHave(QualVarId Var, QualifierId Id) const;

  /// True if \p A and \p B were collapsed onto the same representative (they
  /// sit on a common unmasked <= cycle observed by some rebuild).
  bool sameRep(QualVarId A, QualVarId B) const {
    return Reps.find(A) == Reps.find(B);
  }

  /// Scans every upper-bound constraint; returns all violations.
  std::vector<Violation> collectViolations() const;

  /// True if a full solve + violation scan finds no inconsistency.
  bool isSatisfiable();

  /// True once SolverConfig::MaxConstraints stopped an add*() call. The
  /// stored system is then a prefix of the intended one, so solutions are
  /// meaningless; callers must fail with a resource-limit diagnostic.
  bool hitConstraintLimit() const { return ConstraintLimitHit; }

  /// Renders a human-readable explanation of \p V: the chain of constraints
  /// that carried the offending qualifier from its source to the bound.
  std::string explain(const Violation &V) const;

  /// Instrumentation snapshot; cheap, callable at any time.
  SolverStats getStats() const;

private:
  /// A compact adjacency entry: the constraint and the other endpoint's
  /// representative (resolved at rebuild time to skip find() in hot loops).
  struct CompactEdge {
    ConstraintId Cons;
    QualVarId Other;
  };

  struct VarInfo {
    std::string Name;
    SourceLoc Loc;
    LatticeValue Lower;           ///< Join of reachable lower bounds (rep).
    LatticeValue Upper;           ///< Meet of reachable upper bounds (rep).
    /// Heads of this var's outgoing/incoming pending-edge lists (indices
    /// into PendingPool, ~0u = empty), keyed by the representative at
    /// insertion time (stable between rebuilds).
    uint32_t PendingSuccHead = ~0u;
    uint32_t PendingPredHead = ~0u;
  };

  /// One node of an intrusive singly-linked pending-edge list. All nodes
  /// live in PendingPool, so a rebuild retires every list in O(1) with no
  /// per-variable heap traffic.
  struct PendingNode {
    ConstraintId Cons;
    uint32_t Next;
  };

  const QualifierSet &QS;
  SolverConfig Config;
  std::vector<VarInfo> Vars;
  std::vector<Constraint> Constraints;
  /// Cycle-collapsing representatives; mutable because find() compresses
  /// paths, which is observationally const.
  mutable UnionFind Reps;
  /// Every var->var constraint ever added: the rebuild source of truth.
  std::vector<ConstraintId> VarVarEdges;
  unsigned NewVarVarEdges = 0;  ///< ... added since the last rebuild.
  /// Backing store for the per-var pending-edge lists; cleared wholesale at
  /// each rebuild (the CSR then owns every edge).
  std::vector<PendingNode> PendingPool;
  /// Vars whose pending lists became non-empty since the last rebuild, so
  /// the rebuild resets exactly those heads instead of sweeping every
  /// VarInfo.
  std::vector<QualVarId> PendingTouched;
  /// Lifetime edge-visit total. Stats.EdgeVisits resets every solve(), so
  /// the pressure policy tracks its own accumulator.
  uint64_t TotalEdgeVisits = 0;
  /// Snapshot of TotalEdgeVisits at the last rebuild; the difference to
  /// the live counter is the propagation pressure that triggers the next
  /// rebuild (see SolverConfig::CollapsePressureFactor).
  uint64_t VisitsAtRebuild = 0;
  /// Edges in the current compact graph (survives the per-solve stats
  /// reset; getStats() reports it as SolverStats::CompactEdges).
  unsigned CompactEdgeCount = 0;
  /// CSR adjacency over representatives, rebuilt by rebuildCompactGraph().
  /// Row i covers [SuccStart[i], SuccStart[i+1]) in SuccEdges; vars created
  /// after the rebuild have no row. Edge arrays live in EdgeArena.
  std::vector<uint32_t> SuccStart;
  std::vector<uint32_t> PredStart;
  CompactEdge *SuccEdges = nullptr;
  CompactEdge *PredEdges = nullptr;
  BumpPtrAllocator EdgeArena;
  /// Ids of constraints whose Rhs is a constant (upper bounds), for the
  /// violation scan.
  std::vector<ConstraintId> UpperBoundIds;
  /// Ids of const <= const constraints (checked directly).
  std::vector<ConstraintId> ConstConstIds;
  unsigned SolvedConstraints = 0;
  bool ConstraintLimitHit = false;
  SolverStats Stats;

  /// True when \p Mask covers every registered qualifier bit, i.e. the
  /// constraint really is an unmasked <= (only such edges witness equality
  /// on a cycle and may be collapsed).
  bool isFullMask(uint64_t Mask) const {
    return (Mask & QS.usedBits()) == QS.usedBits();
  }

  /// Joins \p NewBits into \p Rep's lower solution. Returns true if any bit
  /// was gained. \p Rep must be a representative.
  bool raiseLower(QualVarId Rep, LatticeValue NewBits);

  /// Meets \p Cap into \p Rep's upper solution; true if it shrank.
  bool capUpper(QualVarId Rep, LatticeValue Cap);

  /// Folds the two variables' solution state onto one representative and
  /// returns it. Both arguments must be (distinct) representatives.
  QualVarId mergeReps(QualVarId A, QualVarId B);

  bool shouldRebuild() const;

  /// Deduplicate parallel edges, Tarjan over the unmasked edges to collapse
  /// <=-cycles onto union-find representatives, and rebuild the CSR
  /// adjacency over the result (component-internal edges dropped).
  /// Everything runs on flat CSR arrays and counting sorts: O(V + E) with
  /// no per-node allocation and no comparison sort. Representatives that
  /// absorbed a merge (whose solution state therefore changed) are appended
  /// to \p MergedReps so the caller can re-seed the worklists.
  void rebuildCompactGraph(std::vector<QualVarId> &MergedReps);

  /// Worklist propagation over compact + pending edges. Tiers up: when the
  /// visit counter crosses the pressure threshold mid-drain, collapses and
  /// compacts the graph via rebuildCompactGraph() and resumes on the
  /// smaller graph.
  void runWorklists(std::vector<QualVarId> &LowerWork,
                    std::vector<QualVarId> &UpperWork);

  /// True when this solve should take the dense bulk path: the dense core
  /// is enabled and the edges added since the last rebuild are both large
  /// in absolute terms and a large fraction of the whole system.
  bool shouldSolveDense() const;

  /// The dense branch-free core (see the file comment): packs the freshly
  /// rebuilt condensation into flat CSR arrays with inline masks and plain
  /// uint64_t lattice words, levelizes the scheduling DAG (Tarjan over all
  /// edges including masked ones, so masked cycles become single fixpoint
  /// shards), then runs one forward join pass and one backward meet pass
  /// level by level -- optionally sharding each level's components onto
  /// Config.Pool. Must run immediately after rebuildCompactGraph() (no
  /// pending edges) and after the new-constraint seeding; replaces
  /// runWorklists() for this solve.
  void solveDense();
};

} // namespace quals

#endif // QUALS_QUAL_CONSTRAINTSYSTEM_H

//===- qual/ConstraintSystem.h - Atomic qualifier constraints --*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic subtyping constraint system of Section 3.1. After structural
/// decomposition (Subtype.h) all constraints have the form kappa <= kappa',
/// kappa <= l, l <= kappa, or l <= l', over the qualifier lattice. Such
/// systems are solvable in linear time for a fixed qualifier set [HR97]; the
/// solver below computes the *least* solution by forward join propagation and
/// the *greatest* solution by backward meet propagation, then reports every
/// upper-bound violation with a provenance path.
///
/// The paper solved these with BANE's generic engine and remarks that "we
/// expect substantial speedups would be achieved with a framework specialized
/// to the qualifier lattice" -- this class is that specialized framework.
///
/// Constraints optionally carry a bit \p Mask restricting them to a subset of
/// the qualifier components; masked constraints implement well-formedness
/// rules such as binding-time's "nothing dynamic inside something static"
/// (see WellFormed.h) without leaving the atomic fragment.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_CONSTRAINTSYSTEM_H
#define QUALS_QUAL_CONSTRAINTSYSTEM_H

#include "qual/QualExpr.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace quals {

/// Where (and why) a constraint was generated; used in error explanations.
struct ConstraintOrigin {
  SourceLoc Loc;
  std::string Reason;

  ConstraintOrigin() = default;
  ConstraintOrigin(std::string Reason) : Reason(std::move(Reason)) {}
  ConstraintOrigin(SourceLoc Loc, std::string Reason)
      : Loc(Loc), Reason(std::move(Reason)) {}
};

/// Dense id of a constraint within its ConstraintSystem.
using ConstraintId = uint32_t;

/// An atomic constraint: (Lhs & Mask) <= (Rhs | ~Mask) componentwise, i.e.
/// Lhs <= Rhs restricted to the qualifier bits in Mask.
struct Constraint {
  QualExpr Lhs;
  QualExpr Rhs;
  uint64_t Mask;
  ConstraintOrigin Origin;
};

/// A failed upper bound discovered by the solver.
struct Violation {
  ConstraintId Cause;       ///< The upper-bound constraint that failed.
  LatticeValue Actual;      ///< Least solution of the left-hand side.
  LatticeValue Bound;       ///< The bound it had to fit under.
  uint64_t OffendingBits;   ///< Lattice bits of Actual exceeding Bound.
};

/// Collects and solves atomic qualifier constraints.
///
/// Solving is incremental: constraints may be added after a solve() and the
/// next solve() only propagates the new information. Queries (lower/upper)
/// require a preceding solve() with no constraints added in between.
class ConstraintSystem {
public:
  explicit ConstraintSystem(const QualifierSet &QS) : QS(QS) {}

  const QualifierSet &getQualifierSet() const { return QS; }

  /// Creates a fresh qualifier variable. \p Name is kept for diagnostics.
  QualVarId freshVar(std::string Name, SourceLoc Loc = SourceLoc());

  unsigned getNumVars() const { return Vars.size(); }
  unsigned getNumConstraints() const { return Constraints.size(); }

  const std::string &getVarName(QualVarId Var) const {
    return Vars[Var].Name;
  }
  SourceLoc getVarLoc(QualVarId Var) const { return Vars[Var].Loc; }

  const Constraint &getConstraint(ConstraintId Id) const {
    return Constraints[Id];
  }

  /// Adds Lhs <= Rhs over all qualifier components.
  void addLeq(QualExpr Lhs, QualExpr Rhs, ConstraintOrigin Origin);

  /// Adds Lhs <= Rhs restricted to the components in \p Mask.
  void addLeqMasked(QualExpr Lhs, QualExpr Rhs, uint64_t Mask,
                    ConstraintOrigin Origin);

  /// Adds Lhs = Rhs (as two <= constraints).
  void addEq(QualExpr Lhs, QualExpr Rhs, ConstraintOrigin Origin);

  /// Runs the propagation fixpoint over constraints added since the last
  /// solve. Returns true if the system is satisfiable so far.
  bool solve();

  /// Least solution of \p Var (valid after solve()).
  LatticeValue lower(QualVarId Var) const {
    assert(SolvedConstraints == Constraints.size() && "call solve() first");
    return Vars[Var].Lower;
  }

  /// Greatest solution of \p Var (valid after solve()).
  LatticeValue upper(QualVarId Var) const {
    assert(SolvedConstraints == Constraints.size() && "call solve() first");
    return Vars[Var].Upper;
  }

  /// Least solution of an arbitrary qualifier expression.
  LatticeValue lower(QualExpr E) const {
    return E.isVar() ? lower(E.getVar()) : E.getConst();
  }

  /// Greatest solution of an arbitrary qualifier expression.
  LatticeValue upper(QualExpr E) const {
    return E.isVar() ? upper(E.getVar()) : E.getConst();
  }

  /// True if qualifier \p Id *must* be present in \p Var in every solution.
  bool mustHave(QualVarId Var, QualifierId Id) const;

  /// True if qualifier \p Id *may* be present in \p Var in some solution.
  bool mayHave(QualVarId Var, QualifierId Id) const;

  /// Scans every upper-bound constraint; returns all violations.
  std::vector<Violation> collectViolations() const;

  /// True if a full solve + violation scan finds no inconsistency.
  bool isSatisfiable();

  /// Renders a human-readable explanation of \p V: the chain of constraints
  /// that carried the offending qualifier from its source to the bound.
  std::string explain(const Violation &V) const;

private:
  struct VarInfo {
    std::string Name;
    SourceLoc Loc;
    LatticeValue Lower;           ///< Join of reachable lower bounds.
    LatticeValue Upper;           ///< Meet of reachable upper bounds.
    /// First-set provenance: (bits gained, constraint responsible), in the
    /// order the bits were gained. Bounded by the qualifier count.
    std::vector<std::pair<uint64_t, ConstraintId>> FirstSet;
    /// Outgoing var->var edges (constraint ids) for forward propagation.
    std::vector<ConstraintId> Succs;
    /// Incoming var->var edges (constraint ids) for backward propagation.
    std::vector<ConstraintId> Preds;
  };

  const QualifierSet &QS;
  std::vector<VarInfo> Vars;
  std::vector<Constraint> Constraints;
  /// Ids of constraints whose Rhs is a constant (upper bounds), for the
  /// violation scan.
  std::vector<ConstraintId> UpperBoundIds;
  /// Ids of const <= const constraints (checked directly).
  std::vector<ConstraintId> ConstConstIds;
  unsigned SolvedConstraints = 0;

  void raiseLower(QualVarId Var, LatticeValue NewBits, ConstraintId Cause,
                  std::vector<QualVarId> &Worklist);
};

} // namespace quals

#endif // QUALS_QUAL_CONSTRAINTSYSTEM_H

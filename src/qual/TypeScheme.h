//===- qual/TypeScheme.h - Polymorphic constrained types -------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualifier polymorphism (Section 3.2). A polymorphic constrained type
///
///   sigma ::= forall kappa_vec . rho \ C
///
/// quantifies over *qualifier* variables only -- never over the underlying
/// type structure. Generalization (rule Letv) binds the qualifier variables
/// created while inferring a syntactic value that do not occur free in the
/// environment, together with the constraints that mention them (the
/// existentially-bound "purely local" variables of the paper). Instantiation
/// (rule Var') substitutes fresh variables for the bound ones in both the
/// body and the canned constraints, re-adding the latter to the caller's
/// constraint system.
///
/// The watermark discipline: because qualified types are immutable and
/// qualifier inference never unifies type structure, a variable created
/// *after* inference of the value began can only occur in the environment if
/// the caller deliberately leaked it; so "not free in A" reduces to "created
/// at or after the watermark and not explicitly marked escaping".
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_TYPESCHEME_H
#define QUALS_QUAL_TYPESCHEME_H

#include "qual/QualType.h"

#include <functional>
#include <unordered_set>
#include <vector>

namespace quals {

/// Snapshot of a ConstraintSystem taken before inferring a let-bound value;
/// generalization considers only variables/constraints created after it.
struct Watermark {
  QualVarId FirstVar;
  ConstraintId FirstConstraint;
};

/// Captures the current counters of \p Sys.
inline Watermark takeWatermark(const ConstraintSystem &Sys) {
  return {Sys.getNumVars(), Sys.getNumConstraints()};
}

/// forall kappa_vec . rho \ C.
class QualScheme {
public:
  /// A trivial (monomorphic) scheme with no bound variables.
  static QualScheme monomorphic(QualType Body) {
    QualScheme S;
    S.Body = Body;
    return S;
  }

  /// Generalizes \p Body over the qualifier variables of \p Sys created at
  /// or after \p Mark, excluding those for which \p Escapes returns true
  /// (variables that leaked into the environment, e.g. via global state).
  /// Constraints created after the watermark that mention at least one bound
  /// variable are canned into the scheme for per-instantiation replay.
  static QualScheme
  generalize(const ConstraintSystem &Sys, QualType Body, Watermark Mark,
             const std::function<bool(QualVarId)> &Escapes = nullptr);

  /// Instantiates the scheme: substitutes fresh variables (created in
  /// \p Sys) for every bound variable in the body and replays the canned
  /// constraints under the substitution.
  QualType instantiate(ConstraintSystem &Sys, QualTypeFactory &Factory,
                       SourceLoc Loc = SourceLoc()) const;

  QualType getBody() const { return Body; }
  bool isPolymorphic() const { return !BoundVars.empty(); }
  unsigned getNumBoundVars() const { return BoundVars.size(); }
  const std::vector<QualVarId> &getBoundVars() const { return BoundVars; }
  const std::vector<Constraint> &getCannedConstraints() const {
    return Canned;
  }

  /// True if \p Var is quantified by this scheme.
  bool isBound(QualVarId Var) const { return BoundSet.count(Var) != 0; }

private:
  QualType Body;
  std::vector<QualVarId> BoundVars;
  std::unordered_set<QualVarId> BoundSet;
  std::vector<Constraint> Canned;
};

} // namespace quals

#endif // QUALS_QUAL_TYPESCHEME_H

//===- qual/QualExpr.h - Qualifier variables and expressions ---*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Q ::= kappa | l production: a qualifier position in a type is
/// either a qualifier variable (to be solved for) or a lattice constant.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_QUALEXPR_H
#define QUALS_QUAL_QUALEXPR_H

#include "qual/Qualifier.h"

#include <cstdint>

namespace quals {

/// Dense id of a qualifier variable within its ConstraintSystem.
using QualVarId = uint32_t;

/// Sentinel for "no variable".
constexpr QualVarId InvalidQualVar = ~QualVarId(0);

/// A qualifier expression: variable kappa or lattice constant l.
class QualExpr {
public:
  QualExpr() : IsVariable(false), Variable(InvalidQualVar) {}

  static QualExpr makeVar(QualVarId Var) {
    QualExpr E;
    E.IsVariable = true;
    E.Variable = Var;
    return E;
  }

  static QualExpr makeConst(LatticeValue V) {
    QualExpr E;
    E.IsVariable = false;
    E.Constant = V;
    return E;
  }

  bool isVar() const { return IsVariable; }
  bool isConst() const { return !IsVariable; }

  QualVarId getVar() const {
    assert(IsVariable && "not a qualifier variable");
    return Variable;
  }

  LatticeValue getConst() const {
    assert(!IsVariable && "not a lattice constant");
    return Constant;
  }

  friend bool operator==(const QualExpr &A, const QualExpr &B) {
    if (A.IsVariable != B.IsVariable)
      return false;
    return A.IsVariable ? A.Variable == B.Variable
                        : A.Constant == B.Constant;
  }
  friend bool operator!=(const QualExpr &A, const QualExpr &B) {
    return !(A == B);
  }

private:
  bool IsVariable;
  QualVarId Variable = InvalidQualVar;
  LatticeValue Constant;
};

} // namespace quals

#endif // QUALS_QUAL_QUALEXPR_H

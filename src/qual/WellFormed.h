//===- qual/WellFormed.h - Well-formedness conditions ----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-supplied well-formedness conditions on qualified types (Section 2).
/// The canonical example is binding-time analysis: "Nothing dynamic may
/// appear within a value that is static", i.e. the type
/// static (dynamic a -> dynamic b) is not well-formed.
///
/// Such conditions are expressible inside the atomic constraint fragment as
/// *masked* inequalities between a type node's qualifier and its children's
/// qualifiers:
///
///   requireUpwardClosed(q):   child.Q <= parent.Q  on q's component.
///     If the parent lacks (positive) q, the children must lack it too --
///     exactly the binding-time rule with q = dynamic.
///
///   requireDownwardClosed(q): parent.Q <= child.Q  on q's component.
///     If the parent has (positive) q, the children must have it too --
///     e.g. a tainted container has tainted contents.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_QUAL_WELLFORMED_H
#define QUALS_QUAL_WELLFORMED_H

#include "qual/QualType.h"

namespace quals {

/// Adds masked constraints making qualifier \p Q upward closed over \p T:
/// each child's Q-component flows into its parent's.
void requireUpwardClosed(ConstraintSystem &Sys, QualType T, QualifierId Q,
                         const ConstraintOrigin &Origin);

/// Adds masked constraints making qualifier \p Q downward closed over \p T:
/// each parent's Q-component flows into its children's.
void requireDownwardClosed(ConstraintSystem &Sys, QualType T, QualifierId Q,
                           const ConstraintOrigin &Origin);

/// Post-solve structural check: returns true if no subterm of \p T whose
/// parent *lacks* qualifier \p Outer *has* qualifier \p Inner in the least
/// solution. With Outer == Inner == dynamic this checks the binding-time
/// well-formedness condition on solved types.
bool checkNoInnerWithoutOuter(const ConstraintSystem &Sys, QualType T,
                              QualifierId Outer, QualifierId Inner);

} // namespace quals

#endif // QUALS_QUAL_WELLFORMED_H

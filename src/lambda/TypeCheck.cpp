//===- lambda/TypeCheck.cpp - Standard (unqualified) type inference -------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "lambda/TypeCheck.h"

using namespace quals;
using namespace quals::lambda;

STy *STyContext::resolve(STy *T) {
  while (T->getKind() == STy::Kind::Var && T->Link) {
    if (T->Link->getKind() == STy::Kind::Var && T->Link->Link)
      T->Link = T->Link->Link; // Path compression.
    T = T->Link;
  }
  return T;
}

bool STyContext::occurs(STy *Var, STy *T) {
  T = resolve(T);
  if (T == Var)
    return true;
  if (T->getKind() == STy::Kind::Fn)
    return occurs(Var, T->Arg0) || occurs(Var, T->Arg1);
  if (T->getKind() == STy::Kind::Ref)
    return occurs(Var, T->Arg0);
  return false;
}

bool STyContext::unify(STy *A, STy *B) {
  A = resolve(A);
  B = resolve(B);
  if (A == B)
    return true;
  if (A->getKind() == STy::Kind::Var) {
    if (occurs(A, B))
      return false;
    A->Link = B;
    return true;
  }
  if (B->getKind() == STy::Kind::Var)
    return unify(B, A);
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case STy::Kind::Int:
  case STy::Kind::Unit:
    return true;
  case STy::Kind::Fn:
    return unify(A->Arg0, B->Arg0) && unify(A->Arg1, B->Arg1);
  case STy::Kind::Ref:
    return unify(A->Arg0, B->Arg0);
  case STy::Kind::Var:
    break;
  }
  return false;
}

std::string STyContext::toString(STy *T) {
  T = resolve(T);
  switch (T->getKind()) {
  case STy::Kind::Var:
    return "'a";
  case STy::Kind::Int:
    return "int";
  case STy::Kind::Unit:
    return "unit";
  case STy::Kind::Fn:
    return "(" + toString(T->Arg0) + " -> " + toString(T->Arg1) + ")";
  case STy::Kind::Ref:
    return "ref(" + toString(T->Arg0) + ")";
  }
  return "<?>";
}

STy *StdTypeChecker::fail(const Expr *E, const std::string &Message) {
  Diags.error(E->getLoc(), Message);
  return nullptr;
}

STy *StdTypeChecker::check(const Expr *Program) {
  NodeTypes.clear();
  Env.clear();
  return infer(Program);
}

STy *StdTypeChecker::infer(const Expr *E) {
  // Term depth is normally capped by the parser's guard, but hand-built
  // ASTs (tests, future front ends) reach here directly.
  RecursionGuard Guard(Diags, E->getLoc());
  if (!Guard.ok())
    return nullptr;
  STy *Result = nullptr;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    Result = Types.makeInt();
    break;
  case Expr::Kind::UnitLit:
    Result = Types.makeUnit();
    break;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Env.find(V->getName());
    if (It == Env.end() || It->second.empty())
      return fail(E, "unbound variable '" + std::string(V->getName()) + "'");
    Result = It->second.back();
    break;
  }
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    STy *ParamTy = Types.makeVar();
    Env[L->getParam()].push_back(ParamTy);
    STy *BodyTy = infer(L->getBody());
    Env[L->getParam()].pop_back();
    if (!BodyTy)
      return nullptr;
    Result = Types.makeFn(ParamTy, BodyTy);
    break;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    STy *FnTy = infer(A->getFn());
    STy *ArgTy = FnTy ? infer(A->getArg()) : nullptr;
    if (!ArgTy)
      return nullptr;
    STy *ResTy = Types.makeVar();
    if (!Types.unify(FnTy, Types.makeFn(ArgTy, ResTy)))
      return fail(E, "cannot apply a value of type " + Types.toString(FnTy) +
                         " to an argument of type " + Types.toString(ArgTy));
    Result = ResTy;
    break;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    STy *CondTy = infer(I->getCond());
    if (!CondTy)
      return nullptr;
    if (!Types.unify(CondTy, Types.makeInt()))
      return fail(I->getCond(), "if-condition must be an int, found " +
                                    Types.toString(CondTy));
    STy *ThenTy = infer(I->getThen());
    STy *ElseTy = ThenTy ? infer(I->getElse()) : nullptr;
    if (!ElseTy)
      return nullptr;
    if (!Types.unify(ThenTy, ElseTy))
      return fail(E, "if-branches have different types: " +
                         Types.toString(ThenTy) + " vs " +
                         Types.toString(ElseTy));
    Result = ThenTy;
    break;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    STy *InitTy = infer(L->getInit());
    if (!InitTy)
      return nullptr;
    Env[L->getName()].push_back(InitTy);
    STy *BodyTy = infer(L->getBody());
    Env[L->getName()].pop_back();
    if (!BodyTy)
      return nullptr;
    Result = BodyTy;
    break;
  }
  case Expr::Kind::Ref: {
    const auto *R = cast<RefExpr>(E);
    STy *InitTy = infer(R->getInit());
    if (!InitTy)
      return nullptr;
    Result = Types.makeRef(InitTy);
    break;
  }
  case Expr::Kind::Deref: {
    const auto *D = cast<DerefExpr>(E);
    STy *RefTy = infer(D->getRef());
    if (!RefTy)
      return nullptr;
    STy *Contents = Types.makeVar();
    if (!Types.unify(RefTy, Types.makeRef(Contents)))
      return fail(E, "cannot dereference a value of type " +
                         Types.toString(RefTy));
    Result = Contents;
    break;
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    STy *TargetTy = infer(A->getTarget());
    STy *ValueTy = TargetTy ? infer(A->getValue()) : nullptr;
    if (!ValueTy)
      return nullptr;
    if (!Types.unify(TargetTy, Types.makeRef(ValueTy)))
      return fail(E, "cannot assign a value of type " +
                         Types.toString(ValueTy) + " through a value of "
                         "type " + Types.toString(TargetTy));
    Result = Types.makeUnit();
    break;
  }
  case Expr::Kind::Annot:
    Result = infer(cast<AnnotExpr>(E)->getOperand());
    break;
  case Expr::Kind::Assert:
    Result = infer(cast<AssertExpr>(E)->getOperand());
    break;
  case Expr::Kind::Loc:
    return fail(E, "store locations cannot appear in source programs");
  }
  if (Result)
    NodeTypes[E] = Result;
  return Result;
}

//===- lambda/Lexer.h - Lexer for the demonstration language ---*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_LEXER_H
#define QUALS_LAMBDA_LEXER_H

#include "lambda/Token.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

namespace quals {
namespace lambda {

/// Hand-written lexer over one buffer. Comments run from '#' to end of line.
class Lexer {
public:
  Lexer(const SourceManager &SM, unsigned BufferId, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token next();

private:
  const SourceManager &SM;
  DiagnosticEngine &Diags;
  std::string_view Text;
  size_t Pos = 0;
  unsigned BufferId;

  SourceLoc locAt(size_t Offset) const {
    return SM.getLocForOffset(BufferId, Offset);
  }
  void skipWhitespaceAndComments();
  Token makeToken(TokKind Kind, size_t Begin, size_t End);
};

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_LEXER_H

//===- lambda/Lexer.cpp - Lexer for the demonstration language ------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "lambda/Lexer.h"

#include <cctype>
#include <limits>
#include <unordered_map>

using namespace quals;
using namespace quals::lambda;

const char *quals::lambda::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:    return "end of input";
  case TokKind::Error:  return "invalid token";
  case TokKind::IntLit: return "integer literal";
  case TokKind::Ident:  return "identifier";
  case TokKind::KwFn:   return "'fn'";
  case TokKind::KwLet:  return "'let'";
  case TokKind::KwIn:   return "'in'";
  case TokKind::KwNi:   return "'ni'";
  case TokKind::KwIf:   return "'if'";
  case TokKind::KwThen: return "'then'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwFi:   return "'fi'";
  case TokKind::KwRef:  return "'ref'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::Dot:    return "'.'";
  case TokKind::Bang:   return "'!'";
  case TokKind::Assign: return "':='";
  case TokKind::Eq:     return "'='";
  case TokKind::Pipe:   return "'|'";
  case TokKind::Tilde:  return "'~'";
  }
  return "unknown token";
}

Lexer::Lexer(const SourceManager &SM, unsigned BufferId,
             DiagnosticEngine &Diags)
    : SM(SM), Diags(Diags), Text(SM.getBufferText(BufferId)),
      BufferId(BufferId) {}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '#') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokKind Kind, size_t Begin, size_t End) {
  Token T;
  T.Kind = Kind;
  T.Loc = locAt(Begin);
  T.Text = Text.substr(Begin, End - Begin);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  if (Pos >= Text.size())
    return makeToken(TokKind::Eof, Pos, Pos);

  size_t Begin = Pos;
  char C = Text[Pos];

  if (std::isdigit(static_cast<unsigned char>(C))) {
    long Value = 0;
    bool Overflow = false;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      int Digit = Text[Pos] - '0';
      // Same check as the C front end's ERANGE path: accumulating past
      // LONG_MAX is signed-overflow UB, not a big number.
      if (Value > (std::numeric_limits<long>::max() - Digit) / 10)
        Overflow = true;
      else
        Value = Value * 10 + Digit;
      ++Pos;
    }
    if (Overflow)
      Diags.error(locAt(Begin), "integer literal out of range");
    Token T = makeToken(TokKind::IntLit, Begin, Pos);
    T.IntValue = Value;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    std::string_view Word = Text.substr(Begin, Pos - Begin);
    static const std::unordered_map<std::string_view, TokKind> Keywords = {
        {"fn", TokKind::KwFn},     {"let", TokKind::KwLet},
        {"in", TokKind::KwIn},     {"ni", TokKind::KwNi},
        {"if", TokKind::KwIf},     {"then", TokKind::KwThen},
        {"else", TokKind::KwElse}, {"fi", TokKind::KwFi},
        {"ref", TokKind::KwRef}};
    auto It = Keywords.find(Word);
    return makeToken(It == Keywords.end() ? TokKind::Ident : It->second,
                     Begin, Pos);
  }

  ++Pos;
  switch (C) {
  case '(': return makeToken(TokKind::LParen, Begin, Pos);
  case ')': return makeToken(TokKind::RParen, Begin, Pos);
  case '{': return makeToken(TokKind::LBrace, Begin, Pos);
  case '}': return makeToken(TokKind::RBrace, Begin, Pos);
  case '.': return makeToken(TokKind::Dot, Begin, Pos);
  case '!': return makeToken(TokKind::Bang, Begin, Pos);
  case '=': return makeToken(TokKind::Eq, Begin, Pos);
  case '|': return makeToken(TokKind::Pipe, Begin, Pos);
  case '~': return makeToken(TokKind::Tilde, Begin, Pos);
  case ':':
    if (Pos < Text.size() && Text[Pos] == '=') {
      ++Pos;
      return makeToken(TokKind::Assign, Begin, Pos);
    }
    break;
  default:
    break;
  }
  Diags.error(locAt(Begin), std::string("unexpected character '") + C + "'");
  return makeToken(TokKind::Error, Begin, Pos);
}

//===- lambda/Token.h - Tokens of the demonstration language ---*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the paper's call-by-value lambda language (Figure 1)
/// extended with ML-style references (Section 2.4) and the qualifier
/// annotation/assertion syntax of Section 2.2:
///
///   {q1 q2} e     qualifier annotation (the paper's "l e")
///   e |{q1 q2}    qualifier assertion  (the paper's "e|l")
///
/// Per Section 2.5, qualifiers live behind reserved symbols ({...}) so the
/// lexer tokenizes them unambiguously.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_TOKEN_H
#define QUALS_LAMBDA_TOKEN_H

#include "support/SourceLoc.h"

#include <string_view>

namespace quals {
namespace lambda {

/// Token kinds.
enum class TokKind {
  Eof,
  Error,
  // Literals and identifiers.
  IntLit,     ///< 42
  Ident,      ///< x
  // Keywords.
  KwFn,       ///< fn
  KwLet,      ///< let
  KwIn,       ///< in
  KwNi,       ///< ni (optional let terminator, as in the paper)
  KwIf,       ///< if
  KwThen,     ///< then
  KwElse,     ///< else
  KwFi,       ///< fi (optional if terminator, as in the paper)
  KwRef,      ///< ref
  // Punctuation.
  LParen,     ///< (
  RParen,     ///< )
  LBrace,     ///< {
  RBrace,     ///< }
  Dot,        ///< .
  Bang,       ///< !   (dereference)
  Assign,     ///< :=
  Eq,         ///< =
  Pipe,       ///< |   (assertion)
  Tilde       ///< ~   (absent-qualifier marker inside braces)
};

/// A lexed token; Text views into the SourceManager's buffer.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string_view Text;
  long IntValue = 0; ///< Valid for IntLit.

  bool is(TokKind K) const { return Kind == K; }
};

/// Human-readable name of a token kind for diagnostics.
const char *tokKindName(TokKind Kind);

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_TOKEN_H

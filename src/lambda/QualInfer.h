//===- lambda/QualInfer.h - Qualified type inference ------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualifier inference for the demonstration language: the qualified type
/// system of Figure 4 in inference form (Section 3.1), with qualifier
/// polymorphism (Section 3.2, rules Letv/Var' under the value restriction)
/// and the const rule (Section 2.4, rule Assign').
///
/// Runs after standard type checking (TypeCheck.h); only qualifier
/// variables and atomic lattice constraints are introduced here, never type
/// structure -- the paper's Observation 1.
///
/// The inference is parameterized the way the paper's framework is:
/// \li an arbitrary QualifierSet,
/// \li an optional "const-like" qualifier enabling the Assign' restriction,
/// \li optional well-formedness closure rules (e.g. binding-time's "nothing
///     dynamic inside static" = dynamic is upward closed),
/// \li an optional literal hook assigning lattice lower bounds to integer
///     literals (e.g. nonzero literals).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_QUALINFER_H
#define QUALS_LAMBDA_QUALINFER_H

#include "lambda/TypeCheck.h"
#include "qual/Subtype.h"
#include "qual/TypeScheme.h"

#include <functional>
#include <optional>
#include <unordered_map>

namespace quals {
namespace lambda {

/// Type constructors of the demonstration language's qualified types
/// (Figure 3 plus ref/unit from Section 2.4). One instance per inference
/// pipeline; QualTypes point into it.
struct LambdaTypeCtors {
  TypeCtor Int{"int", {}};
  TypeCtor Unit{"unit", {}};
  TypeCtor Fn{"->",
              {Variance::Contravariant, Variance::Covariant},
              PrintStyle::Infix};
  // SubRef: ref contents are invariant, which is what rejects the paper's
  // Section 2.4 nonzero-smuggling example.
  TypeCtor Ref{"ref", {Variance::Invariant}};
};

/// Knobs for the qualifier inference.
struct QualInferOptions {
  /// Generalize let-bound syntactic values (rule Letv) and instantiate at
  /// uses (rule Var'). When false, inference is monomorphic.
  bool Polymorphic = true;

  /// When set, assignment left-hand sides must lack this qualifier
  /// (rule Assign': the ref being assigned through is bounded by :const).
  std::optional<QualifierId> ConstQual;

  /// Qualifiers required to be upward closed in every type (child <= parent
  /// on that component); e.g. dynamic in binding-time analysis.
  std::vector<QualifierId> UpwardClosedQuals;

  /// Qualifiers required to be downward closed (parent <= child); e.g.
  /// tainted containers have tainted contents.
  std::vector<QualifierId> DownwardClosedQuals;

  /// Optional lattice lower bound for integer literals (e.g. mark non-zero
  /// literals nonzero). Defaults to bottom, matching the paper's (Int) rule.
  std::function<LatticeValue(long)> IntLiteralQual;
};

/// Runs qualifier inference over one program.
class QualInferencer {
public:
  QualInferencer(const QualifierSet &QS, ConstraintSystem &Sys,
                 QualTypeFactory &Factory, const LambdaTypeCtors &Ctors,
                 DiagnosticEngine &Diags, QualInferOptions Options);

  /// Infers the qualified type of \p Program, whose shapes were resolved by
  /// \p Shapes. Returns a null type on error. Constraints accumulate in the
  /// ConstraintSystem; the caller solves and checks violations.
  QualType infer(const Expr *Program, const StdTypeChecker &Shapes);

  /// Qualified type recorded for \p E during the last infer().
  QualType getNodeType(const Expr *E) const {
    auto It = NodeTypes.find(E);
    return It == NodeTypes.end() ? QualType() : It->second;
  }

  /// The scheme bound for the let at \p E (for tests inspecting
  /// generalization).
  const QualScheme *getLetScheme(const Expr *E) const {
    auto It = LetSchemes.find(E);
    return It == LetSchemes.end() ? nullptr : &It->second;
  }

private:
  const QualifierSet &QS;
  ConstraintSystem &Sys;
  QualTypeFactory &Factory;
  const LambdaTypeCtors &Ctors;
  DiagnosticEngine &Diags;
  QualInferOptions Options;
  const StdTypeChecker *Shapes = nullptr;

  std::unordered_map<const Expr *, QualType> NodeTypes;
  std::unordered_map<const Expr *, QualScheme> LetSchemes;
  std::unordered_map<std::string_view, std::vector<QualScheme>> Env;

  QualType inferExpr(const Expr *E);
  QualType fail(const Expr *E, const std::string &Message);

  /// Fresh top-level qualifier variable.
  QualExpr freshQual(const std::string &Hint, SourceLoc Loc);

  /// sp over a resolved standard type: qualified type with fresh variables
  /// at every level, with well-formedness rules applied.
  QualType spreadSTy(STy *T, const std::string &Hint, SourceLoc Loc);

  /// Applies the configured closure rules to one freshly built level.
  void applyWFLevel(QualType T, SourceLoc Loc);
};

/// End-to-end result of checkProgram().
struct CheckResult {
  bool StdTypeOk = false;   ///< Standard type checking succeeded.
  bool QualOk = false;      ///< Qualifier constraints are satisfiable.
  QualType Type;            ///< Inferred qualified type (if StdTypeOk).
  std::vector<Violation> Violations; ///< Qualifier violations (if any).
  SolverStats Stats;        ///< Solver instrumentation after the solve.
};

/// Convenience pipeline: standard type check, qualifier inference, solve.
/// All state objects are caller-provided so results can be inspected.
CheckResult checkProgram(const Expr *Program, const QualifierSet &QS,
                         STyContext &STys, ConstraintSystem &Sys,
                         QualTypeFactory &Factory,
                         const LambdaTypeCtors &Ctors,
                         DiagnosticEngine &Diags,
                         const QualInferOptions &Options);

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_QUALINFER_H

//===- lambda/Eval.h - Small-step operational semantics --------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-step operational semantics of Figure 5. Runtime values are
/// *qualified* values l v (a bare syntactic value carries an implicit bottom
/// annotation). Qualifier assertions e|l and annotations l e reduce only
/// when the value's qualifier satisfies the side condition l_2 <= l_1;
/// otherwise evaluation is *stuck* -- which is exactly what the soundness
/// theorem (Corollary 1) guarantees never happens to well-typed programs.
/// The property tests in tests/lambda_soundness_test.cpp exercise this.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_EVAL_H
#define QUALS_LAMBDA_EVAL_H

#include "lambda/Ast.h"

#include <functional>
#include <string>
#include <vector>

namespace quals {
namespace lambda {

/// Outcome of running a program.
enum class EvalOutcome {
  Value,   ///< Reduced to a qualified value.
  Stuck,   ///< No reduction applies (failed assertion, bad application...).
  TimedOut ///< Step limit exhausted (possibly diverging).
};

/// Result of evaluate().
struct EvalResult {
  EvalOutcome Outcome = EvalOutcome::Stuck;
  const Expr *Result = nullptr; ///< Final expression (value if Outcome=Value).
  std::string StuckReason;      ///< Human-readable reason when stuck.
  SourceLoc StuckLoc;
  unsigned Steps = 0;
};

/// The machine of Figure 5: a store of qualified values plus the redex.
class Evaluator {
public:
  Evaluator(AstContext &Ctx, const QualifierSet &QS) : Ctx(Ctx), QS(QS) {}

  /// Called after each reduction step with the new whole-program term
  /// (for tracing; the initial term is not reported).
  using StepObserver = std::function<void(const Expr *)>;

  /// Runs \p Program for at most \p MaxSteps reduction steps. \p Observer,
  /// when set, sees every intermediate term.
  EvalResult evaluate(const Expr *Program, unsigned MaxSteps = 100000,
                      const StepObserver &Observer = nullptr);

  /// The store contents after evaluate() (for tests).
  const std::vector<const Expr *> &getStore() const { return Store; }

  /// True if \p E is a runtime value: a bare syntactic value or a single
  /// qualifier annotation of one.
  static bool isRuntimeValue(const Expr *E);

  /// Top-level qualifier of a runtime value (bottom when unannotated).
  LatticeValue valueQual(const Expr *E) const;

  /// The bare syntactic value under a runtime value's annotation.
  static const Expr *bareValue(const Expr *E);

private:
  AstContext &Ctx;
  const QualifierSet &QS;
  std::vector<const Expr *> Store;

  enum class StepStatus { Value, Stepped, Stuck };

  StepStatus step(const Expr *E, const Expr *&Out, std::string &Reason,
                  SourceLoc &StuckLoc);

  /// Capture-free substitution e[Name := Value]; Value is a closed runtime
  /// value, so no renaming is needed.
  const Expr *subst(const Expr *E, std::string_view Name, const Expr *Value);
};

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_EVAL_H

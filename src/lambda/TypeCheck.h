//===- lambda/TypeCheck.h - Standard (unqualified) type inference -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *standard* type system of the paper's language: the simply-typed
/// lambda calculus with ML-style references, checked by unification. Per the
/// paper's factorization (and Observation 1), this phase resolves all type
/// *structure*; qualifier inference afterwards only decorates the resolved
/// shapes, so the qualifier constraints stay atomic.
///
/// Note there is no shape polymorphism: the paper's polymorphism applies to
/// qualifiers only ("polymorphism only applies to the qualifiers and not to
/// the underlying types", Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_TYPECHECK_H
#define QUALS_LAMBDA_TYPECHECK_H

#include "lambda/Ast.h"
#include "support/Allocator.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>

namespace quals {
namespace lambda {

/// A standard type: int, unit, t -> t, ref(t), or a unification variable.
class STy {
public:
  enum class Kind { Var, Int, Unit, Fn, Ref };

  Kind getKind() const { return TheKind; }

  // Var state: Link is null while unbound.
  STy *Link = nullptr;

  // Fn / Ref children.
  STy *Arg0 = nullptr; ///< Fn parameter / Ref contents.
  STy *Arg1 = nullptr; ///< Fn result.

  explicit STy(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

/// Allocates standard types and implements unification.
class STyContext {
public:
  STy *makeVar() { return Arena.create<STy>(STy::Kind::Var); }
  STy *makeInt() { return Arena.create<STy>(STy::Kind::Int); }
  STy *makeUnit() { return Arena.create<STy>(STy::Kind::Unit); }
  STy *makeFn(STy *Param, STy *Result) {
    STy *T = Arena.create<STy>(STy::Kind::Fn);
    T->Arg0 = Param;
    T->Arg1 = Result;
    return T;
  }
  STy *makeRef(STy *Pointee) {
    STy *T = Arena.create<STy>(STy::Kind::Ref);
    T->Arg0 = Pointee;
    return T;
  }

  /// Follows variable links to the representative (with path compression).
  STy *resolve(STy *T);

  /// Unifies two types; returns false on a structure clash or occurs-check
  /// failure.
  bool unify(STy *A, STy *B);

  /// Renders \p T ("int", "(int -> ref(int))", "'a" for unbound vars).
  std::string toString(STy *T);

private:
  BumpPtrAllocator Arena;

  bool occurs(STy *Var, STy *T);
};

/// Runs standard type inference over a program.
class StdTypeChecker {
public:
  StdTypeChecker(STyContext &Types, DiagnosticEngine &Diags)
      : Types(Types), Diags(Diags) {}

  /// Infers the type of \p Program (a closed expression); returns null on a
  /// type error (reported to the diagnostic engine). Every subexpression's
  /// type is recorded and retrievable via getNodeType().
  STy *check(const Expr *Program);

  /// The inferred standard type of \p E (valid after a successful check()).
  STy *getNodeType(const Expr *E) const {
    auto It = NodeTypes.find(E);
    return It == NodeTypes.end() ? nullptr : It->second;
  }

private:
  STyContext &Types;
  DiagnosticEngine &Diags;
  std::unordered_map<const Expr *, STy *> NodeTypes;
  std::unordered_map<std::string_view, std::vector<STy *>> Env;

  STy *infer(const Expr *E);
  STy *fail(const Expr *E, const std::string &Message);
};

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_TYPECHECK_H

//===- lambda/Parser.cpp - Parser for the demonstration language ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "lambda/Parser.h"

#include "support/Metrics.h"

using namespace quals;
using namespace quals::lambda;

Parser::Parser(const SourceManager &SM, unsigned BufferId,
               const QualifierSet &QS, AstContext &Ctx,
               StringInterner &Idents, DiagnosticEngine &Diags)
    : Lex(SM, BufferId, Diags), QS(QS), Ctx(Ctx), Idents(Idents),
      Diags(Diags) {
  advance();
}

bool Parser::expect(TokKind Kind) {
  if (Tok.is(Kind)) {
    advance();
    return true;
  }
  Diags.error(Tok.Loc, std::string("expected ") + tokKindName(Kind) +
                           " but found " + tokKindName(Tok.Kind));
  return false;
}

bool Parser::startsUnary(TokKind Kind) const {
  switch (Kind) {
  case TokKind::IntLit:
  case TokKind::Ident:
  case TokKind::LParen:
  case TokKind::Bang:
  case TokKind::KwRef:
  case TokKind::LBrace:
    return true;
  default:
    return false;
  }
}

const Expr *Parser::parseProgram() {
  const Expr *E = parseExpr();
  if (!E)
    return nullptr;
  if (!Tok.is(TokKind::Eof)) {
    Diags.error(Tok.Loc, std::string("expected end of input but found ") +
                             tokKindName(Tok.Kind));
    return nullptr;
  }
  return E;
}

const Expr *Parser::parseExpr() {
  // Every nesting construct (fn/let/if bodies, parenthesized expressions)
  // recurses through here, so one guard bounds the whole parse stack.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok() || !Diags.checkResources(Tok.Loc))
    return nullptr;
  SourceLoc Loc = Tok.Loc;
  if (Tok.is(TokKind::KwFn)) {
    advance();
    if (!Tok.is(TokKind::Ident)) {
      Diags.error(Tok.Loc, "expected parameter name after 'fn'");
      return nullptr;
    }
    std::string_view Param = Idents.intern(Tok.Text);
    advance();
    if (!expect(TokKind::Dot))
      return nullptr;
    const Expr *Body = parseExpr();
    if (!Body)
      return nullptr;
    return Ctx.create<LambdaExpr>(Param, Body, Loc);
  }

  if (Tok.is(TokKind::KwLet)) {
    advance();
    if (!Tok.is(TokKind::Ident)) {
      Diags.error(Tok.Loc, "expected variable name after 'let'");
      return nullptr;
    }
    std::string_view Name = Idents.intern(Tok.Text);
    advance();
    if (!expect(TokKind::Eq))
      return nullptr;
    const Expr *Init = parseExpr();
    if (!Init)
      return nullptr;
    if (!expect(TokKind::KwIn))
      return nullptr;
    const Expr *Body = parseExpr();
    if (!Body)
      return nullptr;
    if (Tok.is(TokKind::KwNi))
      advance();
    return Ctx.create<LetExpr>(Name, Init, Body, Loc);
  }

  if (Tok.is(TokKind::KwIf)) {
    advance();
    const Expr *Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokKind::KwThen))
      return nullptr;
    const Expr *Then = parseExpr();
    if (!Then)
      return nullptr;
    if (!expect(TokKind::KwElse))
      return nullptr;
    const Expr *Else = parseExpr();
    if (!Else)
      return nullptr;
    if (Tok.is(TokKind::KwFi))
      advance();
    return Ctx.create<IfExpr>(Cond, Then, Else, Loc);
  }

  return parseAssign();
}

const Expr *Parser::parseAssign() {
  SourceLoc Loc = Tok.Loc;
  const Expr *Lhs = parseApp();
  if (!Lhs)
    return nullptr;
  if (!Tok.is(TokKind::Assign))
    return Lhs;
  advance();
  const Expr *Rhs = parseExpr();
  if (!Rhs)
    return nullptr;
  return Ctx.create<AssignExpr>(Lhs, Rhs, Loc);
}

const Expr *Parser::parseApp() {
  const Expr *Fn = parseUnary();
  if (!Fn)
    return nullptr;
  while (startsUnary(Tok.Kind)) {
    SourceLoc Loc = Tok.Loc;
    const Expr *Arg = parseUnary();
    if (!Arg)
      return nullptr;
    Fn = Ctx.create<AppExpr>(Fn, Arg, Loc);
  }
  return Fn;
}

const Expr *Parser::parseUnary() {
  // '!' and 'ref' chains recurse here without passing through parseExpr.
  RecursionGuard Guard(Diags, Tok.Loc);
  if (!Guard.ok())
    return nullptr;
  SourceLoc Loc = Tok.Loc;
  if (Tok.is(TokKind::Bang)) {
    advance();
    const Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<DerefExpr>(Operand, Loc);
  }
  if (Tok.is(TokKind::KwRef)) {
    advance();
    const Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<RefExpr>(Operand, Loc);
  }
  if (Tok.is(TokKind::LBrace)) {
    LatticeValue Qual;
    if (!parseQualList(Qual))
      return nullptr;
    // "The qualifier on an abstraction qualifies the function type itself"
    // (Section 2.2): allow {l} fn x. e without parentheses, likewise for
    // the other expression-level keywords.
    const Expr *Operand =
        (Tok.is(TokKind::KwFn) || Tok.is(TokKind::KwLet) ||
         Tok.is(TokKind::KwIf))
            ? parseExpr()
            : parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<AnnotExpr>(Qual, Operand, Loc);
  }
  return parsePostfix();
}

const Expr *Parser::parsePostfix() {
  const Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  while (Tok.is(TokKind::Pipe)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    LatticeValue Bound;
    if (!parseQualList(Bound))
      return nullptr;
    E = Ctx.create<AssertExpr>(E, Bound, Loc);
  }
  return E;
}

const Expr *Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokKind::IntLit: {
    long Value = Tok.IntValue;
    advance();
    return Ctx.create<IntLitExpr>(Value, Loc);
  }
  case TokKind::Ident: {
    std::string_view Name = Idents.intern(Tok.Text);
    advance();
    return Ctx.create<VarExpr>(Name, Loc);
  }
  case TokKind::LParen: {
    advance();
    if (Tok.is(TokKind::RParen)) {
      advance();
      return Ctx.create<UnitLitExpr>(Loc);
    }
    const Expr *E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokKind::RParen))
      return nullptr;
    return E;
  }
  default:
    Diags.error(Tok.Loc, std::string("expected an expression but found ") +
                             tokKindName(Tok.Kind));
    return nullptr;
  }
}

bool Parser::parseQualList(LatticeValue &Out) {
  if (!expect(TokKind::LBrace))
    return false;

  struct Item {
    QualifierId Id;
    bool Negated;
  };
  std::vector<Item> Items;
  bool AnyNegated = false;

  while (!Tok.is(TokKind::RBrace)) {
    bool Negated = false;
    if (Tok.is(TokKind::Tilde)) {
      Negated = true;
      AnyNegated = true;
      advance();
    }
    if (!Tok.is(TokKind::Ident)) {
      Diags.error(Tok.Loc, "expected qualifier name in qualifier list");
      return false;
    }
    QualifierId Id;
    if (!QS.lookup(Tok.Text, Id)) {
      Diags.error(Tok.Loc,
                  "unknown qualifier '" + std::string(Tok.Text) + "'");
      return false;
    }
    Items.push_back({Id, Negated});
    advance();
  }
  advance(); // consume '}'

  // With any '~name' present the element starts at top (everything present)
  // and named qualifiers are removed; otherwise it starts at bottom and
  // named qualifiers are added.
  Out = AnyNegated ? QS.top() : QS.bottom();
  for (const Item &I : Items)
    Out = I.Negated ? QS.withoutQual(Out, I.Id) : QS.withQual(Out, I.Id);
  return true;
}

const Expr *quals::lambda::parseString(SourceManager &SM, std::string Name,
                                       std::string Source,
                                       const QualifierSet &QS, AstContext &Ctx,
                                       StringInterner &Idents,
                                       DiagnosticEngine &Diags) {
  unsigned BufferId = SM.addBuffer(std::move(Name), std::move(Source));
  // Lexing is interleaved with parsing, so its cost is only separable by a
  // dedicated token-counting pre-scan; run one when somebody is measuring
  // (diagnostics go to a sink engine -- the parse below re-reports them).
  if (observabilityActive()) {
    PhaseScope Phase("lex", "lambda");
    DiagnosticEngine Sink(SM);
    Lexer L(SM, BufferId, Sink);
    uint64_t Tokens = 0;
    while (L.next().Kind != TokKind::Eof)
      ++Tokens;
    Phase.setTraceArgs("\"tokens\":" + std::to_string(Tokens));
    if (MetricsRegistry::collecting())
      MetricsRegistry::global().counter("lambda.lex.tokens").add(Tokens);
  }
  PhaseScope Phase("parse", "lambda");
  Parser P(SM, BufferId, QS, Ctx, Idents, Diags);
  return P.parseProgram();
}

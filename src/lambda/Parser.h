//===- lambda/Parser.h - Parser for the demonstration language -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the paper's language:
///
///   expr    := 'fn' IDENT '.' expr
///            | 'let' IDENT '=' expr 'in' expr 'ni'?
///            | 'if' expr 'then' expr 'else' expr 'fi'?
///            | assign
///   assign  := app (':=' expr)?
///   app     := unary+                       (left-associative application)
///   unary   := '!' unary | 'ref' unary | quals unary | postfix
///   postfix := primary ('|' quals)*         (qualifier assertion)
///   primary := INT | IDENT | '(' ')' | '(' expr ')'
///   quals   := '{' (IDENT | '~' IDENT)* '}'
///
/// A qualifier list denotes a lattice element: plain names start from bottom
/// and add the named qualifiers; if any '~name' appears the element starts
/// from top and '~name' removes that qualifier (so '{~const}' is the paper's
/// ":const" used in assignment assertions).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_PARSER_H
#define QUALS_LAMBDA_PARSER_H

#include "lambda/Ast.h"
#include "lambda/Lexer.h"
#include "support/StringInterner.h"

namespace quals {
namespace lambda {

/// Parses one buffer into an expression tree.
class Parser {
public:
  Parser(const SourceManager &SM, unsigned BufferId, const QualifierSet &QS,
         AstContext &Ctx, StringInterner &Idents, DiagnosticEngine &Diags);

  /// Parses a whole program (one expression followed by EOF); returns null
  /// on a parse error (diagnostics describe the failure).
  const Expr *parseProgram();

private:
  Lexer Lex;
  const QualifierSet &QS;
  AstContext &Ctx;
  StringInterner &Idents;
  DiagnosticEngine &Diags;
  Token Tok; ///< One-token lookahead.

  void advance() { Tok = Lex.next(); }
  bool expect(TokKind Kind);
  bool startsUnary(TokKind Kind) const;

  const Expr *parseExpr();
  const Expr *parseAssign();
  const Expr *parseApp();
  const Expr *parseUnary();
  const Expr *parsePostfix();
  const Expr *parsePrimary();
  bool parseQualList(LatticeValue &Out);
};

/// Convenience: lexes and parses \p Source (registered in \p SM under
/// \p Name); returns null on error.
const Expr *parseString(SourceManager &SM, std::string Name,
                        std::string Source, const QualifierSet &QS,
                        AstContext &Ctx, StringInterner &Idents,
                        DiagnosticEngine &Diags);

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_PARSER_H

//===- lambda/Ast.cpp - AST of the demonstration language -----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "lambda/Ast.h"

using namespace quals;
using namespace quals::lambda;

bool quals::lambda::isSyntacticValue(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::Var:
  case Expr::Kind::Lambda:
  case Expr::Kind::Loc:
    return true;
  case Expr::Kind::Annot:
    return isSyntacticValue(cast<AnnotExpr>(E)->getOperand());
  default:
    return false;
  }
}

const Expr *quals::lambda::stripQualifiers(AstContext &Ctx, const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::Var:
  case Expr::Kind::Loc:
    return E;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    return Ctx.create<LambdaExpr>(L->getParam(),
                                  stripQualifiers(Ctx, L->getBody()),
                                  L->getLoc());
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    return Ctx.create<AppExpr>(stripQualifiers(Ctx, A->getFn()),
                               stripQualifiers(Ctx, A->getArg()),
                               A->getLoc());
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    return Ctx.create<IfExpr>(stripQualifiers(Ctx, I->getCond()),
                              stripQualifiers(Ctx, I->getThen()),
                              stripQualifiers(Ctx, I->getElse()),
                              I->getLoc());
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    return Ctx.create<LetExpr>(L->getName(),
                               stripQualifiers(Ctx, L->getInit()),
                               stripQualifiers(Ctx, L->getBody()),
                               L->getLoc());
  }
  case Expr::Kind::Ref: {
    const auto *R = cast<RefExpr>(E);
    return Ctx.create<RefExpr>(stripQualifiers(Ctx, R->getInit()),
                               R->getLoc());
  }
  case Expr::Kind::Deref: {
    const auto *D = cast<DerefExpr>(E);
    return Ctx.create<DerefExpr>(stripQualifiers(Ctx, D->getRef()),
                                 D->getLoc());
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    return Ctx.create<AssignExpr>(stripQualifiers(Ctx, A->getTarget()),
                                  stripQualifiers(Ctx, A->getValue()),
                                  A->getLoc());
  }
  case Expr::Kind::Annot:
    return stripQualifiers(Ctx, cast<AnnotExpr>(E)->getOperand());
  case Expr::Kind::Assert:
    return stripQualifiers(Ctx, cast<AssertExpr>(E)->getOperand());
  }
  return E;
}

static void print(const QualifierSet &QS, const Expr *E, std::string &Out) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    Out += std::to_string(cast<IntLitExpr>(E)->getValue());
    return;
  case Expr::Kind::UnitLit:
    Out += "()";
    return;
  case Expr::Kind::Var:
    Out += cast<VarExpr>(E)->getName();
    return;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    Out += "(fn ";
    Out += L->getParam();
    Out += ". ";
    print(QS, L->getBody(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    Out += '(';
    print(QS, A->getFn(), Out);
    Out += ' ';
    print(QS, A->getArg(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    Out += "if ";
    print(QS, I->getCond(), Out);
    Out += " then ";
    print(QS, I->getThen(), Out);
    Out += " else ";
    print(QS, I->getElse(), Out);
    Out += " fi";
    return;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    Out += "let ";
    Out += L->getName();
    Out += " = ";
    print(QS, L->getInit(), Out);
    Out += " in ";
    print(QS, L->getBody(), Out);
    Out += " ni";
    return;
  }
  case Expr::Kind::Ref: {
    Out += "(ref ";
    print(QS, cast<RefExpr>(E)->getInit(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::Deref: {
    Out += "(!";
    print(QS, cast<DerefExpr>(E)->getRef(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    Out += '(';
    print(QS, A->getTarget(), Out);
    Out += " := ";
    print(QS, A->getValue(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::Annot: {
    const auto *A = cast<AnnotExpr>(E);
    Out += '{';
    Out += QS.toString(A->getQual());
    Out += "} ";
    print(QS, A->getOperand(), Out);
    return;
  }
  case Expr::Kind::Assert: {
    const auto *A = cast<AssertExpr>(E);
    print(QS, A->getOperand(), Out);
    Out += " |{";
    Out += QS.toString(A->getBound());
    Out += '}';
    return;
  }
  case Expr::Kind::Loc:
    Out += "<loc ";
    Out += std::to_string(cast<LocExpr>(E)->getAddress());
    Out += '>';
    return;
  }
}

std::string quals::lambda::toString(const QualifierSet &QS, const Expr *E) {
  std::string Out;
  print(QS, E, Out);
  return Out;
}

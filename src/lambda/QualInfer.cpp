//===- lambda/QualInfer.cpp - Qualified type inference --------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "lambda/QualInfer.h"

#include "qual/WellFormed.h"
#include "support/Metrics.h"

using namespace quals;
using namespace quals::lambda;

QualInferencer::QualInferencer(const QualifierSet &QS, ConstraintSystem &Sys,
                               QualTypeFactory &Factory,
                               const LambdaTypeCtors &Ctors,
                               DiagnosticEngine &Diags,
                               QualInferOptions Options)
    : QS(QS), Sys(Sys), Factory(Factory), Ctors(Ctors), Diags(Diags),
      Options(std::move(Options)) {}

QualType QualInferencer::fail(const Expr *E, const std::string &Message) {
  Diags.error(E->getLoc(), Message);
  return QualType();
}

QualExpr QualInferencer::freshQual(const std::string &Hint, SourceLoc Loc) {
  return QualExpr::makeVar(Sys.freshVar(Hint, Loc));
}

void QualInferencer::applyWFLevel(QualType T, SourceLoc Loc) {
  for (QualifierId Q : Options.UpwardClosedQuals) {
    uint64_t Mask = QS.bitFor(Q);
    for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I)
      Sys.addLeqMasked(T.getArg(I).getQual(), T.getQual(), Mask,
                       ConstraintOrigin(Loc, "well-formedness: '" +
                                                 QS.get(Q).Name +
                                                 "' is upward closed"));
  }
  for (QualifierId Q : Options.DownwardClosedQuals) {
    uint64_t Mask = QS.bitFor(Q);
    for (unsigned I = 0, E = T.getNumArgs(); I != E; ++I)
      Sys.addLeqMasked(T.getQual(), T.getArg(I).getQual(), Mask,
                       ConstraintOrigin(Loc, "well-formedness: '" +
                                                 QS.get(Q).Name +
                                                 "' is downward closed"));
  }
}

QualType QualInferencer::spreadSTy(STy *T, const std::string &Hint,
                                   SourceLoc Loc) {
  // Resolve through unification links; an unconstrained shape variable
  // defaults to int (the program never uses the value's structure).
  STy *R = T;
  while (R->getKind() == STy::Kind::Var && R->Link)
    R = R->Link;

  QualExpr Q = freshQual(Hint, Loc);
  QualType Result;
  switch (R->getKind()) {
  case STy::Kind::Var:
  case STy::Kind::Int:
    Result = Factory.make(Q, &Ctors.Int);
    break;
  case STy::Kind::Unit:
    Result = Factory.make(Q, &Ctors.Unit);
    break;
  case STy::Kind::Fn: {
    QualType P = spreadSTy(R->Arg0, Hint, Loc);
    QualType B = spreadSTy(R->Arg1, Hint, Loc);
    Result = Factory.make(Q, &Ctors.Fn, {P, B});
    break;
  }
  case STy::Kind::Ref: {
    QualType C = spreadSTy(R->Arg0, Hint, Loc);
    Result = Factory.make(Q, &Ctors.Ref, {C});
    break;
  }
  }
  applyWFLevel(Result, Loc);
  return Result;
}

QualType QualInferencer::infer(const Expr *Program,
                               const StdTypeChecker &ShapeInfo) {
  Shapes = &ShapeInfo;
  NodeTypes.clear();
  LetSchemes.clear();
  Env.clear();
  return inferExpr(Program);
}

QualType QualInferencer::inferExpr(const Expr *E) {
  // Term depth is normally capped by the parser's guard, but hand-built
  // ASTs (tests, future front ends) reach here directly.
  RecursionGuard Guard(Diags, E->getLoc());
  if (!Guard.ok())
    return QualType();
  QualType Result;
  switch (E->getKind()) {
  case Expr::Kind::IntLit: {
    // (Int): A |- n : bottom int. In inference form the literal gets a fresh
    // variable bounded below by bottom (no constraint needed) or by the
    // designer's literal hook.
    const auto *I = cast<IntLitExpr>(E);
    QualExpr Q = freshQual("int_lit", E->getLoc());
    if (Options.IntLiteralQual) {
      LatticeValue L = Options.IntLiteralQual(I->getValue());
      if (L != QS.bottom())
        Sys.addLeq(QualExpr::makeConst(L), Q,
                   ConstraintOrigin(E->getLoc(),
                                    "literal qualifier rule for " +
                                        std::to_string(I->getValue())));
    }
    Result = Factory.make(Q, &Ctors.Int);
    break;
  }
  case Expr::Kind::UnitLit:
    Result = Factory.make(freshQual("unit_lit", E->getLoc()), &Ctors.Unit);
    break;
  case Expr::Kind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Env.find(V->getName());
    if (It == Env.end() || It->second.empty())
      return fail(E, "unbound variable '" + std::string(V->getName()) + "'");
    // (Var'): instantiate the scheme with fresh qualifier variables.
    const QualScheme &Scheme = It->second.back();
    Result = Scheme.instantiate(Sys, Factory, E->getLoc());
    break;
  }
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    STy *ShapeTy = Shapes->getNodeType(E);
    // The shape checker types every node it accepts, but this inferencer is
    // a public entry point callable with a foreign checker/AST pair -- so
    // recover instead of asserting (the assert would compile away in
    // release builds and leave a null deref).
    if (!ShapeTy)
      return fail(E, "internal: lambda without a standard type");
    // The lambda's resolved standard type is Fn(param, body); spread the
    // parameter's shape into a qualified type with fresh variables.
    STy *Resolved = ShapeTy;
    while (Resolved->getKind() == STy::Kind::Var && Resolved->Link)
      Resolved = Resolved->Link;
    if (Resolved->getKind() != STy::Kind::Fn)
      return fail(E, "internal: lambda's standard type is not a function");
    QualType ParamTy = spreadSTy(Resolved->Arg0,
                                 "param_" + std::string(L->getParam()),
                                 E->getLoc());
    Env[L->getParam()].push_back(QualScheme::monomorphic(ParamTy));
    QualType BodyTy = inferExpr(L->getBody());
    Env[L->getParam()].pop_back();
    if (BodyTy.isNull())
      return QualType();
    // (Lam): the function value itself carries a fresh (bottom-bounded)
    // qualifier.
    Result = Factory.make(freshQual("lam", E->getLoc()), &Ctors.Fn,
                          {ParamTy, BodyTy});
    applyWFLevel(Result, E->getLoc());
    break;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    QualType FnTy = inferExpr(A->getFn());
    if (FnTy.isNull())
      return QualType();
    QualType ArgTy = inferExpr(A->getArg());
    if (ArgTy.isNull())
      return QualType();
    if (FnTy.getCtor() != &Ctors.Fn)
      return fail(E, "applying a non-function (qualifier phase)");
    // (App) with subsumption folded in: actual <= formal.
    if (!decomposeLeq(Sys, ArgTy, FnTy.getArg(0),
                      ConstraintOrigin(E->getLoc(),
                                       "argument flows into parameter")))
      return fail(E, "argument/parameter shape mismatch (qualifier phase)");
    Result = FnTy.getArg(1);
    break;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    QualType CondTy = inferExpr(I->getCond());
    if (CondTy.isNull())
      return QualType();
    QualType ThenTy = inferExpr(I->getThen());
    if (ThenTy.isNull())
      return QualType();
    QualType ElseTy = inferExpr(I->getElse());
    if (ElseTy.isNull())
      return QualType();
    // (If): both branches flow into a fresh result type (least upper bound
    // via subsumption).
    STy *ShapeTy = Shapes->getNodeType(E);
    if (!ShapeTy)
      return fail(E, "internal: if without a standard type");
    Result = spreadSTy(ShapeTy, "if_result", E->getLoc());
    ConstraintOrigin Origin(E->getLoc(), "if-branch flows into result");
    if (!decomposeLeq(Sys, ThenTy, Result, Origin) ||
        !decomposeLeq(Sys, ElseTy, Result, Origin))
      return fail(E, "if-branch shape mismatch (qualifier phase)");
    break;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    bool Generalizable =
        Options.Polymorphic && isSyntacticValue(L->getInit());
    QualScheme Scheme;
    if (Generalizable) {
      // (Letv): generalize qualifier variables created while inferring the
      // value. The value restriction [Wri95] keeps updateable references
      // monomorphic.
      Watermark Mark = takeWatermark(Sys);
      QualType InitTy = inferExpr(L->getInit());
      if (InitTy.isNull())
        return QualType();
      Scheme = QualScheme::generalize(Sys, InitTy, Mark);
    } else {
      QualType InitTy = inferExpr(L->getInit());
      if (InitTy.isNull())
        return QualType();
      Scheme = QualScheme::monomorphic(InitTy);
    }
    LetSchemes.emplace(E, Scheme);
    Env[L->getName()].push_back(std::move(Scheme));
    QualType BodyTy = inferExpr(L->getBody());
    Env[L->getName()].pop_back();
    if (BodyTy.isNull())
      return QualType();
    Result = BodyTy;
    break;
  }
  case Expr::Kind::Ref: {
    const auto *R = cast<RefExpr>(E);
    QualType InitTy = inferExpr(R->getInit());
    if (InitTy.isNull())
      return QualType();
    Result = Factory.make(freshQual("ref", E->getLoc()), &Ctors.Ref,
                          {InitTy});
    applyWFLevel(Result, E->getLoc());
    break;
  }
  case Expr::Kind::Deref: {
    const auto *D = cast<DerefExpr>(E);
    QualType RefTy = inferExpr(D->getRef());
    if (RefTy.isNull())
      return QualType();
    if (RefTy.getCtor() != &Ctors.Ref)
      return fail(E, "dereferencing a non-ref (qualifier phase)");
    Result = RefTy.getArg(0);
    break;
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    QualType TargetTy = inferExpr(A->getTarget());
    if (TargetTy.isNull())
      return QualType();
    QualType ValueTy = inferExpr(A->getValue());
    if (ValueTy.isNull())
      return QualType();
    if (TargetTy.getCtor() != &Ctors.Ref)
      return fail(E, "assigning through a non-ref (qualifier phase)");
    if (!decomposeLeq(Sys, ValueTy, TargetTy.getArg(0),
                      ConstraintOrigin(E->getLoc(),
                                       "assigned value flows into ref "
                                       "contents")))
      return fail(E, "assignment shape mismatch (qualifier phase)");
    // (Assign'): the assigned-through ref must not be const.
    if (Options.ConstQual) {
      LatticeValue Bound = QS.notQual(*Options.ConstQual);
      Sys.addLeq(TargetTy.getQual(), QualExpr::makeConst(Bound),
                 ConstraintOrigin(E->getLoc(),
                                  "assignment left-hand side must not be '" +
                                      QS.get(*Options.ConstQual).Name + "'"));
    }
    Result = Factory.make(freshQual("assign_result", E->getLoc()),
                          &Ctors.Unit);
    break;
  }
  case Expr::Kind::Annot: {
    // (Annot): A |- e : Q tau and Q <= l gives A |- {l} e : l tau.
    const auto *A = cast<AnnotExpr>(E);
    QualType OpTy = inferExpr(A->getOperand());
    if (OpTy.isNull())
      return QualType();
    Sys.addLeq(OpTy.getQual(), QualExpr::makeConst(A->getQual()),
               ConstraintOrigin(E->getLoc(),
                                "annotation {" + QS.toString(A->getQual()) +
                                    "} raises the qualifier monotonically"));
    Result = OpTy.withQual(QualExpr::makeConst(A->getQual()));
    break;
  }
  case Expr::Kind::Assert: {
    // (Assert): A |- e : Q tau and Q <= l gives A |- e|l : Q tau.
    const auto *A = cast<AssertExpr>(E);
    QualType OpTy = inferExpr(A->getOperand());
    if (OpTy.isNull())
      return QualType();
    Sys.addLeq(OpTy.getQual(), QualExpr::makeConst(A->getBound()),
               ConstraintOrigin(E->getLoc(),
                                "assertion |{" + QS.toString(A->getBound()) +
                                    "}"));
    Result = OpTy;
    break;
  }
  case Expr::Kind::Loc:
    return fail(E, "store locations cannot appear in source programs");
  }
  if (!Result.isNull())
    NodeTypes[E] = Result;
  return Result;
}

CheckResult quals::lambda::checkProgram(const Expr *Program,
                                        const QualifierSet &QS,
                                        STyContext &STys,
                                        ConstraintSystem &Sys,
                                        QualTypeFactory &Factory,
                                        const LambdaTypeCtors &Ctors,
                                        DiagnosticEngine &Diags,
                                        const QualInferOptions &Options) {
  CheckResult Result;
  StdTypeChecker Checker(STys, Diags);
  {
    PhaseScope Phase("sema", "lambda");
    if (!Checker.check(Program))
      return Result;
  }
  Result.StdTypeOk = true;

  QualInferencer Inferencer(QS, Sys, Factory, Ctors, Diags, Options);
  {
    PhaseScope Phase("constraint-gen", "lambda");
    Result.Type = Inferencer.infer(Program, Checker);
  }
  if (Sys.hitConstraintLimit()) {
    Diags.fatal(Program->getLoc(),
                "resource limit: constraint budget exhausted (" +
                    std::to_string(Sys.getConfig().MaxConstraints) +
                    " constraints); raise with --limit-constraints=N, 0 "
                    "for unlimited");
    Result.StdTypeOk = false;
    return Result;
  }
  if (Result.Type.isNull() || Diags.shouldBail()) {
    Result.StdTypeOk = false; // Qualifier phase found a structural problem.
    return Result;
  }

  // The "solve" phase span is recorded inside ConstraintSystem::solve().
  Sys.solve();
  Result.Violations = Sys.collectViolations();
  Result.QualOk = Result.Violations.empty();
  Result.Stats = Sys.getStats();
  return Result;
}

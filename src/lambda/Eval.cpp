//===- lambda/Eval.cpp - Small-step operational semantics -----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "lambda/Eval.h"

using namespace quals;
using namespace quals::lambda;

static bool isBareValue(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::Lambda:
  case Expr::Kind::Loc:
    return true;
  default:
    return false;
  }
}

bool Evaluator::isRuntimeValue(const Expr *E) {
  if (isBareValue(E))
    return true;
  if (const auto *A = dyn_cast<AnnotExpr>(E))
    return isBareValue(A->getOperand());
  return false;
}

LatticeValue Evaluator::valueQual(const Expr *E) const {
  if (const auto *A = dyn_cast<AnnotExpr>(E))
    return A->getQual();
  return QS.bottom();
}

const Expr *Evaluator::bareValue(const Expr *E) {
  if (const auto *A = dyn_cast<AnnotExpr>(E))
    return A->getOperand();
  return E;
}

const Expr *Evaluator::subst(const Expr *E, std::string_view Name,
                             const Expr *Value) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::Loc:
    return E;
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->getName() == Name ? Value : E;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    if (L->getParam() == Name)
      return E; // Shadowed.
    const Expr *Body = subst(L->getBody(), Name, Value);
    if (Body == L->getBody())
      return E;
    return Ctx.create<LambdaExpr>(L->getParam(), Body, L->getLoc());
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    const Expr *Fn = subst(A->getFn(), Name, Value);
    const Expr *Arg = subst(A->getArg(), Name, Value);
    if (Fn == A->getFn() && Arg == A->getArg())
      return E;
    return Ctx.create<AppExpr>(Fn, Arg, A->getLoc());
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    const Expr *C = subst(I->getCond(), Name, Value);
    const Expr *T = subst(I->getThen(), Name, Value);
    const Expr *F = subst(I->getElse(), Name, Value);
    if (C == I->getCond() && T == I->getThen() && F == I->getElse())
      return E;
    return Ctx.create<IfExpr>(C, T, F, I->getLoc());
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    const Expr *Init = subst(L->getInit(), Name, Value);
    const Expr *Body =
        L->getName() == Name ? L->getBody() : subst(L->getBody(), Name, Value);
    if (Init == L->getInit() && Body == L->getBody())
      return E;
    return Ctx.create<LetExpr>(L->getName(), Init, Body, L->getLoc());
  }
  case Expr::Kind::Ref: {
    const auto *R = cast<RefExpr>(E);
    const Expr *Init = subst(R->getInit(), Name, Value);
    if (Init == R->getInit())
      return E;
    return Ctx.create<RefExpr>(Init, R->getLoc());
  }
  case Expr::Kind::Deref: {
    const auto *D = cast<DerefExpr>(E);
    const Expr *Ref = subst(D->getRef(), Name, Value);
    if (Ref == D->getRef())
      return E;
    return Ctx.create<DerefExpr>(Ref, D->getLoc());
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    const Expr *T = subst(A->getTarget(), Name, Value);
    const Expr *V = subst(A->getValue(), Name, Value);
    if (T == A->getTarget() && V == A->getValue())
      return E;
    return Ctx.create<AssignExpr>(T, V, A->getLoc());
  }
  case Expr::Kind::Annot: {
    const auto *A = cast<AnnotExpr>(E);
    const Expr *Op = subst(A->getOperand(), Name, Value);
    if (Op == A->getOperand())
      return E;
    return Ctx.create<AnnotExpr>(A->getQual(), Op, A->getLoc());
  }
  case Expr::Kind::Assert: {
    const auto *A = cast<AssertExpr>(E);
    const Expr *Op = subst(A->getOperand(), Name, Value);
    if (Op == A->getOperand())
      return E;
    return Ctx.create<AssertExpr>(Op, A->getBound(), A->getLoc());
  }
  }
  return E;
}

Evaluator::StepStatus Evaluator::step(const Expr *E, const Expr *&Out,
                                      std::string &Reason,
                                      SourceLoc &StuckLoc) {
  // Helper to step a subexpression and rebuild the context around it.
  auto stepSub = [&](const Expr *Sub, const Expr *&NewSub) -> StepStatus {
    StepStatus S = step(Sub, NewSub, Reason, StuckLoc);
    return S;
  };

  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::UnitLit:
  case Expr::Kind::Lambda:
  case Expr::Kind::Loc:
    return StepStatus::Value;

  case Expr::Kind::Var:
    Reason = "free variable '" +
             std::string(cast<VarExpr>(E)->getName()) + "'";
    StuckLoc = E->getLoc();
    return StepStatus::Stuck;

  case Expr::Kind::Annot: {
    const auto *A = cast<AnnotExpr>(E);
    const Expr *Inner = A->getOperand();
    // Context rule Q ref R: an annotated ref allocates jointly with its
    // annotation once the initializer is a value.
    if (const auto *R = dyn_cast<RefExpr>(Inner)) {
      if (isRuntimeValue(R->getInit())) {
        Store.push_back(R->getInit());
        Out = Ctx.create<AnnotExpr>(
            A->getQual(),
            Ctx.create<LocExpr>(Store.size() - 1, R->getLoc()), A->getLoc());
        return StepStatus::Stepped;
      }
      const Expr *NewInit;
      StepStatus S = stepSub(R->getInit(), NewInit);
      if (S != StepStatus::Stepped)
        return S;
      Out = Ctx.create<AnnotExpr>(A->getQual(),
                                  Ctx.create<RefExpr>(NewInit, R->getLoc()),
                                  A->getLoc());
      return StepStatus::Stepped;
    }
    if (isBareValue(Inner))
      return StepStatus::Value; // l v is a runtime value.
    if (const auto *InnerAnnot = dyn_cast<AnnotExpr>(Inner)) {
      if (isBareValue(InnerAnnot->getOperand())) {
        // l1 (l2 v) -> l1 v when l2 <= l1 (Figure 5); otherwise stuck.
        if (!InnerAnnot->getQual().subsumedBy(A->getQual())) {
          Reason = "annotation {" + QS.toString(A->getQual()) +
                   "} cannot lower a value's qualifier {" +
                   QS.toString(InnerAnnot->getQual()) + "}";
          StuckLoc = A->getLoc();
          return StepStatus::Stuck;
        }
        Out = Ctx.create<AnnotExpr>(A->getQual(), InnerAnnot->getOperand(),
                                    A->getLoc());
        return StepStatus::Stepped;
      }
    }
    const Expr *NewInner;
    StepStatus S = stepSub(Inner, NewInner);
    if (S != StepStatus::Stepped)
      return S;
    Out = Ctx.create<AnnotExpr>(A->getQual(), NewInner, A->getLoc());
    return StepStatus::Stepped;
  }

  case Expr::Kind::Assert: {
    const auto *A = cast<AssertExpr>(E);
    if (isRuntimeValue(A->getOperand())) {
      // (l2 v)|l1 -> l2 v when l2 <= l1 (Figure 5); otherwise stuck.
      LatticeValue Actual = valueQual(A->getOperand());
      if (!Actual.subsumedBy(A->getBound())) {
        Reason = "assertion |{" + QS.toString(A->getBound()) +
                 "} failed on a value with qualifier {" +
                 QS.toString(Actual) + "}";
        StuckLoc = A->getLoc();
        return StepStatus::Stuck;
      }
      Out = A->getOperand();
      return StepStatus::Stepped;
    }
    const Expr *NewOp;
    StepStatus S = stepSub(A->getOperand(), NewOp);
    if (S != StepStatus::Stepped)
      return S;
    Out = Ctx.create<AssertExpr>(NewOp, A->getBound(), A->getLoc());
    return StepStatus::Stepped;
  }

  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    if (isRuntimeValue(I->getCond())) {
      const auto *N = dyn_cast<IntLitExpr>(bareValue(I->getCond()));
      if (!N) {
        Reason = "if-condition is not an integer";
        StuckLoc = I->getLoc();
        return StepStatus::Stuck;
      }
      Out = N->getValue() != 0 ? I->getThen() : I->getElse();
      return StepStatus::Stepped;
    }
    const Expr *NewCond;
    StepStatus S = stepSub(I->getCond(), NewCond);
    if (S != StepStatus::Stepped)
      return S;
    Out = Ctx.create<IfExpr>(NewCond, I->getThen(), I->getElse(),
                             I->getLoc());
    return StepStatus::Stepped;
  }

  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    if (!isRuntimeValue(A->getFn())) {
      const Expr *NewFn;
      StepStatus S = stepSub(A->getFn(), NewFn);
      if (S != StepStatus::Stepped)
        return S;
      Out = Ctx.create<AppExpr>(NewFn, A->getArg(), A->getLoc());
      return StepStatus::Stepped;
    }
    if (!isRuntimeValue(A->getArg())) {
      const Expr *NewArg;
      StepStatus S = stepSub(A->getArg(), NewArg);
      if (S != StepStatus::Stepped)
        return S;
      Out = Ctx.create<AppExpr>(A->getFn(), NewArg, A->getLoc());
      return StepStatus::Stepped;
    }
    const auto *L = dyn_cast<LambdaExpr>(bareValue(A->getFn()));
    if (!L) {
      Reason = "applying a non-function value";
      StuckLoc = A->getLoc();
      return StepStatus::Stuck;
    }
    Out = subst(L->getBody(), L->getParam(), A->getArg());
    return StepStatus::Stepped;
  }

  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    if (isRuntimeValue(L->getInit())) {
      Out = subst(L->getBody(), L->getName(), L->getInit());
      return StepStatus::Stepped;
    }
    const Expr *NewInit;
    StepStatus S = stepSub(L->getInit(), NewInit);
    if (S != StepStatus::Stepped)
      return S;
    Out = Ctx.create<LetExpr>(L->getName(), NewInit, L->getBody(),
                              L->getLoc());
    return StepStatus::Stepped;
  }

  case Expr::Kind::Ref: {
    // Bare ref: implicit bottom annotation; allocates to a bare location.
    const auto *R = cast<RefExpr>(E);
    if (isRuntimeValue(R->getInit())) {
      Store.push_back(R->getInit());
      Out = Ctx.create<LocExpr>(Store.size() - 1, R->getLoc());
      return StepStatus::Stepped;
    }
    const Expr *NewInit;
    StepStatus S = stepSub(R->getInit(), NewInit);
    if (S != StepStatus::Stepped)
      return S;
    Out = Ctx.create<RefExpr>(NewInit, R->getLoc());
    return StepStatus::Stepped;
  }

  case Expr::Kind::Deref: {
    const auto *D = cast<DerefExpr>(E);
    if (isRuntimeValue(D->getRef())) {
      const auto *L = dyn_cast<LocExpr>(bareValue(D->getRef()));
      if (!L || L->getAddress() >= Store.size()) {
        Reason = "dereferencing a non-location value";
        StuckLoc = D->getLoc();
        return StepStatus::Stuck;
      }
      Out = Store[L->getAddress()];
      return StepStatus::Stepped;
    }
    const Expr *NewRef;
    StepStatus S = stepSub(D->getRef(), NewRef);
    if (S != StepStatus::Stepped)
      return S;
    Out = Ctx.create<DerefExpr>(NewRef, D->getLoc());
    return StepStatus::Stepped;
  }

  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    if (!isRuntimeValue(A->getTarget())) {
      const Expr *NewT;
      StepStatus S = stepSub(A->getTarget(), NewT);
      if (S != StepStatus::Stepped)
        return S;
      Out = Ctx.create<AssignExpr>(NewT, A->getValue(), A->getLoc());
      return StepStatus::Stepped;
    }
    if (!isRuntimeValue(A->getValue())) {
      const Expr *NewV;
      StepStatus S = stepSub(A->getValue(), NewV);
      if (S != StepStatus::Stepped)
        return S;
      Out = Ctx.create<AssignExpr>(A->getTarget(), NewV, A->getLoc());
      return StepStatus::Stepped;
    }
    const auto *L = dyn_cast<LocExpr>(bareValue(A->getTarget()));
    if (!L || L->getAddress() >= Store.size()) {
      Reason = "assigning through a non-location value";
      StuckLoc = A->getLoc();
      return StepStatus::Stuck;
    }
    Store[L->getAddress()] = A->getValue();
    Out = Ctx.create<UnitLitExpr>(A->getLoc());
    return StepStatus::Stepped;
  }
  }
  Reason = "no reduction applies";
  StuckLoc = E->getLoc();
  return StepStatus::Stuck;
}

EvalResult Evaluator::evaluate(const Expr *Program, unsigned MaxSteps,
                               const StepObserver &Observer) {
  Store.clear();
  EvalResult R;
  const Expr *Cur = Program;
  for (unsigned I = 0; I != MaxSteps; ++I) {
    const Expr *Next = nullptr;
    std::string Reason;
    SourceLoc StuckLoc;
    StepStatus S = step(Cur, Next, Reason, StuckLoc);
    if (S == StepStatus::Stepped && Observer)
      Observer(Next);
    if (S == StepStatus::Value) {
      R.Outcome = EvalOutcome::Value;
      R.Result = Cur;
      R.Steps = I;
      return R;
    }
    if (S == StepStatus::Stuck) {
      R.Outcome = EvalOutcome::Stuck;
      R.Result = Cur;
      R.StuckReason = std::move(Reason);
      R.StuckLoc = StuckLoc;
      R.Steps = I;
      return R;
    }
    Cur = Next;
  }
  R.Outcome = EvalOutcome::TimedOut;
  R.Result = Cur;
  R.Steps = MaxSteps;
  return R;
}

//===- lambda/Ast.h - AST of the demonstration language --------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of the paper's language (Figure 1) with references
/// (Section 2.4), qualifier annotations/assertions (Section 2.2), and the
/// runtime-only store-location form used by the operational semantics
/// (Figure 5). Nodes are arena-allocated and immutable; the evaluator builds
/// new nodes rather than mutating.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_LAMBDA_AST_H
#define QUALS_LAMBDA_AST_H

#include "qual/Qualifier.h"
#include "support/Allocator.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <string_view>

namespace quals {
namespace lambda {

/// Base class of every expression node.
class Expr {
public:
  enum class Kind {
    IntLit,
    UnitLit,
    Var,
    Lambda,
    App,
    If,
    Let,
    Ref,
    Deref,
    Assign,
    Annot,  ///< {l} e  -- qualifier annotation.
    Assert, ///< e |{l} -- qualifier assertion.
    Loc     ///< Runtime store location (never produced by the parser).
  };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// Integer literal n.
class IntLitExpr : public Expr {
public:
  IntLitExpr(long Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  long getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  long Value;
};

/// The unit value ().
class UnitLitExpr : public Expr {
public:
  explicit UnitLitExpr(SourceLoc Loc) : Expr(Kind::UnitLit, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::UnitLit; }
};

/// Variable occurrence x. Names are interned string views.
class VarExpr : public Expr {
public:
  VarExpr(std::string_view Name, SourceLoc Loc)
      : Expr(Kind::Var, Loc), Name(Name) {}
  std::string_view getName() const { return Name; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Var; }

private:
  std::string_view Name;
};

/// fn x. e
class LambdaExpr : public Expr {
public:
  LambdaExpr(std::string_view Param, const Expr *Body, SourceLoc Loc)
      : Expr(Kind::Lambda, Loc), Param(Param), Body(Body) {}
  std::string_view getParam() const { return Param; }
  const Expr *getBody() const { return Body; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Lambda; }

private:
  std::string_view Param;
  const Expr *Body;
};

/// e1 e2
class AppExpr : public Expr {
public:
  AppExpr(const Expr *Fn, const Expr *Arg, SourceLoc Loc)
      : Expr(Kind::App, Loc), Fn(Fn), Arg(Arg) {}
  const Expr *getFn() const { return Fn; }
  const Expr *getArg() const { return Arg; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
};

/// if e1 then e2 else e3 fi  (0 is false, non-zero true, C style)
class IfExpr : public Expr {
public:
  IfExpr(const Expr *Cond, const Expr *Then, const Expr *Else, SourceLoc Loc)
      : Expr(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  const Expr *getCond() const { return Cond; }
  const Expr *getThen() const { return Then; }
  const Expr *getElse() const { return Else; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::If; }

private:
  const Expr *Cond;
  const Expr *Then;
  const Expr *Else;
};

/// let x = e1 in e2 ni
class LetExpr : public Expr {
public:
  LetExpr(std::string_view Name, const Expr *Init, const Expr *Body,
          SourceLoc Loc)
      : Expr(Kind::Let, Loc), Name(Name), Init(Init), Body(Body) {}
  std::string_view getName() const { return Name; }
  const Expr *getInit() const { return Init; }
  const Expr *getBody() const { return Body; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Let; }

private:
  std::string_view Name;
  const Expr *Init;
  const Expr *Body;
};

/// ref e
class RefExpr : public Expr {
public:
  RefExpr(const Expr *Init, SourceLoc Loc)
      : Expr(Kind::Ref, Loc), Init(Init) {}
  const Expr *getInit() const { return Init; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Ref; }

private:
  const Expr *Init;
};

/// !e
class DerefExpr : public Expr {
public:
  DerefExpr(const Expr *Ref, SourceLoc Loc)
      : Expr(Kind::Deref, Loc), Ref(Ref) {}
  const Expr *getRef() const { return Ref; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Deref; }

private:
  const Expr *Ref;
};

/// e1 := e2
class AssignExpr : public Expr {
public:
  AssignExpr(const Expr *Target, const Expr *Value, SourceLoc Loc)
      : Expr(Kind::Assign, Loc), Target(Target), Value(Value) {}
  const Expr *getTarget() const { return Target; }
  const Expr *getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Assign; }

private:
  const Expr *Target;
  const Expr *Value;
};

/// {l} e -- raises e's top-level qualifier to exactly l (rule Annot).
class AnnotExpr : public Expr {
public:
  AnnotExpr(LatticeValue Qual, const Expr *Operand, SourceLoc Loc)
      : Expr(Kind::Annot, Loc), Qual(Qual), Operand(Operand) {}
  LatticeValue getQual() const { return Qual; }
  const Expr *getOperand() const { return Operand; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Annot; }

private:
  LatticeValue Qual;
  const Expr *Operand;
};

/// e |{l} -- asserts e's top-level qualifier is <= l (rule Assert).
class AssertExpr : public Expr {
public:
  AssertExpr(const Expr *Operand, LatticeValue Bound, SourceLoc Loc)
      : Expr(Kind::Assert, Loc), Operand(Operand), Bound(Bound) {}
  const Expr *getOperand() const { return Operand; }
  LatticeValue getBound() const { return Bound; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Assert; }

private:
  const Expr *Operand;
  LatticeValue Bound;
};

/// A store location a (runtime only; Figure 5's semantics).
class LocExpr : public Expr {
public:
  LocExpr(unsigned Address, SourceLoc Loc)
      : Expr(Kind::Loc, Loc), Address(Address) {}
  unsigned getAddress() const { return Address; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Loc; }

private:
  unsigned Address;
};

/// Owns the arena behind a parsed (or evaluator-built) AST.
class AstContext {
public:
  template <typename T, typename... Args> const T *create(Args &&...A) {
    return Arena.create<T>(std::forward<Args>(A)...);
  }

private:
  BumpPtrAllocator Arena;
};

/// True for the paper's syntactic values v ::= x | n | fn x.e | () and, to
/// support the qualified-value runtime form, annotations of values and store
/// locations. Used by the value restriction (Letv) and the evaluator.
bool isSyntacticValue(const Expr *E);

/// strip(e): e with every annotation and assertion removed (Section 2.3).
/// Fresh nodes are built in \p Ctx.
const Expr *stripQualifiers(AstContext &Ctx, const Expr *E);

/// Renders an expression in source syntax (qualifiers via \p QS).
std::string toString(const QualifierSet &QS, const Expr *E);

} // namespace lambda
} // namespace quals

#endif // QUALS_LAMBDA_AST_H

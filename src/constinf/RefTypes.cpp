//===- constinf/RefTypes.cpp - The l translation from C types --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "constinf/RefTypes.h"

using namespace quals;
using namespace quals::constinf;
using namespace quals::cfront;

ConstCtors::ConstCtors()
    : Val("val", {}), Ref("ref", {Variance::Invariant}) {}

const TypeCtor *ConstCtors::fn(unsigned NumParams) {
  auto It = FnCtors.find(NumParams);
  if (It != FnCtors.end())
    return It->second;
  std::vector<Variance> Args(NumParams, Variance::Contravariant);
  Args.push_back(Variance::Covariant);
  Owned.emplace_back("fn" + std::to_string(NumParams), std::move(Args));
  FnCtors[NumParams] = &Owned.back();
  return &Owned.back();
}

const TypeCtor *ConstCtors::record(const RecordDecl *RD) {
  auto It = Records.find(RD);
  if (It != Records.end())
    return It->second;
  std::string Name =
      (RD->isUnion() ? "union " : "struct ") + std::string(RD->getName());
  Owned.emplace_back(std::move(Name), std::vector<Variance>());
  Records[RD] = &Owned.back();
  return &Owned.back();
}

RefTranslator::LPair
RefTranslator::lprime(CQualType T, SourceLoc Loc, const std::string &Hint,
                      std::vector<InterestingPos> *Collect, unsigned Depth) {
  LPair Result;
  Result.TopQual = freshQual(Hint, Loc);
  if (!T.isNull() && T.isConst())
    Sys.addLeq(QualExpr::makeConst(
                   Sys.getQualifierSet().withQual(
                       Sys.getQualifierSet().bottom(), ConstQual)),
               Result.TopQual, ConstraintOrigin(Loc, "declared const"));

  const CType *Ty = T.isNull() ? nullptr : T.getType();
  if (!Ty) {
    Result.Contents = Factory.make(freshQual(Hint, Loc), Ctors.val());
    return Result;
  }

  switch (Ty->getKind()) {
  case CType::Kind::Builtin:
  case CType::Kind::Enum:
    Result.Contents = Factory.make(freshQual(Hint, Loc), Ctors.val());
    break;
  case CType::Kind::Pointer:
  case CType::Kind::Array: {
    CQualType Pointee = isa<PointerType>(Ty)
                            ? cast<PointerType>(Ty)->getPointee()
                            : cast<ArrayType>(Ty)->getElement();
    LPair Inner = lprime(Pointee, Loc, Hint, Collect, Depth + 1);
    if (Collect && Inner.TopQual.isVar()) {
      InterestingPos Pos;
      Pos.Depth = Depth;
      Pos.Var = Inner.TopQual.getVar();
      Pos.DeclaredConst = Pointee.isConst();
      Collect->push_back(Pos);
    }
    Result.Contents =
        Factory.make(Inner.TopQual, Ctors.ref(), {Inner.Contents});
    break;
  }
  case CType::Kind::Record:
    Result.Contents = Factory.make(
        freshQual(Hint, Loc), Ctors.record(cast<RecordType>(Ty)->getDecl()));
    break;
  case CType::Kind::Function: {
    const auto *FT = cast<FunctionType>(Ty);
    // Function types nested inside other types (function pointers): build
    // the interface shape; interesting-position collection does not descend
    // into them (only direct parameters/results are counted, Section 4.4).
    std::vector<QualType> Args;
    for (CQualType P : FT->getParams())
      Args.push_back(
          lprime(P, Loc, Hint, /*Collect=*/nullptr, 0).Contents);
    Args.push_back(
        lprime(FT->getReturn(), Loc, Hint, /*Collect=*/nullptr, 0).Contents);
    Result.Contents = Factory.make(freshQual(Hint, Loc),
                                   Ctors.fn(FT->getParams().size()), Args);
    break;
  }
  }
  return Result;
}

QualType RefTranslator::varLValueType(const VarDecl *VD) {
  auto It = VarTypes.find(VD);
  if (It != VarTypes.end())
    return It->second;
  LPair LP = lprime(VD->getType(), VD->getLoc(), std::string(VD->getName()),
                    /*Collect=*/nullptr, 0);
  QualType T = Factory.make(LP.TopQual, Ctors.ref(), {LP.Contents});
  VarTypes.emplace(VD, T);
  return T;
}

QualType RefTranslator::fieldLValueType(const FieldDecl *FD) {
  auto It = FieldTypes.find(FD);
  if (It != FieldTypes.end())
    return It->second;
  LPair LP = lprime(FD->getType(), FD->getLoc(), std::string(FD->getName()),
                    /*Collect=*/nullptr, 0);
  QualType T = Factory.make(LP.TopQual, Ctors.ref(), {LP.Contents});
  // Section 4.2: all variables with the same struct type share the field
  // declaration, so field qualifiers are shared (memoized). The ablation
  // mode skips the memoization, giving each access fresh (unsound)
  // qualifiers.
  if (StructFieldsShared)
    FieldTypes.emplace(FD, T);
  return T;
}

QualType RefTranslator::functionInterfaceType(const FunctionDecl *FD) {
  auto It = FnTypes.find(FD);
  if (It != FnTypes.end())
    return It->second;

  const FunctionType *FT = FD->getType();
  const QualifierSet &QS = Sys.getQualifierSet();
  bool Defined = FD->isDefined();
  std::vector<QualType> Args;
  std::vector<InterestingPos> Collected;

  const auto &Params = FD->getParams();
  for (unsigned I = 0, E = FT->getParams().size(); I != E; ++I) {
    std::vector<InterestingPos> ParamPositions;
    std::string Hint = std::string(FD->getName()) + ".param" +
                       std::to_string(I);
    LPair LP = lprime(FT->getParams()[I],
                      I < Params.size() ? Params[I]->getLoc() : FD->getLoc(),
                      Hint, &ParamPositions, 0);
    for (InterestingPos &Pos : ParamPositions) {
      Pos.Fn = FD;
      Pos.ParamIndex = static_cast<int>(I);
      if (Defined)
        Collected.push_back(Pos);
      else if (ConservativeLibraries && !Pos.DeclaredConst) {
        // Section 4.2: parameters of undefined (library) functions not
        // declared const are treated as non-const. In summary mode the pin
        // is deferred: another TU may define this function, in which case
        // whole-program inference would never pin it.
        if (DeferLibraryPins)
          Deferred.push_back({FD, Pos.Var, FD->getLoc(), /*IsEscape=*/false});
        else
          Sys.addLeq(QualExpr::makeVar(Pos.Var),
                     QualExpr::makeConst(QS.notQual(ConstQual)),
                     ConstraintOrigin(FD->getLoc(),
                                      "library function '" +
                                          std::string(FD->getName()) +
                                          "' parameter not declared const"));
      }
    }
    // The parameter *variable* shares the interface r-type as its cell
    // contents, so writes through the pointer inside the body constrain the
    // interface.
    if (Defined && I < Params.size())
      VarTypes.emplace(Params[I],
                       Factory.make(LP.TopQual, Ctors.ref(), {LP.Contents}));
    Args.push_back(LP.Contents);
  }

  std::vector<InterestingPos> RetPositions;
  LPair Ret = lprime(FT->getReturn(), FD->getLoc(),
                     std::string(FD->getName()) + ".ret", &RetPositions, 0);
  for (InterestingPos &Pos : RetPositions) {
    Pos.Fn = FD;
    Pos.ParamIndex = -1;
    if (Defined)
      Collected.push_back(Pos);
  }
  Args.push_back(Ret.Contents);

  QualType T = Factory.make(freshQual(std::string(FD->getName()), FD->getLoc()),
                            Ctors.fn(FT->getParams().size()), Args);
  FnTypes.emplace(FD, T);
  Interesting.insert(Interesting.end(), Collected.begin(), Collected.end());
  return T;
}

QualType RefTranslator::freshRValueType(CQualType T, SourceLoc Loc) {
  return lprime(T, Loc, "cast", /*Collect=*/nullptr, 0).Contents;
}

void RefTranslator::forceNonConstRefs(QualType T,
                                      const ConstraintOrigin &Origin) {
  const QualifierSet &QS = Sys.getQualifierSet();
  T.visit([&](QualType Node) {
    if (Node.getCtor() == Ctors.ref() && Node.getQual().isVar())
      Sys.addLeq(Node.getQual(), QualExpr::makeConst(QS.notQual(ConstQual)),
                 Origin);
  });
}

void RefTranslator::deferEscapePins(const FunctionDecl *Callee, QualType T,
                                    SourceLoc Loc) {
  T.visit([&](QualType Node) {
    if (Node.getCtor() == Ctors.ref() && Node.getQual().isVar())
      Deferred.push_back(
          {Callee, Node.getQual().getVar(), Loc, /*IsEscape=*/true});
  });
}

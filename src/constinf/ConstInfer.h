//===- constinf/ConstInfer.h - Whole-program const inference -----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver for Section 4's const inference. Given an analyzed
/// translation unit it
///
///  1. translates global variables to qualified ref types,
///  2. builds the function dependence graph (Definition 4),
///  3. traverses its SCCs in reverse topological order, analyzing each set
///     of mutually-recursive functions monomorphically and then (in
///     polymorphic mode) generalizing their interfaces (rule Letv),
///  4. analyzes global variable initializers,
///  5. solves the atomic constraint system, and
///  6. classifies every "interesting" const position as must-const,
///     must-not-const, or could-be-either (Section 4.4's three outcomes).
///
/// The paper's headline numbers (Table 2) are: Declared (source const
/// annotations), Mono/Poly (positions that *may* be const = categories 1+3),
/// and Total (all interesting positions).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CONSTINF_CONSTINFER_H
#define QUALS_CONSTINF_CONSTINFER_H

#include "constinf/ConstraintGen.h"
#include "constinf/Fdg.h"
#include "qual/TypeScheme.h"

#include <memory>
#include <unordered_set>
#include <utility>

namespace quals {
namespace constinf {

/// How an interesting position may be annotated (Section 4.4's trichotomy).
enum class PosClass {
  MustConst,    ///< const in every solution.
  MustNonConst, ///< const in no solution.
  Either        ///< Unconstrained: the programmer may add const.
};

/// Aggregate counts matching the columns of Table 2.
struct ConstCounts {
  unsigned Declared = 0;     ///< Source-level interesting consts.
  unsigned PossibleConst = 0;///< May-be-const positions (Mono/Poly column).
  unsigned Total = 0;        ///< All interesting positions (Total possible).
  unsigned MustNonConst = 0; ///< Positions pinned non-const by some write.
};

/// An interesting position together with its inferred classification -- the
/// analysis result in portable form. The incremental layer (Summary.h)
/// persists lists of these per SCC and replays them without re-solving;
/// countPositions() and renderAnnotatedPrototypes() below consume them so
/// cold and replayed results share one byte-producing path.
struct ClassifiedPos {
  InterestingPos Pos;
  PosClass Class = PosClass::Either;
};

/// Table 2 counts over an explicit classification list; the cold-path
/// ConstInference::counts() delegates here.
ConstCounts countPositions(const std::vector<ClassifiedPos> &Positions);

/// Renders annotated prototypes from an explicit classification list (see
/// ConstInference::renderAnnotatedPrototypes). Positions must carry valid
/// Fn pointers into the current AST; Var fields are not consulted.
std::string renderAnnotatedPrototypes(const std::vector<ClassifiedPos> &Positions);

/// Whole-program const inference over an analyzed TranslationUnit.
class ConstInference {
public:
  struct Options {
    bool Polymorphic = true;

    // Ablation switches for the Section 4.2 design decisions (all default
    // to the paper's behaviour; bench/ablation_design exercises them).

    /// Explicit casts sever qualifier flow. When false, casts keep as much
    /// structural flow as the shapes allow.
    bool CastsSeverFlow = true;
    /// Parameters of undefined (library) functions not declared const are
    /// forced non-const, and extra arguments to unknown/variadic functions
    /// are pinned. When false, unknown code is optimistically ignored
    /// (unsound for real programs; the ablation shows how much the
    /// conservatism costs).
    bool ConservativeLibraries = true;
    /// All variables of a struct type share their field qualifiers. When
    /// false every field access gets fresh qualifiers (unsound; shows why
    /// the paper requires sharing).
    bool StructFieldsShared = true;
    /// Traverse the FDG callees-first (reverse topological). When false the
    /// traversal runs callers-first, so call sites precede their callee's
    /// generalization and polymorphism degenerates toward monomorphic.
    bool CalleesFirst = true;

    /// Solver-level ablation: collapse qualifier-variable <=-cycles once
    /// worklist pressure warrants it (see SolverConfig::CollapseCycles).
    /// Purely a performance switch -- results are identical either way;
    /// bench/scaling_ablation reports the timing difference.
    bool CollapseCycles = true;
    /// Solver rebuild eagerness: worklist edge-visits per var->var edge
    /// before the solver tiers up to a compacted, cycle-collapsed graph
    /// (see SolverConfig::CollapsePressureFactor). 0 rebuilds on every
    /// solve; bench/scaling_ablation uses that to surface the collapse
    /// counters on workloads the default policy leaves on the cheap tier.
    unsigned CollapsePressureFactor = 2;
    /// Dense branch-free bulk solving (SolverConfig::DenseSolve). Purely a
    /// performance switch -- results are byte-identical either way; qualcc
    /// --no-dense and bench/solver_throughput measure the difference.
    bool DenseSolve = true;
    /// Shard concurrency for the solver's dense passes
    /// (SolverConfig::Jobs); needs SolverPool to take effect. Results are
    /// byte-identical at any value (docs/SOLVER.md determinism contract).
    unsigned SolverJobs = 1;
    /// The pool dense passes shard onto (SolverConfig::Pool); borrowed,
    /// must outlive the inference. Null solves inline. Callers whose own
    /// work already runs on a pool (BatchDriver workers, qualsd request
    /// handlers at --jobs > 1) should leave this null -- request-level
    /// parallelism is the better axis (docs/PARALLEL.md).
    ThreadPool *SolverPool = nullptr;

    // Incremental re-analysis hooks (serve/Pipelines' analyze-delta path;
    // docs/INCREMENTAL.md). Not ablations: with OnlyFunctions set the run
    // covers a sub-program and its results are only meaningful for the
    // selected functions.

    /// When non-null, only SCCs containing at least one of these functions
    /// are analyzed; every other SCC is skipped outright (no interfaces, no
    /// constraints, no positions). The caller must pass a closure that is
    /// self-contained -- no selected function may reference an unselected
    /// defined function, shared global, or shared record (Summary.cpp's
    /// coupling closure guarantees this).
    const std::unordered_set<const cfront::FunctionDecl *> *OnlyFunctions =
        nullptr;
    /// When false, global initializers are not analyzed (the incremental
    /// path skips them when no selected SCC touches a global with an
    /// initializer).
    bool GenGlobalInits = true;

    // Cross-TU link pipeline hook (src/link; docs/LINK.md).

    /// Separate-compilation mode for `qualcc --emit-summary`: Section 4.2's
    /// library conservatism for *named* undefined functions is deferred
    /// (recorded in RefTranslator::deferredPins() instead of constraining
    /// the system), because another TU may define them -- the link step
    /// applies the pins only for symbols no TU exports. Forces monomorphic
    /// inference: interface variables must be plain variables to unify
    /// across TUs by name (polymorphic boundary schemes are future work,
    /// see ROADMAP.md).
    bool SummaryMode = false;
  };

  ConstInference(cfront::TranslationUnit &TU, DiagnosticEngine &Diags,
                 Options Opts);
  ~ConstInference();

  /// Runs the analysis; returns false if the constraints are inconsistent
  /// (which would indicate a const error in the input program).
  bool run();

  /// All interesting positions of defined functions (valid after run()).
  const std::vector<InterestingPos> &positions() const;

  /// positions() paired with their classifications (valid after run()).
  std::vector<ClassifiedPos> classifiedPositions() const;

  /// Classification of one position (valid after run()).
  PosClass classify(const InterestingPos &Pos) const;

  /// Table 2 counts (valid after run()).
  ConstCounts counts() const;

  /// The scheme inferred for \p FD (null in monomorphic mode or for
  /// undefined functions).
  const QualScheme *schemeFor(const cfront::FunctionDecl *FD) const;

  /// The function dependence graph the traversal used (valid after run()).
  const Fdg &fdg() const { return Graph; }

  /// Half-open range [First, Last) into positions() holding the interesting
  /// positions registered while SCC \p Component was analyzed (valid after
  /// run(); empty for skipped or undefined-only components). Positions are
  /// registered exactly once, during the owning SCC's analysis, so these
  /// ranges partition positions().
  std::pair<unsigned, unsigned> sccPositionRange(unsigned Component) const {
    return Component < SccPosRanges.size() ? SccPosRanges[Component]
                                           : std::make_pair(0u, 0u);
  }

  /// Renders the defined functions' prototypes with every may-be-const
  /// position annotated const -- "the text of the original C program with
  /// some extra const qualifiers inserted" (Section 4.2), in prototype form.
  std::string renderAnnotatedPrototypes() const;

  /// Constraint-system statistics for the benchmark harnesses.
  unsigned numQualVars() const;
  unsigned numConstraints() const;

  /// Full solver instrumentation (qualcc --stats, benches).
  SolverStats solverStats() const;

  ConstraintSystem &system() { return *Sys; }

  /// The l-translator, exposing memoized interface/variable types, the
  /// interesting positions, and (in SummaryMode) the deferred library pins.
  /// The link layer's summary extraction reads interface skeletons through
  /// it after run().
  RefTranslator &translator() { return *Translator; }

  /// The qualifier id of "const" in system()'s qualifier set.
  QualifierId constQualifier() const { return ConstQual; }

  /// The analyzed translation unit.
  cfront::TranslationUnit &unit() { return TU; }

private:
  cfront::TranslationUnit &TU;
  DiagnosticEngine &Diags;
  Options Opts;

  QualifierSet QS;
  QualifierId ConstQual;
  std::unique_ptr<ConstraintSystem> Sys;
  QualTypeFactory Factory;
  ConstCtors Ctors;
  std::unique_ptr<RefTranslator> Translator;
  std::unordered_map<const cfront::FunctionDecl *, QualScheme> Schemes;
  Fdg Graph;
  std::vector<std::pair<unsigned, unsigned>> SccPosRanges;

  QualType functionUse(const cfront::FunctionDecl *FD);
};

} // namespace constinf
} // namespace quals

#endif // QUALS_CONSTINF_CONSTINFER_H

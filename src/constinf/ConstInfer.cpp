//===- constinf/ConstInfer.cpp - Whole-program const inference --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "constinf/ConstInfer.h"

#include "support/Metrics.h"

#include <algorithm>

using namespace quals;
using namespace quals::constinf;
using namespace quals::cfront;

ConstInference::ConstInference(TranslationUnit &TU, DiagnosticEngine &Diags,
                               Options Opts)
    : TU(TU), Diags(Diags), Opts(Opts) {
  // Summary mode links interface variables across TUs by name, which needs
  // monomorphic (plain-variable) interfaces (docs/LINK.md).
  if (this->Opts.SummaryMode)
    this->Opts.Polymorphic = false;
  ConstQual = QS.add("const", Polarity::Positive);
  SolverConfig Config;
  Config.CollapseCycles = this->Opts.CollapseCycles;
  Config.CollapsePressureFactor = this->Opts.CollapsePressureFactor;
  Config.MaxConstraints = Diags.limits().MaxConstraints;
  Config.DenseSolve = this->Opts.DenseSolve;
  Config.Jobs = this->Opts.SolverJobs;
  Config.Pool = this->Opts.SolverPool;
  Sys = std::make_unique<ConstraintSystem>(QS, Config);
  Translator = std::make_unique<RefTranslator>(
      *Sys, Factory, Ctors, ConstQual, this->Opts.ConservativeLibraries,
      this->Opts.StructFieldsShared, this->Opts.SummaryMode);
}

ConstInference::~ConstInference() = default;

QualType ConstInference::functionUse(const FunctionDecl *FD) {
  if (Opts.Polymorphic) {
    auto It = Schemes.find(FD);
    if (It != Schemes.end() && It->second.isPolymorphic())
      return It->second.instantiate(*Sys, Factory, FD->getLoc());
  }
  return Translator->functionInterfaceType(FD);
}

bool ConstInference::run() {
  // 1. Global variables (and their shared cells) come first so their
  //    qualifier variables are never generalized.
  {
    PhaseScope Phase("ref-types", "constinf");
    for (VarDecl *G : TU.Globals)
      Translator->varLValueType(G);
    // Library (undefined) function interfaces also predate the traversal.
    for (FunctionDecl *F : TU.Functions)
      if (!F->isDefined())
        Translator->functionInterfaceType(F);
  }

  ConstraintGen Gen(*Sys, Factory, Ctors, *Translator, ConstQual, Diags,
                    [this](const FunctionDecl *FD) {
                      return functionUse(FD);
                    },
                    Opts.CastsSeverFlow, Opts.ConservativeLibraries);

  // 2-3. FDG traversal, callees before callers (or callers-first in the
  // ablation mode, which starves the polymorphic instantiation).
  // buildFdg records its own "fdg" phase; everything from here to the solve
  // is the "constraint-gen" phase.
  Graph = buildFdg(TU);
  {
    PhaseScope GenPhase("constraint-gen", "constinf");
    std::vector<unsigned> Order;
    Order.reserve(Graph.Sccs.Components.size());
    for (unsigned I = 0; I != Graph.Sccs.Components.size(); ++I)
      Order.push_back(I);
    if (!Opts.CalleesFirst)
      std::reverse(Order.begin(), Order.end());
    SccPosRanges.assign(Graph.Sccs.Components.size(), {0u, 0u});
    for (unsigned ComponentIdx : Order) {
      const std::vector<unsigned> &Component =
          Graph.Sccs.Components[ComponentIdx];
      // Incremental mode: SCCs with no selected function are someone else's
      // summaries -- skip them entirely so they contribute no variables, no
      // constraints, and no interesting positions.
      if (Opts.OnlyFunctions) {
        bool Selected = false;
        for (unsigned Node : Component)
          if (Opts.OnlyFunctions->count(Graph.Functions[Node])) {
            Selected = true;
            break;
          }
        if (!Selected)
          continue;
      }
      // Resource checkpoint once per SCC: stop generating as soon as the
      // constraint budget, arena budget, or error cap fired.
      if (Sys->hitConstraintLimit() || Diags.shouldBail() ||
          !Diags.checkResources(Graph.Functions[Component.front()]->getLoc()))
        break;
      unsigned FirstPos =
          static_cast<unsigned>(Translator->interestingPositions().size());
      Watermark Mark = takeWatermark(*Sys);
      // Interfaces for the whole SCC first (mutual recursion uses them
      // monomorphically within the component, as in the paper).
      for (unsigned Node : Component)
        Translator->functionInterfaceType(Graph.Functions[Node]);
      for (unsigned Node : Component) {
        FunctionDecl *F = Graph.Functions[Node];
        if (F->isDefined())
          Gen.genFunction(F, Translator->functionInterfaceType(F));
      }
      SccPosRanges[ComponentIdx] = {
          FirstPos,
          static_cast<unsigned>(Translator->interestingPositions().size())};
      if (!Opts.Polymorphic)
        continue;
      for (unsigned Node : Component) {
        FunctionDecl *F = Graph.Functions[Node];
        if (!F->isDefined())
          continue;
        Schemes.emplace(F, QualScheme::generalize(
                               *Sys, Translator->functionInterfaceType(F),
                               Mark));
      }
    }

    // 4. Global variable definitions are analyzed after the FDG traversal.
    if (Opts.GenGlobalInits) {
      for (VarDecl *G : TU.Globals) {
        if (Sys->hitConstraintLimit() || Diags.shouldBail())
          break;
        Gen.genGlobalInit(G);
      }
    }
  }

  if (Sys->hitConstraintLimit()) {
    Diags.fatal(SourceLoc(),
                "resource limit: constraint budget exhausted (" +
                    std::to_string(Diags.limits().MaxConstraints) +
                    " constraints); raise with --limit-constraints=N, 0 "
                    "for unlimited");
    return false;
  }
  if (Diags.shouldBail())
    return false;

  // 5. Solve ("solve" phase recorded inside ConstraintSystem::solve()).
  bool Ok = Sys->solve();
  if (!Ok || !Sys->collectViolations().empty()) {
    for (const Violation &V : Sys->collectViolations())
      Diags.error(Sys->getConstraint(V.Cause).Origin.Loc,
                  Sys->explain(V));
    return false;
  }
  return true;
}

const std::vector<InterestingPos> &ConstInference::positions() const {
  return Translator->interestingPositions();
}

PosClass ConstInference::classify(const InterestingPos &Pos) const {
  if (!Sys->mayHave(Pos.Var, ConstQual))
    return PosClass::MustNonConst;
  if (Sys->mustHave(Pos.Var, ConstQual))
    return PosClass::MustConst;
  return PosClass::Either;
}

std::vector<ClassifiedPos> ConstInference::classifiedPositions() const {
  std::vector<ClassifiedPos> Out;
  Out.reserve(positions().size());
  for (const InterestingPos &Pos : positions())
    Out.push_back({Pos, classify(Pos)});
  return Out;
}

ConstCounts ConstInference::counts() const {
  return countPositions(classifiedPositions());
}

const QualScheme *
ConstInference::schemeFor(const FunctionDecl *FD) const {
  auto It = Schemes.find(FD);
  return It == Schemes.end() ? nullptr : &It->second;
}

unsigned ConstInference::numQualVars() const { return Sys->getNumVars(); }
unsigned ConstInference::numConstraints() const {
  return Sys->getNumConstraints();
}
SolverStats ConstInference::solverStats() const { return Sys->getStats(); }

std::string ConstInference::renderAnnotatedPrototypes() const {
  return constinf::renderAnnotatedPrototypes(classifiedPositions());
}

namespace quals {
namespace constinf {

ConstCounts countPositions(const std::vector<ClassifiedPos> &Positions) {
  ConstCounts C;
  for (const ClassifiedPos &CP : Positions) {
    ++C.Total;
    if (CP.Pos.DeclaredConst)
      ++C.Declared;
    switch (CP.Class) {
    case PosClass::MustNonConst:
      ++C.MustNonConst;
      break;
    case PosClass::MustConst:
    case PosClass::Either:
      ++C.PossibleConst;
      break;
    }
  }
  return C;
}

std::string renderAnnotatedPrototypes(const std::vector<ClassifiedPos> &Positions) {
  // Group positions by function, then rebuild each prototype with const
  // inserted at every may-be-const pointer level.
  std::unordered_map<const FunctionDecl *, std::vector<const ClassifiedPos *>>
      ByFn;
  std::vector<const FunctionDecl *> Order;
  for (const ClassifiedPos &CP : Positions) {
    if (!ByFn.count(CP.Pos.Fn))
      Order.push_back(CP.Pos.Fn);
    ByFn[CP.Pos.Fn].push_back(&CP);
  }

  auto constAt = [&](const FunctionDecl *FD, int ParamIndex,
                     unsigned Depth) {
    for (const ClassifiedPos *P : ByFn[FD])
      if (P->Pos.ParamIndex == ParamIndex && P->Pos.Depth == Depth)
        return P->Class != PosClass::MustNonConst;
    return false;
  };

  // Renders T with const inserted at the annotatable pointer depths. C
  // spelling: a const pointee that is itself a pointer reads "T * const *",
  // while a const non-pointer pointee reads "const T *".
  std::function<std::string(CQualType, const FunctionDecl *, int, unsigned)>
      render = [&](CQualType T, const FunctionDecl *FD, int ParamIndex,
                   unsigned Depth) -> std::string {
    const CType *Ty = T.isNull() ? nullptr : T.getType();
    if (Ty && (isa<PointerType>(Ty) || isa<ArrayType>(Ty))) {
      CQualType Pointee = isa<PointerType>(Ty)
                              ? cast<PointerType>(Ty)->getPointee()
                              : cast<ArrayType>(Ty)->getElement();
      std::string Inner = render(Pointee, FD, ParamIndex, Depth + 1);
      bool PointeeIsPtr = !Pointee.isNull() &&
                          (isa<PointerType>(Pointee.getType()) ||
                           isa<ArrayType>(Pointee.getType()));
      if (constAt(FD, ParamIndex, Depth) && !Pointee.isConst()) {
        if (PointeeIsPtr)
          Inner += "const ";   // e.g. "char * const *"
        else
          Inner = "const " + Inner; // e.g. "const char *"
      }
      if (!Inner.empty() && Inner.back() != ' ' && Inner.back() != '*')
        Inner += ' ';
      return Inner + "*";
    }
    return toString(T);
  };

  std::string Out;
  for (const FunctionDecl *FD : Order) {
    Out += render(FD->getType()->getReturn(), FD, -1, 0);
    if (Out.size() && Out.back() != '*')
      Out += ' ';
    Out += FD->getName();
    Out += '(';
    const auto &ParamTypes = FD->getType()->getParams();
    const auto &Params = FD->getParams();
    for (unsigned I = 0; I != ParamTypes.size(); ++I) {
      if (I)
        Out += ", ";
      Out += render(ParamTypes[I], FD, static_cast<int>(I), 0);
      if (I < Params.size() && !Params[I]->getName().empty()) {
        if (Out.back() != '*' && Out.back() != ' ')
          Out += ' ';
        Out += Params[I]->getName();
      }
    }
    if (FD->getType()->isVariadic())
      Out += ", ...";
    Out += ");\n";
  }
  return Out;
}

} // namespace constinf
} // namespace quals

//===- constinf/ConstraintGen.h - Qualifier constraints from C ASTs -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks typed C function bodies and global initializers emitting atomic
/// qualifier constraints over the l-translated types (RefTypes.h):
///
/// \li assignment (and ++/--/compound assignment) upper-bounds the target
///     cell's qualifier with :const (rule Assign');
/// \li value flow (initialization, assignment right-hand sides, argument
///     passing, returns) adds structural <= constraints, with ref contents
///     invariant (SubRef);
/// \li explicit casts sever qualifier flow (fresh variables, Section 4.2);
///     implicit conversions keep as much structure as matches;
/// \li extra arguments to undefined/variadic functions are conservatively
///     forced non-const at every pointer level; extra arguments to defined
///     functions are ignored (Section 4.2);
/// \li function name uses go through a hook so the driver can instantiate
///     polymorphic schemes per use site (rule Var').
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CONSTINF_CONSTRAINTGEN_H
#define QUALS_CONSTINF_CONSTRAINTGEN_H

#include "constinf/RefTypes.h"
#include "support/Diagnostics.h"

#include <functional>

namespace quals {
namespace constinf {

/// Generates constraints for one function body or initializer at a time.
class ConstraintGen {
public:
  /// \p FunctionUse maps a referenced function to the qualified type to use
  /// for this occurrence (monomorphic interface or fresh instantiation).
  ConstraintGen(ConstraintSystem &Sys, QualTypeFactory &Factory,
                ConstCtors &Ctors, RefTranslator &Translator,
                QualifierId ConstQual, DiagnosticEngine &Diags,
                std::function<QualType(const cfront::FunctionDecl *)>
                    FunctionUse,
                bool CastsSeverFlow = true,
                bool ConservativeLibraries = true)
      : Sys(Sys), Factory(Factory), Ctors(Ctors), Translator(Translator),
        ConstQual(ConstQual), Diags(Diags),
        FunctionUse(std::move(FunctionUse)),
        CastsSeverFlow(CastsSeverFlow),
        ConservativeLibraries(ConservativeLibraries) {}

  /// Emits constraints for \p FD's body against its interface type \p FnTy.
  void genFunction(const cfront::FunctionDecl *FD, QualType FnTy);

  /// Emits constraints for a global variable's initializer.
  void genGlobalInit(const cfront::VarDecl *VD);

  /// Structural flow A <= B where the shapes match; silently stops at shape
  /// mismatches (conversions drop the association).
  void flowInto(QualType A, QualType B, const ConstraintOrigin &Origin);

private:
  ConstraintSystem &Sys;
  QualTypeFactory &Factory;
  ConstCtors &Ctors;
  RefTranslator &Translator;
  QualifierId ConstQual;
  DiagnosticEngine &Diags;
  std::function<QualType(const cfront::FunctionDecl *)> FunctionUse;
  bool CastsSeverFlow;
  bool ConservativeLibraries;

  QualType CurrentRet;                 ///< Result position of CurrentFn.
  const cfront::FunctionDecl *CurrentFn = nullptr;

  void genStmt(const cfront::CStmt *S);
  /// Qualified type of \p E: the l-type (shape ref) for l-values, the
  /// r-type otherwise. Null only on internal inconsistency.
  QualType genExpr(const cfront::CExpr *E);
  /// r-value type of \p E (auto-dereference of l-values).
  QualType rvalue(const cfront::CExpr *E);

  void flowBoth(QualType A, QualType B, const ConstraintOrigin &Origin);
  void genInitInto(QualType CellContents, const cfront::CExpr *Init);
  void requireNonConstCell(QualType LType, SourceLoc Loc,
                           const char *What);
  QualType freshVal(SourceLoc Loc) {
    return Factory.make(QualExpr::makeVar(Sys.freshVar("tmp", Loc)),
                        Ctors.val());
  }
};

} // namespace constinf
} // namespace quals

#endif // QUALS_CONSTINF_CONSTRAINTGEN_H

//===- constinf/Summary.cpp - Per-SCC summaries for incremental runs --------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "constinf/Summary.h"

#include "cfront/AstHash.h"
#include "support/Casting.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <set>

using namespace quals;
using namespace quals::constinf;
using namespace quals::cfront;

//===----------------------------------------------------------------------===//
// Entity collection
//===----------------------------------------------------------------------===//

namespace {

/// Collects the names of everything a function's constraints can share with
/// another function's: referenced functions (dirtiness must couple both
/// directions -- a caller edit reaches into a callee through deep-pointer
/// equality constraints, and vice versa), referenced globals, and every
/// record type reachable from any type the function mentions (struct fields
/// share their qualifier variables program-wide, Section 4.2).
class EntityCollector {
public:
  void addType(CQualType T) {
    if (T.isNull())
      return;
    const CType *Ty = T.getType();
    if (!SeenTypes.insert(Ty).second)
      return;
    switch (Ty->getKind()) {
    case CType::Kind::Builtin:
    case CType::Kind::Enum:
      // Enums carry no qualifier structure; values are plain integers.
      break;
    case CType::Kind::Pointer:
      addType(cast<PointerType>(Ty)->getPointee());
      break;
    case CType::Kind::Array:
      addType(cast<ArrayType>(Ty)->getElement());
      break;
    case CType::Kind::Function: {
      const auto *FT = cast<FunctionType>(Ty);
      addType(FT->getReturn());
      for (CQualType P : FT->getParams())
        addType(P);
      break;
    }
    case CType::Kind::Record:
      addRecord(cast<RecordType>(Ty)->getDecl());
      break;
    }
  }

  void addRecord(const RecordDecl *RD) {
    if (!RD || !SeenRecords.insert(RD).second)
      return;
    Out.insert("r:" + std::string(RD->getName()));
    for (const FieldDecl *F : RD->getFields())
      addType(F->getType());
  }

  void addDeclRef(const CDeclRef *DR) {
    const CDecl *D = DR->getDecl();
    if (!D)
      return; // Enumerator constant: plain integer, no shared state.
    if (const auto *FD = dyn_cast<FunctionDecl>(D)) {
      Out.insert("f:" + std::string(FD->getName()));
      addType(CQualType(FD->getType()));
    } else if (const auto *VD = dyn_cast<VarDecl>(D)) {
      if (VD->isGlobal())
        Out.insert("g:" + std::string(VD->getName()));
      addType(VD->getType());
    }
  }

  void walkExpr(const CExpr *E) {
    if (!E)
      return;
    // Every expression's sema-computed type can pull a record into the
    // function's constraint footprint (e.g. p->next->next chains).
    addType(E->getType());
    switch (E->getKind()) {
    case CExpr::Kind::IntLit:
    case CExpr::Kind::FloatLit:
    case CExpr::Kind::StringLit:
      break;
    case CExpr::Kind::DeclRef:
      addDeclRef(cast<CDeclRef>(E));
      break;
    case CExpr::Kind::Unary:
      walkExpr(cast<CUnary>(E)->getOperand());
      break;
    case CExpr::Kind::Binary:
      walkExpr(cast<CBinary>(E)->getLhs());
      walkExpr(cast<CBinary>(E)->getRhs());
      break;
    case CExpr::Kind::Conditional:
      walkExpr(cast<CConditional>(E)->getCond());
      walkExpr(cast<CConditional>(E)->getThen());
      walkExpr(cast<CConditional>(E)->getElse());
      break;
    case CExpr::Kind::Call:
      walkExpr(cast<CCall>(E)->getCallee());
      for (const CExpr *A : cast<CCall>(E)->getArgs())
        walkExpr(A);
      break;
    case CExpr::Kind::Member:
      walkExpr(cast<CMember>(E)->getBase());
      break;
    case CExpr::Kind::Subscript:
      walkExpr(cast<CSubscript>(E)->getBase());
      walkExpr(cast<CSubscript>(E)->getIndex());
      break;
    case CExpr::Kind::Cast:
      addType(cast<CCast>(E)->getTargetType());
      walkExpr(cast<CCast>(E)->getOperand());
      break;
    case CExpr::Kind::SizeOf:
      addType(cast<CSizeOf>(E)->getArgType());
      walkExpr(cast<CSizeOf>(E)->getArgExpr());
      break;
    case CExpr::Kind::Comma:
      walkExpr(cast<CComma>(E)->getLhs());
      walkExpr(cast<CComma>(E)->getRhs());
      break;
    case CExpr::Kind::InitList:
      for (const CExpr *I : cast<CInitList>(E)->getInits())
        walkExpr(I);
      break;
    }
  }

  void walkStmt(const CStmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case CStmt::Kind::Compound:
      for (const CStmt *Sub : cast<CCompoundStmt>(S)->getBody())
        walkStmt(Sub);
      break;
    case CStmt::Kind::Expr:
      walkExpr(cast<CExprStmt>(S)->getExpr());
      break;
    case CStmt::Kind::Decl:
      for (const VarDecl *VD : cast<CDeclStmt>(S)->getDecls()) {
        addType(VD->getType());
        walkExpr(VD->getInit());
      }
      break;
    case CStmt::Kind::If:
      walkExpr(cast<CIfStmt>(S)->getCond());
      walkStmt(cast<CIfStmt>(S)->getThen());
      walkStmt(cast<CIfStmt>(S)->getElse());
      break;
    case CStmt::Kind::While:
      walkExpr(cast<CWhileStmt>(S)->getCond());
      walkStmt(cast<CWhileStmt>(S)->getBody());
      break;
    case CStmt::Kind::DoWhile:
      walkStmt(cast<CDoWhileStmt>(S)->getBody());
      walkExpr(cast<CDoWhileStmt>(S)->getCond());
      break;
    case CStmt::Kind::For:
      walkStmt(cast<CForStmt>(S)->getInit());
      walkExpr(cast<CForStmt>(S)->getCond());
      walkExpr(cast<CForStmt>(S)->getStep());
      walkStmt(cast<CForStmt>(S)->getBody());
      break;
    case CStmt::Kind::Return:
      walkExpr(cast<CReturnStmt>(S)->getValue());
      break;
    case CStmt::Kind::Break:
    case CStmt::Kind::Continue:
    case CStmt::Kind::Null:
    case CStmt::Kind::Goto:
      break;
    case CStmt::Kind::Switch:
      walkExpr(cast<CSwitchStmt>(S)->getCond());
      walkStmt(cast<CSwitchStmt>(S)->getBody());
      break;
    case CStmt::Kind::Case:
      walkExpr(cast<CCaseStmt>(S)->getValue());
      walkStmt(cast<CCaseStmt>(S)->getSub());
      break;
    case CStmt::Kind::Default:
      walkStmt(cast<CDefaultStmt>(S)->getSub());
      break;
    case CStmt::Kind::Label:
      walkStmt(cast<CLabelStmt>(S)->getSub());
      break;
    }
  }

  std::vector<std::string> take() {
    return std::vector<std::string>(Out.begin(), Out.end());
  }

private:
  std::set<std::string> Out;
  std::unordered_set<const CType *> SeenTypes;
  std::unordered_set<const RecordDecl *> SeenRecords;
};

std::vector<std::string> collectFunctionEntities(const FunctionDecl *FD) {
  EntityCollector C;
  // A function couples with everything that names it, so its own name is
  // part of its footprint (this also makes FDG call edges redundant with
  // entity sharing: caller holds "f:callee", callee holds it too).
  C.addType(CQualType(FD->getType()));
  for (const VarDecl *P : FD->getParams())
    C.addType(P->getType());
  C.walkStmt(FD->getBody());
  std::vector<std::string> Entities = C.take();
  std::string Self = "f:" + std::string(FD->getName());
  auto It = std::lower_bound(Entities.begin(), Entities.end(), Self);
  if (It == Entities.end() || *It != Self)
    Entities.insert(It, Self);
  return Entities;
}

std::vector<std::string> collectInitEntities(const TranslationUnit &TU) {
  EntityCollector C;
  std::set<std::string> Extra;
  for (const VarDecl *G : TU.Globals) {
    if (!G->getInit())
      continue;
    Extra.insert("g:" + std::string(G->getName()));
    C.addType(G->getType());
    C.walkExpr(G->getInit());
  }
  std::vector<std::string> Entities = C.take();
  for (const std::string &E : Extra)
    Entities.push_back(E);
  std::sort(Entities.begin(), Entities.end());
  Entities.erase(std::unique(Entities.begin(), Entities.end()),
                 Entities.end());
  return Entities;
}

std::vector<std::pair<unsigned, unsigned>> snapshotEdges(const Fdg &Graph) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned N = 0; N != Graph.Graph.getNumNodes(); ++N)
    for (unsigned Succ : Graph.Graph.successors(N))
      Edges.emplace_back(N, Succ);
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  return Edges;
}

/// Fresh per-function classified positions of the components \p Inf
/// analyzed, grouped by function name.
std::unordered_map<std::string, std::vector<PosSummary>>
freshSummaries(const ConstInference &Inf,
               const std::vector<bool> *OnlyDirty) {
  std::unordered_map<std::string, std::vector<PosSummary>> ByFn;
  const Fdg &Graph = Inf.fdg();
  const std::vector<InterestingPos> &Positions = Inf.positions();
  for (unsigned C = 0; C != Graph.Sccs.Components.size(); ++C) {
    if (OnlyDirty && !(*OnlyDirty)[C])
      continue;
    // Every defined member gets an entry, even when it contributes no
    // positions: assembly treats a missing entry as corruption.
    for (unsigned Node : Graph.Sccs.Components[C])
      if (Graph.Functions[Node]->isDefined())
        ByFn[std::string(Graph.Functions[Node]->getName())];
    auto Range = Inf.sccPositionRange(C);
    for (unsigned I = Range.first; I != Range.second; ++I) {
      const InterestingPos &Pos = Positions[I];
      ByFn[std::string(Pos.Fn->getName())].push_back(
          {Pos.ParamIndex, Pos.Depth, Pos.DeclaredConst, Inf.classify(Pos)});
    }
  }
  return ByFn;
}

} // namespace

//===----------------------------------------------------------------------===//
// UnitSnapshot
//===----------------------------------------------------------------------===//

size_t UnitSnapshot::approxBytes() const {
  size_t Bytes = sizeof(UnitSnapshot);
  Bytes += Functions.size() * (sizeof(FuncInfo) + 16);
  Bytes += Edges.size() * sizeof(Edges[0]);
  for (const auto &KV : FunctionSummaries)
    Bytes += KV.first.size() + 32 + KV.second.size() * sizeof(PosSummary);
  for (const auto &KV : FunctionEntities) {
    Bytes += KV.first.size() + 32;
    for (const std::string &E : KV.second)
      Bytes += E.size() + 24;
  }
  for (const std::string &E : InitEntities)
    Bytes += E.size() + 24;
  return Bytes;
}

std::shared_ptr<const UnitSnapshot>
quals::constinf::captureSnapshot(const TranslationUnit &TU,
                                 const ConstInference &Inf) {
  auto Snap = std::make_shared<UnitSnapshot>();
  Snap->DeclRegionHash = hashDeclRegion(TU);

  const Fdg &Graph = Inf.fdg();
  std::unordered_set<std::string_view> Names;
  Snap->Functions.reserve(Graph.Functions.size());
  for (const FunctionDecl *F : Graph.Functions) {
    if (F->getName().empty() || !Names.insert(F->getName()).second)
      return nullptr; // Name-keyed replay needs unique, non-empty names.
    Snap->Functions.push_back(
        {std::string(F->getName()), hashFunctionBody(F)});
  }
  Snap->Edges = snapshotEdges(Graph);
  Snap->FunctionSummaries = freshSummaries(Inf, nullptr);
  for (const FunctionDecl *F : Graph.Functions)
    if (F->isDefined())
      Snap->FunctionEntities.emplace(std::string(F->getName()),
                                     collectFunctionEntities(F));
  Snap->InitEntities = collectInitEntities(TU);
  return Snap;
}

//===----------------------------------------------------------------------===//
// Delta planning
//===----------------------------------------------------------------------===//

DeltaPlan quals::constinf::planDelta(const TranslationUnit &TU,
                                     const Fdg &Graph,
                                     const UnitSnapshot &Prev) {
  DeltaPlan Plan;

  if (hashDeclRegion(TU) != Prev.DeclRegionHash) {
    Plan.FallbackReason = "decl-region";
    return Plan;
  }

  // Node lists must agree exactly: same functions, same order, same
  // defined-ness (body hash 0 means undefined on both sides).
  if (Graph.Functions.size() != Prev.Functions.size()) {
    Plan.FallbackReason = "function-set";
    return Plan;
  }
  std::vector<uint64_t> FreshBodyHash(Graph.Functions.size());
  for (unsigned I = 0; I != Graph.Functions.size(); ++I) {
    const FunctionDecl *F = Graph.Functions[I];
    FreshBodyHash[I] = hashFunctionBody(F);
    if (F->getName() != Prev.Functions[I].Name ||
        (FreshBodyHash[I] == 0) != (Prev.Functions[I].BodyHash == 0)) {
      Plan.FallbackReason = "function-set";
      return Plan;
    }
  }
  if (snapshotEdges(Graph) != Prev.Edges) {
    Plan.FallbackReason = "call-graph";
    return Plan;
  }

  const unsigned NumComps =
      static_cast<unsigned>(Graph.Sccs.Components.size());
  const unsigned InitNode = NumComps; // global-initializer pseudo-node
  Plan.SccDirty.assign(NumComps, false);

  // Seed dirtiness from body-hash changes.
  std::vector<bool> BodyChanged(Graph.Functions.size(), false);
  for (unsigned I = 0; I != Graph.Functions.size(); ++I)
    if (FreshBodyHash[I] != Prev.Functions[I].BodyHash) {
      BodyChanged[I] = true;
      Plan.SccDirty[Graph.Sccs.ComponentOf[I]] = true;
    }

  // Close over shared entities: components (plus the initializer
  // pseudo-node) that name a common function/global/record form one
  // coupling class; a class with any dirty member re-analyzes entirely.
  UnionFind UF;
  for (unsigned I = 0; I != NumComps + 1; ++I)
    UF.makeSet();
  std::unordered_map<std::string, unsigned> FirstHolder;
  auto couple = [&](unsigned Node, const std::vector<std::string> &Entities) {
    for (const std::string &E : Entities) {
      auto It = FirstHolder.emplace(E, Node);
      if (!It.second)
        UF.unite(Node, It.first->second);
    }
  };
  // Entities of unchanged functions replay from the snapshot; changed
  // bodies are re-collected from the fresh AST.
  std::vector<std::vector<std::string>> FreshEntities(Graph.Functions.size());
  for (unsigned I = 0; I != Graph.Functions.size(); ++I) {
    const FunctionDecl *F = Graph.Functions[I];
    if (!F->isDefined())
      continue;
    unsigned Comp = Graph.Sccs.ComponentOf[I];
    if (!BodyChanged[I]) {
      auto It = Prev.FunctionEntities.find(std::string(F->getName()));
      if (It != Prev.FunctionEntities.end()) {
        couple(Comp, It->second);
        continue;
      }
    }
    FreshEntities[I] = collectFunctionEntities(F);
    couple(Comp, FreshEntities[I]);
  }
  couple(InitNode, Prev.InitEntities);

  // Propagate: every component whose class root has a dirty member.
  std::vector<bool> RootDirty(NumComps + 1, false);
  for (unsigned C = 0; C != NumComps; ++C)
    if (Plan.SccDirty[C])
      RootDirty[UF.find(C)] = true;
  for (unsigned C = 0; C != NumComps; ++C)
    Plan.SccDirty[C] = RootDirty[UF.find(C)];
  Plan.InitsDirty = RootDirty[UF.find(InitNode)];

  for (unsigned C = 0; C != NumComps; ++C) {
    bool AnyDefined = false;
    for (unsigned Node : Graph.Sccs.Components[C]) {
      if (!Graph.Functions[Node]->isDefined())
        continue;
      AnyDefined = true;
      if (Plan.SccDirty[C])
        Plan.DirtyFunctions.insert(Graph.Functions[Node]);
    }
    if (!AnyDefined)
      continue;
    if (Plan.SccDirty[C])
      ++Plan.NumDirtySccs;
    else
      ++Plan.NumReusedSccs;
  }
  Plan.Compatible = true;
  return Plan;
}

//===----------------------------------------------------------------------===//
// Assembly and re-capture after a restricted run
//===----------------------------------------------------------------------===//

std::vector<ClassifiedPos>
quals::constinf::assemblePositions(const ConstInference &Inf,
                                   const DeltaPlan &Plan,
                                   const UnitSnapshot &Prev, bool &Ok) {
  Ok = true;
  std::vector<ClassifiedPos> Out;
  const Fdg &Graph = Inf.fdg();
  const std::vector<InterestingPos> &Positions = Inf.positions();
  for (unsigned C = 0; C != Graph.Sccs.Components.size(); ++C) {
    if (C < Plan.SccDirty.size() && Plan.SccDirty[C]) {
      auto Range = Inf.sccPositionRange(C);
      for (unsigned I = Range.first; I != Range.second; ++I)
        Out.push_back({Positions[I], Inf.classify(Positions[I])});
      continue;
    }
    // Clean component: replay per-function summaries in this (fresh)
    // component's node order -- which is the order a cold run would have
    // registered them.
    for (unsigned Node : Graph.Sccs.Components[C]) {
      const FunctionDecl *FD = Graph.Functions[Node];
      if (!FD->isDefined())
        continue;
      auto It = Prev.FunctionSummaries.find(std::string(FD->getName()));
      if (It == Prev.FunctionSummaries.end()) {
        Ok = false;
        return Out;
      }
      for (const PosSummary &PS : It->second) {
        InterestingPos Pos;
        Pos.Fn = FD;
        Pos.ParamIndex = PS.ParamIndex;
        Pos.Depth = PS.Depth;
        Pos.DeclaredConst = PS.DeclaredConst;
        Out.push_back({Pos, PS.Class});
      }
    }
  }
  return Out;
}

std::shared_ptr<const UnitSnapshot>
quals::constinf::captureDeltaSnapshot(const TranslationUnit &TU,
                                      const ConstInference &Inf,
                                      const DeltaPlan &Plan,
                                      const UnitSnapshot &Prev) {
  (void)TU;
  auto Snap = std::make_shared<UnitSnapshot>();
  Snap->DeclRegionHash = Prev.DeclRegionHash;
  Snap->Edges = Prev.Edges;
  Snap->InitEntities = Prev.InitEntities;
  Snap->FunctionSummaries = Prev.FunctionSummaries;
  Snap->FunctionEntities = Prev.FunctionEntities;

  const Fdg &Graph = Inf.fdg();
  Snap->Functions.reserve(Graph.Functions.size());
  for (const FunctionDecl *F : Graph.Functions)
    Snap->Functions.push_back(
        {std::string(F->getName()), hashFunctionBody(F)});

  // Dirty components overwrite their members' summaries and entities with
  // freshly computed ones; clean components keep Prev's.
  auto Fresh = freshSummaries(Inf, &Plan.SccDirty);
  for (auto &KV : Fresh)
    Snap->FunctionSummaries[KV.first] = std::move(KV.second);
  for (const FunctionDecl *F : Plan.DirtyFunctions)
    Snap->FunctionEntities[std::string(F->getName())] =
        collectFunctionEntities(F);
  return Snap;
}

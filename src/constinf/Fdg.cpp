//===- constinf/Fdg.cpp - Function dependence graph -------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "constinf/Fdg.h"

#include "support/Metrics.h"

using namespace quals;
using namespace quals::constinf;
using namespace quals::cfront;

namespace {

/// Collects every FunctionDecl referenced from an expression tree.
void collectExpr(const CExpr *E,
                 std::vector<const FunctionDecl *> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case CExpr::Kind::DeclRef:
    if (const auto *FD =
            dyn_cast_or_null<FunctionDecl>(cast<CDeclRef>(E)->getDecl()))
      Out.push_back(FD);
    return;
  case CExpr::Kind::Unary:
    collectExpr(cast<CUnary>(E)->getOperand(), Out);
    return;
  case CExpr::Kind::Binary: {
    const auto *B = cast<CBinary>(E);
    collectExpr(B->getLhs(), Out);
    collectExpr(B->getRhs(), Out);
    return;
  }
  case CExpr::Kind::Conditional: {
    const auto *C = cast<CConditional>(E);
    collectExpr(C->getCond(), Out);
    collectExpr(C->getThen(), Out);
    collectExpr(C->getElse(), Out);
    return;
  }
  case CExpr::Kind::Call: {
    const auto *C = cast<CCall>(E);
    collectExpr(C->getCallee(), Out);
    for (const CExpr *A : C->getArgs())
      collectExpr(A, Out);
    return;
  }
  case CExpr::Kind::Member:
    collectExpr(cast<CMember>(E)->getBase(), Out);
    return;
  case CExpr::Kind::Subscript: {
    const auto *S = cast<CSubscript>(E);
    collectExpr(S->getBase(), Out);
    collectExpr(S->getIndex(), Out);
    return;
  }
  case CExpr::Kind::Cast:
    collectExpr(cast<CCast>(E)->getOperand(), Out);
    return;
  case CExpr::Kind::SizeOf:
    collectExpr(cast<CSizeOf>(E)->getArgExpr(), Out);
    return;
  case CExpr::Kind::Comma: {
    const auto *C = cast<CComma>(E);
    collectExpr(C->getLhs(), Out);
    collectExpr(C->getRhs(), Out);
    return;
  }
  case CExpr::Kind::InitList:
    for (const CExpr *I : cast<CInitList>(E)->getInits())
      collectExpr(I, Out);
    return;
  case CExpr::Kind::IntLit:
  case CExpr::Kind::FloatLit:
  case CExpr::Kind::StringLit:
    return;
  }
}

void collectStmt(const CStmt *S, std::vector<const FunctionDecl *> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case CStmt::Kind::Compound:
    for (const CStmt *Sub : cast<CCompoundStmt>(S)->getBody())
      collectStmt(Sub, Out);
    return;
  case CStmt::Kind::Expr:
    collectExpr(cast<CExprStmt>(S)->getExpr(), Out);
    return;
  case CStmt::Kind::Decl:
    for (const VarDecl *V : cast<CDeclStmt>(S)->getDecls())
      collectExpr(V->getInit(), Out);
    return;
  case CStmt::Kind::If: {
    const auto *I = cast<CIfStmt>(S);
    collectExpr(I->getCond(), Out);
    collectStmt(I->getThen(), Out);
    collectStmt(I->getElse(), Out);
    return;
  }
  case CStmt::Kind::While: {
    const auto *W = cast<CWhileStmt>(S);
    collectExpr(W->getCond(), Out);
    collectStmt(W->getBody(), Out);
    return;
  }
  case CStmt::Kind::DoWhile: {
    const auto *W = cast<CDoWhileStmt>(S);
    collectStmt(W->getBody(), Out);
    collectExpr(W->getCond(), Out);
    return;
  }
  case CStmt::Kind::For: {
    const auto *F = cast<CForStmt>(S);
    collectStmt(F->getInit(), Out);
    collectExpr(F->getCond(), Out);
    collectExpr(F->getStep(), Out);
    collectStmt(F->getBody(), Out);
    return;
  }
  case CStmt::Kind::Return:
    collectExpr(cast<CReturnStmt>(S)->getValue(), Out);
    return;
  case CStmt::Kind::Switch: {
    const auto *Sw = cast<CSwitchStmt>(S);
    collectExpr(Sw->getCond(), Out);
    collectStmt(Sw->getBody(), Out);
    return;
  }
  case CStmt::Kind::Case: {
    const auto *C = cast<CCaseStmt>(S);
    collectExpr(C->getValue(), Out);
    collectStmt(C->getSub(), Out);
    return;
  }
  case CStmt::Kind::Default:
    collectStmt(cast<CDefaultStmt>(S)->getSub(), Out);
    return;
  case CStmt::Kind::Label:
    collectStmt(cast<CLabelStmt>(S)->getSub(), Out);
    return;
  case CStmt::Kind::Break:
  case CStmt::Kind::Continue:
  case CStmt::Kind::Null:
  case CStmt::Kind::Goto:
    return;
  }
}

} // namespace

Fdg quals::constinf::buildFdg(const TranslationUnit &TU) {
  PhaseScope Phase("fdg", "constinf");
  Fdg Result;
  for (FunctionDecl *F : TU.Functions) {
    Result.NodeOf[F] = Result.Functions.size();
    Result.Functions.push_back(F);
  }
  Result.Graph = Digraph(Result.Functions.size());
  for (FunctionDecl *F : TU.Functions) {
    if (!F->isDefined())
      continue;
    std::vector<const FunctionDecl *> Refs;
    collectStmt(F->getBody(), Refs);
    unsigned From = Result.NodeOf[F];
    for (const FunctionDecl *G : Refs) {
      auto It = Result.NodeOf.find(G);
      if (It != Result.NodeOf.end())
        Result.Graph.addEdge(From, It->second);
    }
  }
  Result.Sccs = computeSccs(Result.Graph);
  return Result;
}

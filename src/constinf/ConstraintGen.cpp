//===- constinf/ConstraintGen.cpp - Qualifier constraints from C ASTs ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "constinf/ConstraintGen.h"

using namespace quals;
using namespace quals::constinf;
using namespace quals::cfront;

void ConstraintGen::flowInto(QualType A, QualType B,
                             const ConstraintOrigin &Origin) {
  if (A.isNull() || B.isNull())
    return;
  if (A.getCtor() != B.getCtor())
    return; // Conversion: drop the association (Section 4.2 casts/implicit).
  Sys.addLeq(A.getQual(), B.getQual(), Origin);
  for (unsigned I = 0, E = A.getNumArgs(); I != E; ++I) {
    switch (A.getCtor()->getVariance(I)) {
    case Variance::Covariant:
      flowInto(A.getArg(I), B.getArg(I), Origin);
      break;
    case Variance::Contravariant:
      flowInto(B.getArg(I), A.getArg(I), Origin);
      break;
    case Variance::Invariant:
      flowBoth(A.getArg(I), B.getArg(I), Origin);
      break;
    }
  }
}

void ConstraintGen::flowBoth(QualType A, QualType B,
                             const ConstraintOrigin &Origin) {
  if (A.isNull() || B.isNull())
    return;
  if (A.getCtor() != B.getCtor())
    return;
  Sys.addEq(A.getQual(), B.getQual(), Origin);
  for (unsigned I = 0, E = A.getNumArgs(); I != E; ++I)
    flowBoth(A.getArg(I), B.getArg(I), Origin);
}

void ConstraintGen::requireNonConstCell(QualType LType, SourceLoc Loc,
                                        const char *What) {
  if (LType.isNull() || LType.getCtor() != Ctors.ref())
    return;
  Sys.addLeq(LType.getQual(),
             QualExpr::makeConst(
                 Sys.getQualifierSet().notQual(ConstQual)),
             ConstraintOrigin(Loc, std::string(What) +
                                       " target must not be const"));
}

QualType ConstraintGen::rvalue(const CExpr *E) {
  QualType T = genExpr(E);
  if (T.isNull())
    return T;
  if (E->isLValue() && T.getCtor() == Ctors.ref())
    return T.getArg(0);
  return T;
}

void ConstraintGen::genFunction(const FunctionDecl *FD, QualType FnTy) {
  CurrentFn = FD;
  unsigned NumParams = FD->getType()->getParams().size();
  assert(FnTy.getNumArgs() == NumParams + 1 && "interface arity mismatch");
  if (FnTy.getNumArgs() != NumParams + 1) {
    // Release-build recovery for the invariant above: skip the function
    // with a diagnostic instead of indexing out of bounds.
    Diags.error(FD->getLoc(), "internal: interface arity mismatch for '" +
                                  std::string(FD->getName()) + "'");
    CurrentFn = nullptr;
    return;
  }
  CurrentRet = FnTy.getArg(NumParams);
  genStmt(FD->getBody());
  CurrentFn = nullptr;
  CurrentRet = QualType();
}

void ConstraintGen::genGlobalInit(const VarDecl *VD) {
  if (!VD->getInit())
    return;
  QualType Cell = Translator.varLValueType(VD);
  genInitInto(Cell.getArg(0), VD->getInit());
}

void ConstraintGen::genInitInto(QualType CellContents, const CExpr *Init) {
  if (Init->getKind() == CExpr::Kind::InitList) {
    const auto *IL = cast<CInitList>(Init);
    if (!CellContents.isNull() && CellContents.getCtor() == Ctors.ref()) {
      // Array initializer: every element flows into the shared element cell.
      for (const CExpr *E : IL->getInits())
        genInitInto(CellContents.getArg(0), E);
      return;
    }
    // Struct initializer: positional fields.
    if (!CellContents.isNull() && CellContents.getCtor()->arity() == 0 &&
        CellContents.getCtor() != Ctors.val()) {
      // Nominal record constructor: look the fields up via the name; the
      // translator's shared field cells carry the constraints.
      // (We find the RecordDecl through the expression's C type.)
    }
    for (const CExpr *E : IL->getInits())
      if (E->getKind() != CExpr::Kind::InitList)
        rvalue(E);
      else
        genInitInto(QualType(), E);
    return;
  }
  QualType V = rvalue(Init);
  flowInto(V, CellContents,
           ConstraintOrigin(Init->getLoc(), "initializer flows into cell"));
}

void ConstraintGen::genStmt(const CStmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case CStmt::Kind::Compound:
    for (const CStmt *Sub : cast<CCompoundStmt>(S)->getBody())
      genStmt(Sub);
    return;
  case CStmt::Kind::Expr:
    genExpr(cast<CExprStmt>(S)->getExpr());
    return;
  case CStmt::Kind::Decl:
    for (const VarDecl *V : cast<CDeclStmt>(S)->getDecls()) {
      QualType Cell = Translator.varLValueType(V);
      if (V->getInit())
        genInitInto(Cell.getArg(0), V->getInit());
    }
    return;
  case CStmt::Kind::If: {
    const auto *I = cast<CIfStmt>(S);
    genExpr(I->getCond());
    genStmt(I->getThen());
    genStmt(I->getElse());
    return;
  }
  case CStmt::Kind::While: {
    const auto *W = cast<CWhileStmt>(S);
    genExpr(W->getCond());
    genStmt(W->getBody());
    return;
  }
  case CStmt::Kind::DoWhile: {
    const auto *W = cast<CDoWhileStmt>(S);
    genStmt(W->getBody());
    genExpr(W->getCond());
    return;
  }
  case CStmt::Kind::For: {
    const auto *F = cast<CForStmt>(S);
    genStmt(F->getInit());
    if (F->getCond())
      genExpr(F->getCond());
    if (F->getStep())
      genExpr(F->getStep());
    genStmt(F->getBody());
    return;
  }
  case CStmt::Kind::Return: {
    const auto *R = cast<CReturnStmt>(S);
    if (R->getValue() && !CurrentRet.isNull()) {
      QualType V = rvalue(R->getValue());
      flowInto(V, CurrentRet,
               ConstraintOrigin(S->getLoc(),
                                "returned value flows into result of '" +
                                    std::string(CurrentFn->getName()) +
                                    "'"));
    } else if (R->getValue()) {
      rvalue(R->getValue());
    }
    return;
  }
  case CStmt::Kind::Switch: {
    const auto *Sw = cast<CSwitchStmt>(S);
    genExpr(Sw->getCond());
    genStmt(Sw->getBody());
    return;
  }
  case CStmt::Kind::Case: {
    const auto *C = cast<CCaseStmt>(S);
    genExpr(C->getValue());
    genStmt(C->getSub());
    return;
  }
  case CStmt::Kind::Default:
    genStmt(cast<CDefaultStmt>(S)->getSub());
    return;
  case CStmt::Kind::Label:
    genStmt(cast<CLabelStmt>(S)->getSub());
    return;
  case CStmt::Kind::Break:
  case CStmt::Kind::Continue:
  case CStmt::Kind::Null:
  case CStmt::Kind::Goto:
    return;
  }
}

QualType ConstraintGen::genExpr(const CExpr *E) {
  switch (E->getKind()) {
  case CExpr::Kind::IntLit:
  case CExpr::Kind::FloatLit:
    return freshVal(E->getLoc());
  case CExpr::Kind::StringLit: {
    // char *: a pointer to a fresh character cell. The cell's constness is
    // free: "..." can be viewed const or not (C89).
    QualType CharCell = Factory.make(
        QualExpr::makeVar(Sys.freshVar("strlit", E->getLoc())), Ctors.ref(),
        {freshVal(E->getLoc())});
    return CharCell;
  }
  case CExpr::Kind::DeclRef: {
    const auto *Ref = cast<CDeclRef>(E);
    const CDecl *D = Ref->getDecl();
    if (const auto *V = dyn_cast_or_null<VarDecl>(D))
      return Translator.varLValueType(V);
    if (const auto *F = dyn_cast_or_null<FunctionDecl>(D)) {
      // A function designator used as a value: a pointer to the function.
      QualType FnTy = FunctionUse(F);
      return Factory.make(
          QualExpr::makeVar(Sys.freshVar("fnptr", E->getLoc())), Ctors.ref(),
          {FnTy});
    }
    return freshVal(E->getLoc()); // enum constant
  }
  case CExpr::Kind::Unary: {
    const auto *U = cast<CUnary>(E);
    switch (U->getOp()) {
    case UnaryOp::Deref: {
      QualType P = rvalue(U->getOperand());
      if (!P.isNull() && P.getCtor() == Ctors.ref())
        return P; // The pointee cell *is* the pointer's r-value.
      // Deref of a converted value: fresh cell of the right shape.
      return Factory.make(
          QualExpr::makeVar(Sys.freshVar("deref", E->getLoc())), Ctors.ref(),
          {Translator.freshRValueType(E->getType(), E->getLoc())});
    }
    case UnaryOp::AddrOf: {
      QualType T = genExpr(U->getOperand());
      // &lvalue: the cell itself is the pointer r-value. &function is
      // already a pointer from the DeclRef case.
      return T;
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      QualType T = genExpr(U->getOperand());
      if (U->getOperand()->isLValue())
        requireNonConstCell(T, E->getLoc(), "increment/decrement");
      if (!T.isNull() && U->getOperand()->isLValue() &&
          T.getCtor() == Ctors.ref())
        return T.getArg(0);
      return T;
    }
    case UnaryOp::Plus:
    case UnaryOp::Minus:
    case UnaryOp::Not:
    case UnaryOp::BitNot:
      rvalue(U->getOperand());
      return freshVal(E->getLoc());
    }
    return freshVal(E->getLoc());
  }
  case CExpr::Kind::Binary: {
    const auto *B = cast<CBinary>(E);
    if (B->getOp() == BinaryOp::Assign) {
      QualType L = genExpr(B->getLhs());
      QualType R = rvalue(B->getRhs());
      if (!L.isNull() && L.getCtor() == Ctors.ref()) {
        requireNonConstCell(L, E->getLoc(), "assignment");
        flowInto(R, L.getArg(0),
                 ConstraintOrigin(E->getLoc(),
                                  "assigned value flows into cell"));
        return L.getArg(0);
      }
      return R;
    }
    if (isAssignmentOp(B->getOp())) {
      // Compound assignment: scalar (or pointer-arithmetic) update; the
      // cell keeps its contents type.
      QualType L = genExpr(B->getLhs());
      rvalue(B->getRhs());
      if (!L.isNull() && L.getCtor() == Ctors.ref()) {
        requireNonConstCell(L, E->getLoc(), "compound assignment");
        return L.getArg(0);
      }
      return L;
    }
    if (B->getOp() == BinaryOp::Add || B->getOp() == BinaryOp::Sub) {
      // Pointer arithmetic preserves the pointed-to cell.
      QualType L = rvalue(B->getLhs());
      QualType R = rvalue(B->getRhs());
      if (!L.isNull() && L.getCtor() == Ctors.ref())
        return L;
      if (!R.isNull() && R.getCtor() == Ctors.ref())
        return R;
      return freshVal(E->getLoc());
    }
    rvalue(B->getLhs());
    rvalue(B->getRhs());
    return freshVal(E->getLoc());
  }
  case CExpr::Kind::Conditional: {
    const auto *C = cast<CConditional>(E);
    rvalue(C->getCond());
    QualType T = rvalue(C->getThen());
    QualType F = rvalue(C->getElse());
    if (!T.isNull() && !F.isNull() && T.shapeEquals(F)) {
      QualType Join = Factory.spread(Sys, T, "cond", E->getLoc());
      ConstraintOrigin Origin(E->getLoc(), "conditional branch joins");
      flowInto(T, Join, Origin);
      flowInto(F, Join, Origin);
      return Join;
    }
    // Shape mismatch (e.g. "p ? p : 0"): keep the pointer-ish side.
    if (!T.isNull() && T.getCtor() == Ctors.ref())
      return T;
    if (!F.isNull() && F.getCtor() == Ctors.ref())
      return F;
    return T.isNull() ? F : T;
  }
  case CExpr::Kind::Call: {
    const auto *Call = cast<CCall>(E);
    const FunctionDecl *Callee = nullptr;
    QualType FnTy;
    if (const auto *Ref = dyn_cast<CDeclRef>(Call->getCallee())) {
      Callee = dyn_cast_or_null<FunctionDecl>(Ref->getDecl());
      if (Callee)
        FnTy = FunctionUse(Callee);
    }
    if (FnTy.isNull()) {
      // Indirect call: the callee's r-value should be ref(fn...).
      QualType CT = rvalue(Call->getCallee());
      if (!CT.isNull() && CT.getCtor() == Ctors.ref() &&
          CT.getArg(0).getCtor()->getName().substr(0, 2) == "fn")
        FnTy = CT.getArg(0);
    }
    unsigned NumParams =
        FnTy.isNull() ? 0 : FnTy.getNumArgs() - 1;
    bool CalleeUnknown = !Callee || !Callee->isDefined();
    const auto &Args = Call->getArgs();
    for (unsigned I = 0, N = Args.size(); I != N; ++I) {
      QualType A = rvalue(Args[I]);
      if (!FnTy.isNull() && I < NumParams) {
        flowInto(A, FnTy.getArg(I),
                 ConstraintOrigin(Args[I]->getLoc(),
                                  "argument flows into parameter"));
      } else if (CalleeUnknown && ConservativeLibraries) {
        // Extra argument to an undefined/variadic function: conservatively
        // non-const at every pointer level (Section 4.2). In summary mode a
        // *named* undefined callee may be defined in another TU (where the
        // extras would simply be ignored), so the pins are deferred to the
        // link step; an indirect call has no symbol to resolve and is
        // pinned immediately in both modes.
        if (Callee && Translator.deferringLibraryPins())
          Translator.deferEscapePins(Callee, A, Args[I]->getLoc());
        else
          Translator.forceNonConstRefs(
              A, ConstraintOrigin(Args[I]->getLoc(),
                                  "argument to unknown/variadic function"));
      }
      // Extra arguments to defined functions are simply ignored.
    }
    if (!FnTy.isNull())
      return FnTy.getArg(NumParams);
    return Translator.freshRValueType(E->getType(), E->getLoc());
  }
  case CExpr::Kind::Member: {
    const auto *M = cast<CMember>(E);
    genExpr(M->getBase());
    if (const FieldDecl *F = M->getField())
      return Translator.fieldLValueType(F);
    return Factory.make(
        QualExpr::makeVar(Sys.freshVar("field", E->getLoc())), Ctors.ref(),
        {Translator.freshRValueType(E->getType(), E->getLoc())});
  }
  case CExpr::Kind::Subscript: {
    const auto *S = cast<CSubscript>(E);
    rvalue(S->getIndex());
    QualType Base = rvalue(S->getBase());
    if (!Base.isNull() && Base.getCtor() == Ctors.ref())
      return Base; // All elements share the pointee cell.
    return Factory.make(
        QualExpr::makeVar(Sys.freshVar("elem", E->getLoc())), Ctors.ref(),
        {Translator.freshRValueType(E->getType(), E->getLoc())});
  }
  case CExpr::Kind::Cast: {
    const auto *C = cast<CCast>(E);
    QualType Op = rvalue(C->getOperand());
    // Explicit casts lose the association between operand and result
    // (Section 4.2): an all-fresh type from the target. The ablation mode
    // keeps whatever structural flow the shapes allow.
    QualType Result =
        Translator.freshRValueType(C->getTargetType(), E->getLoc());
    if (!CastsSeverFlow)
      flowInto(Op, Result,
               ConstraintOrigin(E->getLoc(), "cast keeps flow (ablation)"));
    return Result;
  }
  case CExpr::Kind::SizeOf: {
    const auto *S = cast<CSizeOf>(E);
    if (S->getArgExpr())
      genExpr(S->getArgExpr());
    return freshVal(E->getLoc());
  }
  case CExpr::Kind::Comma: {
    const auto *C = cast<CComma>(E);
    genExpr(C->getLhs());
    return rvalue(C->getRhs());
  }
  case CExpr::Kind::InitList:
    for (const CExpr *I : cast<CInitList>(E)->getInits())
      rvalue(I);
    return freshVal(E->getLoc());
  }
  return freshVal(E->getLoc());
}

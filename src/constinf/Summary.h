//===- constinf/Summary.h - Per-SCC summaries for incremental runs -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-side half of qualsd's incremental re-analysis
/// (docs/INCREMENTAL.md; serve/Pipelines.h drives it, serve/SummaryStore.h
/// retains it). A UnitSnapshot remembers, for one successfully analyzed C
/// translation unit, everything needed to re-answer an edited version of the
/// same unit without re-solving the parts the edit did not touch:
///
///  \li structural hashes of the declaration region and of every function
///      body (cfront/AstHash.h), to detect what changed;
///  \li the function dependence graph's shape (node list + edge set), to
///      detect call-graph restructuring (SCC merge/split), which forces a
///      full re-analysis;
///  \li per-function result summaries -- the classified interesting
///      positions (Section 4.4's trichotomy) of each defined function --
///      which replay verbatim for functions the edit cannot have affected;
///  \li per-function *entity* sets naming everything a function's
///      constraints can share with another function's (called/referenced
///      functions including library ones, global variables, record types
///      reachable from any type it mentions).
///
/// Dirtiness is computed at SCC granularity and then closed over the entity
/// sets: two SCCs that share any named entity land in one coupling class,
/// and a class with any hash-dirty SCC is re-analyzed wholesale. This is
/// deliberately coarser than the FDG's caller->callee reachability: const
/// inference couples functions through shared globals, shared struct-field
/// qualifiers, library interfaces, and the deep-pointer equality constraints
/// of Section 4.1, none of which follow call edges only. The closure makes
/// the dirty set self-contained, so the restricted re-run's constraint
/// system is an exact sub-system of the full one and its least solution
/// agrees position-for-position -- which is what lets qualsd promise
/// byte-identical responses (the determinism contract in docs/SERVER.md).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CONSTINF_SUMMARY_H
#define QUALS_CONSTINF_SUMMARY_H

#include "constinf/ConstInfer.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace quals {
namespace constinf {

/// One interesting position of one function, in portable (pointer-free)
/// form. The owning function is the map key in UnitSnapshot.
struct PosSummary {
  int ParamIndex = -1;   ///< -1 for the result position.
  unsigned Depth = 0;    ///< Pointer depth (InterestingPos::Depth).
  bool DeclaredConst = false;
  PosClass Class = PosClass::Either;
};

/// Everything retained about one successfully analyzed translation unit.
/// Immutable once captured; the serve layer shares it across threads via
/// shared_ptr<const UnitSnapshot>.
struct UnitSnapshot {
  /// cfront::hashDeclRegion of the captured unit. Any mismatch on the next
  /// version forces a full re-analysis (interfaces or shared state moved).
  uint64_t DeclRegionHash = 0;

  struct FuncInfo {
    std::string Name;
    uint64_t BodyHash = 0; ///< 0 for undefined (library) functions.
  };
  /// TU.Functions in order; position and name must match the next version
  /// exactly or the FDG node numbering is incomparable (full fallback).
  std::vector<FuncInfo> Functions;

  /// The FDG's edge set over indices into Functions, deduplicated and
  /// sorted. Set inequality means the call graph restructured.
  std::vector<std::pair<unsigned, unsigned>> Edges;

  /// Classified positions per defined function, in the deterministic order
  /// RefTranslator registers them for that function's interface.
  std::unordered_map<std::string, std::vector<PosSummary>> FunctionSummaries;

  /// Coupling entities per function: "f:<name>" (functions, including
  /// library ones and the function itself), "g:<name>" (globals),
  /// "r:<tag>" (records reachable from any mentioned type). Sorted, unique.
  std::unordered_map<std::string, std::vector<std::string>> FunctionEntities;

  /// Entities of the global-initializer pseudo-node: every initialized
  /// global, plus everything its initializer expressions reference.
  std::vector<std::string> InitEntities;

  /// Rough retained size, for the SummaryStore's accounting.
  size_t approxBytes() const;
};

/// The planned shape of an incremental re-run of an edited unit against a
/// prior snapshot.
struct DeltaPlan {
  /// False when the snapshot cannot be reused at all (see FallbackReason);
  /// the caller must run a full analysis.
  bool Compatible = false;
  /// Why Compatible is false: "decl-region", "function-set", "call-graph".
  const char *FallbackReason = nullptr;

  /// Per fresh-FDG component: must it be re-analyzed?
  std::vector<bool> SccDirty;
  /// The defined functions inside dirty components -- the OnlyFunctions set
  /// for the restricted ConstInference run.
  std::unordered_set<const cfront::FunctionDecl *> DirtyFunctions;
  /// True when the global-initializer pseudo-node is coupled with a dirty
  /// component (restricted run must include genGlobalInit).
  bool InitsDirty = false;

  unsigned NumDirtySccs = 0;  ///< Components re-analyzed.
  unsigned NumReusedSccs = 0; ///< Components replayed from the snapshot.
};

/// Captures a snapshot of \p TU after a successful *full* analysis \p Inf
/// (run() returned true with no diagnostics). Returns null if the unit has
/// a shape the incremental layer does not support (e.g. duplicate function
/// names), in which case the caller simply serves full analyses.
std::shared_ptr<const UnitSnapshot>
captureSnapshot(const cfront::TranslationUnit &TU, const ConstInference &Inf);

/// Plans an incremental run of the freshly parsed+analyzed \p TU (with FDG
/// \p Graph, built by buildFdg) against \p Prev.
DeltaPlan planDelta(const cfront::TranslationUnit &TU, const Fdg &Graph,
                    const UnitSnapshot &Prev);

/// Assembles the full classified-position list for \p TU after a successful
/// restricted run \p Inf executed per \p Plan: dirty components contribute
/// their freshly inferred positions, clean components replay \p Prev's
/// per-function summaries, in exactly the order a cold run would have
/// produced. Returns false (via \p Ok) if the snapshot is missing a summary
/// it should have -- the caller falls back to a full analysis.
std::vector<ClassifiedPos>
assemblePositions(const ConstInference &Inf, const DeltaPlan &Plan,
                  const UnitSnapshot &Prev, bool &Ok);

/// Builds the successor snapshot after a successful restricted run: fresh
/// hashes/summaries/entities for dirty functions, \p Prev's for clean ones.
std::shared_ptr<const UnitSnapshot>
captureDeltaSnapshot(const cfront::TranslationUnit &TU,
                     const ConstInference &Inf, const DeltaPlan &Plan,
                     const UnitSnapshot &Prev);

} // namespace constinf
} // namespace quals

#endif // QUALS_CONSTINF_SUMMARY_H

//===- constinf/RefTypes.h - The l translation from C types ------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.1's translation from C types to qualified ref types:
///
///   l(CTyp)         = Q' ref(rho)   where (Q', rho) = l'(CTyp)
///   l'(Q int)       = (Q, bottom int)
///   l'(Q ptr(CTyp)) = (Q, (Q'' ref(rho')))  where (Q'', rho') = l'(CTyp)
///
/// Every C variable is an updateable memory cell (one extra ref on the
/// outside); const shifts up one level, attaching to the ref constructor.
/// In inference mode every qualifier position is a fresh variable; a
/// source-level const becomes a lower bound on the corresponding variable.
///
/// Design decisions from Section 4.2 encoded here:
/// \li struct/union values are *nominal* nullary constructors; all variables
///     of the same record type share one field environment (identical field
///     qualifiers), while their top-level ref qualifiers stay independent.
/// \li typedefs were macro-expanded by the parser, so they share nothing.
/// \li arrays translate like pointers to their element cells.
/// \li functions translate to per-arity constructors over the parameter and
///     result r-types (contravariant/covariant).
///
/// The translator also records the "interesting" const positions of
/// Section 4.4: one per pointer level inside the parameters and result of a
/// function type (arguments are by-value, so only pointer contents can
/// meaningfully be const).
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CONSTINF_REFTYPES_H
#define QUALS_CONSTINF_REFTYPES_H

#include "cfront/CAst.h"
#include "qual/QualType.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace quals {
namespace constinf {

/// Type constructors for the translated C types. Function constructors are
/// created per arity on demand.
class ConstCtors {
public:
  ConstCtors();

  const TypeCtor *val() const { return &Val; }
  const TypeCtor *ref() const { return &Ref; }

  /// fnN: N contravariant parameters plus one covariant result.
  const TypeCtor *fn(unsigned NumParams);

  /// The nullary nominal constructor for \p RD.
  const TypeCtor *record(const cfront::RecordDecl *RD);

private:
  TypeCtor Val;
  TypeCtor Ref;
  std::deque<TypeCtor> Owned;
  std::unordered_map<unsigned, const TypeCtor *> FnCtors;
  std::unordered_map<const cfront::RecordDecl *, const TypeCtor *> Records;
};

/// An "interesting" const position (Section 4.4): a place in a defined
/// function's parameters or result where the C syntax can carry const.
struct InterestingPos {
  const cfront::FunctionDecl *Fn = nullptr;
  /// -1 for the result, otherwise the parameter index.
  int ParamIndex = -1;
  /// Pointer depth of the position (0 = pointee of the outer pointer).
  unsigned Depth = 0;
  QualVarId Var = InvalidQualVar;
  bool DeclaredConst = false;
};

/// A Section 4.2 library-conservatism constraint withheld in summary mode
/// (ConstInference::Options::SummaryMode): "Var <= not-const" that normal
/// whole-program inference would add because \p Fn is undefined. A TU
/// summary records these per imported symbol instead of adding them, and
/// the link step applies them only when the symbol stays unresolved across
/// every linked TU -- exactly reproducing whole-program behaviour, where a
/// function defined in another file gets no library pins (src/link,
/// docs/LINK.md).
struct DeferredPin {
  /// The undefined callee the pin belongs to.
  const cfront::FunctionDecl *Fn = nullptr;
  /// The variable to pin <= not-const when the symbol stays unresolved.
  QualVarId Var = InvalidQualVar;
  /// Diagnostic location (declaration for parameter pins, argument for
  /// escape pins).
  SourceLoc Loc;
  /// False: an undeclared-const parameter position of the import's
  /// interface. True: a ref level of an extra argument escaping into an
  /// unknown/variadic call.
  bool IsEscape = false;
};

/// Performs the l translation, memoizing shared structure (record field
/// environments, variable cell types, function interfaces).
class RefTranslator {
public:
  /// With \p DeferLibraryPins set (summary mode) the Section 4.2 library
  /// pins are recorded into deferredPins() instead of being added to the
  /// system, so the link step can drop them for symbols another TU defines.
  RefTranslator(ConstraintSystem &Sys, QualTypeFactory &Factory,
                ConstCtors &Ctors, QualifierId ConstQual,
                bool ConservativeLibraries = true,
                bool StructFieldsShared = true,
                bool DeferLibraryPins = false)
      : Sys(Sys), Factory(Factory), Ctors(Ctors), ConstQual(ConstQual),
        ConservativeLibraries(ConservativeLibraries),
        StructFieldsShared(StructFieldsShared),
        DeferLibraryPins(DeferLibraryPins) {}

  /// The l-value type of \p VD: kappa ref(rho). Memoized.
  QualType varLValueType(const cfront::VarDecl *VD);

  /// The shared l-value type of record field \p FD. Memoized per FieldDecl,
  /// so every instance of the record shares the field's qualifiers
  /// (Section 4.2's struct rule).
  QualType fieldLValueType(const cfront::FieldDecl *FD);

  /// The interface type of \p FD: fnN(param r-types..., result r-type).
  /// Memoized; interesting positions are recorded on first creation for
  /// *defined* functions, and the Section 4.2 library rule (undeclared
  /// non-const parameters are non-const) is applied for undefined ones.
  QualType functionInterfaceType(const cfront::FunctionDecl *FD);

  /// Translates a C type to an r-value qualified type with all-fresh
  /// variables (used for casts, which sever qualifier flow).
  QualType freshRValueType(cfront::CQualType T, SourceLoc Loc);

  const std::vector<InterestingPos> &interestingPositions() const {
    return Interesting;
  }

  /// Adds "kappa must not be const" upper bounds on every ref level of
  /// \p T (the conservative treatment of values escaping to unknown code).
  void forceNonConstRefs(QualType T, const ConstraintOrigin &Origin);

  /// True when library pins are being recorded rather than added (summary
  /// mode); ConstraintGen consults this at unknown-callee argument sites.
  bool deferringLibraryPins() const { return DeferLibraryPins; }

  /// Records deferred escape pins for every ref level of \p T: an extra
  /// argument at \p Loc escaping into a call of undefined \p Callee. The
  /// link step pins them only if \p Callee's symbol stays unresolved.
  void deferEscapePins(const cfront::FunctionDecl *Callee, QualType T,
                       SourceLoc Loc);

  /// The library pins withheld so far (summary mode only; stable order:
  /// recorded as interfaces and call sites are visited).
  const std::vector<DeferredPin> &deferredPins() const { return Deferred; }

private:
  ConstraintSystem &Sys;
  QualTypeFactory &Factory;
  ConstCtors &Ctors;
  QualifierId ConstQual;
  bool ConservativeLibraries;
  bool StructFieldsShared;
  bool DeferLibraryPins;
  std::vector<DeferredPin> Deferred;

  std::unordered_map<const cfront::VarDecl *, QualType> VarTypes;
  std::unordered_map<const cfront::FieldDecl *, QualType> FieldTypes;
  std::unordered_map<const cfront::FunctionDecl *, QualType> FnTypes;
  std::vector<InterestingPos> Interesting;

  struct LPair {
    QualExpr TopQual;
    QualType Contents;
  };

  /// The l' operation. When \p Collect is non-null, the top qualifiers of
  /// pointee levels are appended as interesting positions.
  LPair lprime(cfront::CQualType T, SourceLoc Loc, const std::string &Hint,
               std::vector<InterestingPos> *Collect, unsigned Depth);

  QualExpr freshQual(const std::string &Hint, SourceLoc Loc) {
    return QualExpr::makeVar(Sys.freshVar(Hint, Loc));
  }
};

} // namespace constinf
} // namespace quals

#endif // QUALS_CONSTINF_REFTYPES_H

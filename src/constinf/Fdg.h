//===- constinf/Fdg.h - Function dependence graph ----------------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definition 4: the function dependence graph has the program's functions
/// as vertices and an edge from f to g iff f contains an occurrence of the
/// *name* g (not just calls -- taking a function's address counts). The
/// polymorphic const inference analyzes the FDG's strongly-connected
/// components (the sets of mutually-recursive functions) in reverse
/// depth-first (topological) order: callees before callers.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_CONSTINF_FDG_H
#define QUALS_CONSTINF_FDG_H

#include "cfront/CAst.h"
#include "support/Scc.h"

#include <unordered_map>
#include <vector>

namespace quals {
namespace constinf {

/// The FDG plus its SCC decomposition.
struct Fdg {
  /// Node ids correspond to indices into Functions.
  std::vector<cfront::FunctionDecl *> Functions;
  std::unordered_map<const cfront::FunctionDecl *, unsigned> NodeOf;
  Digraph Graph{0};
  /// Components in reverse topological order (callees first).
  SccResult Sccs;
};

/// Builds the FDG of \p TU (name resolution must have run).
Fdg buildFdg(const cfront::TranslationUnit &TU);

} // namespace constinf
} // namespace quals

#endif // QUALS_CONSTINF_FDG_H

//===- examples/lambda_quals.cpp - The paper's worked examples -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Runs the paper's own example programs through the demonstration language:
//
//   * the Section 2.4 nonzero-smuggling program that motivates the sound
//     (invariant) ref subtyping rule -- statically rejected, and shown to
//     actually go wrong under the Figure 5 operational semantics;
//   * the Section 3.2 polymorphic id program -- accepted polymorphically,
//     rejected monomorphically;
//   * a const demonstration of the Assign' rule.
//
// Build: cmake --build build && ./build/examples/lambda_quals
//
//===----------------------------------------------------------------------===//

#include "lambda/Eval.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"

#include <cstdio>

using namespace quals;
using namespace quals::lambda;

namespace {

struct Pipeline {
  QualifierSet QS;
  QualifierId Const, Nonzero;
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  AstContext Ast;
  StringInterner Idents;
  STyContext STys;
  ConstraintSystem Sys{QS};
  QualTypeFactory Factory;
  LambdaTypeCtors Ctors;

  Pipeline() {
    Const = QS.add("const", Polarity::Positive);
    Nonzero = QS.add("nonzero", Polarity::Negative);
  }

  void checkAndRun(const char *Title, const std::string &Source,
                   bool Polymorphic) {
    std::printf("---- %s (%s) ----\n%s\n", Title,
                Polymorphic ? "polymorphic" : "monomorphic",
                Source.c_str());
    const Expr *Program =
        parseString(SM, "example.q", Source, QS, Ast, Idents, Diags);
    if (!Program) {
      std::printf("parse error:\n%s\n", Diags.renderAll().c_str());
      return;
    }
    QualInferOptions Options;
    Options.Polymorphic = Polymorphic;
    Options.ConstQual = Const;
    CheckResult Result = checkProgram(Program, QS, STys, Sys, Factory,
                                      Ctors, Diags, Options);
    if (!Result.StdTypeOk) {
      std::printf("standard type error:\n%s\n", Diags.renderAll().c_str());
      return;
    }
    std::printf("qualified type: %s\n",
                toString(QS, Result.Type, &Sys).c_str());
    if (Result.QualOk) {
      std::printf("qualifier check: ACCEPTED\n");
    } else {
      std::printf("qualifier check: REJECTED\n");
      for (const Violation &V : Result.Violations)
        std::printf("%s", Sys.explain(V).c_str());
    }

    Evaluator Ev(Ast, QS);
    EvalResult Run = Ev.evaluate(Program);
    switch (Run.Outcome) {
    case EvalOutcome::Value:
      std::printf("evaluation: value %s after %u steps\n\n",
                  toString(QS, Run.Result).c_str(), Run.Steps);
      break;
    case EvalOutcome::Stuck:
      std::printf("evaluation: STUCK after %u steps -- %s\n"
                  "(soundness, Corollary 1: only ill-typed programs get "
                  "stuck)\n\n",
                  Run.Steps, Run.StuckReason.c_str());
      break;
    case EvalOutcome::TimedOut:
      std::printf("evaluation: step limit reached\n\n");
      break;
    }
  }
};

} // namespace

int main() {
  std::printf("== the paper's lambda-language examples ==\n\n");

  // Section 2.4: if ref contents were subtyped covariantly, y's write of 0
  // would invalidate x's nonzero assertion through the alias. Our SubRef
  // equality rule rejects it, and the evaluator indeed gets stuck.
  {
    Pipeline P;
    P.checkAndRun("Section 2.4: aliased ref smuggles a zero",
                  "let x = ref {nonzero} 37 in\n"
                  " let y = x in\n"
                  "  let s = y := ({~nonzero} 0) in\n"
                  "   (!x)|{nonzero}\n"
                  "  ni ni ni",
                  /*Polymorphic=*/true);
  }

  // The well-typed variant runs to a value.
  {
    Pipeline P;
    P.checkAndRun("Section 2.4: the correct variant",
                  "let x = ref {nonzero} 37 in\n"
                  " let y = x in\n"
                  "  let s = y := ({nonzero} 12) in\n"
                  "   (!x)|{nonzero}\n"
                  "  ni ni ni",
                  /*Polymorphic=*/true);
  }

  // Section 3.2: one id at two qualifiers. Polymorphic: accepted.
  const char *IdProgram = "let id = fn x. x in\n"
                          " let y = id (ref 1) in\n"
                          "  let z = id ({const} ref 1) in\n"
                          "   y := 2\n"
                          "  ni ni ni";
  {
    Pipeline P;
    P.checkAndRun("Section 3.2: polymorphic id", IdProgram, true);
  }
  {
    Pipeline P;
    P.checkAndRun("Section 3.2: the same program monomorphically",
                  IdProgram, false);
  }

  // Assign': writing through a const ref is rejected statically.
  {
    Pipeline P;
    P.checkAndRun("Section 2.4: assignment through a const ref",
                  "let c = {const} ref 1 in c := 2 ni", true);
  }

  return 0;
}

//===- examples/binding_time.cpp - Binding-time analysis example -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Binding-time analysis (Section 1's partial-evaluation example) as an
// instance of the qualifier framework: values derived only from the static
// configuration can be computed at specialization time; anything touching
// the {dynamic} run-time input must wait. The well-formedness rule rejects
// a static value with dynamic parts.
//
// Build: cmake --build build && ./build/examples/binding_time
//
//===----------------------------------------------------------------------===//

#include "apps/BindingTime.h"

#include <cstdio>

using namespace quals;
using namespace quals::apps;

static const char *timeName(BindingTime T) {
  switch (T) {
  case BindingTime::Static:  return "static (specialize now)";
  case BindingTime::Dynamic: return "dynamic (residual code)";
  case BindingTime::Either:  return "unconstrained (default static)";
  }
  return "?";
}

static void analyze(const char *Title, const std::string &Source) {
  std::printf("---- %s ----\n%s\n", Title, Source.c_str());
  BindingTimeAnalysis BTA;
  if (BTA.analyze(Source)) {
    std::printf("result binding time: %s\n\n",
                timeName(BTA.resultTime()));
    return;
  }
  std::printf("REJECTED:\n%s\n", BTA.errors().c_str());
}

int main() {
  std::printf("== binding-time analysis example ==\n\n");

  // A specializer's dream: the configuration table is static even though a
  // dynamic input flows through the program.
  analyze("static configuration beside dynamic input",
          "let input = {dynamic} 0 in\n"
          " let table_size = 128 in\n"
          "  let slots = table_size\n"
          "  in slots ni ni ni");

  // The result mixes in the dynamic input: residual code.
  analyze("dynamic data infects its consumers",
          "let input = {dynamic} 0 in\n"
          " let shifted = (fn x. x) input in\n"
          "  shifted ni ni");

  // A polymorphic helper used at both binding times: the static use stays
  // static (the whole point of qualifier polymorphism, Section 3.2).
  analyze("one helper, both binding times",
          "let twice = fn f. fn x. f (f x) in\n"
          " let stat = ((twice (fn a. a)) 1) |{~dynamic} in\n"
          "  (twice (fn b. b)) ({dynamic} 2)\n"
          " ni ni");

  // Ill-formed: asserting a value static while handing it dynamic data.
  analyze("well-formedness: static function with a dynamic argument",
          "let f = fn x. x in\n"
          " let g = f |{~dynamic} in\n"
          "  g ({dynamic} 1)\n"
          " ni ni");

  return 0;
}

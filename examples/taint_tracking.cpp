//===- examples/taint_tracking.cpp - Taint tracking example ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Taint tracking as a qualifier system (the trust/security-flow systems of
// Section 5's related work): {tainted} marks untrusted sources; |{~tainted}
// guards sensitive sinks; inference reports every source-to-sink flow with
// the full constraint path.
//
// Build: cmake --build build && ./build/examples/taint_tracking
//
//===----------------------------------------------------------------------===//

#include "apps/Taint.h"

#include <cstdio>

using namespace quals;
using namespace quals::apps;

static void analyze(const char *Title, const std::string &Source) {
  std::printf("---- %s ----\n%s\n", Title, Source.c_str());
  TaintAnalysis TA;
  if (TA.analyze(Source)) {
    std::printf("no tainted data reaches a guarded sink.\n\n");
    return;
  }
  if (!TA.errors().empty())
    std::printf("%s", TA.errors().c_str());
  for (const std::string &Leak : TA.leaks())
    std::printf("LEAK:\n%s\n", Leak.c_str());
}

int main() {
  std::printf("== taint tracking example ==\n\n");

  analyze("clean pipeline",
          "let config = 42 in\n"
          " let render = fn x. x in\n"
          "  (render config) |{~tainted}\n"
          " ni ni");

  analyze("direct source-to-sink flow",
          "let user_input = {tainted} 7 in\n"
          " let query = (fn s. s) user_input in\n"
          "  (query) |{~tainted}\n"
          " ni ni");

  analyze("taint laundered through a mutable cell",
          "let buffer = ref 0 in\n"
          " let s = buffer := ({tainted} 13) in\n"
          "  ((!buffer) |{~tainted})\n"
          " ni ni");

  analyze("polymorphic sanit-aware helper keeps clean uses clean",
          "let id = fn x. x in\n"
          " let danger = id ({tainted} 1) in\n"
          "  (id 2) |{~tainted}\n"
          " ni ni");

  return 0;
}

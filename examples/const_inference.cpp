//===- examples/const_inference.cpp - Const inference on a C program -------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Runs the Section 4 const-inference system over a small C program built
// around the introduction's motivating example (strchr: takes a string,
// returns a pointer into it), comparing monomorphic and polymorphic
// results and printing the annotated prototypes.
//
// Build: cmake --build build && ./build/examples/const_inference
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"

#include <cstdio>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

static const char *Program = R"C(
/* A strchr clone: finds c in s, returning a pointer into s. The C library
 * declares it "char *strchr(const char *s, int c)" and deliberately casts
 * away const -- the paper's introduction explains why: C's type system is
 * monomorphic in qualifiers. */
char *find_char(char *s, int c) {
  while (*s && *s != c)
    s = s + 1;
  return s;
}

/* A reading client: could use a const string. */
int count_char(char *text, int c) {
  int n = 0;
  char *p = find_char(text, c);
  while (*p) {
    n = n + 1;
    p = find_char(p + 1, c);
  }
  return n;
}

/* A writing client: replaces the first occurrence. */
void replace_char(char *buf, int from, int to) {
  char *p = find_char(buf, from);
  if (*p)
    *p = to;
}

/* Plain helpers. */
int sum(const int *v, int n) {
  int i; int t = 0;
  for (i = 0; i < n; i++)
    t = t + v[i];
  return t;
}

void fill(int *v, int n, int x) {
  int i;
  for (i = 0; i < n; i++)
    v[i] = x;
}
)C";

static const char *className(PosClass C) {
  switch (C) {
  case PosClass::MustConst:    return "must be const";
  case PosClass::MustNonConst: return "must NOT be const";
  case PosClass::Either:       return "could be either";
  }
  return "?";
}

static void report(TranslationUnit &TU, DiagnosticEngine &Diags,
                   bool Polymorphic) {
  ConstInference::Options Opts;
  Opts.Polymorphic = Polymorphic;
  ConstInference Inf(TU, Diags, Opts);
  if (!Inf.run()) {
    std::printf("inference failed:\n%s\n", Diags.renderAll().c_str());
    return;
  }
  std::printf("-- %s inference --\n",
              Polymorphic ? "polymorphic" : "monomorphic");
  for (const InterestingPos &Pos : Inf.positions()) {
    std::string Where =
        Pos.ParamIndex < 0
            ? "result"
            : "param " + std::to_string(Pos.ParamIndex);
    std::printf("  %-14s %-8s depth %u: %-18s%s\n",
                std::string(Pos.Fn->getName()).c_str(), Where.c_str(),
                Pos.Depth, className(Inf.classify(Pos)),
                Pos.DeclaredConst ? "  [declared]" : "");
  }
  ConstCounts C = Inf.counts();
  std::printf("  counts: declared %u, possible-const %u, total %u\n\n",
              C.Declared, C.PossibleConst, C.Total);
  if (Polymorphic) {
    std::printf("annotated prototypes (const inserted wherever allowed):\n%s\n",
                Inf.renderAnnotatedPrototypes().c_str());
  }
}

int main() {
  std::printf("== const inference example ==\n\n%s\n", Program);

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  if (!parseCSource(SM, "example.c", Program, Ast, Types, Idents, Diags,
                    TU)) {
    std::printf("parse failed:\n%s\n", Diags.renderAll().c_str());
    return 1;
  }
  CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU)) {
    std::printf("sema failed:\n%s\n", Diags.renderAll().c_str());
    return 1;
  }

  report(TU, Diags, /*Polymorphic=*/false);
  report(TU, Diags, /*Polymorphic=*/true);

  std::printf("note how polymorphism lets find_char keep an unconstrained\n"
              "parameter even though replace_char writes through its "
              "result,\nwhile the monomorphic analysis pins count_char's "
              "text as well.\n");
  return 0;
}

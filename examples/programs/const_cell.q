# Assign' (Section 2.4): writing through a const ref is a qualifier error.
let c = {const} ref 1 in c := 2 ni

# The well-typed variant of nonzero_alias.q: the stored value is nonzero,
# so the assertion holds statically and dynamically.
let x = ref {nonzero} 37 in
 let y = x in
  let s = y := ({nonzero} 12) in
   (!x)|{nonzero}
  ni ni ni

/* The introduction's motivating example: strchr takes a const char *s and
 * returns a char * into s -- C's monomorphic qualifiers force the cast.
 * Run `qualcc --protos` on this file to see what inference recovers. */

char *find_char(char *s, int c) {
  while (*s && *s != c)
    s = s + 1;
  return s;
}

int count_char(char *text, int c) {
  int n = 0;
  char *p = find_char(text, c);
  while (*p) {
    n = n + 1;
    p = find_char(p + 1, c);
  }
  return n;
}

void replace_first(char *buf, int from, int to) {
  char *p = find_char(buf, from);
  if (*p)
    *p = to;
}

# Section 3.2: one identity function used at two different qualifiers.
# Accepted polymorphically; `qualcheck --mono` rejects it.
let id = fn x. x in
 let y = id (ref 1) in
  let z = id ({const} ref 1) in
   y := 2
  ni ni ni

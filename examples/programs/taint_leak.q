# Taint flows through a mutable cell into a guarded sink: rejected.
let buffer = ref 0 in
 let s = buffer := ({tainted} 13) in
  ((!buffer) |{~tainted})
 ni ni

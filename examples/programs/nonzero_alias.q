# Section 2.4: the unsound-ref-subtyping example. The alias y smuggles a
# zero into x's cell; the invariant (SubRef) rule rejects this statically,
# and running it (`qualcheck --run`) gets stuck on the assertion.
let x = ref {nonzero} 37 in
 let y = x in
  let s = y := ({~nonzero} 0) in
   (!x)|{nonzero}
  ni ni ni

# Section 2.3's sorted-lists scenario. The paper makes `sorted` a NEGATIVE
# qualifier: sorted data may be used as ordinary data (sorted tau <= tau),
# and the assertion |{sorted} demands sortedness. Sorting functions are
# trusted via annotation ("we do not attempt to verify that sorted is
# placed correctly -- we simply assume it is"); possibly-unsorted inputs
# are marked {~sorted}; merge asserts its input is sorted.
#
# Run:  qualcheck --quals sorted:neg examples/programs/sorted_merge.q
# This program is REJECTED: raw (possibly unsorted) data reaches merge.
let sort = fn xs. {sorted} 1 in
 let merge = fn a. (a |{sorted}) in
  let raw = {~sorted} 42 in
   let ok = merge (sort raw) in
    merge raw
   ni ni ni ni

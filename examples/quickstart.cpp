//===- examples/quickstart.cpp - The qualifier framework in 5 minutes ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Walks through the core API end to end:
//
//   1. register qualifiers (positive/negative) to form the lattice of
//      Definition 2 -- here the paper's Figure 2 lattice;
//   2. build qualified types over user-declared type constructors with
//      variances (Section 2.1);
//   3. pose subtype constraints, which decompose to atomic lattice
//      constraints (Figure 4a / Section 3.1);
//   4. solve in linear time and query least/greatest solutions;
//   5. diagnose an inconsistency with a provenance path;
//   6. generalize and instantiate a polymorphic scheme (Section 3.2).
//
// Build: cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"
#include "qual/QualType.h"
#include "qual/Subtype.h"
#include "qual/TypeScheme.h"

#include <cstdio>

using namespace quals;

int main() {
  std::printf("== libquals quickstart ==\n\n");

  // -- 1. The Figure 2 qualifier lattice ---------------------------------
  QualifierSet QS;
  QualifierId Const = QS.add("const", Polarity::Positive);
  QualifierId Dynamic = QS.add("dynamic", Polarity::Positive);
  QualifierId Nonzero = QS.add("nonzero", Polarity::Negative);
  (void)Dynamic;

  std::printf("lattice bottom: {%s}\n",
              QS.toString(QS.bottom()).c_str());
  std::printf("lattice top:    {%s}\n\n", QS.toString(QS.top()).c_str());

  // -- 2. Qualified types -------------------------------------------------
  // Constructors carry per-argument variance: ref is invariant in its
  // contents (the paper's sound SubRef rule), functions are contravariant
  // in the domain and covariant in the range (SubFun).
  TypeCtor Int("int", {});
  TypeCtor Ref("ref", {Variance::Invariant});
  TypeCtor Fn("->", {Variance::Contravariant, Variance::Covariant},
              PrintStyle::Infix);

  ConstraintSystem Sys(QS);
  QualTypeFactory Factory;

  // kappa_1 int and kappa_2 ref(kappa_3 int)
  QualType PlainInt =
      Factory.make(QualExpr::makeVar(Sys.freshVar("k1")), &Int);
  QualType Cell = Factory.make(
      QualExpr::makeVar(Sys.freshVar("k2")), &Ref,
      {Factory.make(QualExpr::makeVar(Sys.freshVar("k3")), &Int)});
  std::printf("types: %s and %s (variables print as their ids)\n\n",
              toString(QS, PlainInt).c_str(), toString(QS, Cell).c_str());

  // -- 3 & 4. Constraints and solving --------------------------------------
  // "The value stored in the cell is a dynamic input": annotate with a
  // lattice element and let subsumption carry it into the cell. (nonzero is
  // negative, so it is present at bottom and *may*-queries are the natural
  // ones for it.)
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Dynamic})),
             PlainInt.getQual(), {"annotation: the value is dynamic"});
  decomposeLeq(Sys, PlainInt, Cell.getArg(0),
               {"store: value flows into the cell contents"});
  Sys.solve();
  std::printf("cell contents must be dynamic: %s\n",
              Sys.mustHave(Cell.getArg(0).getQual().getVar(), Dynamic)
                  ? "yes"
                  : "no");
  std::printf("cell contents may be nonzero:  %s\n",
              Sys.mayHave(Cell.getArg(0).getQual().getVar(), Nonzero)
                  ? "yes"
                  : "no");
  std::printf("cell itself may be const:      %s\n\n",
              Sys.mayHave(Cell.getQual().getVar(), Const) ? "yes" : "no");

  // -- 5. Diagnosing an inconsistency --------------------------------------
  // Assert the cell is const, then try to make it assignable: the Assign'
  // rule's upper bound conflicts and the solver explains the path.
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             Cell.getQual(), {"declared const"});
  Sys.addLeq(Cell.getQual(), QualExpr::makeConst(QS.notQual(Const)),
             {"assignment left-hand side must not be const"});
  Sys.solve();
  for (const Violation &V : Sys.collectViolations())
    std::printf("violation detected:\n%s\n", Sys.explain(V).c_str());

  // -- 6. Qualifier polymorphism -------------------------------------------
  // The identity function's scheme: forall k. k int -> k int. Two uses at
  // different qualifiers coexist (the monomorphic C type system cannot do
  // this; Section 3.2).
  ConstraintSystem PolySys(QS);
  Watermark Mark = takeWatermark(PolySys);
  QualVarId K = PolySys.freshVar("k");
  QualType KInt = Factory.make(QualExpr::makeVar(K), &Int);
  QualType IdTy = Factory.make(
      QualExpr::makeVar(PolySys.freshVar("id")), &Fn, {KInt, KInt});
  QualScheme Scheme = QualScheme::generalize(PolySys, IdTy, Mark);
  std::printf("id's scheme binds %u qualifier variable(s)\n",
              Scheme.getNumBoundVars());

  QualType Use1 = Scheme.instantiate(PolySys, Factory);
  QualType Use2 = Scheme.instantiate(PolySys, Factory);
  PolySys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
                 Use1.getArg(0).getQual(), {"use 1 at const"});
  PolySys.addLeq(Use2.getArg(0).getQual(),
                 QualExpr::makeConst(QS.notQual(Const)),
                 {"use 2 at non-const"});
  std::printf("two instantiations at const and non-const: %s\n",
              PolySys.isSatisfiable() ? "consistent (polymorphism!)"
                                      : "inconsistent");
  return 0;
}

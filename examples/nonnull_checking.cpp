//===- examples/nonnull_checking.cpp - nonnull, two ways --------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Runs lclint-style nonnull checking over a C program twice:
//
//   * flow-INsensitively, as the paper's framework does out of the box
//     (Section 6 admits it "cannot express the analysis of lclint, in which
//     annotations on a given location may vary at each program point"), and
//   * flow-SENSITIVELY, using the paper's own Section 6 proposal: a fresh
//     type per program point with subtyping constraints between them,
//     strong updates dropping the old constraint.
//
// Build: cmake --build build && ./build/examples/nonnull_checking
//
//===----------------------------------------------------------------------===//

#include "apps/FlowNonNull.h"
#include "apps/NonNull.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"

#include <cstdio>

using namespace quals;
using namespace quals::apps;
using namespace quals::cfront;

static const char *Program = R"C(
struct node { int value; struct node *next; };

int sum_list(struct node *head, int limit) {
  int total = 0;
  struct node *cur = head;
  while (limit--) {
    total = total + cur->value;   /* next-field loads assumed non-null
                                     (lclint would demand an annotation) */
    cur = cur->next;
  }
  return total;
}

int reuse_pointer(int flag) {
  int slot;
  int *p = 0;                     /* starts null... */
  p = &slot;                      /* ...but is strongly updated */
  *p = flag;
  return *p;                      /* fine flow-sensitively */
}

int branch_trouble(int flag) {
  int slot;
  int *q = &slot;
  if (flag)
    q = 0;                        /* one arm nulls q */
  return *q;                      /* join may be null: both checkers warn */
}
)C";

int main() {
  std::printf("== nonnull checking example ==\n\n%s\n", Program);

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  if (!parseCSource(SM, "nonnull.c", Program, Ast, Types, Idents, Diags,
                    TU) ) {
    std::printf("parse failed:\n%s\n", Diags.renderAll().c_str());
    return 1;
  }
  CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU)) {
    std::printf("sema failed:\n%s\n", Diags.renderAll().c_str());
    return 1;
  }

  auto show = [&SM](const char *Title, const auto &Warnings) {
    std::printf("-- %s: %zu warning(s) --\n", Title, Warnings.size());
    for (const auto &W : Warnings) {
      PresumedLoc P = SM.getPresumedLoc(W.Loc);
      std::printf("  %s:%u: %s\n",
                  std::string(P.Filename).c_str(), P.Line,
                  W.Message.c_str());
    }
    std::printf("\n");
  };

  NonNullChecker Insensitive;
  Insensitive.analyze(TU);
  show("flow-insensitive (the paper's framework as-is)",
       Insensitive.warnings());

  FlowNonNullChecker Flow;
  Flow.analyze(TU);
  show("flow-sensitive (the Section 6 proposal, implemented)",
       Flow.warnings());

  std::printf("reuse_pointer is clean flow-sensitively because the strong\n"
              "update p = &slot drops the constraint from the null program\n"
              "point; the flow-insensitive checker cannot tell them "
              "apart.\n");
  return 0;
}

# Empty dependencies file for lambda_front_test.
# This may be replaced when dependencies are built.

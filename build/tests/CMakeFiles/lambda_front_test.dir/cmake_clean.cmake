file(REMOVE_RECURSE
  "CMakeFiles/lambda_front_test.dir/lambda_front_test.cpp.o"
  "CMakeFiles/lambda_front_test.dir/lambda_front_test.cpp.o.d"
  "lambda_front_test"
  "lambda_front_test.pdb"
  "lambda_front_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_front_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

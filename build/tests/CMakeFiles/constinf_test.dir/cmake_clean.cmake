file(REMOVE_RECURSE
  "CMakeFiles/constinf_test.dir/constinf_test.cpp.o"
  "CMakeFiles/constinf_test.dir/constinf_test.cpp.o.d"
  "constinf_test"
  "constinf_test.pdb"
  "constinf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constinf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

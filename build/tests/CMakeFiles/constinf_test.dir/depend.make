# Empty dependencies file for constinf_test.
# This may be replaced when dependencies are built.

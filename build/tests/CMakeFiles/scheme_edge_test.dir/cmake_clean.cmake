file(REMOVE_RECURSE
  "CMakeFiles/scheme_edge_test.dir/scheme_edge_test.cpp.o"
  "CMakeFiles/scheme_edge_test.dir/scheme_edge_test.cpp.o.d"
  "scheme_edge_test"
  "scheme_edge_test.pdb"
  "scheme_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scheme_edge_test.
# This may be replaced when dependencies are built.

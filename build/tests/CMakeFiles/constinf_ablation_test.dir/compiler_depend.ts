# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for constinf_ablation_test.

# Empty compiler generated dependencies file for constinf_ablation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/constinf_ablation_test.dir/constinf_ablation_test.cpp.o"
  "CMakeFiles/constinf_ablation_test.dir/constinf_ablation_test.cpp.o.d"
  "constinf_ablation_test"
  "constinf_ablation_test.pdb"
  "constinf_ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constinf_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for qualtype_test.
# This may be replaced when dependencies are built.

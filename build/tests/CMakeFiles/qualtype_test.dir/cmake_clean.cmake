file(REMOVE_RECURSE
  "CMakeFiles/qualtype_test.dir/qualtype_test.cpp.o"
  "CMakeFiles/qualtype_test.dir/qualtype_test.cpp.o.d"
  "qualtype_test"
  "qualtype_test.pdb"
  "qualtype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualtype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/constinf_extra_test.dir/constinf_extra_test.cpp.o"
  "CMakeFiles/constinf_extra_test.dir/constinf_extra_test.cpp.o.d"
  "constinf_extra_test"
  "constinf_extra_test.pdb"
  "constinf_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constinf_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for constinf_extra_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for flow_nonnull_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flow_nonnull_test.dir/flow_nonnull_test.cpp.o"
  "CMakeFiles/flow_nonnull_test.dir/flow_nonnull_test.cpp.o.d"
  "flow_nonnull_test"
  "flow_nonnull_test.pdb"
  "flow_nonnull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_nonnull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lambda_extra_test.dir/lambda_extra_test.cpp.o"
  "CMakeFiles/lambda_extra_test.dir/lambda_extra_test.cpp.o.d"
  "lambda_extra_test"
  "lambda_extra_test.pdb"
  "lambda_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

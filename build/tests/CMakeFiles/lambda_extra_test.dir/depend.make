# Empty dependencies file for lambda_extra_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cfront_edge_test.dir/cfront_edge_test.cpp.o"
  "CMakeFiles/cfront_edge_test.dir/cfront_edge_test.cpp.o.d"
  "cfront_edge_test"
  "cfront_edge_test.pdb"
  "cfront_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

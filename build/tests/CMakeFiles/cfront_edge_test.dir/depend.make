# Empty dependencies file for cfront_edge_test.
# This may be replaced when dependencies are built.

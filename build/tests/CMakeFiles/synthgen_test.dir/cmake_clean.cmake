file(REMOVE_RECURSE
  "CMakeFiles/synthgen_test.dir/synthgen_test.cpp.o"
  "CMakeFiles/synthgen_test.dir/synthgen_test.cpp.o.d"
  "synthgen_test"
  "synthgen_test.pdb"
  "synthgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

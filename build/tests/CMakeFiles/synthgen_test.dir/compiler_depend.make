# Empty compiler generated dependencies file for synthgen_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for lambda_eval_test.
# This may be replaced when dependencies are built.

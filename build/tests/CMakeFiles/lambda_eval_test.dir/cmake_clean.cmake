file(REMOVE_RECURSE
  "CMakeFiles/lambda_eval_test.dir/lambda_eval_test.cpp.o"
  "CMakeFiles/lambda_eval_test.dir/lambda_eval_test.cpp.o.d"
  "lambda_eval_test"
  "lambda_eval_test.pdb"
  "lambda_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

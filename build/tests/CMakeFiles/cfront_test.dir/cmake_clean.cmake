file(REMOVE_RECURSE
  "CMakeFiles/cfront_test.dir/cfront_test.cpp.o"
  "CMakeFiles/cfront_test.dir/cfront_test.cpp.o.d"
  "cfront_test"
  "cfront_test.pdb"
  "cfront_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfront_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

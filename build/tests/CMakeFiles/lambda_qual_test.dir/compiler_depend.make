# Empty compiler generated dependencies file for lambda_qual_test.
# This may be replaced when dependencies are built.

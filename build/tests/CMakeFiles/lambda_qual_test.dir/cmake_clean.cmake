file(REMOVE_RECURSE
  "CMakeFiles/lambda_qual_test.dir/lambda_qual_test.cpp.o"
  "CMakeFiles/lambda_qual_test.dir/lambda_qual_test.cpp.o.d"
  "lambda_qual_test"
  "lambda_qual_test.pdb"
  "lambda_qual_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_qual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lambda_soundness_test.dir/lambda_soundness_test.cpp.o"
  "CMakeFiles/lambda_soundness_test.dir/lambda_soundness_test.cpp.o.d"
  "lambda_soundness_test"
  "lambda_soundness_test.pdb"
  "lambda_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lambda_soundness_test.
# This may be replaced when dependencies are built.

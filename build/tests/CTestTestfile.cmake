# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/qualtype_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_front_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_qual_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_eval_test[1]_include.cmake")
include("/root/repo/build/tests/cfront_test[1]_include.cmake")
include("/root/repo/build/tests/constinf_test[1]_include.cmake")
include("/root/repo/build/tests/synthgen_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_soundness_test[1]_include.cmake")
include("/root/repo/build/tests/constinf_ablation_test[1]_include.cmake")
include("/root/repo/build/tests/flow_nonnull_test[1]_include.cmake")
include("/root/repo/build/tests/cfront_edge_test[1]_include.cmake")
include("/root/repo/build/tests/scheme_edge_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_extra_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/programs_test[1]_include.cmake")
include("/root/repo/build/tests/constinf_extra_test[1]_include.cmake")
include("/root/repo/build/tests/gen_property_test[1]_include.cmake")

file(REMOVE_RECURSE
  "libquals_core.a"
)

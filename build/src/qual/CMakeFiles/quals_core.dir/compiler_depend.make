# Empty compiler generated dependencies file for quals_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qual/ConstraintSystem.cpp" "src/qual/CMakeFiles/quals_core.dir/ConstraintSystem.cpp.o" "gcc" "src/qual/CMakeFiles/quals_core.dir/ConstraintSystem.cpp.o.d"
  "/root/repo/src/qual/QualType.cpp" "src/qual/CMakeFiles/quals_core.dir/QualType.cpp.o" "gcc" "src/qual/CMakeFiles/quals_core.dir/QualType.cpp.o.d"
  "/root/repo/src/qual/Qualifier.cpp" "src/qual/CMakeFiles/quals_core.dir/Qualifier.cpp.o" "gcc" "src/qual/CMakeFiles/quals_core.dir/Qualifier.cpp.o.d"
  "/root/repo/src/qual/Subtype.cpp" "src/qual/CMakeFiles/quals_core.dir/Subtype.cpp.o" "gcc" "src/qual/CMakeFiles/quals_core.dir/Subtype.cpp.o.d"
  "/root/repo/src/qual/TypeScheme.cpp" "src/qual/CMakeFiles/quals_core.dir/TypeScheme.cpp.o" "gcc" "src/qual/CMakeFiles/quals_core.dir/TypeScheme.cpp.o.d"
  "/root/repo/src/qual/WellFormed.cpp" "src/qual/CMakeFiles/quals_core.dir/WellFormed.cpp.o" "gcc" "src/qual/CMakeFiles/quals_core.dir/WellFormed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/quals_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/quals_core.dir/ConstraintSystem.cpp.o"
  "CMakeFiles/quals_core.dir/ConstraintSystem.cpp.o.d"
  "CMakeFiles/quals_core.dir/QualType.cpp.o"
  "CMakeFiles/quals_core.dir/QualType.cpp.o.d"
  "CMakeFiles/quals_core.dir/Qualifier.cpp.o"
  "CMakeFiles/quals_core.dir/Qualifier.cpp.o.d"
  "CMakeFiles/quals_core.dir/Subtype.cpp.o"
  "CMakeFiles/quals_core.dir/Subtype.cpp.o.d"
  "CMakeFiles/quals_core.dir/TypeScheme.cpp.o"
  "CMakeFiles/quals_core.dir/TypeScheme.cpp.o.d"
  "CMakeFiles/quals_core.dir/WellFormed.cpp.o"
  "CMakeFiles/quals_core.dir/WellFormed.cpp.o.d"
  "libquals_core.a"
  "libquals_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfront/CLexer.cpp" "src/cfront/CMakeFiles/quals_cfront.dir/CLexer.cpp.o" "gcc" "src/cfront/CMakeFiles/quals_cfront.dir/CLexer.cpp.o.d"
  "/root/repo/src/cfront/CParser.cpp" "src/cfront/CMakeFiles/quals_cfront.dir/CParser.cpp.o" "gcc" "src/cfront/CMakeFiles/quals_cfront.dir/CParser.cpp.o.d"
  "/root/repo/src/cfront/CSema.cpp" "src/cfront/CMakeFiles/quals_cfront.dir/CSema.cpp.o" "gcc" "src/cfront/CMakeFiles/quals_cfront.dir/CSema.cpp.o.d"
  "/root/repo/src/cfront/CType.cpp" "src/cfront/CMakeFiles/quals_cfront.dir/CType.cpp.o" "gcc" "src/cfront/CMakeFiles/quals_cfront.dir/CType.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/quals_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/quals_cfront.dir/CLexer.cpp.o"
  "CMakeFiles/quals_cfront.dir/CLexer.cpp.o.d"
  "CMakeFiles/quals_cfront.dir/CParser.cpp.o"
  "CMakeFiles/quals_cfront.dir/CParser.cpp.o.d"
  "CMakeFiles/quals_cfront.dir/CSema.cpp.o"
  "CMakeFiles/quals_cfront.dir/CSema.cpp.o.d"
  "CMakeFiles/quals_cfront.dir/CType.cpp.o"
  "CMakeFiles/quals_cfront.dir/CType.cpp.o.d"
  "libquals_cfront.a"
  "libquals_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

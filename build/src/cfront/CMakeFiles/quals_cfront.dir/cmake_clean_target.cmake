file(REMOVE_RECURSE
  "libquals_cfront.a"
)

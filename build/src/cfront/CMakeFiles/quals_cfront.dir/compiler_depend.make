# Empty compiler generated dependencies file for quals_cfront.
# This may be replaced when dependencies are built.

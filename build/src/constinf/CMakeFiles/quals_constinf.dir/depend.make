# Empty dependencies file for quals_constinf.
# This may be replaced when dependencies are built.

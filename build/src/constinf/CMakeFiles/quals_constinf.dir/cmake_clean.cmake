file(REMOVE_RECURSE
  "CMakeFiles/quals_constinf.dir/ConstInfer.cpp.o"
  "CMakeFiles/quals_constinf.dir/ConstInfer.cpp.o.d"
  "CMakeFiles/quals_constinf.dir/ConstraintGen.cpp.o"
  "CMakeFiles/quals_constinf.dir/ConstraintGen.cpp.o.d"
  "CMakeFiles/quals_constinf.dir/Fdg.cpp.o"
  "CMakeFiles/quals_constinf.dir/Fdg.cpp.o.d"
  "CMakeFiles/quals_constinf.dir/RefTypes.cpp.o"
  "CMakeFiles/quals_constinf.dir/RefTypes.cpp.o.d"
  "libquals_constinf.a"
  "libquals_constinf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_constinf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libquals_constinf.a"
)

file(REMOVE_RECURSE
  "libquals_support.a"
)

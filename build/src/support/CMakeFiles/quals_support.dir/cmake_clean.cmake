file(REMOVE_RECURSE
  "CMakeFiles/quals_support.dir/Allocator.cpp.o"
  "CMakeFiles/quals_support.dir/Allocator.cpp.o.d"
  "CMakeFiles/quals_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/quals_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/quals_support.dir/Scc.cpp.o"
  "CMakeFiles/quals_support.dir/Scc.cpp.o.d"
  "CMakeFiles/quals_support.dir/SourceManager.cpp.o"
  "CMakeFiles/quals_support.dir/SourceManager.cpp.o.d"
  "CMakeFiles/quals_support.dir/StringInterner.cpp.o"
  "CMakeFiles/quals_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/quals_support.dir/TextTable.cpp.o"
  "CMakeFiles/quals_support.dir/TextTable.cpp.o.d"
  "libquals_support.a"
  "libquals_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

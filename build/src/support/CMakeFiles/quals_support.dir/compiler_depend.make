# Empty compiler generated dependencies file for quals_support.
# This may be replaced when dependencies are built.

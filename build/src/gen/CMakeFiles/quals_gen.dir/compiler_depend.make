# Empty compiler generated dependencies file for quals_gen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libquals_gen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/quals_gen.dir/SynthGen.cpp.o"
  "CMakeFiles/quals_gen.dir/SynthGen.cpp.o.d"
  "libquals_gen.a"
  "libquals_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for quals_lambda.
# This may be replaced when dependencies are built.

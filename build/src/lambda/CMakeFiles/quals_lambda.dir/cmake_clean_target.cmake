file(REMOVE_RECURSE
  "libquals_lambda.a"
)

# Empty dependencies file for quals_lambda.
# This may be replaced when dependencies are built.

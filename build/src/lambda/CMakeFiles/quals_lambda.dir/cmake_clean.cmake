file(REMOVE_RECURSE
  "CMakeFiles/quals_lambda.dir/Ast.cpp.o"
  "CMakeFiles/quals_lambda.dir/Ast.cpp.o.d"
  "CMakeFiles/quals_lambda.dir/Eval.cpp.o"
  "CMakeFiles/quals_lambda.dir/Eval.cpp.o.d"
  "CMakeFiles/quals_lambda.dir/Lexer.cpp.o"
  "CMakeFiles/quals_lambda.dir/Lexer.cpp.o.d"
  "CMakeFiles/quals_lambda.dir/Parser.cpp.o"
  "CMakeFiles/quals_lambda.dir/Parser.cpp.o.d"
  "CMakeFiles/quals_lambda.dir/QualInfer.cpp.o"
  "CMakeFiles/quals_lambda.dir/QualInfer.cpp.o.d"
  "CMakeFiles/quals_lambda.dir/TypeCheck.cpp.o"
  "CMakeFiles/quals_lambda.dir/TypeCheck.cpp.o.d"
  "libquals_lambda.a"
  "libquals_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lambda/Ast.cpp" "src/lambda/CMakeFiles/quals_lambda.dir/Ast.cpp.o" "gcc" "src/lambda/CMakeFiles/quals_lambda.dir/Ast.cpp.o.d"
  "/root/repo/src/lambda/Eval.cpp" "src/lambda/CMakeFiles/quals_lambda.dir/Eval.cpp.o" "gcc" "src/lambda/CMakeFiles/quals_lambda.dir/Eval.cpp.o.d"
  "/root/repo/src/lambda/Lexer.cpp" "src/lambda/CMakeFiles/quals_lambda.dir/Lexer.cpp.o" "gcc" "src/lambda/CMakeFiles/quals_lambda.dir/Lexer.cpp.o.d"
  "/root/repo/src/lambda/Parser.cpp" "src/lambda/CMakeFiles/quals_lambda.dir/Parser.cpp.o" "gcc" "src/lambda/CMakeFiles/quals_lambda.dir/Parser.cpp.o.d"
  "/root/repo/src/lambda/QualInfer.cpp" "src/lambda/CMakeFiles/quals_lambda.dir/QualInfer.cpp.o" "gcc" "src/lambda/CMakeFiles/quals_lambda.dir/QualInfer.cpp.o.d"
  "/root/repo/src/lambda/TypeCheck.cpp" "src/lambda/CMakeFiles/quals_lambda.dir/TypeCheck.cpp.o" "gcc" "src/lambda/CMakeFiles/quals_lambda.dir/TypeCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qual/CMakeFiles/quals_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/quals_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/BindingTime.cpp" "src/apps/CMakeFiles/quals_apps.dir/BindingTime.cpp.o" "gcc" "src/apps/CMakeFiles/quals_apps.dir/BindingTime.cpp.o.d"
  "/root/repo/src/apps/FlowNonNull.cpp" "src/apps/CMakeFiles/quals_apps.dir/FlowNonNull.cpp.o" "gcc" "src/apps/CMakeFiles/quals_apps.dir/FlowNonNull.cpp.o.d"
  "/root/repo/src/apps/NonNull.cpp" "src/apps/CMakeFiles/quals_apps.dir/NonNull.cpp.o" "gcc" "src/apps/CMakeFiles/quals_apps.dir/NonNull.cpp.o.d"
  "/root/repo/src/apps/Taint.cpp" "src/apps/CMakeFiles/quals_apps.dir/Taint.cpp.o" "gcc" "src/apps/CMakeFiles/quals_apps.dir/Taint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lambda/CMakeFiles/quals_lambda.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/quals_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/qual/CMakeFiles/quals_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/quals_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

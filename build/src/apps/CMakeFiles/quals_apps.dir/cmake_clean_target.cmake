file(REMOVE_RECURSE
  "libquals_apps.a"
)

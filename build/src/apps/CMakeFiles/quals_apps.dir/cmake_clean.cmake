file(REMOVE_RECURSE
  "CMakeFiles/quals_apps.dir/BindingTime.cpp.o"
  "CMakeFiles/quals_apps.dir/BindingTime.cpp.o.d"
  "CMakeFiles/quals_apps.dir/FlowNonNull.cpp.o"
  "CMakeFiles/quals_apps.dir/FlowNonNull.cpp.o.d"
  "CMakeFiles/quals_apps.dir/NonNull.cpp.o"
  "CMakeFiles/quals_apps.dir/NonNull.cpp.o.d"
  "CMakeFiles/quals_apps.dir/Taint.cpp.o"
  "CMakeFiles/quals_apps.dir/Taint.cpp.o.d"
  "libquals_apps.a"
  "libquals_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quals_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for quals_apps.
# This may be replaced when dependencies are built.

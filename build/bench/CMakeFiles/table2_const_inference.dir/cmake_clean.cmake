file(REMOVE_RECURSE
  "CMakeFiles/table2_const_inference.dir/table2_const_inference.cpp.o"
  "CMakeFiles/table2_const_inference.dir/table2_const_inference.cpp.o.d"
  "table2_const_inference"
  "table2_const_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_const_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

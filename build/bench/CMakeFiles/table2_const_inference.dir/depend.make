# Empty dependencies file for table2_const_inference.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for scaling_ablation.
# This may be replaced when dependencies are built.

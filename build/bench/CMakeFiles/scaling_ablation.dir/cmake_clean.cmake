file(REMOVE_RECURSE
  "CMakeFiles/scaling_ablation.dir/scaling_ablation.cpp.o"
  "CMakeFiles/scaling_ablation.dir/scaling_ablation.cpp.o.d"
  "scaling_ablation"
  "scaling_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

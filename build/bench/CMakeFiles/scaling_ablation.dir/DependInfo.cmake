
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/scaling_ablation.cpp" "bench/CMakeFiles/scaling_ablation.dir/scaling_ablation.cpp.o" "gcc" "bench/CMakeFiles/scaling_ablation.dir/scaling_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/quals_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/constinf/CMakeFiles/quals_constinf.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/quals_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/qual/CMakeFiles/quals_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/quals_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

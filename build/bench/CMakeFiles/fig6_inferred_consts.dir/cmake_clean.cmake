file(REMOVE_RECURSE
  "CMakeFiles/fig6_inferred_consts.dir/fig6_inferred_consts.cpp.o"
  "CMakeFiles/fig6_inferred_consts.dir/fig6_inferred_consts.cpp.o.d"
  "fig6_inferred_consts"
  "fig6_inferred_consts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_inferred_consts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

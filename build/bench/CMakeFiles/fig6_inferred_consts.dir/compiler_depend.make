# Empty compiler generated dependencies file for fig6_inferred_consts.
# This may be replaced when dependencies are built.

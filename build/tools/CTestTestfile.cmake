# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.qualcheck.id_poly "/root/repo/build/tools/qualcheck" "/root/repo/examples/programs/id_poly.q")
set_tests_properties(cli.qualcheck.id_poly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualcheck.id_poly_mono_rejected "/root/repo/build/tools/qualcheck" "--mono" "/root/repo/examples/programs/id_poly.q")
set_tests_properties(cli.qualcheck.id_poly_mono_rejected PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualcheck.nonzero_alias_rejected "/root/repo/build/tools/qualcheck" "--run" "/root/repo/examples/programs/nonzero_alias.q")
set_tests_properties(cli.qualcheck.nonzero_alias_rejected PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualcheck.nonzero_ok_runs "/root/repo/build/tools/qualcheck" "--run" "/root/repo/examples/programs/nonzero_ok.q")
set_tests_properties(cli.qualcheck.nonzero_ok_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualcc.strchr_demo "/root/repo/build/tools/qualcc" "--protos" "--positions" "/root/repo/examples/programs/strchr_demo.c")
set_tests_properties(cli.qualcc.strchr_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualcc.strchr_demo_mono "/root/repo/build/tools/qualcc" "--mono" "/root/repo/examples/programs/strchr_demo.c")
set_tests_properties(cli.qualcc.strchr_demo_mono PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualgen.deterministic "/root/repo/build/tools/qualgen" "--lines" "1200" "--seed" "5")
set_tests_properties(cli.qualgen.deterministic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.qualcheck.sorted_merge_rejected "/root/repo/build/tools/qualcheck" "--quals" "sorted:neg" "/root/repo/examples/programs/sorted_merge.q")
set_tests_properties(cli.qualcheck.sorted_merge_rejected PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/qualcheck.dir/qualcheck.cpp.o"
  "CMakeFiles/qualcheck.dir/qualcheck.cpp.o.d"
  "qualcheck"
  "qualcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for qualcheck.
# This may be replaced when dependencies are built.

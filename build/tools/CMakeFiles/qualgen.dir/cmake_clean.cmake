file(REMOVE_RECURSE
  "CMakeFiles/qualgen.dir/qualgen.cpp.o"
  "CMakeFiles/qualgen.dir/qualgen.cpp.o.d"
  "qualgen"
  "qualgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for qualgen.
# This may be replaced when dependencies are built.

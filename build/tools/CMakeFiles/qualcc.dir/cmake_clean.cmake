file(REMOVE_RECURSE
  "CMakeFiles/qualcc.dir/qualcc.cpp.o"
  "CMakeFiles/qualcc.dir/qualcc.cpp.o.d"
  "qualcc"
  "qualcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

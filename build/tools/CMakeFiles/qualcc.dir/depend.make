# Empty dependencies file for qualcc.
# This may be replaced when dependencies are built.

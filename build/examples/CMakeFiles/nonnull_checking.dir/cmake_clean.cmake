file(REMOVE_RECURSE
  "CMakeFiles/nonnull_checking.dir/nonnull_checking.cpp.o"
  "CMakeFiles/nonnull_checking.dir/nonnull_checking.cpp.o.d"
  "nonnull_checking"
  "nonnull_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonnull_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for nonnull_checking.
# This may be replaced when dependencies are built.

# Empty dependencies file for nonnull_checking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/binding_time.dir/binding_time.cpp.o"
  "CMakeFiles/binding_time.dir/binding_time.cpp.o.d"
  "binding_time"
  "binding_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binding_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

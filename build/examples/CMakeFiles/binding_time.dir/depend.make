# Empty dependencies file for binding_time.
# This may be replaced when dependencies are built.

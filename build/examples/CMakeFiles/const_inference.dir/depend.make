# Empty dependencies file for const_inference.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/const_inference.dir/const_inference.cpp.o"
  "CMakeFiles/const_inference.dir/const_inference.cpp.o.d"
  "const_inference"
  "const_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/const_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lambda_quals.dir/lambda_quals.cpp.o"
  "CMakeFiles/lambda_quals.dir/lambda_quals.cpp.o.d"
  "lambda_quals"
  "lambda_quals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_quals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

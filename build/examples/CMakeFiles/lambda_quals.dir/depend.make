# Empty dependencies file for lambda_quals.
# This may be replaced when dependencies are built.

//===- fuzz/FuzzTargets.h - Shared fuzz entry points -----------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three fuzzable pipelines, factored out of the libFuzzer mains so the
/// regression corpus can also be replayed by an ordinary gtest in normal
/// (non-fuzzer) builds -- see tests/fuzz_replay_test.cpp and the ctest
/// `fuzz.replay_corpus` entry. Each handler runs one hostile input through a
/// fully isolated analysis context under deliberately tiny resource budgets
/// (support/Limits.h) and must return without crashing: every outcome --
/// accept, diagnose, or `fatal: resource limit` bailout -- is a pass; only
/// a signal (assert, stack overflow, OOM, UB trapped by a sanitizer) is a
/// finding. See docs/ROBUSTNESS.md.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_FUZZ_FUZZTARGETS_H
#define QUALS_FUZZ_FUZZTARGETS_H

#include <cstddef>
#include <cstdint>

namespace quals {
namespace fuzz {

/// Treats \p Data as C source: lex, parse, sema, and whole-program const
/// inference (the full qualcc pipeline). Always returns 0.
int runCFront(const uint8_t *Data, size_t Size);

/// Treats \p Data as lambda-language source: lex, parse, standard HM type
/// inference, and qualifier inference (the full qualcheck pipeline).
/// Always returns 0.
int runLambda(const uint8_t *Data, size_t Size);

/// Treats \p Data as an operation stream driving the constraint solver
/// directly: each byte (plus operands) makes variables, adds (masked)
/// constraints, or solves/queries, exercising incremental re-solves and
/// cycle collapsing on adversarial graphs. Always returns 0.
int runSolver(const uint8_t *Data, size_t Size);

/// Treats \p Data as one qualsd request line: JSON parsing under tight
/// budgets, request validation, and -- when anything parsed -- the
/// serialize/re-parse round-trip of every decoded string (the property the
/// server's byte-identical replies rest on). Always returns 0; a round-trip
/// mismatch aborts, which the fuzzer reports as a crash. Never runs an
/// analysis: hostile *sources* are the cfront/lambda targets' job.
int runProtocol(const uint8_t *Data, size_t Size);

/// Treats \p Data as a serialized constraint summary (.qsum): the hardened
/// deserializer must either reject it with a diagnostic or yield a summary
/// that survives linking (quallink's load path). Accepted summaries are
/// also round-tripped: serialize(deserialize(x)) must reach a fixed point,
/// the invariant qualcc's content-addressed summary store rests on. Always
/// returns 0; a missing diagnostic or an unstable round-trip aborts.
int runSummary(const uint8_t *Data, size_t Size);

} // namespace fuzz
} // namespace quals

#endif // QUALS_FUZZ_FUZZTARGETS_H

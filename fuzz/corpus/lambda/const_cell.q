let c = {const} ref 1 in c := 2 ni

let x = fn y.

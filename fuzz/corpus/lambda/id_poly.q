let id = fn x. x in
 let y = id (ref 1) in
  let z = id ({const} ref 1) in
   y := 2
  ni ni ni

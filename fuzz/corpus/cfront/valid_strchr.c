char *find_char(char *s, int c) {
  while (*s && *s != c)
    s = s + 1;
  return s;
}

int count_char(char *text, int c) {
  int n = 0;
  char *p = find_char(text, c);
  while (*p) {
    n = n + 1;
    p = find_char(p + 1, c);
  }
  return n;
}

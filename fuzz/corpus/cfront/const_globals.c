const int limit = 10;
int counter = 0;

void bump(int *p, int delta) { *p = *p + delta; }

int next(void) {
  bump(&counter, 1);
  if (counter > limit)
    counter = 0;
  return counter;
}

int f(int x) { return x +

//===- fuzz/fuzz_solver.cpp - libFuzzer main for the constraint solver ----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Drives ConstraintSystem through an op-stream interpreter (FuzzTargets.cpp)
// rather than through a front end, so the cycle-collapsing and incremental
// re-solve machinery sees adversarial graphs no realistic program produces.
//
// Build with -DQUALS_ENABLE_FUZZERS=ON (clang only), then:
//
//   build/fuzz/fuzz_solver fuzz/corpus/solver -max_total_time=60
//
// Crashing inputs belong in fuzz/corpus/solver/ so fuzz.replay_corpus
// guards the fix; see docs/ROBUSTNESS.md.
//
//===----------------------------------------------------------------------===//

#include "FuzzTargets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  return quals::fuzz::runSolver(Data, Size);
}

//===- fuzz/fuzz_summary.cpp - libFuzzer main for .qsum deserialization ---===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Feeds raw bytes to the constraint-summary deserializer (FuzzTargets.cpp):
// the quallink load path that consumes whatever qualcc --emit-summary wrote
// to disk, possibly truncated, bit-rotted, or attacker-supplied. Accepted
// inputs are additionally round-tripped through the serializer and linked.
//
// Build with -DQUALS_ENABLE_FUZZERS=ON (clang only), then:
//
//   build/fuzz/fuzz_summary fuzz/corpus/summary -max_total_time=60
//
// Crashing inputs belong in fuzz/corpus/summary/ so fuzz.replay_corpus
// guards the fix; see docs/ROBUSTNESS.md.
//
//===----------------------------------------------------------------------===//

#include "FuzzTargets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  return quals::fuzz::runSummary(Data, Size);
}

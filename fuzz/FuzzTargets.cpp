//===- fuzz/FuzzTargets.cpp - Shared fuzz entry points --------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "FuzzTargets.h"

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"
#include "link/Linker.h"
#include "link/Qsum.h"
#include "qual/ConstraintSystem.h"
#include "serve/Protocol.h"
#include "support/Limits.h"

#include <cstdlib>
#include <string>
#include <vector>

using namespace quals;

/// Copies the raw input into a string, tolerating the (nullptr, 0) empty
/// input libFuzzer and the replay test both produce.
static std::string toSource(const uint8_t *Data, size_t Size) {
  return Size ? std::string(reinterpret_cast<const char *>(Data), Size)
              : std::string();
}

/// Budgets an order of magnitude below the CLI defaults: a fuzzer finds
/// pathological inputs quickly, and a tight budget keeps each execution
/// fast (so coverage grows) while still proving the bailout paths work.
static Limits fuzzLimits() {
  Limits L;
  L.MaxErrors = 16;
  L.MaxRecursionDepth = 64;
  L.MaxConstraints = 1u << 15;
  L.MaxArenaBytes = 32u << 20;
  return L;
}

int fuzz::runCFront(const uint8_t *Data, size_t Size) {
  std::string Source = toSource(Data, Size);

  SourceManager SM;
  DiagnosticEngine Diags(SM, fuzzLimits());
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;
  if (!cfront::parseCSource(SM, "<fuzz>", std::move(Source), Ast, Types,
                            Idents, Diags, TU))
    return 0;
  cfront::CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU))
    return 0;

  constinf::ConstInference::Options InfOpts;
  InfOpts.Polymorphic = true;
  constinf::ConstInference Inf(TU, Diags, InfOpts);
  (void)Inf.run();
  return 0;
}

int fuzz::runLambda(const uint8_t *Data, size_t Size) {
  std::string Source = toSource(Data, Size);

  QualifierSet QS;
  QualifierId ConstQual = QS.add("const", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  QS.add("tainted", Polarity::Positive);

  SourceManager SM;
  DiagnosticEngine Diags(SM, fuzzLimits());
  lambda::AstContext Ast;
  StringInterner Idents;
  const lambda::Expr *Program =
      lambda::parseString(SM, "<fuzz>", std::move(Source), QS, Ast, Idents,
                          Diags);
  if (!Program)
    return 0;

  lambda::STyContext STys;
  SolverConfig SysConfig;
  SysConfig.MaxConstraints = Diags.limits().MaxConstraints;
  ConstraintSystem Sys(QS, SysConfig);
  QualTypeFactory Factory;
  lambda::LambdaTypeCtors Ctors;
  lambda::QualInferOptions Options;
  Options.ConstQual = ConstQual;
  (void)lambda::checkProgram(Program, QS, STys, Sys, Factory, Ctors, Diags,
                             Options);
  return 0;
}

namespace {

/// Little-endian byte cursor over the fuzz input.
class ByteStream {
public:
  ByteStream(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool done() const { return Pos >= Size; }

  uint8_t next() { return done() ? 0 : Data[Pos++]; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace

int fuzz::runSolver(const uint8_t *Data, size_t Size) {
  QualifierSet QS;
  QS.add("const", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  QS.add("tainted", Polarity::Positive);
  QS.add("dynamic", Polarity::Positive);

  SolverConfig Config;
  Config.MaxConstraints = 1u << 15;
  // Stress the rebuild machinery: fire a collapse as soon as the edge and
  // pressure floors allow instead of waiting for CLI-scale graphs.
  Config.CollapseMinNewEdges = 4;
  Config.CollapsePressureFactor = 1;
  ConstraintSystem Sys(QS, Config);

  // Interpret the input as an op stream. Caps keep one execution to
  // milliseconds: at most 256 variables (operand bytes address them
  // directly) and 4096 ops regardless of input size.
  constexpr unsigned MaxVars = 256;
  constexpr unsigned MaxOps = 4096;

  ByteStream In(Data, Size);
  unsigned NumVars = 0;
  bool Solved = false;
  auto var = [&](uint8_t B) { return QualVarId(B % NumVars); };
  auto latticeConst = [&](uint8_t B) {
    return QualExpr::makeConst(LatticeValue(B & QS.usedBits()));
  };

  for (unsigned Op = 0; Op != MaxOps && !In.done(); ++Op) {
    switch (In.next() % 8) {
    case 0:
      if (NumVars < MaxVars) {
        Sys.freshVar("k" + std::to_string(NumVars));
        ++NumVars;
      }
      break;
    case 1: // var <= var
      if (NumVars) {
        QualVarId A = var(In.next()), B = var(In.next());
        Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"fuzz"});
        Solved = false;
      }
      break;
    case 2: // const <= var (lower bound)
      if (NumVars) {
        QualExpr C = latticeConst(In.next());
        Sys.addLeq(C, QualExpr::makeVar(var(In.next())), {"fuzz"});
        Solved = false;
      }
      break;
    case 3: // var <= const (upper bound)
      if (NumVars) {
        QualVarId A = var(In.next());
        Sys.addLeq(QualExpr::makeVar(A), latticeConst(In.next()), {"fuzz"});
        Solved = false;
      }
      break;
    case 4: // masked var <= var (never collapsible)
      if (NumVars) {
        QualVarId A = var(In.next()), B = var(In.next());
        uint64_t Mask = In.next() & QS.usedBits();
        Sys.addLeqMasked(QualExpr::makeVar(A), QualExpr::makeVar(B), Mask,
                         {"fuzz"});
        Solved = false;
      }
      break;
    case 5: // var = var (two <=, cycle seed)
      if (NumVars) {
        QualVarId A = var(In.next()), B = var(In.next());
        Sys.addEq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"fuzz"});
        Solved = false;
      }
      break;
    case 6: // incremental solve
      (void)Sys.solve();
      Solved = true;
      break;
    case 7: // solved-state queries
      if (Solved && NumVars) {
        QualVarId A = var(In.next());
        (void)Sys.lower(A);
        (void)Sys.upper(A);
        (void)Sys.mustHave(A, 0);
        (void)Sys.mayHave(A, 1);
      }
      break;
    }
  }

  // Final satisfiability pass plus a full violation scan with provenance
  // rendering, the deepest read-only path through the solver.
  (void)Sys.isSatisfiable();
  for (const Violation &V : Sys.collectViolations())
    (void)Sys.explain(V);
  (void)Sys.getStats();
  return 0;
}

namespace {

/// Asserts the decode -> encode -> decode round-trip for one decoded
/// string: appendJsonString must emit a literal the parser accepts and
/// decodes to the same bytes. abort() (not a gtest macro) so the property
/// holds identically under libFuzzer and the replay test.
void checkStringRoundTrip(const std::string &Decoded,
                          const serve::ProtocolLimits &Lim) {
  if (Decoded.size() > Lim.MaxStringBytes)
    return; // Re-parsing would trip the budget, not the codec.
  std::string Encoded;
  serve::appendJsonString(Encoded, Decoded);
  serve::JsonValue Back;
  std::string Error;
  if (!serve::parseJson(Encoded, Lim, Back, Error) ||
      Back.kind() != serve::JsonValue::Kind::String ||
      Back.asString() != Decoded)
    std::abort();
}

/// Walks every string in a parsed document (values and object keys) and
/// round-trips it.
void checkValueStrings(const serve::JsonValue &V,
                       const serve::ProtocolLimits &Lim) {
  if (V.kind() == serve::JsonValue::Kind::String)
    checkStringRoundTrip(V.asString(), Lim);
  for (const serve::JsonValue &E : V.elements())
    checkValueStrings(E, Lim);
  for (const auto &M : V.members()) {
    checkStringRoundTrip(M.first, Lim);
    checkValueStrings(M.second, Lim);
  }
}

} // namespace

int fuzz::runProtocol(const uint8_t *Data, size_t Size) {
  std::string Line = toSource(Data, Size);

  // Budgets an order of magnitude below the server defaults, same
  // rationale as fuzzLimits(): tight budgets keep executions fast and
  // prove the bailout paths.
  serve::ProtocolLimits Lim;
  Lim.MaxRequestBytes = 64u << 10;
  Lim.MaxDepth = 32;
  Lim.MaxStringBytes = 16u << 10;

  serve::JsonValue Doc;
  std::string Error;
  if (parseJson(Line, Lim, Doc, Error))
    checkValueStrings(Doc, Lim);
  else if (Error.empty())
    std::abort(); // Failures must always carry a diagnostic.

  serve::Request Req;
  Error.clear();
  if (!parseRequest(Line, Lim, Req, Error) && Error.empty())
    std::abort();
  return 0;
}

int fuzz::runSummary(const uint8_t *Data, size_t Size) {
  link::TuSummary S;
  std::string Error;
  if (!link::deserializeSummary(Data, Size, S, Error)) {
    if (Error.empty())
      std::abort(); // Rejections must always carry a diagnostic.
    return 0;
  }

  // Accepted bytes must round-trip to a serializer fixed point: one decode
  // and re-encode is canonical, so encoding it again reproduces it byte for
  // byte (the invariant behind content-addressed summary reuse).
  std::string Once = link::serializeSummary(S);
  link::TuSummary S2;
  if (!link::deserializeSummary(
          reinterpret_cast<const uint8_t *>(Once.data()), Once.size(), S2,
          Error))
    std::abort();
  if (link::serializeSummary(S2) != Once)
    std::abort();

  // The summary also has to survive quallink's merge/unify/solve, alone
  // and linked against a copy of itself (self-links exercise the duplicate
  // and unification paths). Tight budget, same rationale as fuzzLimits().
  link::LinkOptions Opts;
  Opts.MaxConstraints = 1u << 15;
  std::vector<link::TuSummary> One(1, S);
  (void)link::linkSummaries(One, Opts);
  std::vector<link::TuSummary> Two(2, S);
  Two[1].ContentHash ^= 1; // Defeat dedup so the symbols actually unify.
  (void)link::linkSummaries(Two, Opts);
  return 0;
}

//===- fuzz/fuzz_protocol.cpp - libFuzzer main for the qualsd protocol ----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Build with -DQUALS_ENABLE_FUZZERS=ON (clang only), then:
//
//   build/fuzz/fuzz_protocol fuzz/corpus/protocol -max_total_time=60
//
// Crashing inputs belong in fuzz/corpus/protocol/ so fuzz.replay_corpus
// guards the fix; see docs/ROBUSTNESS.md and docs/SERVER.md.
//
//===----------------------------------------------------------------------===//

#include "FuzzTargets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  return quals::fuzz::runProtocol(Data, Size);
}

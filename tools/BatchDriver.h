//===- tools/BatchDriver.h - Ordered parallel batch analysis ----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus layer shared by qualcc, qualcheck, and qualgen: the paper's
/// evaluation (Section 6, Tables 1/2) is a corpus workload -- const
/// inference over six whole GNU packages -- and this driver turns the
/// single-file pipelines into corpus pipelines without changing a byte of
/// their per-file output.
///
/// The contract:
///
/// \li **Inputs.** A list of files assembled from positional arguments and
///     @response-file expansions (expandArg()).
/// \li **Isolation.** The per-file callback builds a fully isolated context
///     (its own BumpPtrAllocator-backed AST contexts, SourceManager,
///     DiagnosticEngine, StringInterner, ConstraintSystem) and writes only
///     into its FileResult buffers -- never directly to stdout/stderr. The
///     only process-wide state a callback may touch is the thread-safe
///     observability layer (support/Trace.h, support/Metrics.h).
/// \li **Determinism.** Buffered per-file output is flushed strictly in
///     input order, so `-j8` stdout/stderr is byte-identical to `-j1`
///     (tools/smoke_batch.sh asserts this over the example corpus).
/// \li **Exit status.** The batch exit code is the maximum per-file exit
///     code, so any failing file fails the run.
/// \li **Observability.** Each file runs under a "file:<path>" trace span
///     on its worker's dense thread track, and the driver publishes
///     batch.files / batch.failed counters, a batch.jobs gauge, and a
///     batch.wall timer. Per-file phase.* / solver.* metrics aggregate into
///     corpus totals through the global registry's atomic adds.
///
/// See docs/PARALLEL.md for the threading model.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_TOOLS_BATCHDRIVER_H
#define QUALS_TOOLS_BATCHDRIVER_H

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace quals {
namespace batch {

/// One file's buffered analysis outcome. Callbacks append to Out/Err
/// (appendf() below) instead of printing, so the driver can replay the
/// streams in input order.
struct FileResult {
  std::string Out; ///< Buffered stdout.
  std::string Err; ///< Buffered stderr.
  int ExitCode = 0;
};

/// printf-style append to a FileResult stream.
void appendf(std::string &Buf, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Analyzes one file into \p R; runs on a pool worker (or inline at -j1).
/// \p Index is the file's position in the input list (qualgen derives
/// per-file seeds from it).
using AnalyzeFn = std::function<void(const std::string &Path, size_t Index,
                                     FileResult &R)>;

struct BatchConfig {
  /// Worker count; 1 runs every file inline on the calling thread.
  unsigned Jobs = 1;
  /// Trace category for the per-file spans.
  const char *Category = "batch";
  /// Print a "== <path> ==" banner before each file's stdout block.
  /// Tools enable this when more than one file was given, so single-file
  /// output stays byte-compatible with the pre-batch CLIs.
  bool Headers = false;
  /// Flush targets (tests and benchmarks redirect these).
  std::FILE *OutStream = stdout;
  std::FILE *ErrStream = stderr;
};

/// Expands one positional argument into \p Files: a plain path is appended
/// as-is; "@list" reads paths from the response file `list` (one per line,
/// blank lines and '#' comments skipped, nested @-references allowed up to
/// a small depth). Returns false and sets \p Error on an unreadable
/// response file or a reference cycle.
bool expandArg(const std::string &Arg, std::vector<std::string> &Files,
               std::string &Error);

/// Parses a jobs flag: "-jN", "-j N" (two args), "--jobs=N", "--jobs N".
/// Returns true when \p Arg (plus optionally \p Next, consuming it by
/// setting \p ConsumedNext) is a jobs flag; \p Jobs gets the value. A
/// malformed or zero count sets \p Error.
bool parseJobsFlag(const char *Arg, const char *Next, unsigned &Jobs,
                   bool &ConsumedNext, std::string &Error);

/// Runs \p Analyze over every file, fanning out to ThreadPool workers when
/// Config.Jobs > 1, and flushes each file's buffered streams in input
/// order as results become ready. Returns the maximum per-file exit code.
int runBatch(const std::vector<std::string> &Files,
             const BatchConfig &Config, const AnalyzeFn &Analyze);

} // namespace batch
} // namespace quals

#endif // QUALS_TOOLS_BATCHDRIVER_H

#!/usr/bin/env bash
# smoke_stats.sh - run the --stats path of both CLIs over every example
# program and fail on a crash.
#
#   smoke_stats.sh <qualcheck-binary> <qualcc-binary> <programs-dir>
#
# Qualifier rejections are expected on some examples (exit codes 1-3 mean
# the tool ran and diagnosed the program); anything >= 128 means the tool
# died on a signal and the stats plumbing is broken. Also requires the
# stats table to actually appear on stdout. Wired into ctest as
# cli.smoke_stats by tools/CMakeLists.txt.

set -euo pipefail

if [ $# -ne 3 ]; then
    echo "usage: $0 <qualcheck-binary> <qualcc-binary> <programs-dir>" >&2
    exit 2
fi

QUALCHECK=$1
QUALCC=$2
PROGRAMS=$3
FAILED=0

check_run() {
    # $1: tool name for messages, $2...: command.
    local TOOL=$1
    shift
    local OUT STATUS=0
    OUT=$("$@" 2>/dev/null) || STATUS=$?
    if [ "$STATUS" -ge 128 ] || { [ "$STATUS" -ne 0 ] && [ "$STATUS" -gt 3 ]; }; then
        echo "FAIL: $TOOL exited with status $STATUS: $*" >&2
        FAILED=1
        return
    fi
    # Exit 1 is a front-end error: the solver never ran, so no table is
    # expected. Any other verdict must come with the stats table.
    if [ "$STATUS" -eq 1 ]; then
        return
    fi
    case $OUT in
        *"Solver metric"*) ;;
        *)
            echo "FAIL: $TOOL printed no stats table (status $STATUS): $*" >&2
            FAILED=1
            ;;
    esac
}

FOUND=0
for F in "$PROGRAMS"/*.q; do
    [ -e "$F" ] || continue
    FOUND=1
    check_run qualcheck "$QUALCHECK" --stats "$F"
done
for F in "$PROGRAMS"/*.c; do
    [ -e "$F" ] || continue
    FOUND=1
    check_run qualcc "$QUALCC" --stats "$F"
    check_run qualcc "$QUALCC" --stats --no-collapse "$F"
done

if [ "$FOUND" -eq 0 ]; then
    echo "FAIL: no .q or .c programs found in $PROGRAMS" >&2
    exit 2
fi
exit "$FAILED"

//===- tools/quallink.cpp - Cross-TU qualifier link driver -----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The link step of the separate-compilation pipeline (docs/LINK.md): loads
// the constraint summaries `qualcc --emit-summary` serialized per TU,
// unifies interface variables across TUs by symbol name, merges everything
// into one constraint system, and runs the whole-program solve.
//
//   quallink [options] file.qsum... [@response-file]
//
//   --positions     print the per-position classification
//   --stats         print a solver statistics table
//   -jN, --jobs N   load summaries on N pool workers
//   --solver-jobs=N shard the global solve's dense passes over N threads
//   --no-collapse   disable solver cycle collapsing (ablation)
//   --no-dense      disable the dense bulk-solve core (ablation)
//   --quiet         counts only
//
// Determinism: stdout/stderr are byte-identical at any -jN and
// --solver-jobs=N, and independent of the order summaries are named on the
// command line (they are canonicalized before linking).
//
// Exit status: 0 on success, 1 on load or link errors (unreadable, corrupt,
// or stale summaries; duplicate definitions; interface mismatches), 2 on
// qualifier errors in the linked program.
//
//===----------------------------------------------------------------------===//

#include "link/Linker.h"
#include "support/ThreadPool.h"

#include "BatchDriver.h"
#include "ToolFlags.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace quals;
using namespace quals::link;

static const char *className(constinf::PosClass C) {
  switch (C) {
  case constinf::PosClass::MustConst:    return "must-const";
  case constinf::PosClass::MustNonConst: return "non-const";
  case constinf::PosClass::Either:       return "either";
  }
  return "?";
}

static const char *kOptionsHelp =
    "  --positions     print the per-position classification\n"
    "  --stats         print a solver statistics table\n"
    "  --solver-jobs=N shard the global solve's dense passes over N threads\n"
    "                  (bytes identical at any N; docs/SOLVER.md)\n"
    "  --no-collapse   disable solver cycle collapsing (ablation)\n"
    "  --no-dense      disable the dense bulk-solve core (ablation)\n"
    "  --quiet         counts only\n";

int main(int argc, char **argv) {
  bool PrintPositions = false;
  bool PrintStats = false;
  bool Quiet = false;
  LinkOptions Opts;
  std::vector<std::string> Files;
  ToolFlags Common("quallink", "file.qsum... [@response-file]", kOptionsHelp);

  for (int I = 1; I != argc; ++I) {
    std::string Error;
    if (Common.parseCommon(argc, argv, I)) {
      if (Common.exitNow())
        return Common.exitStatus();
    } else if (!std::strcmp(argv[I], "--positions"))
      PrintPositions = true;
    else if (!std::strcmp(argv[I], "--stats"))
      PrintStats = true;
    else if (!std::strcmp(argv[I], "--no-collapse"))
      Opts.CollapseCycles = false;
    else if (!std::strcmp(argv[I], "--no-dense"))
      Opts.DenseSolve = false;
    else if (!std::strncmp(argv[I], "--solver-jobs=", 14)) {
      const char *Digits = argv[I] + 14;
      char *End = nullptr;
      unsigned long long N = std::strtoull(Digits, &End, 10);
      if (*Digits == '\0' || *End != '\0' || N == 0 || N > 1024)
        return Common.fail(std::string("bad --solver-jobs value '") + Digits +
                           "' (want a thread count in [1, 1024])");
      Opts.SolverJobs = static_cast<unsigned>(N);
    } else if (!std::strcmp(argv[I], "--quiet"))
      Quiet = true;
    else if (argv[I][0] == '-')
      return Common.usageError(argv[I]);
    else if (!batch::expandArg(argv[I], Files, Error))
      return Common.fail(Error);
  }
  if (Files.empty())
    return Common.fail("no input summaries");
  Opts.MaxConstraints = Common.limits().MaxConstraints;
  Common.activate();

  // One pool serves both axes: parallel summary loading (-jN) and the
  // solver's dense-pass sharding (--solver-jobs=N).
  unsigned PoolWorkers = std::max(Common.jobs(), Opts.SolverJobs);
  std::unique_ptr<ThreadPool> Pool;
  if (PoolWorkers > 1) {
    Pool = std::make_unique<ThreadPool>(PoolWorkers);
    if (Opts.SolverJobs > 1)
      Opts.Pool = Pool.get();
  }

  // Load every summary into its input-order slot; the linker canonicalizes
  // afterwards, so load completion order never shows in the output.
  std::vector<TuSummary> Summaries(Files.size());
  std::vector<std::string> LoadErrors(Files.size());
  auto loadOne = [&](size_t I) {
    std::string Bytes, Error;
    if (!readFileBytes(Files[I], Bytes, Error)) {
      LoadErrors[I] = "quallink: " + Error;
      return;
    }
    if (!deserializeSummary(reinterpret_cast<const uint8_t *>(Bytes.data()),
                            Bytes.size(), Summaries[I], Error))
      LoadErrors[I] = "quallink: '" + Files[I] + "': " + Error;
  };
  if (Pool && Common.jobs() > 1)
    Pool->parallelForEach(Files.size(), loadOne);
  else
    for (size_t I = 0; I != Files.size(); ++I)
      loadOne(I);

  std::vector<std::string> Failed;
  for (const std::string &E : LoadErrors)
    if (!E.empty())
      Failed.push_back(E);
  if (!Failed.empty()) {
    // Sorted so the report is independent of argument order too.
    std::sort(Failed.begin(), Failed.end());
    for (const std::string &E : Failed)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }

  LinkResult R = linkSummaries(Summaries, Opts);

  if (!R.LoadOk || !R.LinkOk) {
    for (const std::string &D : R.Diagnostics)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }
  if (!R.SolveOk) {
    std::fprintf(stderr, "quallink: const errors detected:\n");
    for (const std::string &D : R.Diagnostics)
      std::fprintf(stderr, "%s\n", D.c_str());
    if (PrintStats)
      std::fputs(renderSolverStats(R.Stats).c_str(), stdout);
    return 2;
  }

  if (PrintStats)
    std::fputs(renderSolverStats(R.Stats).c_str(), stdout);
  if (PrintPositions)
    for (const LinkedPos &P : R.Positions) {
      std::string Where = P.ParamIndex < 0
                              ? std::string("result")
                              : "param " + std::to_string(P.ParamIndex);
      std::printf("%-24s %-8s depth %u  %-10s%s\n", P.FnName.c_str(),
                  Where.c_str(), P.Depth, className(P.Class),
                  P.DeclaredConst ? "  [declared]" : "");
    }
  if (!Quiet)
    std::printf("linked %u summaries (%u unique TUs): %u qualifier vars, "
                "%u constraints\n",
                R.NumInputs, R.NumSummaries, R.NumVars, R.NumConstraints);
  std::printf("declared %u, inferred possible-const %u, total positions %u\n",
              R.Counts.Declared, R.Counts.PossibleConst, R.Counts.Total);
  return 0;
}

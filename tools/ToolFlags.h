//===- tools/ToolFlags.h - Shared CLI plumbing for all tools ----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flag plumbing shared by qualcc, qualcheck, qualgen, and qualsd --
/// previously duplicated across each tool's main(): the observability
/// session (ObsFlags.h), the resource budgets (LimitFlags.h), the jobs
/// flag (BatchDriver.h parsing), and consistent --help/--version output.
///
/// Each tool constructs one ToolFlags with its name and usage text, feeds
/// every argv element through parseCommon() first, and handles only its
/// own flags. parseCommon() recognizes:
///
///   -jN, -j N, --jobs=N, --jobs N    worker count (docs/PARALLEL.md)
///   --trace-out=<file>               Chrome trace of the pipeline phases
///   --metrics[=table|json]           per-phase metrics on exit
///   --limit-errors=N --limit-depth=N --limit-constraints=N
///   --limit-arena-mb=N               resource budgets (docs/ROBUSTNESS.md)
///   --help                           usage to stdout, exit 0
///   --version                        "<tool> (libquals) <version>", exit 0
///
/// After parsing, exitNow() says whether --help/--version/a malformed value
/// asked the tool to stop, and activate() arms the observability sinks.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_TOOLS_TOOLFLAGS_H
#define QUALS_TOOLS_TOOLFLAGS_H

#include "BatchDriver.h"
#include "LimitFlags.h"
#include "ObsFlags.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace quals {

/// The project version reported by every tool's --version. One constant so
/// the four tools can never drift apart.
#define QUALS_VERSION_STRING "0.9.0"

/// Shared flag state for one tool invocation; see the file comment.
class ToolFlags {
public:
  /// \p Tool is the binary name for messages; \p Operands names the
  /// positional arguments for the usage line (e.g. "file.c...
  /// [@response-file]"); \p OptionsHelp is the tool-specific options block
  /// printed by --help (one "  --flag  description" line each, newline
  /// terminated; may be empty).
  ToolFlags(const char *Tool, const char *Operands, const char *OptionsHelp)
      : Tool(Tool), Operands(Operands), OptionsHelp(OptionsHelp) {}

  /// Feeds one argv element through every shared parser. Returns true when
  /// the argument was consumed (advance and check exitNow()); false means
  /// the tool should try its own flags next.
  bool parseCommon(int argc, char **argv, int &I) {
    const char *Arg = argv[I];
    std::string Error;
    bool ConsumedNext = false;
    if (!std::strcmp(Arg, "--help")) {
      printHelp(stdout);
      Exit = true;
      return true;
    }
    if (!std::strcmp(Arg, "--version")) {
      std::fprintf(stdout, "%s (libquals) %s\n", Tool,
                   QUALS_VERSION_STRING);
      Exit = true;
      return true;
    }
    if (batch::parseJobsFlag(Arg, I + 1 < argc ? argv[I + 1] : nullptr,
                             JobsValue, ConsumedNext, Error)) {
      if (!Error.empty()) {
        std::fprintf(stderr, "%s: %s\n", Tool, Error.c_str());
        Exit = true;
        Status = 1;
        return true;
      }
      I += ConsumedNext;
      JobsFlagSeen = true;
      return true;
    }
    if (Obs.parseFlag(Arg)) {
      if (Obs.badFlag()) {
        Exit = true;
        Status = 1;
      }
      return true;
    }
    if (LimitsCli.parseFlag(Arg)) {
      if (LimitsCli.badFlag()) {
        Exit = true;
        Status = 1;
      }
      return true;
    }
    return false;
  }

  /// Prints "unknown/invalid argument" usage to stderr; returns exit code 1
  /// for the tool to return.
  int usageError(const char *BadArg) {
    std::fprintf(stderr, "%s: unrecognized argument '%s'\n", Tool, BadArg);
    printUsageLine(stderr);
    std::fprintf(stderr, "run '%s --help' for the full option list\n", Tool);
    return 1;
  }

  /// Prints an arbitrary error plus the usage line; returns exit code 1.
  int fail(const std::string &Message) {
    std::fprintf(stderr, "%s: %s\n", Tool, Message.c_str());
    return 1;
  }

  /// True when --help/--version/a malformed shared flag ends the run;
  /// return exitStatus() from main() immediately.
  bool exitNow() const { return Exit; }
  int exitStatus() const { return Status; }

  /// The -j/--jobs value (1 when never given) and whether it was given.
  unsigned jobs() const { return JobsValue; }
  bool jobsSeen() const { return JobsFlagSeen; }

  /// The --limit-* budgets for every analysis context.
  const Limits &limits() const { return LimitsCli.limits(); }

  /// Arms the observability sinks; call once after flag parsing. The
  /// ObsSession member flushes them on every main() exit path.
  void activate() { Obs.activate(); }

  /// Redirects the exit-time --metrics report away from stdout; required
  /// for tools whose stdout carries a machine protocol (qualsd).
  void routeMetricsReport(std::FILE *To) { Obs.setReportStream(To); }

private:
  void printUsageLine(std::FILE *To) {
    std::fprintf(To, "usage: %s [options] %s\n", Tool, Operands);
  }

  void printHelp(std::FILE *To) {
    printUsageLine(To);
    if (OptionsHelp && *OptionsHelp)
      std::fprintf(To, "\n%s options:\n%s", Tool, OptionsHelp);
    std::fprintf(To,
                 "\ncommon options:\n"
                 "  -jN, --jobs N           run on N pool workers "
                 "(docs/PARALLEL.md)\n"
                 "  --trace-out=<file>      write a Chrome trace of the "
                 "pipeline phases\n"
                 "  --metrics[=table|json]  print collected metrics on "
                 "exit\n"
                 "  --limit-errors=N        errors before bailout "
                 "(docs/ROBUSTNESS.md)\n"
                 "  --limit-depth=N         parser/type recursion depth\n"
                 "  --limit-constraints=N   qualifier constraints per "
                 "system\n"
                 "  --limit-arena-mb=N      arena megabytes per analysis "
                 "context\n"
                 "  --help                  this list\n"
                 "  --version               print the tool version\n");
  }

  const char *Tool;
  const char *Operands;
  const char *OptionsHelp;
  ObsSession Obs;
  LimitFlags LimitsCli;
  unsigned JobsValue = 1;
  bool JobsFlagSeen = false;
  bool Exit = false;
  int Status = 0;
};

} // namespace quals

#endif // QUALS_TOOLS_TOOLFLAGS_H

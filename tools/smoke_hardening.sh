#!/usr/bin/env bash
# smoke_hardening.sh - hostile inputs through the real tool binaries.
#
#   smoke_hardening.sh <qualcheck-binary> <qualcc-binary>
#
# The crash-free contract (docs/ROBUSTNESS.md) over the shipped CLIs:
# truncated, garbage, and limit-exhausting inputs must end in a rendered
# diagnostic and a clean *nonzero* exit code -- never a signal death
# (SIGSEGV from deep recursion, SIGABRT from an assert, OOM kill). Shell
# exit codes >= 128 mean "killed by signal 128-N", so every case asserts
# code in [1, 127]. Also covers the --limit-* flags end to end and the
# batch driver (-j2) over a hostile corpus. Wired into ctest as
# cli.smoke_hardening by tools/CMakeLists.txt.

set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 <qualcheck> <qualcc>" >&2
    exit 2
fi

QUALCHECK=$1
QUALCC=$2
FAILED=0

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# run_expect_dirty <label> <cmd...>: the command must fail, but cleanly.
run_expect_dirty() {
    local LABEL=$1
    shift
    local CODE=0
    "$@" > "$WORKDIR/out.txt" 2> "$WORKDIR/err.txt" || CODE=$?
    if [ "$CODE" -eq 0 ]; then
        echo "FAIL: $LABEL: expected a nonzero exit, got 0" >&2
        FAILED=1
    elif [ "$CODE" -ge 128 ]; then
        echo "FAIL: $LABEL: killed by signal $((CODE - 128))" >&2
        FAILED=1
    elif [ ! -s "$WORKDIR/out.txt" ] && [ ! -s "$WORKDIR/err.txt" ]; then
        echo "FAIL: $LABEL: failed silently (no diagnostic)" >&2
        FAILED=1
    else
        echo "ok: $LABEL (exit $CODE)"
    fi
}

# run_expect_clean <label> <cmd...>: the command must succeed.
run_expect_clean() {
    local LABEL=$1
    shift
    if "$@" > /dev/null 2>&1; then
        echo "ok: $LABEL"
    else
        echo "FAIL: $LABEL: expected exit 0, got $?" >&2
        FAILED=1
    fi
}

# --- hostile C inputs ----------------------------------------------------
printf 'int f(int x) { return x +' > "$WORKDIR/truncated.c"
head -c 512 /dev/urandom > "$WORKDIR/garbage.c"
{
    printf 'int f(void) { return '
    printf '(%.0s' $(seq 1 100000)
    printf '1'
    printf ')%.0s' $(seq 1 100000)
    printf '; }\n'
} > "$WORKDIR/deep.c"
printf 'int huge(void) { return 99999999999999999999999999; }\n' \
    > "$WORKDIR/overflow.c"
{
    printf 'void f(void) {\n'
    for I in $(seq 1 200); do
        printf '  undeclared_%d = 1;\n' "$I"
    done
    printf '}\n'
} > "$WORKDIR/flood.c"
printf 'void set(int *p, int v) { *p = v; }\nint get(int *p) { return *p; }\nint rt(int *a, int *b) { set(a, get(b)); return get(a); }\n' \
    > "$WORKDIR/ok.c"

run_expect_dirty "qualcc truncated input"  "$QUALCC" "$WORKDIR/truncated.c"
run_expect_dirty "qualcc binary garbage"   "$QUALCC" "$WORKDIR/garbage.c"
run_expect_dirty "qualcc 100k-deep parens" "$QUALCC" "$WORKDIR/deep.c"
run_expect_dirty "qualcc overflowing literal" "$QUALCC" "$WORKDIR/overflow.c"
run_expect_dirty "qualcc error flood (default cap)" \
    "$QUALCC" "$WORKDIR/flood.c"
run_expect_dirty "qualcc tiny constraint budget" \
    "$QUALCC" --limit-constraints=4 "$WORKDIR/ok.c"
run_expect_dirty "qualcc tiny depth budget" \
    "$QUALCC" --limit-depth=2 "$WORKDIR/ok.c"
run_expect_dirty "qualcc error flood with --limit-errors=0" \
    "$QUALCC" --limit-errors=0 "$WORKDIR/flood.c"
run_expect_clean "qualcc sane program under default limits" \
    "$QUALCC" "$WORKDIR/ok.c"

# The bailout diagnostic must actually be rendered somewhere.
CODE=0
"$QUALCC" "$WORKDIR/deep.c" > "$WORKDIR/out.txt" 2> "$WORKDIR/err.txt" \
    || CODE=$?
if ! grep -q "resource limit" "$WORKDIR/out.txt" "$WORKDIR/err.txt"; then
    echo "FAIL: deep.c did not render a resource-limit diagnostic" >&2
    FAILED=1
fi

# A malformed --limit value is rejected up front.
if "$QUALCC" --limit-depth=banana "$WORKDIR/ok.c" > /dev/null 2>&1; then
    echo "FAIL: --limit-depth=banana was accepted" >&2
    FAILED=1
else
    echo "ok: malformed --limit value rejected"
fi

# --- hostile lambda inputs -----------------------------------------------
printf 'let x = fn y.' > "$WORKDIR/truncated.q"
head -c 512 /dev/urandom > "$WORKDIR/garbage.q"
{
    printf 'fn x. %.0s' $(seq 1 100000)
    printf 'x\n'
} > "$WORKDIR/deep.q"
printf 'let c = {const} ref 1 in !c ni\n' > "$WORKDIR/ok.q"
printf 'let id = fn x. x in id (ref 1) ni\n' > "$WORKDIR/poly.q"

run_expect_dirty "qualcheck truncated input"    "$QUALCHECK" "$WORKDIR/truncated.q"
run_expect_dirty "qualcheck binary garbage"     "$QUALCHECK" "$WORKDIR/garbage.q"
run_expect_dirty "qualcheck 100k-deep fn chain" "$QUALCHECK" "$WORKDIR/deep.q"
run_expect_dirty "qualcheck tiny constraint budget" \
    "$QUALCHECK" --limit-constraints=2 "$WORKDIR/poly.q"
run_expect_clean "qualcheck sane program under default limits" \
    "$QUALCHECK" "$WORKDIR/ok.q"

# --- batch driver over a hostile corpus ----------------------------------
# Worst per-file exit status must survive the pool, and the pool itself
# must not die on the hostile members.
run_expect_dirty "qualcc --batch -j2 hostile corpus" \
    "$QUALCC" --batch -j2 "$WORKDIR/ok.c" "$WORKDIR/truncated.c" \
    "$WORKDIR/garbage.c" "$WORKDIR/deep.c"
run_expect_dirty "qualcheck -j2 hostile corpus" \
    "$QUALCHECK" -j2 "$WORKDIR/ok.q" "$WORKDIR/truncated.q" \
    "$WORKDIR/garbage.q" "$WORKDIR/deep.q"

if [ "$FAILED" -ne 0 ]; then
    echo "smoke_hardening: FAILED" >&2
    exit 1
fi
echo "smoke_hardening: all hostile inputs handled cleanly"

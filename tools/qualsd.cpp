//===- tools/qualsd.cpp - Persistent analysis daemon -----------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The serving-layer artifact of the ROADMAP's north star: where qualcc
// re-pays the full analysis price on every invocation, qualsd stays
// resident, accepts newline-delimited JSON requests on stdin, and answers
// on stdout from a content-addressed result cache -- repeated analysis of
// unchanged inputs costs a hash and a lookup instead of a pipeline run.
//
//   qualsd [options] < requests.ndjson
//   qualsd --listen=/run/qualsd.sock [options]
//
//   --listen=SPEC   serve many concurrent clients over a socket instead of
//                   stdio: SPEC is a unix-domain socket path (no ':') or
//                   HOST:PORT for TCP (port 0 = ephemeral; the bound
//                   address is announced on stderr). Each connection is an
//                   independent protocol session; `shutdown` from any
//                   client stops the whole daemon (docs/SERVER.md).
//   --warm=FILE     pre-analyze every file listed in FILE (one PATH or
//                   PATH<TAB>LANGUAGE per line, '#' comments) before
//                   serving, so first clients hit a warm cache
//   --cache-mb=N    in-memory result-cache budget in MiB (default 64;
//                   0 disables caching entirely)
//   --cache-dir=D   spill results to D so warm state survives restarts
//   --snapshots=N   retained analysis snapshots for analyze-delta
//                   (default 64; 0 disables incremental re-analysis)
//   --request-log=F append one NDJSON event per request to F ('-' =
//                   stderr): timings, cache outcome, per-phase breakdown
//   --slow-ms=N     tag request-log events at or above N ms "slow":true
//   --no-telemetry  disable request-level telemetry (latency histograms,
//                   queue metrics); responses are identical either way
//   -jN, --jobs N   analyze requests on N pool workers; responses stay in
//                   request order for every N (docs/PARALLEL.md)
//   --solver-jobs=N shard each request's dense constraint solves over N
//                   threads. Takes effect only at --jobs 1 (with request
//                   workers, requests are the parallelism axis and the
//                   solver stays inline; docs/PARALLEL.md). Response bytes
//                   are identical at every combination (docs/SOLVER.md).
//
// plus the shared observability/limit flags (tools/ToolFlags.h) -- with
// one serving-specific twist: stdout is the response stream, so the
// --metrics report is routed to stderr (never interleaved with protocol
// bytes). The protocol -- analyze / analyze-delta / invalidate / stats /
// metrics / shutdown -- cache keying, and eviction policy are specified in
// docs/SERVER.md; incremental re-analysis in docs/INCREMENTAL.md; the
// telemetry layer in docs/OBSERVABILITY.md.
//
// Exit status: 0 on clean shutdown or end of input; 1 on bad arguments.
// Per-request analysis failures are reported in responses, never as
// process exit (a hostile request must not take the daemon down).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/Transport.h"

#include "ToolFlags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

using namespace quals;
using namespace quals::serve;

static const char *kOptionsHelp =
    "  --listen=SPEC    accept concurrent clients on a socket: a path is a\n"
    "                   unix-domain socket, HOST:PORT is TCP (port 0 =\n"
    "                   ephemeral; bound address announced on stderr)\n"
    "  --warm=FILE      pre-analyze files listed in FILE (PATH or\n"
    "                   PATH<TAB>LANGUAGE per line) before serving\n"
    "  --cache-mb=N     in-memory result-cache budget in MiB (default 64;\n"
    "                   0 disables caching)\n"
    "  --cache-dir=D    spill cached results to directory D (restart-warm)\n"
    "  --snapshots=N    retained analysis snapshots for analyze-delta\n"
    "                   (default 64; 0 disables incremental re-analysis)\n"
    "  --request-log=F  append one NDJSON event per request to F\n"
    "                   ('-' writes to stderr)\n"
    "  --slow-ms=N      tag request-log events >= N ms with \"slow\":true\n"
    "  --no-telemetry   disable request-level latency/queue telemetry\n"
    "  --solver-jobs=N  shard dense constraint solves over N threads\n"
    "                   (effective only at --jobs 1; bytes identical)\n";

int main(int argc, char **argv) {
  ServerConfig Config;
  ToolFlags Common("qualsd", "< requests.ndjson", kOptionsHelp);
  std::string RequestLogPath;
  std::string ListenSpecStr;
  std::string WarmManifest;

  for (int I = 1; I != argc; ++I) {
    if (Common.parseCommon(argc, argv, I)) {
      if (Common.exitNow())
        return Common.exitStatus();
    } else if (!std::strncmp(argv[I], "--listen=", 9)) {
      ListenSpecStr = argv[I] + 9;
      if (ListenSpecStr.empty())
        return Common.fail("--listen= requires a socket path or HOST:PORT");
    } else if (!std::strncmp(argv[I], "--warm=", 7)) {
      WarmManifest = argv[I] + 7;
      if (WarmManifest.empty())
        return Common.fail("--warm= requires a manifest file");
    } else if (!std::strncmp(argv[I], "--cache-mb=", 11)) {
      const char *Digits = argv[I] + 11;
      char *End = nullptr;
      unsigned long long N = std::strtoull(Digits, &End, 10);
      if (*Digits == '\0' || *End != '\0' || N > (1ull << 20))
        return Common.fail(std::string("bad --cache-mb value '") + Digits +
                           "' (want MiB in [0, 1048576])");
      Config.CacheMaxBytes = static_cast<uint64_t>(N) << 20;
    } else if (!std::strncmp(argv[I], "--cache-dir=", 12)) {
      Config.SpillDir = argv[I] + 12;
      if (Config.SpillDir.empty())
        return Common.fail("--cache-dir= requires a directory");
    } else if (!std::strncmp(argv[I], "--snapshots=", 12)) {
      const char *Digits = argv[I] + 12;
      char *End = nullptr;
      unsigned long long N = std::strtoull(Digits, &End, 10);
      if (*Digits == '\0' || *End != '\0' || N > (1u << 20))
        return Common.fail(std::string("bad --snapshots value '") + Digits +
                           "' (want a count in [0, 1048576])");
      Config.MaxSnapshots = static_cast<unsigned>(N);
    } else if (!std::strncmp(argv[I], "--request-log=", 14)) {
      RequestLogPath = argv[I] + 14;
      if (RequestLogPath.empty())
        return Common.fail("--request-log= requires a file name (or '-')");
    } else if (!std::strncmp(argv[I], "--slow-ms=", 10)) {
      const char *Digits = argv[I] + 10;
      char *End = nullptr;
      unsigned long long N = std::strtoull(Digits, &End, 10);
      if (*Digits == '\0' || *End != '\0' || N > (1ull << 32))
        return Common.fail(std::string("bad --slow-ms value '") + Digits +
                           "' (want milliseconds in [0, 2^32])");
      Config.SlowMicros = static_cast<uint64_t>(N) * 1000;
    } else if (!std::strncmp(argv[I], "--solver-jobs=", 14)) {
      const char *Digits = argv[I] + 14;
      char *End = nullptr;
      unsigned long long N = std::strtoull(Digits, &End, 10);
      if (*Digits == '\0' || *End != '\0' || N == 0 || N > 1024)
        return Common.fail(std::string("bad --solver-jobs value '") + Digits +
                           "' (want a thread count in [1, 1024])");
      Config.SolverJobs = static_cast<unsigned>(N);
    } else if (!std::strcmp(argv[I], "--no-telemetry")) {
      Config.Telemetry = false;
    } else {
      return Common.usageError(argv[I]);
    }
  }
  Config.Jobs = Common.jobs();
  Config.Lim = Common.limits();
  // stdout carries the NDJSON response stream; every telemetry artifact
  // (the --metrics report, the request log's '-' sink) goes to stderr so a
  // peer parsing responses can never see a non-protocol line.
  Common.routeMetricsReport(stderr);
  Common.activate();

  std::ofstream LogFile;
  if (!RequestLogPath.empty()) {
    if (RequestLogPath == "-") {
      Config.RequestLogStream = &std::cerr;
    } else {
      LogFile.open(RequestLogPath, std::ios::binary | std::ios::trunc);
      if (!LogFile)
        return Common.fail("cannot open request log '" + RequestLogPath +
                           "'");
      Config.RequestLogStream = &LogFile;
    }
  }

  Server S(Config);
  if (!WarmManifest.empty()) {
    WarmStats WS;
    std::string Error;
    if (!S.warmFromManifest(WarmManifest, WS, Error))
      return Common.fail(Error);
    std::fprintf(stderr,
                 "qualsd: warmed %llu of %llu manifest entries "
                 "(%llu already cached, %llu unreadable)\n",
                 static_cast<unsigned long long>(WS.Warmed),
                 static_cast<unsigned long long>(WS.Listed),
                 static_cast<unsigned long long>(WS.AlreadyCached),
                 static_cast<unsigned long long>(WS.Failed));
  }
  if (ListenSpecStr.empty())
    return S.run(std::cin, std::cout);

  ListenSpec Spec;
  std::string Error;
  if (!parseListenSpec(ListenSpecStr, Spec, Error))
    return Common.fail(Error);
  Transport T(S, Spec);
  if (!T.open(Error))
    return Common.fail(Error);
  return T.serve();
}

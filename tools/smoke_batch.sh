#!/usr/bin/env bash
# smoke_batch.sh - end-to-end exercise of the parallel batch layer.
#
#   smoke_batch.sh <qualcheck-binary> <qualcc-binary> <qualgen-binary> \
#                  <programs-dir>
#
# Asserts the batch determinism guarantee (docs/PARALLEL.md) over real
# binaries: (a) qualcheck stdout/stderr and exit status over the example
# corpus are byte-identical at -j1 and -j8, (b) a qualgen --corpus run is
# bit-identical at -j1 and -j4, (c) qualcc --batch -j4 over an
# @response-file of that corpus succeeds and its --metrics=json report is
# parseable with sane batch.* values (JSON validation skipped without
# python3). Wired into ctest as cli.smoke_batch by tools/CMakeLists.txt.

set -euo pipefail

if [ $# -ne 4 ]; then
    echo "usage: $0 <qualcheck> <qualcc> <qualgen> <programs-dir>" >&2
    exit 2
fi

QUALCHECK=$1
QUALCC=$2
QUALGEN=$3
PROGRAMS=$4
FAILED=0

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# --- (a) qualcheck determinism over the example corpus -------------------
QFILES=()
for F in "$PROGRAMS"/*.q; do
    [ -e "$F" ] && QFILES+=("$F")
done
if [ "${#QFILES[@]}" -lt 2 ]; then
    echo "FAIL: need at least two .q examples in $PROGRAMS" >&2
    exit 2
fi

J1=0; "$QUALCHECK" -j1 "${QFILES[@]}" \
    >"$WORKDIR/j1.out" 2>"$WORKDIR/j1.err" || J1=$?
J8=0; "$QUALCHECK" -j8 "${QFILES[@]}" \
    >"$WORKDIR/j8.out" 2>"$WORKDIR/j8.err" || J8=$?
if [ "$J1" -ne "$J8" ]; then
    echo "FAIL: qualcheck exit codes differ: -j1=$J1 -j8=$J8" >&2
    FAILED=1
fi
if ! cmp -s "$WORKDIR/j1.out" "$WORKDIR/j8.out"; then
    echo "FAIL: qualcheck stdout differs between -j1 and -j8" >&2
    diff "$WORKDIR/j1.out" "$WORKDIR/j8.out" | head >&2 || true
    FAILED=1
fi
if ! cmp -s "$WORKDIR/j1.err" "$WORKDIR/j8.err"; then
    echo "FAIL: qualcheck stderr differs between -j1 and -j8" >&2
    FAILED=1
fi
# The corpus contains rejected programs, so the batch must fail overall.
if [ "$J1" -eq 0 ]; then
    echo "FAIL: qualcheck batch over examples should exit nonzero" >&2
    FAILED=1
fi

# --- (b) qualgen --corpus determinism ------------------------------------
"$QUALGEN" --corpus 8 --lines 120 --seed 7 --out-dir "$WORKDIR/c1" -j1
"$QUALGEN" --corpus 8 --lines 120 --seed 7 --out-dir "$WORKDIR/c4" -j4
if ! diff -r "$WORKDIR/c1" "$WORKDIR/c4" >/dev/null; then
    echo "FAIL: qualgen corpus differs between -j1 and -j4" >&2
    FAILED=1
fi
if [ "$(ls "$WORKDIR/c1"/corpus_*.c | wc -l)" -ne 8 ]; then
    echo "FAIL: qualgen --corpus 8 did not emit 8 files" >&2
    FAILED=1
fi

# --- (c) qualcc --batch over an @response-file with metrics --------------
RSP="$WORKDIR/corpus.rsp"
{
    echo "# synthetic corpus"
    ls "$WORKDIR/c1"/corpus_*.c
    echo "$PROGRAMS/strchr_demo.c"
} >"$RSP"
NFILES=$((8 + 1))

STATUS=0
"$QUALCC" --batch -j4 --quiet --metrics=json "@$RSP" \
    >"$WORKDIR/cc.out" 2>"$WORKDIR/cc.err" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: qualcc --batch -j4 exited $STATUS" >&2
    cat "$WORKDIR/cc.err" >&2
    FAILED=1
fi
# Batch stdout and metrics determinism: same command at -j1, identical
# stdout up to the metrics report (timers differ), i.e. the per-file
# blocks.
STATUS1=0
"$QUALCC" --batch -j1 --quiet "@$RSP" >"$WORKDIR/cc1.out" 2>/dev/null \
    || STATUS1=$?
if [ "$STATUS1" -ne 0 ]; then
    echo "FAIL: qualcc --batch -j1 exited $STATUS1" >&2
    FAILED=1
fi
# Strip the metrics JSON (starts at '{"counters"') before comparing.
sed '/^{"counters"/,$d' "$WORKDIR/cc.out" >"$WORKDIR/cc.blocks"
if ! cmp -s "$WORKDIR/cc.blocks" "$WORKDIR/cc1.out"; then
    echo "FAIL: qualcc --batch stdout differs between -j4 and -j1" >&2
    diff "$WORKDIR/cc.blocks" "$WORKDIR/cc1.out" | head >&2 || true
    FAILED=1
fi

if command -v python3 >/dev/null 2>&1; then
    JSONSTART=$(grep -n '^{"counters"' "$WORKDIR/cc.out" | head -1 | cut -d: -f1)
    if [ -z "$JSONSTART" ]; then
        echo "FAIL: qualcc --batch printed no metrics JSON" >&2
        FAILED=1
    else
        tail -n "+$JSONSTART" "$WORKDIR/cc.out" >"$WORKDIR/cc.metrics.json"
        python3 - "$WORKDIR/cc.metrics.json" "$NFILES" <<'PYEOF' || FAILED=1
import json, sys

path, nfiles = sys.argv[1], int(sys.argv[2])
with open(path) as f:
    doc = json.load(f)
counters, gauges, timers = doc["counters"], doc["gauges"], doc["timers"]
assert counters.get("batch.files") == nfiles, counters
assert counters.get("batch.failed") == 0, counters
assert gauges.get("batch.jobs") == 4, gauges
assert timers["batch.wall"]["count"] == 1, timers
# Per-file phase metrics aggregated into corpus totals: one solve phase
# sample per file.
assert timers["phase.solve"]["count"] == nfiles, timers
assert counters.get("solver.solve_calls", 0) >= nfiles, counters
PYEOF
    fi
else
    echo "NOTE: python3 unavailable; metrics JSON validation skipped" >&2
fi

exit "$FAILED"

#!/usr/bin/env bash
# smoke_link.sh - end-to-end exercise of the cross-TU link pipeline.
#
#   smoke_link.sh <qualcc-binary> <quallink-binary> <qualgen-binary>
#
# Asserts the separate-compilation contract (docs/LINK.md) over real
# binaries: (a) a qualgen --tus split summarized per-TU and linked with
# quallink classifies every position exactly as whole-program qualcc
# --mono over the same TUs, (b) quallink output is byte-identical at -j1
# --solver-jobs=1 and -j4 --solver-jobs=4 and under reversed summary
# argument order, (c) identical shared sources are deduplicated (the
# linked summary count drops below the input count), and (d) stale and
# corrupt summaries are rejected with exit 1, not mislinked. Wired into
# ctest as cli.smoke_link by tools/CMakeLists.txt.

set -euo pipefail

if [ $# -ne 3 ]; then
    echo "usage: $0 <qualcc> <quallink> <qualgen>" >&2
    exit 2
fi

QUALCC=$1
QUALLINK=$2
QUALGEN=$3
FAILED=0

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# --- (a) split-vs-whole-program equivalence ------------------------------
"$QUALGEN" --tus 4 --lines 600 --seed 42 --out-dir "$WORKDIR/tus"
TUS=("$WORKDIR"/tus/tu_*.c)
if [ "${#TUS[@]}" -ne 4 ]; then
    echo "FAIL: qualgen --tus 4 did not emit 4 files" >&2
    exit 2
fi

"$QUALCC" --mono --positions --quiet "${TUS[@]}" \
    | sort >"$WORKDIR/whole.pos"
"$QUALCC" --quiet --emit-summary-dir="$WORKDIR/qs" "${TUS[@]}"
QSUMS=("$WORKDIR"/qs/*.qsum)
"$QUALLINK" --positions --quiet "${QSUMS[@]}" | sort >"$WORKDIR/linked.pos"
if ! cmp -s "$WORKDIR/whole.pos" "$WORKDIR/linked.pos"; then
    echo "FAIL: linked positions differ from whole-program qualcc --mono" >&2
    diff "$WORKDIR/whole.pos" "$WORKDIR/linked.pos" | head >&2 || true
    FAILED=1
fi

# --- (b) worker-count and argument-order determinism ---------------------
"$QUALLINK" --positions --stats -j1 --solver-jobs=1 "${QSUMS[@]}" \
    >"$WORKDIR/j1.out"
"$QUALLINK" --positions --stats -j4 --solver-jobs=4 "${QSUMS[@]}" \
    >"$WORKDIR/j4.out"
if ! cmp -s "$WORKDIR/j1.out" "$WORKDIR/j4.out"; then
    echo "FAIL: quallink output differs between -j1 and -j4" >&2
    diff "$WORKDIR/j1.out" "$WORKDIR/j4.out" | head >&2 || true
    FAILED=1
fi
REVERSED=()
for ((I = ${#QSUMS[@]} - 1; I >= 0; I--)); do
    REVERSED+=("${QSUMS[$I]}")
done
"$QUALLINK" --positions --stats -j4 --solver-jobs=4 "${REVERSED[@]}" \
    >"$WORKDIR/rev.out"
if ! cmp -s "$WORKDIR/j1.out" "$WORKDIR/rev.out"; then
    echo "FAIL: quallink output depends on summary argument order" >&2
    FAILED=1
fi

# --- (c) shared-content deduplication ------------------------------------
# Linking the same summary set twice must dedupe by content hash: the info
# line reports 8 inputs collapsing to 4 unique TUs.
"$QUALLINK" "${QSUMS[@]}" "${QSUMS[@]}" >"$WORKDIR/dup.out"
if ! grep -q "linked 8 summaries (4 unique TUs)" "$WORKDIR/dup.out"; then
    echo "FAIL: duplicated inputs were not deduplicated to 4 unique TUs" >&2
    grep "summaries" "$WORKDIR/dup.out" >&2 || true
    FAILED=1
fi

# --- (d) stale and corrupt summaries are rejected ------------------------
cp "${QSUMS[0]}" "$WORKDIR/stale.qsum"
printf '\xff' | dd of="$WORKDIR/stale.qsum" bs=1 seek=4 count=1 \
    conv=notrunc 2>/dev/null
STATUS=0
"$QUALLINK" --quiet "$WORKDIR/stale.qsum" \
    >/dev/null 2>"$WORKDIR/stale.err" || STATUS=$?
if [ "$STATUS" -ne 1 ] || ! grep -q "stale" "$WORKDIR/stale.err"; then
    echo "FAIL: stale summary not rejected (exit $STATUS)" >&2
    cat "$WORKDIR/stale.err" >&2
    FAILED=1
fi

head -c 100 "${QSUMS[0]}" >"$WORKDIR/trunc.qsum"
STATUS=0
"$QUALLINK" --quiet "$WORKDIR/trunc.qsum" >/dev/null 2>/dev/null || STATUS=$?
if [ "$STATUS" -ne 1 ]; then
    echo "FAIL: truncated summary not rejected (exit $STATUS)" >&2
    FAILED=1
fi

exit "$FAILED"

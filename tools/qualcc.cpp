//===- tools/qualcc.cpp - Whole-program const inference driver -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The command-line artifact of Section 4: takes an entire C program (one or
// more files, analyzed together like the paper's multi-file benchmarks) and
// infers the maximum number of consts that can be syntactically present.
//
//   qualcc [options] file1.c [file2.c ...] [@response-file]
//
//   --mono          monomorphic inference (default: polymorphic)
//   --protos        print annotated prototypes (const where allowed)
//   --positions     print the per-position classification
//   --nonnull       also run the flow-insensitive nonnull checker
//   --flow-nonnull  also run the flow-sensitive (Section 6) checker
//   --stats         print a solver statistics table
//   --no-collapse   disable solver cycle collapsing (ablation baseline)
//   --no-dense      disable the solver's dense bulk-solve core (ablation)
//   --batch         analyze each file as its own translation unit (corpus
//                   mode) instead of linking all files into one program
//   -jN, --jobs N   batch workers; implies --batch (docs/PARALLEL.md);
//                   output order and bytes are identical for every N
//   --solver-jobs=N shard the solver's dense passes over N pool threads in
//                   whole-program mode; bytes are identical for every N
//                   (docs/SOLVER.md). Ignored in batch mode, where the
//                   translation units are the parallelism axis.
//   --emit-summary=FILE     whole-program mode: serialize the constraint
//                   summary for quallink (forces --mono; docs/LINK.md)
//   --emit-summary-dir=DIR  batch mode (implied): content-addressed summary
//                   per TU, reusing up-to-date cache entries
//   --trace-out=<file>      write a Chrome trace of the pipeline phases
//   --metrics[=table|json]  print per-phase metrics on exit
//   --quiet         counts only
//
// Exit status: 0 on success, 1 on front-end errors, 2 on const errors; in
// batch mode the worst per-file status.
//
//===----------------------------------------------------------------------===//

#include "apps/FlowNonNull.h"
#include "apps/NonNull.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "link/Qsum.h"
#include "link/SummaryBuilder.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include "BatchDriver.h"
#include "ToolFlags.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include <cerrno>
#include <sys/stat.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

static const char *className(PosClass C) {
  switch (C) {
  case PosClass::MustConst:    return "must-const";
  case PosClass::MustNonConst: return "non-const";
  case PosClass::Either:       return "either";
  }
  return "?";
}

namespace {

struct QualccOptions {
  bool Polymorphic = true;
  bool PrintProtos = false;
  bool PrintPositions = false;
  bool RunNonNull = false;
  bool RunFlowNonNull = false;
  bool PrintStats = false;
  bool CollapseCycles = true;
  bool DenseSolve = true;
  unsigned SolverJobs = 1;
  ThreadPool *SolverPool = nullptr;
  bool Quiet = false;
  Limits Lim;
  /// Whole-program mode: serialize the unit's constraint summary here.
  std::string EmitSummaryPath;
  /// Batch mode: write each TU's summary into this directory under its
  /// content-addressed name (docs/LINK.md); an existing up-to-date summary
  /// skips the analysis outright.
  std::string EmitSummaryDir;

  bool emitSummary() const {
    return !EmitSummaryPath.empty() || !EmitSummaryDir.empty();
  }
};

} // namespace

/// Runs the full pipeline over one translation unit -- \p Paths is every
/// file of the program (the whole list in whole-program mode, a single
/// file in batch mode) -- in a fully isolated context, buffering all
/// output into \p R. Runs on a batch pool worker at -jN.
static void analyzeUnit(const std::vector<std::string> &Paths,
                        const QualccOptions &Opts, batch::FileResult &R) {
  SourceManager SM;
  DiagnosticEngine Diags(SM, Opts.Lim);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  // Sources are read before parsing: the summary content hash covers the
  // unit's raw bytes (streamed, so it keys identically however the bytes
  // are chunked), and a dir-mode cache hit skips the front end entirely.
  Timer CompileTimer;
  std::vector<std::string> Sources(Paths.size());
  StreamHasher ContentHasher;
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (!readFile(Paths[I], Sources[I])) {
      batch::appendf(R.Err, "qualcc: cannot read '%s'\n", Paths[I].c_str());
      R.ExitCode = 1;
      return;
    }
    if (Opts.emitSummary())
      ContentHasher.update(Sources[I]);
  }
  uint64_t ContentHash = ContentHasher.digest();
  std::string SummaryOut = Opts.EmitSummaryPath;
  std::string SummaryName;
  if (!Opts.EmitSummaryDir.empty()) {
    // Content-addressed summary cache, keyed like the serve layer's
    // ResultCache: (content hash, config hash). Identical shared sources
    // summarize once; a stale or foreign file at the key is rewritten.
    uint64_t Key =
        link::summaryCacheKey(ContentHash, link::summaryConfigHash());
    SummaryName = link::summaryFileName(Key);
    SummaryOut = Opts.EmitSummaryDir + "/" + SummaryName;
    std::string Bytes, ProbeErr;
    link::QsumHeader Header;
    if (link::readFileBytes(SummaryOut, Bytes, ProbeErr) &&
        link::readSummaryHeader(
            reinterpret_cast<const uint8_t *>(Bytes.data()), Bytes.size(),
            Header, ProbeErr) &&
        Header.ConfigHash == link::summaryConfigHash() &&
        Header.ContentHash == ContentHash) {
      // The hit prints exactly what a miss prints, so batch output stays
      // byte-identical whatever the cache held going in.
      batch::appendf(R.Out, "summary: %s -> %s\n", Paths[0].c_str(),
                     SummaryName.c_str());
      return;
    }
  }
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (!parseCSource(SM, Paths[I], std::move(Sources[I]), Ast, Types,
                      Idents, Diags, TU)) {
      R.Err += Diags.renderAll();
      R.ExitCode = 1;
      return;
    }
  }
  CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU)) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }
  double CompileSeconds = CompileTimer.seconds();

  ConstInference::Options InfOpts;
  InfOpts.Polymorphic = Opts.Polymorphic;
  InfOpts.CollapseCycles = Opts.CollapseCycles;
  InfOpts.DenseSolve = Opts.DenseSolve;
  InfOpts.SolverJobs = Opts.SolverJobs;
  InfOpts.SolverPool = Opts.SolverPool;
  InfOpts.SummaryMode = Opts.emitSummary();
  ConstInference Inf(TU, Diags, InfOpts);
  Timer InferTimer;
  if (!Inf.run()) {
    batch::appendf(R.Err, "qualcc: const errors detected:\n%s",
                   Diags.renderAll().c_str());
    if (Opts.PrintStats)
      R.Out += renderSolverStats(Inf.solverStats());
    R.ExitCode = 2;
    return;
  }
  double InferSeconds = InferTimer.seconds();

  if (Opts.emitSummary()) {
    link::TuSummary Summary = link::buildSummary(
        Inf, SM, Paths[0], ContentHash, link::summaryConfigHash());
    std::string WriteErr;
    if (!link::writeFileAtomic(SummaryOut, link::serializeSummary(Summary),
                               WriteErr)) {
      batch::appendf(R.Err, "qualcc: %s\n", WriteErr.c_str());
      R.ExitCode = 1;
      return;
    }
    if (!Opts.EmitSummaryDir.empty()) {
      // Dir mode prints one line per TU -- the same line a cache hit
      // prints -- and nothing else, so corpus output is deterministic at
      // any -jN even when identical TUs race for one cache slot.
      batch::appendf(R.Out, "summary: %s -> %s\n", Paths[0].c_str(),
                     SummaryName.c_str());
      return;
    }
    if (!Opts.Quiet)
      batch::appendf(R.Out, "summary: %s\n", SummaryOut.c_str());
  }

  if (Opts.PrintStats)
    R.Out += renderSolverStats(Inf.solverStats());

  if (Opts.PrintPositions) {
    for (const InterestingPos &Pos : Inf.positions()) {
      std::string Where = Pos.ParamIndex < 0
                              ? std::string("result")
                              : "param " + std::to_string(Pos.ParamIndex);
      batch::appendf(R.Out, "%-24s %-8s depth %u  %-10s%s\n",
                     std::string(Pos.Fn->getName()).c_str(), Where.c_str(),
                     Pos.Depth, className(Inf.classify(Pos)),
                     Pos.DeclaredConst ? "  [declared]" : "");
    }
  }
  if (Opts.PrintProtos)
    R.Out += Inf.renderAnnotatedPrototypes();

  ConstCounts C = Inf.counts();
  if (!Opts.Quiet)
    batch::appendf(R.Out,
                   "%s inference over %zu file(s): compile %.3fs, infer "
                   "%.3fs, %u qualifier vars, %u constraints\n",
                   Opts.Polymorphic ? "polymorphic" : "monomorphic",
                   Paths.size(), CompileSeconds, InferSeconds,
                   Inf.numQualVars(), Inf.numConstraints());
  batch::appendf(R.Out,
                 "declared %u, inferred possible-const %u, total positions "
                 "%u\n",
                 C.Declared, C.PossibleConst, C.Total);

  auto printWarnings = [&SM, &R](const char *Title, const auto &Warnings) {
    batch::appendf(R.Out, "%s: %zu warning(s)\n", Title, Warnings.size());
    for (const auto &W : Warnings) {
      PresumedLoc P = SM.getPresumedLoc(W.Loc);
      if (P.isValid())
        batch::appendf(R.Out, "  %s:%u:%u: %s\n",
                       std::string(P.Filename).c_str(), P.Line, P.Column,
                       W.Message.c_str());
      else
        batch::appendf(R.Out, "  %s\n", W.Message.c_str());
    }
  };
  if (Opts.RunNonNull) {
    quals::apps::NonNullChecker Checker;
    Checker.analyze(TU);
    printWarnings("nonnull (flow-insensitive)", Checker.warnings());
  }
  if (Opts.RunFlowNonNull) {
    quals::apps::FlowNonNullChecker Checker;
    Checker.analyze(TU);
    printWarnings("nonnull (flow-sensitive, Section 6)",
                  Checker.warnings());
  }
}

static const char *kOptionsHelp =
    "  --mono          monomorphic inference (default: polymorphic)\n"
    "  --protos        print annotated prototypes (const where allowed)\n"
    "  --positions     print the per-position classification\n"
    "  --nonnull       also run the flow-insensitive nonnull checker\n"
    "  --flow-nonnull  also run the flow-sensitive (Section 6) checker\n"
    "  --stats         print a solver statistics table\n"
    "  --no-collapse   disable solver cycle collapsing (ablation)\n"
    "  --no-dense      disable the dense bulk-solve core (ablation)\n"
    "  --batch         analyze each file as its own translation unit\n"
    "                  (implied by -jN; parallelism is per unit)\n"
    "  --solver-jobs=N shard the solver's dense passes over N threads\n"
    "                  (whole-program mode only; bytes identical at any N)\n"
    "  --emit-summary=FILE\n"
    "                  whole-program mode: also serialize the unit's\n"
    "                  constraint summary to FILE for quallink (docs/LINK.md;\n"
    "                  forces --mono)\n"
    "  --emit-summary-dir=DIR\n"
    "                  batch mode (implied): write each TU's summary into\n"
    "                  DIR under its content-addressed name; up-to-date\n"
    "                  summaries are reused without re-analyzing\n"
    "  --quiet         counts only\n";

int main(int argc, char **argv) {
  QualccOptions Opts;
  bool Batch = false;
  std::vector<std::string> Files;
  ToolFlags Common("qualcc", "file.c... [@response-file]", kOptionsHelp);

  for (int I = 1; I != argc; ++I) {
    std::string Error;
    if (Common.parseCommon(argc, argv, I)) {
      if (Common.exitNow())
        return Common.exitStatus();
    } else if (!std::strcmp(argv[I], "--mono"))
      Opts.Polymorphic = false;
    else if (!std::strcmp(argv[I], "--protos"))
      Opts.PrintProtos = true;
    else if (!std::strcmp(argv[I], "--positions"))
      Opts.PrintPositions = true;
    else if (!std::strcmp(argv[I], "--nonnull"))
      Opts.RunNonNull = true;
    else if (!std::strcmp(argv[I], "--flow-nonnull"))
      Opts.RunFlowNonNull = true;
    else if (!std::strcmp(argv[I], "--stats"))
      Opts.PrintStats = true;
    else if (!std::strcmp(argv[I], "--no-collapse"))
      Opts.CollapseCycles = false;
    else if (!std::strcmp(argv[I], "--no-dense"))
      Opts.DenseSolve = false;
    else if (!std::strncmp(argv[I], "--solver-jobs=", 14)) {
      const char *Digits = argv[I] + 14;
      char *End = nullptr;
      unsigned long long N = std::strtoull(Digits, &End, 10);
      if (*Digits == '\0' || *End != '\0' || N == 0 || N > 1024)
        return Common.fail(std::string("bad --solver-jobs value '") + Digits +
                           "' (want a thread count in [1, 1024])");
      Opts.SolverJobs = static_cast<unsigned>(N);
    } else if (!std::strncmp(argv[I], "--emit-summary=", 15)) {
      Opts.EmitSummaryPath = argv[I] + 15;
      if (Opts.EmitSummaryPath.empty())
        return Common.fail("--emit-summary needs a file path");
    } else if (!std::strncmp(argv[I], "--emit-summary-dir=", 19)) {
      Opts.EmitSummaryDir = argv[I] + 19;
      if (Opts.EmitSummaryDir.empty())
        return Common.fail("--emit-summary-dir needs a directory");
      Batch = true; // Summaries are per translation unit by construction.
    } else if (!std::strcmp(argv[I], "--batch"))
      Batch = true;
    else if (!std::strcmp(argv[I], "--quiet"))
      Opts.Quiet = true;
    else if (argv[I][0] == '-')
      return Common.usageError(argv[I]);
    else if (!batch::expandArg(argv[I], Files, Error))
      return Common.fail(Error);
  }
  if (Files.empty())
    return Common.fail("no input files");
  Batch |= Common.jobsSeen(); // Parallelism is per translation unit.
  if (!Opts.EmitSummaryPath.empty() && !Opts.EmitSummaryDir.empty())
    return Common.fail(
        "--emit-summary and --emit-summary-dir are mutually exclusive");
  if (!Opts.EmitSummaryPath.empty() && Batch)
    return Common.fail("--emit-summary is whole-program only; use "
                       "--emit-summary-dir with --batch/-jN");
  if (Opts.emitSummary())
    Opts.Polymorphic = false; // Summary interfaces are monomorphic.
  if (!Opts.EmitSummaryDir.empty() &&
      mkdir(Opts.EmitSummaryDir.c_str(), 0777) != 0 && errno != EEXIST)
    return Common.fail("cannot create summary directory '" +
                       Opts.EmitSummaryDir + "'");
  unsigned Jobs = Common.jobs();
  Opts.Lim = Common.limits();
  Common.activate();

  if (!Batch) {
    // Whole-program mode (the paper's setup): every file is one linked
    // translation unit, so the files cannot be sharded -- but the solver's
    // dense passes can be (--solver-jobs; docs/SOLVER.md). Output bytes
    // are identical at every thread count.
    std::unique_ptr<ThreadPool> SolverPool;
    if (Opts.SolverJobs > 1) {
      SolverPool = std::make_unique<ThreadPool>(Opts.SolverJobs);
      Opts.SolverPool = SolverPool.get();
    }
    batch::FileResult R;
    analyzeUnit(Files, Opts, R);
    if (!R.Out.empty())
      std::fwrite(R.Out.data(), 1, R.Out.size(), stdout);
    if (!R.Err.empty())
      std::fwrite(R.Err.data(), 1, R.Err.size(), stderr);
    return R.ExitCode;
  }

  batch::BatchConfig Config;
  Config.Jobs = Jobs;
  Config.Category = "qualcc";
  Config.Headers = Files.size() > 1;
  return batch::runBatch(Files, Config,
                         [&Opts](const std::string &Path, size_t,
                                 batch::FileResult &R) {
                           analyzeUnit({Path}, Opts, R);
                         });
}

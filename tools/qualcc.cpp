//===- tools/qualcc.cpp - Whole-program const inference driver -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The command-line artifact of Section 4: takes an entire C program (one or
// more files, analyzed together like the paper's multi-file benchmarks) and
// infers the maximum number of consts that can be syntactically present.
//
//   qualcc [options] file1.c [file2.c ...]
//
//   --mono          monomorphic inference (default: polymorphic)
//   --protos        print annotated prototypes (const where allowed)
//   --positions     print the per-position classification
//   --nonnull       also run the flow-insensitive nonnull checker
//   --flow-nonnull  also run the flow-sensitive (Section 6) checker
//   --stats         print a solver statistics table
//   --no-collapse   disable solver cycle collapsing (ablation baseline)
//   --trace-out=<file>      write a Chrome trace of the pipeline phases
//   --metrics[=table|json]  print per-phase metrics on exit
//   --quiet         counts only
//
// Exit status: 0 on success, 1 on front-end errors, 2 on const errors.
//
//===----------------------------------------------------------------------===//

#include "apps/FlowNonNull.h"
#include "apps/NonNull.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "support/Timer.h"

#include "ObsFlags.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

static bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

static const char *className(PosClass C) {
  switch (C) {
  case PosClass::MustConst:    return "must-const";
  case PosClass::MustNonConst: return "non-const";
  case PosClass::Either:       return "either";
  }
  return "?";
}

int main(int argc, char **argv) {
  bool Polymorphic = true;
  bool PrintProtos = false;
  bool PrintPositions = false;
  bool RunNonNull = false;
  bool RunFlowNonNull = false;
  bool PrintStats = false;
  bool CollapseCycles = true;
  bool Quiet = false;
  std::vector<const char *> Files;
  ObsSession Obs;

  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--mono"))
      Polymorphic = false;
    else if (!std::strcmp(argv[I], "--protos"))
      PrintProtos = true;
    else if (!std::strcmp(argv[I], "--positions"))
      PrintPositions = true;
    else if (!std::strcmp(argv[I], "--nonnull"))
      RunNonNull = true;
    else if (!std::strcmp(argv[I], "--flow-nonnull"))
      RunFlowNonNull = true;
    else if (!std::strcmp(argv[I], "--stats"))
      PrintStats = true;
    else if (!std::strcmp(argv[I], "--no-collapse"))
      CollapseCycles = false;
    else if (!std::strcmp(argv[I], "--quiet"))
      Quiet = true;
    else if (Obs.parseFlag(argv[I])) {
      if (Obs.badFlag())
        return 1;
    } else if (!std::strcmp(argv[I], "--help") || argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: qualcc [--mono] [--protos] [--positions] "
                   "[--nonnull] [--flow-nonnull] [--stats] [--no-collapse] "
                   "[--trace-out=file] [--metrics[=table|json]] "
                   "[--quiet] file.c...\n");
      return argv[I][1] == 'h' ? 0 : 1;
    } else {
      Files.push_back(argv[I]);
    }
  }
  if (Files.empty()) {
    std::fprintf(stderr, "qualcc: no input files\n");
    return 1;
  }
  Obs.activate();

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  Timer CompileTimer;
  for (const char *Path : Files) {
    std::string Source;
    if (!readFile(Path, Source)) {
      std::fprintf(stderr, "qualcc: cannot read '%s'\n", Path);
      return 1;
    }
    if (!parseCSource(SM, Path, std::move(Source), Ast, Types, Idents,
                      Diags, TU)) {
      std::fprintf(stderr, "%s", Diags.renderAll().c_str());
      return 1;
    }
  }
  CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU)) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }
  double CompileSeconds = CompileTimer.seconds();

  ConstInference::Options Opts;
  Opts.Polymorphic = Polymorphic;
  Opts.CollapseCycles = CollapseCycles;
  ConstInference Inf(TU, Diags, Opts);
  Timer InferTimer;
  if (!Inf.run()) {
    std::fprintf(stderr, "qualcc: const errors detected:\n%s",
                 Diags.renderAll().c_str());
    if (PrintStats)
      std::printf("%s", renderSolverStats(Inf.solverStats()).c_str());
    return 2;
  }
  double InferSeconds = InferTimer.seconds();
  if (PrintStats)
    std::printf("%s", renderSolverStats(Inf.solverStats()).c_str());

  if (PrintPositions) {
    for (const InterestingPos &Pos : Inf.positions()) {
      std::string Where = Pos.ParamIndex < 0
                              ? std::string("result")
                              : "param " + std::to_string(Pos.ParamIndex);
      std::printf("%-24s %-8s depth %u  %-10s%s\n",
                  std::string(Pos.Fn->getName()).c_str(), Where.c_str(),
                  Pos.Depth, className(Inf.classify(Pos)),
                  Pos.DeclaredConst ? "  [declared]" : "");
    }
  }
  if (PrintProtos)
    std::printf("%s", Inf.renderAnnotatedPrototypes().c_str());

  ConstCounts C = Inf.counts();
  if (!Quiet)
    std::printf("%s inference over %zu file(s): compile %.3fs, infer "
                "%.3fs, %u qualifier vars, %u constraints\n",
                Polymorphic ? "polymorphic" : "monomorphic", Files.size(),
                CompileSeconds, InferSeconds, Inf.numQualVars(),
                Inf.numConstraints());
  std::printf("declared %u, inferred possible-const %u, total positions "
              "%u\n",
              C.Declared, C.PossibleConst, C.Total);

  auto printWarnings = [&SM](const char *Title, const auto &Warnings) {
    std::printf("%s: %zu warning(s)\n", Title, Warnings.size());
    for (const auto &W : Warnings) {
      PresumedLoc P = SM.getPresumedLoc(W.Loc);
      if (P.isValid())
        std::printf("  %s:%u:%u: %s\n", std::string(P.Filename).c_str(),
                    P.Line, P.Column, W.Message.c_str());
      else
        std::printf("  %s\n", W.Message.c_str());
    }
  };
  if (RunNonNull) {
    quals::apps::NonNullChecker Checker;
    Checker.analyze(TU);
    printWarnings("nonnull (flow-insensitive)", Checker.warnings());
  }
  if (RunFlowNonNull) {
    quals::apps::FlowNonNullChecker Checker;
    Checker.analyze(TU);
    printWarnings("nonnull (flow-sensitive, Section 6)",
                  Checker.warnings());
  }
  return 0;
}

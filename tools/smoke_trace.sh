#!/usr/bin/env bash
# smoke_trace.sh - run the observability path (--trace-out / --metrics=json)
# of both CLIs over the example corpus and validate the artifacts.
#
#   smoke_trace.sh <qualcheck-binary> <qualcc-binary> <programs-dir>
#
# For every example program the tool must (a) not crash, (b) emit a
# well-formed Chrome trace-event JSON file whose timestamps are
# monotonically plausible (non-negative durations, begin times
# non-decreasing once sorted, spans covering a sane range), and (c) emit
# parseable metrics JSON naming the expected pipeline phases. Wired into
# ctest as cli.smoke_trace by tools/CMakeLists.txt. Exits 77 (ctest skip)
# when python3 is unavailable for the JSON validation.

set -euo pipefail

if [ $# -ne 3 ]; then
    echo "usage: $0 <qualcheck-binary> <qualcc-binary> <programs-dir>" >&2
    exit 2
fi

QUALCHECK=$1
QUALCC=$2
PROGRAMS=$3
FAILED=0

if ! command -v python3 >/dev/null 2>&1; then
    echo "SKIP: python3 not available for trace validation" >&2
    exit 77
fi

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# validate_trace <trace-file> <required-phase-csv>
validate_trace() {
    python3 - "$1" "$2" <<'PYEOF'
import json, sys

path, required = sys.argv[1], sys.argv[2].split(",")
with open(path) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "no trace events recorded"
last_ts = -1
for e in events:
    assert e["ph"] in ("X", "i"), f"unexpected phase type {e['ph']!r}"
    assert isinstance(e["ts"], int) and e["ts"] >= 0, f"bad ts in {e}"
    assert e["ts"] >= last_ts, "begin timestamps must be non-decreasing"
    last_ts = e["ts"]
    if e["ph"] == "X":
        assert isinstance(e["dur"], int) and e["dur"] >= 0, f"bad dur in {e}"
        # A pipeline phase over an example file finishing after ten
        # minutes is not plausible; a trace claiming so is corrupt.
        assert e["ts"] + e["dur"] < 600_000_000, "implausible span end"
names = {e["name"] for e in events}
for phase in required:
    assert phase in names, f"missing {phase!r} span; have {sorted(names)}"
PYEOF
}

# validate_metrics <metrics-file> <required-timer-csv>
validate_metrics() {
    python3 - "$1" "$2" <<'PYEOF'
import json, sys

path, required = sys.argv[1], sys.argv[2].split(",")
with open(path) as f:
    doc = json.load(f)
for key in ("counters", "gauges", "timers"):
    assert key in doc, f"metrics JSON lacks {key!r}"
for timer in required:
    assert timer in doc["timers"], \
        f"missing timer {timer!r}; have {sorted(doc['timers'])}"
    entry = doc["timers"][timer]
    assert entry["seconds"] >= 0 and entry["count"] >= 1, entry
PYEOF
}

# check_run <tool-name> <required-phase-csv> <command...>
check_run() {
    local TOOL=$1 PHASES=$2
    shift 2
    local TRACE="$WORKDIR/$TOOL.trace.json"
    local METRICS="$WORKDIR/$TOOL.metrics.json"
    local STATUS=0
    "$@" "--trace-out=$TRACE" --metrics=json >"$METRICS" 2>/dev/null \
        || STATUS=$?
    if [ "$STATUS" -ge 128 ] || { [ "$STATUS" -ne 0 ] && [ "$STATUS" -gt 3 ]; }; then
        echo "FAIL: $TOOL exited with status $STATUS: $*" >&2
        FAILED=1
        return
    fi
    # Exit 1 is a front-end error: the pipeline stopped early, so phase
    # coverage is not expected; the trace must still be well-formed.
    local REQUIRED=$PHASES
    if [ "$STATUS" -eq 1 ]; then
        REQUIRED="lex"
    fi
    if ! validate_trace "$TRACE" "$REQUIRED"; then
        echo "FAIL: $TOOL produced a bad trace for: $*" >&2
        FAILED=1
        return
    fi
    # The metrics report mixes with regular stdout; extract the JSON
    # document (it starts at the first '{"counters"' line).
    local JSONSTART
    JSONSTART=$(grep -n '^{"counters"' "$METRICS" | head -1 | cut -d: -f1)
    if [ -z "$JSONSTART" ]; then
        echo "FAIL: $TOOL printed no metrics JSON: $*" >&2
        FAILED=1
        return
    fi
    tail -n "+$JSONSTART" "$METRICS" >"$METRICS.json"
    local TIMERS="phase.solve"
    if [ "$STATUS" -eq 1 ]; then
        TIMERS="phase.lex"
    fi
    if ! validate_metrics "$METRICS.json" "$TIMERS"; then
        echo "FAIL: $TOOL produced bad metrics JSON for: $*" >&2
        FAILED=1
    fi
}

FOUND=0
for F in "$PROGRAMS"/*.q; do
    [ -e "$F" ] || continue
    FOUND=1
    check_run qualcheck "lex,parse,sema,constraint-gen,solve" \
        "$QUALCHECK" "$F"
done
for F in "$PROGRAMS"/*.c; do
    [ -e "$F" ] || continue
    FOUND=1
    check_run qualcc "lex,parse,sema,ref-types,fdg,constraint-gen,solve" \
        "$QUALCC" "$F"
done

if [ "$FOUND" -eq 0 ]; then
    echo "FAIL: no .q or .c programs found in $PROGRAMS" >&2
    exit 2
fi
exit "$FAILED"

//===- tools/BatchDriver.cpp - Ordered parallel batch analysis ------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "BatchDriver.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

using namespace quals;
using namespace quals::batch;

void quals::batch::appendf(std::string &Buf, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed > 0) {
    size_t Old = Buf.size();
    Buf.resize(Old + Needed + 1);
    std::vsnprintf(&Buf[Old], Needed + 1, Fmt, Args);
    Buf.resize(Old + Needed); // Drop the NUL vsnprintf wrote.
  }
  va_end(Args);
}

static bool expandArgDepth(const std::string &Arg,
                           std::vector<std::string> &Files,
                           std::string &Error, unsigned Depth) {
  if (Arg.empty() || Arg[0] != '@') {
    Files.push_back(Arg);
    return true;
  }
  if (Depth >= 8) {
    Error = "response files nested too deeply (cycle?) at '" + Arg + "'";
    return false;
  }
  std::string Path = Arg.substr(1);
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot read response file '" + Path + "'";
    return false;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    // Trim whitespace; skip blanks and comments.
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);
    if (Line[0] == '#')
      continue;
    if (!expandArgDepth(Line, Files, Error, Depth + 1))
      return false;
  }
  return true;
}

bool quals::batch::expandArg(const std::string &Arg,
                             std::vector<std::string> &Files,
                             std::string &Error) {
  return expandArgDepth(Arg, Files, Error, 0);
}

bool quals::batch::parseJobsFlag(const char *Arg, const char *Next,
                                 unsigned &Jobs, bool &ConsumedNext,
                                 std::string &Error) {
  ConsumedNext = false;
  const char *Value = nullptr;
  if (!std::strncmp(Arg, "-j", 2) && std::strcmp(Arg, "-j")) {
    Value = Arg + 2;
  } else if (!std::strncmp(Arg, "--jobs=", 7)) {
    Value = Arg + 7;
  } else if (!std::strcmp(Arg, "-j") || !std::strcmp(Arg, "--jobs")) {
    if (!Next) {
      Error = std::string(Arg) + " requires a worker count";
      return true;
    }
    Value = Next;
    ConsumedNext = true;
  } else {
    return false;
  }
  char *End = nullptr;
  unsigned long N = std::strtoul(Value, &End, 10);
  if (End == Value || *End || N == 0 || N > 1024) {
    Error = std::string("bad worker count '") + Value +
            "' (want an integer in [1, 1024])";
    return true;
  }
  Jobs = static_cast<unsigned>(N);
  return true;
}

namespace {

/// Per-file completion slot for the ordered flusher.
struct Slot {
  FileResult Result;
  bool Done = false;
};

} // namespace

int quals::batch::runBatch(const std::vector<std::string> &Files,
                           const BatchConfig &Config,
                           const AnalyzeFn &Analyze) {
  Timer Wall;
  TraceScope BatchSpan("batch", Config.Category);
  if (Tracer::isEnabled())
    BatchSpan.setArgs("\"files\":" + std::to_string(Files.size()) +
                      ",\"jobs\":" + std::to_string(Config.Jobs));

  auto AnalyzeOne = [&](const std::string &Path, size_t Index,
                        FileResult &R) {
    TraceScope Span("file:" + Path, Config.Category);
    Analyze(Path, Index, R);
    if (Tracer::isEnabled())
      Span.setArgs("\"exit\":" + std::to_string(R.ExitCode));
  };
  auto Flush = [&](const std::string &Path, const FileResult &R) {
    if (Config.Headers)
      std::fprintf(Config.OutStream, "== %s ==\n", Path.c_str());
    if (!R.Out.empty())
      std::fwrite(R.Out.data(), 1, R.Out.size(), Config.OutStream);
    if (!R.Err.empty())
      std::fwrite(R.Err.data(), 1, R.Err.size(), Config.ErrStream);
    // Keep the two streams plausibly interleaved for terminal users even
    // when they are redirected to the same pipe.
    std::fflush(Config.OutStream);
    std::fflush(Config.ErrStream);
  };

  int MaxExit = 0;
  unsigned Failed = 0;
  if (Config.Jobs <= 1 || Files.size() <= 1) {
    // Inline serial path: same buffering and flush order as the parallel
    // path, so -j1 output is the byte-reference for every -jN.
    for (size_t I = 0, N = Files.size(); I != N; ++I) {
      FileResult R;
      AnalyzeOne(Files[I], I, R);
      Flush(Files[I], R);
      MaxExit = std::max(MaxExit, R.ExitCode);
      Failed += R.ExitCode != 0;
    }
  } else {
    std::vector<Slot> Slots(Files.size());
    std::mutex Mutex;
    std::condition_variable DoneCv;
    {
      // Workers fill slots in whatever order they finish; this thread
      // flushes the completed prefix in input order, so output streams as
      // the corpus completes yet stays deterministic. The pool destructor
      // joins the workers, but every task has finished once the last slot
      // flushes.
      ThreadPool Pool(std::min<size_t>(Config.Jobs, Files.size()));
      for (size_t I = 0, N = Files.size(); I != N; ++I)
        Pool.enqueue([&, I] {
          FileResult R;
          AnalyzeOne(Files[I], I, R);
          std::lock_guard<std::mutex> Lock(Mutex);
          Slots[I].Result = std::move(R);
          Slots[I].Done = true;
          DoneCv.notify_all();
        });
      for (size_t I = 0, N = Files.size(); I != N; ++I) {
        std::unique_lock<std::mutex> Lock(Mutex);
        DoneCv.wait(Lock, [&] { return Slots[I].Done; });
        Lock.unlock();
        // Slot I is never written again once Done, so reading it unlocked
        // is safe.
        Flush(Files[I], Slots[I].Result);
        MaxExit = std::max(MaxExit, Slots[I].Result.ExitCode);
        Failed += Slots[I].Result.ExitCode != 0;
      }
    }
  }

  if (MetricsRegistry::collecting()) {
    MetricsRegistry &R = MetricsRegistry::global();
    R.counter("batch.files").add(Files.size());
    R.counter("batch.failed").add(Failed);
    R.gauge("batch.jobs").set(Config.Jobs);
    R.timer("batch.wall").addSeconds(Wall.seconds());
  }
  return MaxExit;
}

//===- tools/LimitFlags.h - Shared resource-limit CLI plumbing -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --limit-* flags shared by qualcc, qualcheck, and qualgen, in the
/// style of ObsFlags.h: each tool feeds unrecognized arguments through
/// parseFlag() and passes the resulting Limits into every analysis context
/// it creates. A value of 0 always means "unlimited".
///
///   --limit-errors=N       errors before `fatal: too many errors` bailout
///   --limit-depth=N        parser/type recursion depth
///   --limit-constraints=N  qualifier constraints per constraint system
///   --limit-arena-mb=N     arena megabytes per analysis context
///
/// See docs/ROBUSTNESS.md for what each budget protects against.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_TOOLS_LIMITFLAGS_H
#define QUALS_TOOLS_LIMITFLAGS_H

#include "support/Limits.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace quals {

/// Resource-limit flag state for one tool invocation; see the file comment.
class LimitFlags {
public:
  /// Returns true (and consumes the flag) when \p Arg is a --limit-* flag;
  /// prints to stderr and sets badFlag() on a malformed value.
  bool parseFlag(const char *Arg) {
    uint64_t Value;
    if (parseUint(Arg, "--limit-errors=", Value)) {
      Lim.MaxErrors = static_cast<unsigned>(Value);
      return true;
    }
    if (parseUint(Arg, "--limit-depth=", Value)) {
      Lim.MaxRecursionDepth = static_cast<unsigned>(Value);
      return true;
    }
    if (parseUint(Arg, "--limit-constraints=", Value)) {
      Lim.MaxConstraints = Value;
      return true;
    }
    if (parseUint(Arg, "--limit-arena-mb=", Value)) {
      Lim.MaxArenaBytes = Value << 20;
      return true;
    }
    return false;
  }

  /// True if a recognized limit flag had a malformed value.
  bool badFlag() const { return Bad; }

  /// The budgets to run every analysis context under.
  const Limits &limits() const { return Lim; }

private:
  bool parseUint(const char *Arg, const char *Prefix, uint64_t &Value) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len))
      return false;
    const char *Digits = Arg + Len;
    char *End = nullptr;
    Value = std::strtoull(Digits, &End, 10);
    if (*Digits == '\0' || *End != '\0') {
      std::fprintf(stderr, "%s wants a number, got '%s'\n",
                   std::string(Prefix, Len - 1).c_str(), Digits);
      Bad = true;
    }
    return true;
  }

  Limits Lim;
  bool Bad = false;
};

} // namespace quals

#endif // QUALS_TOOLS_LIMITFLAGS_H

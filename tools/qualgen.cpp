//===- tools/qualgen.cpp - Synthetic benchmark generator CLI ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Emits a deterministic synthetic C benchmark to stdout:
//
//   qualgen [--lines N] [--seed S] [--const-rate R] [--writer-rate R]
//           [--trace-out=file] [--metrics[=table|json]]
//
// Note --metrics prints to stdout after the program text; when piping the
// program into another tool, prefer --trace-out (which writes to a file).
//
// Pipe into qualcc to reproduce Table 2 rows by hand:
//
//   qualgen --lines 8741 --seed 1004 > bench.c && qualcc bench.c
//
//===----------------------------------------------------------------------===//

#include "gen/SynthGen.h"

#include "ObsFlags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace quals;
using namespace quals::synth;

int main(int argc, char **argv) {
  unsigned Lines = 2000;
  uint64_t Seed = 1;
  double ConstRate = -1, WriterRate = -1;
  ObsSession Obs;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--const-rate") && I + 1 < argc)
      ConstRate = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--writer-rate") && I + 1 < argc)
      WriterRate = std::strtod(argv[++I], nullptr);
    else if (Obs.parseFlag(argv[I])) {
      if (Obs.badFlag())
        return 1;
    } else {
      std::fprintf(stderr, "usage: qualgen [--lines N] [--seed S] "
                           "[--const-rate R] [--writer-rate R] "
                           "[--trace-out=file] [--metrics[=table|json]]\n");
      return std::strcmp(argv[I], "--help") ? 1 : 0;
    }
  }
  Obs.activate();
  SynthParams P = paramsForLines(Seed, Lines);
  if (ConstRate >= 0)
    P.ConstDeclRate = ConstRate;
  if (WriterRate >= 0)
    P.WriterRate = WriterRate;
  SynthProgram Prog = generateProgram(P);
  std::fputs(Prog.Source.c_str(), stdout);
  return 0;
}

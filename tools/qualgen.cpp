//===- tools/qualgen.cpp - Synthetic benchmark generator CLI ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Emits deterministic synthetic C benchmarks:
//
//   qualgen [--lines N] [--seed S] [--const-rate R] [--writer-rate R]
//           [--corpus N [--out-dir DIR]] [--tus N [--out-dir DIR]] [-jN]
//           [--trace-out=file] [--metrics[=table|json]]
//           [out1.c out2.c ...]
//
// With no positional arguments one program goes to stdout (the classic
// mode). Positional arguments name output files: each gets an independent
// program (per-file seed derived from --seed and the file's position).
// --corpus N emits N programs named corpus_0000.c .. into --out-dir
// (default "."), creating the directory if needed -- the synthetic stand-in
// for the paper's multi-program benchmark suite, sized per file by
// --lines. -jN generates output files on N pool workers; every file
// depends only on its own seed, so the corpus is bit-identical for any N.
// --tus N instead splits ONE program across N translation units
// tu_0000.c .. with cross-file extern declarations -- the
// separate-compilation workload for qualcc --emit-summary-dir and quallink
// (docs/LINK.md); --lines sizes the whole program, not each file.
//
// Note --metrics prints to stdout after the program text; when piping the
// program into another tool, prefer --trace-out (which writes to a file).
//
// Pipe into qualcc to reproduce Table 2 rows by hand:
//
//   qualgen --lines 8741 --seed 1004 > bench.c && qualcc bench.c
//
// Exit status: 0, or 1 if any output file cannot be written (all files are
// still attempted).
//
//===----------------------------------------------------------------------===//

#include "gen/SynthGen.h"

#include "BatchDriver.h"
#include "ToolFlags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace quals;
using namespace quals::synth;

/// Generates the program for \p Index and writes it to \p Path; errors are
/// buffered into \p R (runs on a pool worker at -jN).
static void generateOneFile(const std::string &Path, unsigned Index,
                            uint64_t Seed, unsigned Lines, double ConstRate,
                            double WriterRate, batch::FileResult &R) {
  SynthParams P = corpusFileParams(Seed, Index, Lines);
  if (ConstRate >= 0)
    P.ConstDeclRate = ConstRate;
  if (WriterRate >= 0)
    P.WriterRate = WriterRate;
  SynthProgram Prog = generateProgram(P);
  std::ofstream Out(Path, std::ios::binary);
  if (!Out || !(Out << Prog.Source)) {
    batch::appendf(R.Err, "qualgen: cannot write '%s'\n", Path.c_str());
    R.ExitCode = 1;
  }
}

static const char *kOptionsHelp =
    "  --lines N        approximate program size in lines (default 2000)\n"
    "  --seed S         PRNG seed; every output is a pure function of it\n"
    "  --const-rate R   fraction of declarations spelled const\n"
    "  --writer-rate R  fraction of functions that write through pointers\n"
    "  --corpus N       emit N programs corpus_0000.c.. into --out-dir\n"
    "  --tus N          split one program across N files tu_0000.c..\n"
    "                   with cross-file externs (docs/LINK.md)\n"
    "  --out-dir DIR    corpus/TU destination directory (default \".\")\n";

int main(int argc, char **argv) {
  unsigned Lines = 2000;
  uint64_t Seed = 1;
  double ConstRate = -1, WriterRate = -1;
  unsigned Corpus = 0;
  unsigned Tus = 0;
  std::string OutDir = ".";
  bool HaveOutDir = false;
  std::vector<std::string> OutFiles;
  // The generator parses no input, so the --limit-* budgets are never
  // consulted; the flags are still accepted so scripted pipelines can pass
  // one --limit-* set to every tool uniformly.
  ToolFlags Common("qualgen", "[out.c...]", kOptionsHelp);
  for (int I = 1; I != argc; ++I) {
    if (Common.parseCommon(argc, argv, I)) {
      if (Common.exitNow())
        return Common.exitStatus();
    } else if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--const-rate") && I + 1 < argc)
      ConstRate = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--writer-rate") && I + 1 < argc)
      WriterRate = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--corpus") && I + 1 < argc)
      Corpus = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--tus") && I + 1 < argc)
      Tus = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--out-dir") && I + 1 < argc) {
      OutDir = argv[++I];
      HaveOutDir = true;
    } else if (argv[I][0] == '-')
      return Common.usageError(argv[I]);
    else
      OutFiles.push_back(argv[I]);
  }
  unsigned Jobs = Common.jobs();
  if (Corpus && !OutFiles.empty())
    return Common.fail(
        "--corpus and positional output files are mutually exclusive");
  if (Tus && (Corpus || !OutFiles.empty()))
    return Common.fail(
        "--tus is mutually exclusive with --corpus and output files");
  if (HaveOutDir && !Corpus && !Tus)
    return Common.fail("--out-dir requires --corpus or --tus");
  Common.activate();

  if (Tus) {
    // One program split across N files; the split is a single deterministic
    // generation pass, so there is nothing to parallelize.
    std::error_code Ec;
    std::filesystem::create_directories(OutDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "qualgen: cannot create directory '%s': %s\n",
                   OutDir.c_str(), Ec.message().c_str());
      return 1;
    }
    SynthParams P = paramsForLines(Seed, Lines);
    if (ConstRate >= 0)
      P.ConstDeclRate = ConstRate;
    if (WriterRate >= 0)
      P.WriterRate = WriterRate;
    std::vector<SynthProgram> Split = generateTuSplit(P, Tus);
    int Status = 0;
    for (unsigned I = 0; I != Split.size(); ++I) {
      std::string Path =
          (std::filesystem::path(OutDir) / tuFileName(I)).string();
      std::ofstream Out(Path, std::ios::binary);
      if (!Out || !(Out << Split[I].Source)) {
        std::fprintf(stderr, "qualgen: cannot write '%s'\n", Path.c_str());
        Status = 1;
      }
    }
    return Status;
  }

  if (Corpus) {
    std::error_code Ec;
    std::filesystem::create_directories(OutDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "qualgen: cannot create directory '%s': %s\n",
                   OutDir.c_str(), Ec.message().c_str());
      return 1;
    }
    for (unsigned I = 0; I != Corpus; ++I)
      OutFiles.push_back((std::filesystem::path(OutDir) / corpusFileName(I))
                             .string());
  }

  if (OutFiles.empty()) {
    // Classic mode: one program to stdout.
    SynthParams P = paramsForLines(Seed, Lines);
    if (ConstRate >= 0)
      P.ConstDeclRate = ConstRate;
    if (WriterRate >= 0)
      P.WriterRate = WriterRate;
    SynthProgram Prog = generateProgram(P);
    std::fputs(Prog.Source.c_str(), stdout);
    return 0;
  }

  batch::BatchConfig Config;
  Config.Jobs = Jobs;
  Config.Category = "qualgen";
  return batch::runBatch(
      OutFiles, Config,
      [&](const std::string &Path, size_t Index, batch::FileResult &R) {
        generateOneFile(Path, static_cast<unsigned>(Index), Seed, Lines,
                        ConstRate, WriterRate, R);
      });
}

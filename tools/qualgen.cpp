//===- tools/qualgen.cpp - Synthetic benchmark generator CLI ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Emits deterministic synthetic C benchmarks:
//
//   qualgen [--lines N] [--seed S] [--const-rate R] [--writer-rate R]
//           [--corpus N [--out-dir DIR]] [-jN]
//           [--trace-out=file] [--metrics[=table|json]]
//           [out1.c out2.c ...]
//
// With no positional arguments one program goes to stdout (the classic
// mode). Positional arguments name output files: each gets an independent
// program (per-file seed derived from --seed and the file's position).
// --corpus N emits N programs named corpus_0000.c .. into --out-dir
// (default "."), creating the directory if needed -- the synthetic stand-in
// for the paper's multi-program benchmark suite, sized per file by
// --lines. -jN generates output files on N pool workers; every file
// depends only on its own seed, so the corpus is bit-identical for any N.
//
// Note --metrics prints to stdout after the program text; when piping the
// program into another tool, prefer --trace-out (which writes to a file).
//
// Pipe into qualcc to reproduce Table 2 rows by hand:
//
//   qualgen --lines 8741 --seed 1004 > bench.c && qualcc bench.c
//
// Exit status: 0, or 1 if any output file cannot be written (all files are
// still attempted).
//
//===----------------------------------------------------------------------===//

#include "gen/SynthGen.h"

#include "BatchDriver.h"
#include "LimitFlags.h"
#include "ObsFlags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace quals;
using namespace quals::synth;

/// Generates the program for \p Index and writes it to \p Path; errors are
/// buffered into \p R (runs on a pool worker at -jN).
static void generateOneFile(const std::string &Path, unsigned Index,
                            uint64_t Seed, unsigned Lines, double ConstRate,
                            double WriterRate, batch::FileResult &R) {
  SynthParams P = corpusFileParams(Seed, Index, Lines);
  if (ConstRate >= 0)
    P.ConstDeclRate = ConstRate;
  if (WriterRate >= 0)
    P.WriterRate = WriterRate;
  SynthProgram Prog = generateProgram(P);
  std::ofstream Out(Path, std::ios::binary);
  if (!Out || !(Out << Prog.Source)) {
    batch::appendf(R.Err, "qualgen: cannot write '%s'\n", Path.c_str());
    R.ExitCode = 1;
  }
}

int main(int argc, char **argv) {
  unsigned Lines = 2000;
  uint64_t Seed = 1;
  double ConstRate = -1, WriterRate = -1;
  unsigned Corpus = 0;
  std::string OutDir = ".";
  bool HaveOutDir = false;
  unsigned Jobs = 1;
  std::vector<std::string> OutFiles;
  ObsSession Obs;
  // The generator parses no input, so the budgets are never consulted; the
  // flags are still accepted so scripted pipelines can pass one --limit-*
  // set to every tool uniformly.
  LimitFlags LimitsCli;
  for (int I = 1; I != argc; ++I) {
    std::string Error;
    bool ConsumedNext = false;
    if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--const-rate") && I + 1 < argc)
      ConstRate = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--writer-rate") && I + 1 < argc)
      WriterRate = std::strtod(argv[++I], nullptr);
    else if (!std::strcmp(argv[I], "--corpus") && I + 1 < argc)
      Corpus = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--out-dir") && I + 1 < argc) {
      OutDir = argv[++I];
      HaveOutDir = true;
    } else if (batch::parseJobsFlag(argv[I],
                                    I + 1 < argc ? argv[I + 1] : nullptr,
                                    Jobs, ConsumedNext, Error)) {
      if (!Error.empty()) {
        std::fprintf(stderr, "qualgen: %s\n", Error.c_str());
        return 1;
      }
      I += ConsumedNext;
    } else if (Obs.parseFlag(argv[I])) {
      if (Obs.badFlag())
        return 1;
    } else if (LimitsCli.parseFlag(argv[I])) {
      if (LimitsCli.badFlag())
        return 1;
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: qualgen [--lines N] [--seed S] "
                   "[--const-rate R] [--writer-rate R] "
                   "[--corpus N [--out-dir DIR]] [-jN] "
                   "[--trace-out=file] [--metrics[=table|json]] "
                   "[--limit-errors=N] [--limit-depth=N] "
                   "[--limit-constraints=N] [--limit-arena-mb=N] "
                   "[out.c...]\n");
      return std::strcmp(argv[I], "--help") ? 1 : 0;
    } else {
      OutFiles.push_back(argv[I]);
    }
  }
  if (Corpus && !OutFiles.empty()) {
    std::fprintf(stderr,
                 "qualgen: --corpus and positional output files are "
                 "mutually exclusive\n");
    return 1;
  }
  if (HaveOutDir && !Corpus) {
    std::fprintf(stderr, "qualgen: --out-dir requires --corpus\n");
    return 1;
  }
  Obs.activate();

  if (Corpus) {
    std::error_code Ec;
    std::filesystem::create_directories(OutDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "qualgen: cannot create directory '%s': %s\n",
                   OutDir.c_str(), Ec.message().c_str());
      return 1;
    }
    for (unsigned I = 0; I != Corpus; ++I)
      OutFiles.push_back((std::filesystem::path(OutDir) / corpusFileName(I))
                             .string());
  }

  if (OutFiles.empty()) {
    // Classic mode: one program to stdout.
    SynthParams P = paramsForLines(Seed, Lines);
    if (ConstRate >= 0)
      P.ConstDeclRate = ConstRate;
    if (WriterRate >= 0)
      P.WriterRate = WriterRate;
    SynthProgram Prog = generateProgram(P);
    std::fputs(Prog.Source.c_str(), stdout);
    return 0;
  }

  batch::BatchConfig Config;
  Config.Jobs = Jobs;
  Config.Category = "qualgen";
  return batch::runBatch(
      OutFiles, Config,
      [&](const std::string &Path, size_t Index, batch::FileResult &R) {
        generateOneFile(Path, static_cast<unsigned>(Index), Seed, Lines,
                        ConstRate, WriterRate, R);
      });
}
